//! Cross-crate interop tests: the coding substrate pieces composed the way
//! the XED designs use them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed::ecc::chipkill::{Chipkill, SymbolOutcome};
use xed::ecc::secded::{DecodeOutcome, SecDed};
use xed::ecc::{parity, Crc8Atm, Hamming7264};

/// The full XED data path at the word level, built from the raw codec
/// pieces: on-die CRC8 detection inside each "chip" + catch-word
/// substitution + RAID-3 reconstruction at the "controller".
#[test]
fn manual_xed_datapath_from_codec_pieces() {
    let on_die = Crc8Atm::new();
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
    let catch_words: Vec<u64> = (0..9).map(|_| rng.gen()).collect();

    // "Chips" store codewords; chip 3 suffers a multi-bit error.
    let mut stored: Vec<_> = data.iter().map(|&d| on_die.encode(d)).collect();
    let parity_word = parity::compute(&data);
    stored.push(on_die.encode(parity_word));
    let corrupted = stored[3]
        .with_bit_flipped(2)
        .with_bit_flipped(40)
        .with_bit_flipped(41)
        .with_bit_flipped(66);
    stored[3] = corrupted;

    // Read path: each chip decodes; events become catch-words (DC-Mux).
    let bus: Vec<u64> = stored
        .iter()
        .enumerate()
        .map(|(i, &w)| match on_die.decode(w) {
            DecodeOutcome::Clean { data } => data,
            _ => catch_words[i],
        })
        .collect();

    // Controller: exactly one catch-word → erasure-reconstruct via parity.
    let catching: Vec<usize> = (0..9).filter(|&i| bus[i] == catch_words[i]).collect();
    assert_eq!(catching, vec![3], "only chip 3 signals");
    let recovered = parity::reconstruct(&bus[..8], bus[8], 3);
    assert_eq!(recovered, data[3]);
}

/// XED-on-Chipkill (Section IX): catch-word-identified erasures let the
/// RS(18,16) code fix two chips; blind decoding fixes only one.
#[test]
fn erasures_double_the_correction_budget() {
    let ck = Chipkill::new();
    let data: Vec<u8> = (0..16).map(|i| i * 5 + 1).collect();
    let beat = ck.encode(&data);
    let mut rx = beat.clone();
    rx[2] = 0xAA;
    rx[14] = 0x55;

    // Without location knowledge: DUE (beyond single-symbol correction).
    assert_eq!(ck.decode(&rx), SymbolOutcome::Due);

    // With the two chips identified (as catch-words provide): corrected.
    match ck.decode_with_erasures(&rx, &[2, 14]) {
        SymbolOutcome::Corrected { data: d, .. } => assert_eq!(d, data),
        other => panic!("{other:?}"),
    }
}

/// The two SECDED codes agree on every single-bit-error verdict, differing
/// only in multi-bit behavior (Table II).
#[test]
fn secded_codes_agree_on_secded_contract() {
    let h = Hamming7264::new();
    let c = Crc8Atm::new();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..200 {
        let d: u64 = rng.gen();
        // Round trip.
        assert_eq!(h.decode(h.encode(d)).data(), Some(d));
        assert_eq!(c.decode(c.encode(d)).data(), Some(d));
        // Single-bit: same corrected position.
        let bit = rng.gen_range(0..72);
        match (
            h.decode(h.encode(d).with_bit_flipped(bit)),
            c.decode(c.encode(d).with_bit_flipped(bit)),
        ) {
            (
                DecodeOutcome::Corrected { data: dh, bit: bh },
                DecodeOutcome::Corrected { data: dc, bit: bc },
            ) => {
                assert_eq!((dh, bh), (dc, bc));
                assert_eq!(dh, d);
            }
            other => panic!("disagreement: {other:?}"),
        }
    }
}

/// Dense random corruption (what a broken chip emits) escapes each code at
/// roughly its design rate: ~2^-8 for an 8-bit-syndrome code — the
/// "on-die miss" probability the reliability model uses (paper's 0.8%).
#[test]
fn dense_corruption_miss_rate_near_design_point() {
    let c = Crc8Atm::new();
    let mut rng = StdRng::seed_from_u64(3);
    let trials = 200_000;
    let mut missed = 0u32;
    for _ in 0..trials {
        let d: u64 = rng.gen();
        let w = c.encode(d);
        let garbled =
            xed::ecc::CodeWord72::new(w.data() ^ rng.gen::<u64>(), w.check() ^ rng.gen::<u8>());
        if garbled != w && c.is_valid(garbled) {
            missed += 1;
        }
    }
    let rate = missed as f64 / trials as f64;
    let design = 1.0 / 256.0;
    assert!(
        (rate - design).abs() / design < 0.15,
        "miss rate {rate} vs design {design}"
    );
}
