//! End-to-end integration tests: drive the full functional XED system
//! (chips with real on-die ECC + catch-words + RAID-3 controller +
//! diagnosis) through every fault scenario the paper analyzes, and check
//! the outcome matches the paper's claims.

use xed::core::fault::{FaultKind, InjectedFault};
use xed::core::{XedConfig, XedDimm, XedError};

fn patterned_line(seed: u64) -> [u64; 8] {
    let mut line = [0u64; 8];
    for (i, w) in line.iter_mut().enumerate() {
        *w = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(i as u32 * 8)
            ^ i as u64;
    }
    line
}

fn loaded_dimm(lines: u64) -> XedDimm {
    let mut dimm = XedDimm::new(XedConfig::default());
    for l in 0..lines {
        dimm.write_line(l, &patterned_line(l));
    }
    dimm
}

#[test]
fn survives_every_single_chip_fault_mode() {
    // Paper Sections V–VI: XED tolerates any single-chip fault mode.
    type FaultMaker = Box<dyn Fn(&XedDimm) -> InjectedFault>;
    let modes: Vec<(&str, FaultMaker)> = vec![
        (
            "bit",
            Box::new(|d: &XedDimm| InjectedFault::bit(d.line_addr(3), 11, FaultKind::Permanent)),
        ),
        (
            "word",
            Box::new(|d: &XedDimm| InjectedFault::word(d.line_addr(3), FaultKind::Permanent)),
        ),
        (
            "column",
            Box::new(|d: &XedDimm| {
                let a = d.line_addr(3);
                InjectedFault::column(a.bank, a.col, FaultKind::Permanent)
            }),
        ),
        (
            "row",
            Box::new(|d: &XedDimm| {
                let a = d.line_addr(3);
                InjectedFault::row(a.bank, a.row, FaultKind::Permanent)
            }),
        ),
        (
            "bank",
            Box::new(|d: &XedDimm| InjectedFault::bank(d.line_addr(3).bank, FaultKind::Permanent)),
        ),
        (
            "chip",
            Box::new(|_| InjectedFault::chip(FaultKind::Permanent)),
        ),
    ];
    for (name, make) in modes {
        for chip in [0usize, 4, 8] {
            let mut dimm = loaded_dimm(16);
            let fault = make(&dimm);
            dimm.inject_fault(chip, fault);
            for l in 0..16 {
                let out = dimm
                    .read_line(l)
                    .unwrap_or_else(|e| panic!("{name} fault in chip {chip}, line {l}: {e}"));
                assert_eq!(
                    out.data,
                    patterned_line(l),
                    "{name} fault in chip {chip}, line {l}"
                );
            }
        }
    }
}

#[test]
fn survives_transient_faults_and_heals() {
    let mut dimm = loaded_dimm(8);
    let addr = dimm.line_addr(2);
    dimm.inject_fault(
        5,
        InjectedFault::row(addr.bank, addr.row, FaultKind::Transient),
    );
    // First read of each line in the row corrects + scrubs.
    for l in 0..8 {
        assert_eq!(dimm.read_line(l).unwrap().data, patterned_line(l));
    }
    let recon_after_pass = dimm.stats().reconstructions;
    // Second pass: everything healed, no further reconstructions.
    for l in 0..8 {
        assert_eq!(dimm.read_line(l).unwrap().data, patterned_line(l));
    }
    assert_eq!(dimm.stats().reconstructions, recon_after_pass);
}

#[test]
fn double_chip_failure_is_detected_not_silent() {
    // The cardinal rule: never return wrong data silently.
    let mut dimm = loaded_dimm(4);
    dimm.inject_fault(1, InjectedFault::chip(FaultKind::Permanent));
    dimm.inject_fault(7, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..4 {
        match dimm.read_line(l) {
            Err(XedError::MultipleFaultyChips { .. })
            | Err(XedError::DetectedUncorrectable { .. }) => {}
            Ok(out) => panic!(
                "line {l} returned data {:x?} despite 2 dead chips",
                out.data
            ),
        }
    }
    assert!(dimm.stats().due_events >= 4);
}

#[test]
fn chip_failure_with_widespread_scaling_faults() {
    // Section VII-C at scale: scaling (bit) faults sprinkled across several
    // chips plus one hard row failure. Every line must still read back.
    let mut dimm = loaded_dimm(64);
    for (chip, line, bit) in [
        (0usize, 5u64, 3u32),
        (2, 9, 60),
        (3, 22, 17),
        (6, 40, 44),
        (8, 51, 8),
    ] {
        let addr = dimm.line_addr(line);
        dimm.inject_fault(chip, InjectedFault::bit(addr, bit, FaultKind::Permanent));
    }
    let a = dimm.line_addr(9);
    dimm.inject_fault(5, InjectedFault::row(a.bank, a.row, FaultKind::Permanent));
    for l in 0..64 {
        let out = dimm
            .read_line(l)
            .unwrap_or_else(|e| panic!("line {l}: {e}"));
        assert_eq!(out.data, patterned_line(l), "line {l}");
    }
}

#[test]
fn collision_storm_recovers() {
    // Write data equal to several chips' catch-words at once; every
    // collision is detected, re-keyed, and data stays correct.
    let mut dimm = XedDimm::new(XedConfig::default());
    let mut line = patterned_line(0);
    line[1] = dimm.controller().catch_word(1).value();
    line[5] = dimm.controller().catch_word(5).value();
    dimm.write_line(0, &line);
    // Two colliding chips at once → ≥2 apparent catch-words → serial mode
    // re-read returns the true (clean) data.
    let out = dimm.read_line(0).unwrap();
    assert_eq!(out.data, line);
    // Single collision path: new line colliding with one (possibly
    // re-keyed) catch-word.
    let mut line2 = patterned_line(1);
    line2[3] = dimm.controller().catch_word(3).value();
    dimm.write_line(1, &line2);
    let out2 = dimm.read_line(1).unwrap();
    assert_eq!(out2.data, line2);
    assert!(out2.collision);
    assert!(dimm.stats().catch_word_updates >= 1);
}

#[test]
fn hamming_on_die_code_is_supported_end_to_end() {
    use xed::core::chip::OnDieCode;
    let mut dimm = XedDimm::new(XedConfig {
        code: OnDieCode::Hamming,
        ..XedConfig::default()
    });
    for l in 0..8 {
        dimm.write_line(l, &patterned_line(l));
    }
    dimm.inject_fault(2, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..8 {
        assert_eq!(dimm.read_line(l).unwrap().data, patterned_line(l));
    }
}

#[test]
fn stats_are_coherent() {
    let mut dimm = loaded_dimm(32);
    dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..32 {
        let _ = dimm.read_line(l);
    }
    let s = dimm.stats();
    assert_eq!(s.reads, 32);
    assert_eq!(s.writes, 32);
    assert!(
        s.catch_words_observed >= 30,
        "nearly every read sees chip 3's catch-word"
    );
    assert!(s.reconstructions >= 30);
    assert_eq!(s.due_events, 0);
    assert!(s.scrub_writes >= s.reconstructions);
}
