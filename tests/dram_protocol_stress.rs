//! Protocol stress test: drive the memory controller with adversarial
//! random traffic and verify the DDR state machines never violate their
//! invariants (the `can_*`/`issue_*` contracts carry debug assertions; on
//! top of that we check externally visible properties).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed::memsim::addrmap::Topology;
use xed::memsim::scheduler::{MemController, SchedConfig};
use xed::memsim::timing::DdrTiming;

fn stress(topology: Topology, timing: DdrTiming, seed: u64, requests: u64) {
    let mut mc = MemController::new(topology, timing, SchedConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 1u64;
    let mut issued_reads = 0u64;
    let mut completed: Vec<u64> = Vec::new();
    let mut now = 0u64;
    let lines = topology.lines();

    while issued_reads < requests || mc.pending() > 0 {
        // Bursty arrivals: sometimes slam many requests at once.
        let arrivals = match rng.gen_range(0..10) {
            0..=5 => 0,
            6..=8 => rng.gen_range(1..4),
            _ => rng.gen_range(4..16),
        };
        for _ in 0..arrivals {
            if issued_reads >= requests {
                break;
            }
            // Adversarial locality: hammer a few rows to force conflicts.
            let addr = if rng.gen_bool(0.5) {
                rng.gen_range(0..lines.min(4096))
            } else {
                rng.gen_range(0..lines)
            };
            let ok = if rng.gen_bool(0.3) {
                mc.enqueue_write(next_id, addr, now)
            } else {
                let ok = mc.enqueue_read(next_id, addr, now);
                if ok {
                    issued_reads += 1;
                }
                ok
            };
            if ok {
                next_id += 1;
            }
        }
        for id in mc.tick(now) {
            completed.push(id);
        }
        now += 1;
        assert!(
            now < 40_000_000,
            "controller wedged at {} pending",
            mc.pending()
        );
    }

    // Every read completed exactly once.
    assert_eq!(completed.len() as u64, mc.stats.reads_done);
    let mut sorted = completed.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), completed.len(), "duplicate completions");

    // Aggregate invariants: column accesses require activates; the data
    // bus can't have carried more cycles than elapsed.
    let mut acts = 0u64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut refreshes = 0u64;
    let mut bus = 0u64;
    for ch in 0..topology.channels {
        bus += mc.dram().channel(ch).data_bus_busy_cycles;
        for r in 0..topology.ranks {
            let s = mc.dram().channel(ch).rank(r).stats;
            acts += s.acts;
            reads += s.reads;
            writes += s.writes;
            refreshes += s.refreshes;
        }
    }
    assert_eq!(reads, mc.stats.reads_done);
    assert_eq!(writes, mc.stats.writes_done);
    assert!(acts >= 1, "some activates must have happened");
    // Open-page: at most one ACT per column access, plus re-activations
    // after refreshes close banks and after row-conflict precharges (the
    // conflict pressure is bounded by the column accesses themselves, so
    // 2x is a hard ceiling).
    let banks_total = (topology.channels * topology.ranks * topology.banks) as u64;
    assert!(
        acts <= 2 * (reads + writes) + refreshes * banks_total,
        "activate storm: {acts} acts for {} accesses, {refreshes} refreshes",
        reads + writes
    );
    assert!(
        bus <= now * topology.channels as u64,
        "data bus over-committed: {bus} busy cycles in {now}"
    );
    // Every read's data took at least CL + BL cycles after enqueue.
    assert!(
        mc.stats.total_read_latency >= mc.stats.reads_done * timing.read_latency(),
        "impossible read latencies"
    );
}

#[test]
fn stress_baseline_topology_ddr3() {
    stress(Topology::baseline(), DdrTiming::ddr3_1600(), 1, 4_000);
}

#[test]
fn stress_single_rank_ddr3() {
    let t = Topology {
        ranks: 1,
        ..Topology::baseline()
    };
    stress(t, DdrTiming::ddr3_1600(), 2, 4_000);
}

#[test]
fn stress_two_channel_ddr3() {
    let t = Topology {
        channels: 2,
        ..Topology::baseline()
    };
    stress(t, DdrTiming::ddr3_1600(), 3, 4_000);
}

#[test]
fn stress_ddr4_timing() {
    stress(Topology::baseline(), DdrTiming::ddr4_2400(), 4, 4_000);
}

#[test]
fn stress_extended_burst() {
    stress(
        Topology::baseline(),
        DdrTiming::ddr3_1600().with_extra_burst(4),
        5,
        3_000,
    );
}

#[test]
fn stress_tiny_topology_heavy_conflicts() {
    // One channel, one rank, two banks, few rows: maximal contention.
    let t = Topology {
        channels: 1,
        ranks: 1,
        banks: 2,
        rows: 8,
        cols: 16,
    };
    stress(t, DdrTiming::ddr3_1600(), 6, 3_000);
}
