//! Exhaustive miscorrection oracle on the (8,4) geometry (DESIGN.md
//! §17.3).
//!
//! The fast profiler (`xed_ecc::infer::profile`) claims to classify
//! every 2-bit corruption by pure column algebra. This test is the
//! independent check: enumerate every one of the C(8,2) = 28 doubles on
//! every one of the 16 data words *by actually corrupting stored words
//! and decoding them*, tally the outcomes with our own bookkeeping (no
//! call into the profiler's brute-force path), and require the census
//! to match count-for-count — including the HARP-style at-risk ranking.

use xed_ecc::infer::{profile, profile_brute_force, SynOutcome, SyndromeCode};

/// Our own enumeration of every double on one data word: returns
/// (detected, miscorrected_check, miscorrected_data, silent,
/// spurious-flip counts per position).
fn enumerate_doubles(code: &SyndromeCode, data: u64) -> (u64, u64, u64, u64, Vec<u64>) {
    let n = code.len_bits();
    let k = code.data_bits();
    let check = code.encode_check(data);
    let (mut det, mut mis_check, mut mis_data, mut silent) = (0u64, 0u64, 0u64, 0u64);
    let mut spurious = vec![0u64; n as usize];
    for a in 0..n {
        for b in (a + 1)..n {
            let mut d = data;
            let mut c = check;
            for p in [a, b] {
                if p < k {
                    d ^= 1u64 << p;
                } else {
                    c ^= 1u32 << (p - k);
                }
            }
            match code.decode(d, c) {
                SynOutcome::Clean => silent += 1,
                SynOutcome::Detected => det += 1,
                SynOutcome::CorrectedCheck { bit } => {
                    mis_check += 1;
                    spurious[(k + bit) as usize] += 1;
                }
                SynOutcome::CorrectedData { bit } => {
                    mis_data += 1;
                    spurious[bit as usize] += 1;
                }
            }
        }
    }
    (det, mis_check, mis_data, silent, spurious)
}

/// Compares the fast profile with our enumeration on one word.
fn assert_census_matches(code: &SyndromeCode, data: u64) {
    let fast = profile(code);
    let (det, mis_check, mis_data, silent, spurious) = enumerate_doubles(code, data);
    assert_eq!(fast.detected, det, "detected, word {data:#x}");
    assert_eq!(fast.miscorrected_check, mis_check, "check miscorrections");
    assert_eq!(fast.miscorrected_data, mis_data, "data miscorrections");
    assert_eq!(fast.silent, silent, "silent doubles");
    assert_eq!(
        fast.doubles,
        det + mis_check + mis_data + silent,
        "census partitions the doubles"
    );
    // The at-risk ranking must agree spurious-flip-for-spurious-flip.
    for risk in &fast.at_risk {
        assert_eq!(
            risk.spurious_flips, spurious[risk.position as usize],
            "at-risk count for position {}",
            risk.position
        );
    }
    let ranked: u64 = fast.at_risk.iter().map(|r| r.spurious_flips).sum();
    assert_eq!(
        ranked,
        spurious.iter().sum::<u64>(),
        "every spurious flip is ranked"
    );
}

#[test]
fn secded_8_4_detects_every_double_on_every_word() {
    let code = SyndromeCode::secded8_4();
    for data in 0..16u64 {
        let (det, mis_check, mis_data, silent, _) = enumerate_doubles(&code, data);
        assert_eq!(mis_check + mis_data + silent, 0, "word {data:#x}");
        assert_eq!(det, 28, "C(8,2) doubles, word {data:#x}");
        assert_census_matches(&code, data);
    }
    assert!(profile(&code).is_clean());
}

#[test]
fn sec_8_4_census_matches_the_exhaustive_oracle_on_every_word() {
    let code = SyndromeCode::sec8_4();
    for data in 0..16u64 {
        assert_census_matches(&code, data);
    }
    // The SEC view actually exercises the 3-bit-delivery path.
    let fast = profile(&code);
    assert!(fast.miscorrected_data > 0, "{fast:?}");
    assert!(!fast.at_risk.is_empty());
}

#[test]
fn the_census_is_data_independent() {
    // The profiler's core claim: syndromes of 2-bit errors do not
    // depend on the stored word, so one profile describes all words.
    for code in [SyndromeCode::secded8_4(), SyndromeCode::sec8_4()] {
        let reference = profile_brute_force(&code, 0);
        for data in 1..16u64 {
            assert_eq!(profile_brute_force(&code, data), reference);
        }
        assert_eq!(profile(&code), reference);
    }
}
