//! Tier-1 guarantee: Monte-Carlo results are a pure function of
//! `(seed, scheme, samples)` — the worker-thread count must never change a
//! single counter of a [`SchemeResult`] (DESIGN.md §9).
//!
//! The engine keys every trial's randomness by `(seed, scheme, trial)`
//! and merges only commutative `u64` accumulators, so 1, 3 and 8 workers
//! stealing chunks in arbitrary interleavings must produce bit-identical
//! output. This test pins that contract from outside the crate.

use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig, SchemeResult};
use xed_faultsim::schemes::Scheme;

fn run(scheme: Scheme, threads: usize, samples: u64, seed: u64) -> SchemeResult {
    MonteCarlo::new(MonteCarloConfig {
        samples,
        seed,
        threads,
        ..MonteCarloConfig::default()
    })
    .run(scheme)
}

#[test]
fn scheme_results_identical_at_1_3_and_8_threads() {
    for scheme in [Scheme::EccDimm, Scheme::Xed, Scheme::ChipkillX4] {
        let solo = run(scheme, 1, 60_000, 2016);
        assert!(solo.samples == 60_000);
        for threads in [3usize, 8] {
            let multi = run(scheme, threads, 60_000, 2016);
            assert_eq!(solo, multi, "{scheme}: 1 vs {threads} threads");
        }
    }
}

#[test]
fn batched_run_all_identical_to_solo_runs_across_thread_counts() {
    // The work-stealing pool spans all schemes of a run_all invocation;
    // neither batching nor thread count may leak into the results.
    let schemes = [Scheme::EccDimm, Scheme::Xed];
    let reference: Vec<SchemeResult> = schemes.iter().map(|&s| run(s, 1, 40_000, 7)).collect();
    for threads in [3usize, 8] {
        let batched = MonteCarlo::new(MonteCarloConfig {
            samples: 40_000,
            seed: 7,
            threads,
            ..MonteCarloConfig::default()
        })
        .run_all(&schemes);
        assert_eq!(batched, reference, "run_all at {threads} threads");
    }
}
