//! Cross-checks between the Monte-Carlo reliability simulator, the
//! closed-form analytic model, and the paper's qualitative claims.

use xed::faultsim::analytic;
use xed::faultsim::fit::FitRates;
use xed::faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed::faultsim::scaling::ScalingFaults;
use xed::faultsim::schemes::{ModelParams, Scheme};
use xed::faultsim::system::SystemConfig;
use xed::testkit::seeds;

fn mc(samples: u64) -> MonteCarlo {
    MonteCarlo::new(MonteCarloConfig {
        samples,
        seed: seeds::RELIABILITY_CONSISTENCY,
        ..Default::default()
    })
}

#[test]
fn paper_ordering_holds() {
    // Figure 1 + Figure 7: NonECC ≈ EccDimm ≫ Chipkill ≥ Xed.
    let m = mc(300_000);
    let non_ecc = m.run(Scheme::NonEcc).failure_probability(7.0);
    let ecc = m.run(Scheme::EccDimm).failure_probability(7.0);
    let ck = m.run(Scheme::Chipkill).failure_probability(7.0);
    let xed = m.run(Scheme::Xed).failure_probability(7.0);
    assert!(
        ecc / non_ecc < 1.3 && non_ecc / ecc < 1.3,
        "ECC-DIMM ≈ Non-ECC: {ecc} vs {non_ecc}"
    );
    assert!(ck < ecc / 20.0, "chipkill must be ≫ better: {ck} vs {ecc}");
    assert!(xed <= ck, "xed at least as good as chipkill: {xed} vs {ck}");
}

#[test]
fn x4_ordering_holds() {
    // Figure 9: XED+CK ≤ Double-CK < Single-CK.
    let m = mc(2_000_000);
    let single = m.run(Scheme::ChipkillX4).failure_probability(7.0);
    let double = m.run(Scheme::DoubleChipkill).failure_probability(7.0);
    let xed_ck = m.run(Scheme::XedChipkill).failure_probability(7.0);
    assert!(double < single / 5.0, "double {double} vs single {single}");
    assert!(xed_ck <= double, "xed+ck {xed_ck} vs double {double}");
}

#[test]
fn monte_carlo_matches_analytic_single_fault_model() {
    // ECC-DIMM fails on any large fault; the analytic closed form must
    // agree with the Monte-Carlo within a few percent.
    let m = mc(400_000);
    let simulated = m.run(Scheme::EccDimm).failure_probability(7.0);
    let analytic = analytic::p_fail_single_fault(&FitRates::table_i(), 72, 7.0);
    let rel = (simulated - analytic).abs() / analytic;
    assert!(
        rel < 0.05,
        "simulated {simulated} vs analytic {analytic} (rel {rel})"
    );
}

#[test]
fn monte_carlo_matches_analytic_double_fault_model() {
    // XED fails (mostly) on intersecting chip pairs; analytic and MC agree
    // within Monte-Carlo noise and the model's first-order error.
    let m = mc(4_000_000);
    let simulated = m.run(Scheme::Xed).failure_probability(7.0);
    let cfg = SystemConfig::x8_ecc_dimm();
    let analytic = analytic::p_fail_double_fault(&FitRates::table_i(), &cfg, 9, 8, 7.0);
    assert!(simulated > 0.0);
    let ratio = simulated / analytic;
    assert!(
        (0.5..2.0).contains(&ratio),
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn scaling_faults_do_not_change_the_ordering() {
    // Figure 8: with scaling at 1e-4 the story is intact.
    let params = ModelParams {
        scaling: ScalingFaults::paper_default(),
        ..Default::default()
    };
    let m = MonteCarlo::new(MonteCarloConfig {
        samples: 300_000,
        seed: seeds::SCALING_ORDERING,
        params,
        ..Default::default()
    });
    let ecc = m.run(Scheme::EccDimm).failure_probability(7.0);
    let xed = m.run(Scheme::Xed).failure_probability(7.0);
    let ck = m.run(Scheme::Chipkill).failure_probability(7.0);
    assert!(xed < ecc / 20.0);
    assert!(ck < ecc / 20.0);
}

#[test]
fn without_on_die_ecc_non_ecc_dimm_collapses() {
    // The whole premise: on-die ECC absorbs the (dominant-rate) bit
    // faults. Without it, a non-ECC DIMM fails on every bit fault too.
    let with = mc(200_000).run(Scheme::NonEcc).failure_probability(7.0);
    let params = ModelParams {
        on_die_ecc: false,
        ..Default::default()
    };
    let m = MonteCarlo::new(MonteCarloConfig {
        samples: 200_000,
        seed: seeds::RELIABILITY_CONSISTENCY,
        params,
        ..Default::default()
    });
    let without = m.run(Scheme::NonEcc).failure_probability(7.0);
    assert!(
        without > with * 1.5,
        "without on-die {without} vs with {with}"
    );
}

#[test]
fn higher_on_die_miss_rate_hurts_xed() {
    let base = mc(3_000_000).run(Scheme::Xed);
    let params = ModelParams {
        on_die_miss: 0.5,
        ..Default::default()
    };
    let m = MonteCarlo::new(MonteCarloConfig {
        samples: 3_000_000,
        seed: seeds::RELIABILITY_CONSISTENCY,
        params,
        ..Default::default()
    });
    let worse = m.run(Scheme::Xed);
    assert!(
        worse.failure_probability(7.0) > base.failure_probability(7.0),
        "0.8% -> 50% miss rate must hurt: {} vs {}",
        worse.failure_probability(7.0),
        base.failure_probability(7.0)
    );
}

#[test]
fn failure_curves_are_monotone_nondecreasing() {
    for scheme in Scheme::ALL {
        let r = mc(100_000).run(scheme);
        let curve = r.curve();
        assert!(
            curve.windows(2).all(|w| w[0] <= w[1]),
            "{scheme}: {curve:?}"
        );
    }
}

#[test]
fn table_iv_budget_matches_paper_magnitudes() {
    let cfg = SystemConfig::x8_ecc_dimm();
    let v = analytic::xed_vulnerability(&FitRates::table_i(), &cfg, 9, 0.008, 7.0);
    assert!(
        (5e-6..8e-6).contains(&v.due_word_fault),
        "{}",
        v.due_word_fault
    );
    assert!(v.sdc_diagnosis < 1e-12);
    assert!(
        (1e-4..1.5e-3).contains(&v.multi_chip_loss),
        "{}",
        v.multi_chip_loss
    );
}
