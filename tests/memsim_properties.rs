//! Integration-level invariants of the cycle-level memory simulator.

use xed::memsim::overlay::ReliabilityScheme;
use xed::memsim::sim::{SimConfig, SimResult, Simulation};
use xed::memsim::workloads::Workload;

fn run(workload: &str, scheme: ReliabilityScheme, instrs: u64) -> SimResult {
    Simulation::new(SimConfig {
        workload: Workload::by_name(workload).unwrap(),
        scheme,
        instructions_per_core: instrs,
        ..Default::default()
    })
    .run()
}

#[test]
fn exec_time_scales_with_instruction_count() {
    let short = run("comm3", ReliabilityScheme::baseline_secded(), 20_000);
    let long = run("comm3", ReliabilityScheme::baseline_secded(), 80_000);
    let ratio = long.cycles as f64 / short.cycles as f64;
    assert!(
        (2.5..6.0).contains(&ratio),
        "4x instructions -> ~4x cycles, got {ratio}"
    );
}

#[test]
fn bus_utilization_is_a_fraction() {
    for name in ["libquantum", "mcf", "dealII"] {
        let r = run(name, ReliabilityScheme::baseline_secded(), 40_000);
        assert!(
            r.bus_utilization > 0.0 && r.bus_utilization <= 1.0,
            "{name}: {}",
            r.bus_utilization
        );
    }
}

#[test]
fn streaming_workload_has_higher_row_hit_rate() {
    let streaming = run("libquantum", ReliabilityScheme::baseline_secded(), 40_000);
    let random = run("mcf", ReliabilityScheme::baseline_secded(), 40_000);
    assert!(
        streaming.row_hit_rate > random.row_hit_rate + 0.2,
        "libquantum {} vs mcf {}",
        streaming.row_hit_rate,
        random.row_hit_rate
    );
}

#[test]
fn memory_bound_workload_slower_than_compute_bound() {
    // Per instruction, mcf (48 MPKI) must take far longer than dealII
    // (2.1 MPKI) on identical hardware.
    let mcf = run("mcf", ReliabilityScheme::baseline_secded(), 40_000);
    let deal = run("dealII", ReliabilityScheme::baseline_secded(), 40_000);
    assert!(
        mcf.cycles > deal.cycles * 3,
        "mcf {} vs dealII {}",
        mcf.cycles,
        deal.cycles
    );
}

#[test]
fn figure11_scheme_ordering() {
    // baseline ≈ XED ≤ XED+CK ≤ CK < DCK on a bandwidth-bound benchmark.
    let base = run("lbm", ReliabilityScheme::baseline_secded(), 40_000);
    let xed = run("lbm", ReliabilityScheme::xed(), 40_000);
    let xed_ck = run("lbm", ReliabilityScheme::xed_chipkill(), 40_000);
    let ck = run("lbm", ReliabilityScheme::chipkill(), 40_000);
    let dck = run("lbm", ReliabilityScheme::double_chipkill(), 40_000);
    let r = |x: &SimResult| x.cycles as f64 / base.cycles as f64;
    assert!(r(&xed) < 1.02, "xed {}", r(&xed));
    assert!(
        r(&xed_ck) >= 1.0 && r(&xed_ck) < r(&ck),
        "xed_ck {} ck {}",
        r(&xed_ck),
        r(&ck)
    );
    assert!(r(&ck) > 1.1, "chipkill {}", r(&ck));
    assert!(r(&dck) > r(&ck), "dck {} ck {}", r(&dck), r(&ck));
}

#[test]
fn overfetch_shows_up_in_bus_utilization() {
    let base = run("libquantum", ReliabilityScheme::baseline_secded(), 40_000);
    let ck = run("libquantum", ReliabilityScheme::chipkill(), 40_000);
    // Chipkill moves twice the data per access; even with fewer channels'
    // worth of parallelism the bus must be busier.
    assert!(
        ck.bus_utilization > base.bus_utilization,
        "{} vs {}",
        ck.bus_utilization,
        base.bus_utilization
    );
}

#[test]
fn power_breakdown_components_positive_and_sum() {
    let r = run("comm1", ReliabilityScheme::xed(), 40_000);
    let p = r.power;
    assert!(p.background_mw > 0.0);
    assert!(p.activate_mw > 0.0);
    assert!(p.rw_mw > 0.0);
    assert!(p.refresh_mw > 0.0);
    let sum = p.background_mw + p.activate_mw + p.rw_mw + p.refresh_mw;
    assert!((sum - p.total_mw()).abs() < 1e-9);
}

#[test]
fn double_chipkill_burns_more_activate_power_than_chipkill_x4() {
    let xed_ck = run("comm1", ReliabilityScheme::xed_chipkill(), 40_000);
    let dck = run("comm1", ReliabilityScheme::double_chipkill(), 40_000);
    // 36 activated chips vs 18: more activate energy per unit work even
    // after the time stretch.
    assert!(
        dck.power.activate_mw * dck.cycles as f64 > xed_ck.power.activate_mw * xed_ck.cycles as f64,
        "activate energy: dck {} vs xed+ck {}",
        dck.power.activate_mw * dck.cycles as f64,
        xed_ck.power.activate_mw * xed_ck.cycles as f64
    );
}

#[test]
fn reads_match_demand_plus_overlay() {
    let base = run("sphinx", ReliabilityScheme::baseline_secded(), 40_000);
    let extra = run(
        "sphinx",
        ReliabilityScheme::chipkill_extra_transaction(),
        40_000,
    );
    // Extra-transaction mode roughly doubles DRAM reads.
    let ratio = extra.reads as f64 / base.reads as f64;
    assert!((1.7..2.3).contains(&ratio), "read amplification {ratio}");
}

#[test]
fn deterministic_across_runs() {
    let a = run("ferret", ReliabilityScheme::xed(), 30_000);
    let b = run("ferret", ReliabilityScheme::xed(), 30_000);
    assert_eq!(a, b);
}
