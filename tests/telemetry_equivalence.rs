//! Telemetry/legacy equivalence: the global registry counters must match
//! the public stats structs bit-for-bit for every instrumented system
//! (DESIGN.md §11), and disabling telemetry must leave the legacy stats
//! untouched while the registry stays silent.
//!
//! The registry is process-global, so every test serializes through one
//! mutex and resets the catalogue before driving its workload.

use std::sync::{Mutex, MutexGuard, OnceLock};

use xed_core::alert::{AlertDimm, AlertMode};
use xed_core::chip::{ChipGeometry, OnDieCode};
use xed_core::controller::XedController;
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::secded_dimm::SecdedDimm;
use xed_core::xed_chipkill::XedChipkillSystem;
use xed_memsim::eccpath::EccDatapath;
use xed_telemetry::registry;

/// Serializes registry access across the test threads and hands back a
/// freshly reset catalogue.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    xed_telemetry::set_enabled(true);
    registry::reset_all();
    guard
}

fn counter(id: &str) -> u64 {
    xed_telemetry::snapshot()
        .counter(id)
        .unwrap_or_else(|| panic!("metric {id} missing from the registry"))
}

/// Drives a XedController through reconstruction, collision, serial-mode
/// and diagnosis episodes (the same deterministic shape `xedstat` uses).
fn drive_xed(c: &mut XedController, lines: u64) {
    let geometry = c.geometry();
    let data = [11u64, 22, 33, 44, 55, 66, 77, 88];
    for l in 0..lines {
        c.write_line(geometry.addr(l), &data);
    }
    let a = geometry.addr(1);
    c.inject_fault(2, InjectedFault::word(a, FaultKind::Transient));
    let _ = c.read_line(a);
    let _ = c.read_line(a);
    let cw = c.catch_word(4).value();
    let mut line = data;
    line[4] = cw;
    let a = geometry.addr(2);
    c.write_line(a, &line);
    let _ = c.read_line(a);
    c.write_line(a, &data);
    let row_addr = geometry.addr(lines / 2);
    c.inject_fault(
        5,
        InjectedFault::row(row_addr.bank, row_addr.row, FaultKind::Permanent),
    );
    for l in 0..lines {
        let _ = c.read_line(geometry.addr(l));
    }
}

#[test]
fn xed_controller_matches_registry() {
    let _guard = registry_lock();
    let mut c = XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, 2016, 8, 10);
    drive_xed(&mut c, 64);
    let s = c.stats();
    assert!(
        s.reconstructions > 0 && s.collisions > 0,
        "workload too tame"
    );
    assert_eq!(counter("core.xed.reads"), s.reads);
    assert_eq!(counter("core.xed.writes"), s.writes);
    assert_eq!(counter("core.xed.catch_words"), s.catch_words_observed);
    assert_eq!(counter("core.xed.reconstructions"), s.reconstructions);
    assert_eq!(counter("core.xed.serial_modes"), s.serial_modes);
    assert_eq!(counter("core.xed.catchword_collisions"), s.collisions);
    assert_eq!(
        counter("core.xed.diagnosis_runs"),
        s.inter_line_runs + s.intra_line_runs
    );
    assert_eq!(counter("core.xed.due"), s.due_events);
    assert_eq!(counter("core.xed.scrub_writes"), s.scrub_writes);
}

#[test]
fn secded_dimm_matches_registry() {
    let _guard = registry_lock();
    let mut dimm = SecdedDimm::new(ChipGeometry::small());
    let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
    for l in 0..48 {
        dimm.write_line(l, &data);
    }
    dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..48 {
        let _ = dimm.read_line(l);
    }
    let s = dimm.stats();
    assert!(s.corrections + s.due_events > 0, "fault never surfaced");
    assert_eq!(counter("core.secded.reads"), s.reads);
    assert_eq!(counter("core.secded.corrections"), s.corrections);
    assert_eq!(counter("core.secded.due"), s.due_events);
}

#[test]
fn chipkill_system_matches_registry() {
    let _guard = registry_lock();
    let mut sys = XedChipkillSystem::new(2016);
    let data = [0xAB00_0001u32; 16];
    for l in 0..32 {
        sys.write_line(l, &data);
    }
    sys.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    sys.inject_fault(11, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..32 {
        let _ = sys.read_line(l);
    }
    let s = sys.stats();
    assert!(s.reconstructions > 0, "no erasure decodes happened");
    assert_eq!(counter("core.xed.reads"), s.reads);
    assert_eq!(counter("core.xed.writes"), s.writes);
    assert_eq!(counter("core.xed.catch_words"), s.catch_words_observed);
    assert_eq!(counter("core.xed.reconstructions"), s.reconstructions);
    assert_eq!(counter("core.xed.due"), s.due_events);
    assert_eq!(counter("core.xed.scrub_writes"), s.scrub_writes);
    // Two dead chips ⇒ every decoded plane repairs two erasure symbols.
    assert!(counter("ecc.rs.erasures") > 0);
}

#[test]
fn alert_dimm_matches_registry() {
    let _guard = registry_lock();
    for mode in [AlertMode::Anonymous, AlertMode::Identified] {
        registry::reset_all();
        let mut dimm = AlertDimm::new(ChipGeometry::small(), OnDieCode::Crc8Atm, mode);
        let data = [9u64, 8, 7, 6, 5, 4, 3, 2];
        for l in 0..32 {
            dimm.write_line(l, &data);
        }
        dimm.inject_fault(2, InjectedFault::chip(FaultKind::Permanent));
        for l in 0..32 {
            let _ = dimm.read_line(l);
        }
        let s = dimm.stats();
        assert!(s.alerts > 0, "{mode:?}: fault never alerted");
        assert_eq!(counter("core.alert.reads"), s.reads, "{mode:?}");
        assert_eq!(counter("core.alert.alerts"), s.alerts, "{mode:?}");
        assert_eq!(
            counter("core.alert.reconstructions"),
            s.reconstructions,
            "{mode:?}"
        );
        assert_eq!(counter("core.alert.diagnoses"), s.diagnoses, "{mode:?}");
        assert_eq!(counter("core.alert.due"), s.due_events, "{mode:?}");
    }
}

#[test]
fn eccpath_publish_matches_stats() {
    let _guard = registry_lock();
    let mut path = EccDatapath::new();
    for addr in 0..20_000u64 {
        let _ = path.read_line(addr);
    }
    let s = path.stats();
    assert_eq!(s.lines_decoded, 20_000);
    assert!(s.beats_corrected > 0, "error injection never fired");
    // Nothing reaches the registry until the merge-point publish.
    assert_eq!(counter("memsim.eccpath.lines_decoded"), 0);
    path.publish();
    assert_eq!(counter("memsim.eccpath.lines_decoded"), s.lines_decoded);
    assert_eq!(counter("memsim.eccpath.beats_corrected"), s.beats_corrected);
    assert_eq!(counter("memsim.eccpath.due_lines"), s.due_lines);
    assert_eq!(counter("ecc.lines_decoded"), s.lines_decoded);
    assert_eq!(counter("ecc.corrections"), s.beats_corrected);
    assert_eq!(counter("ecc.due_words"), s.due_lines);
    // Publishing twice accumulates — merge points must run exactly once.
    path.publish();
    assert_eq!(counter("ecc.lines_decoded"), 2 * s.lines_decoded);
}

#[test]
fn disabling_telemetry_keeps_legacy_stats_and_silences_registry() {
    let _guard = registry_lock();
    xed_telemetry::set_enabled(false);
    let mut c = XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, 2016, 8, 10);
    drive_xed(&mut c, 64);
    let disabled_stats = c.stats();
    assert_eq!(counter("core.xed.reads"), 0, "gated site leaked a tick");
    assert_eq!(counter("core.xed.reconstructions"), 0);
    assert!(c.events().is_empty(), "ring recorded while disabled");
    xed_telemetry::set_enabled(true);

    // The same workload with telemetry on yields the same legacy stats:
    // instrumentation is observation, never behavior.
    let mut c2 = XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, 2016, 8, 10);
    drive_xed(&mut c2, 64);
    assert_eq!(c2.stats(), disabled_stats);
    assert_eq!(counter("core.xed.reads"), disabled_stats.reads);
}
