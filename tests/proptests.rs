//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use xed::ecc::chipkill::Chipkill;
use xed::ecc::gf::Field;
use xed::ecc::rs::ReedSolomon;
use xed::ecc::secded::{DecodeOutcome, SecDed};
use xed::ecc::{parity, CodeWord72, Crc8Atm, Hamming7264};
use xed::faultsim::fault::{FaultExtent, FaultRange};
use xed::faultsim::geometry::DramGeometry;

proptest! {
    // ---- SECDED codes ------------------------------------------------

    #[test]
    fn crc8_roundtrip(data: u64) {
        let code = Crc8Atm::new();
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean { data });
    }

    #[test]
    fn hamming_roundtrip(data: u64) {
        let code = Hamming7264::new();
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean { data });
    }

    #[test]
    fn crc8_corrects_any_single_flip(data: u64, bit in 0u32..72) {
        let code = Crc8Atm::new();
        let rx = code.encode(data).with_bit_flipped(bit);
        prop_assert_eq!(code.decode(rx), DecodeOutcome::Corrected { data, bit });
    }

    #[test]
    fn hamming_never_miscorrects_double_flips(data: u64, a in 0u32..72, b in 0u32..72) {
        prop_assume!(a != b);
        let code = Hamming7264::new();
        let rx = code.encode(data).with_bit_flipped(a).with_bit_flipped(b);
        prop_assert_eq!(code.decode(rx), DecodeOutcome::Detected);
    }

    #[test]
    fn crc8_is_linear_in_data(a: u64, b: u64) {
        let code = Crc8Atm::new();
        prop_assert_eq!(code.crc8(a ^ b), code.crc8(a) ^ code.crc8(b));
    }

    #[test]
    fn codeword_flip_involution(data: u64, check: u8, bit in 0u32..72) {
        let w = CodeWord72::new(data, check);
        prop_assert_eq!(w.with_bit_flipped(bit).with_bit_flipped(bit), w);
        prop_assert_eq!(w.with_bit_flipped(bit).weight(), if w.bit(bit) == 1 { w.weight() - 1 } else { w.weight() + 1 });
    }

    // ---- RAID-3 parity ------------------------------------------------

    #[test]
    fn parity_reconstructs_any_erasure(words: [u64; 8], erased in 0usize..8, garbage: u64) {
        let p = parity::compute(&words);
        let mut rx = words;
        rx[erased] = garbage;
        prop_assert_eq!(parity::reconstruct(&rx, p, erased), words[erased]);
    }

    #[test]
    fn parity_update_equals_recompute(words: [u64; 8], idx in 0usize..8, new_word: u64) {
        let p = parity::compute(&words);
        let updated = parity::update(p, words[idx], new_word);
        let mut w2 = words;
        w2[idx] = new_word;
        prop_assert_eq!(updated, parity::compute(&w2));
    }

    // ---- GF(256) ------------------------------------------------------

    #[test]
    fn gf256_mul_commutes_and_distributes(a: u8, b: u8, c: u8) {
        let f = Field::gf256();
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
    }

    #[test]
    fn gf256_inverse(a in 1u8..=255) {
        let f = Field::gf256();
        prop_assert_eq!(f.mul(a, f.inv(a)), 1);
    }

    // ---- Reed-Solomon ---------------------------------------------------

    #[test]
    fn rs_corrects_single_symbol(data: [u8; 16], pos in 0usize..18, err in 1u8..=255) {
        let rs = ReedSolomon::new(Field::gf256(), 18, 16);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        rx[pos] ^= err;
        let out = rs.decode(&rx, &[]).unwrap();
        prop_assert_eq!(out.codeword, cw);
    }

    #[test]
    fn rs_erasure_pair(data: [u8; 16], a in 0usize..18, b in 0usize..18, ga: u8, gb: u8) {
        prop_assume!(a != b);
        let rs = ReedSolomon::new(Field::gf256(), 18, 16);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        rx[a] = ga;
        rx[b] = gb;
        let out = rs.decode(&rx, &[a, b]).unwrap();
        prop_assert_eq!(out.codeword, cw);
    }

    #[test]
    fn chipkill_never_returns_wrong_data_for_single_error(
        data: [u8; 16], pos in 0usize..18, err in 1u8..=255
    ) {
        let ck = Chipkill::new();
        let beat = ck.encode(&data);
        let mut rx = beat;
        rx[pos] ^= err;
        match ck.decode(&rx) {
            xed::ecc::chipkill::SymbolOutcome::Corrected { data: d, .. } => {
                prop_assert_eq!(d, data.to_vec());
            }
            xed::ecc::chipkill::SymbolOutcome::Clean(_) => prop_assert!(false, "corruption unseen"),
            xed::ecc::chipkill::SymbolOutcome::Due => prop_assert!(false, "single error is correctable"),
        }
    }

    // ---- Fault ranges ---------------------------------------------------

    #[test]
    fn fault_range_intersection_symmetric(seed_a: u64, seed_b: u64) {
        use rand::{SeedableRng, Rng};
        let geom = DramGeometry::x8_2gb();
        let mut ra = rand::rngs::StdRng::seed_from_u64(seed_a);
        let mut rb = rand::rngs::StdRng::seed_from_u64(seed_b);
        let ea = FaultExtent::ALL[ra.gen_range(0..6)];
        let eb = FaultExtent::ALL[rb.gen_range(0..6)];
        let a = FaultRange::sample(&mut ra, ea, &geom);
        let b = FaultRange::sample(&mut rb, eb, &geom);
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert!(a.overlaps(&a));
        // Intersection is "smaller": anything overlapping the intersection
        // overlaps both.
        if let Some(x) = a.intersect(&b) {
            prop_assert!(x.overlaps(&a) && x.overlaps(&b));
        }
    }

    // ---- Functional XED system -----------------------------------------

    #[test]
    fn xed_roundtrips_arbitrary_lines(lines in proptest::collection::vec(any::<[u64; 8]>(), 1..8)) {
        use xed::core::{XedConfig, XedDimm};
        let mut dimm = XedDimm::new(XedConfig::default());
        for (i, line) in lines.iter().enumerate() {
            dimm.write_line(i as u64, line);
        }
        for (i, line) in lines.iter().enumerate() {
            let out = dimm.read_line(i as u64).unwrap();
            prop_assert_eq!(&out.data, line);
        }
    }

    // ---- (40,32) x4 SECDED ----------------------------------------------

    #[test]
    fn crc8_32_roundtrip_and_single_bit(data: u32, bit in 0u32..40) {
        use xed::ecc::secded32::{Crc8Atm32, Decode32};
        let code = Crc8Atm32::new();
        let w = code.encode(data);
        prop_assert_eq!(code.decode(w), Decode32::Clean { data });
        let rx = w.with_bit_flipped(bit);
        prop_assert_eq!(code.decode(rx), Decode32::Corrected { data, bit });
    }

    // ---- XED-on-Chipkill (x4) ---------------------------------------------

    #[test]
    fn xed_chipkill_survives_any_two_chip_failures(
        line: [u32; 16],
        a in 0usize..18,
        b in 0usize..18,
        seed: u64,
    ) {
        prop_assume!(a != b);
        use xed::core::fault::{FaultKind, InjectedFault};
        use xed::core::xed_chipkill::XedChipkillSystem;
        let mut sys = XedChipkillSystem::new(seed);
        // Avoid lines whose data equals a catch-word (tested separately).
        prop_assume!((0..16).all(|i| line[i] != sys.catch_word(i)));
        sys.write_line(0, &line);
        sys.inject_fault(a, InjectedFault::chip(FaultKind::Permanent));
        sys.inject_fault(b, InjectedFault::chip(FaultKind::Permanent));
        let out = sys.read_line(0).unwrap();
        prop_assert_eq!(out.data, line);
    }

    // ---- Trace files ------------------------------------------------------

    #[test]
    fn trace_file_serialization_roundtrip(
        ops in proptest::collection::vec((1u64..10_000, any::<bool>(), 0u64..1u64 << 40), 1..50)
    ) {
        use xed::memsim::tracefile::FileTrace;
        let text: String = ops
            .iter()
            .map(|(gap, w, addr)| {
                format!("{gap} {} {:#x}\n", if *w { "W" } else { "R" }, addr * 64)
            })
            .collect();
        let mut parsed: FileTrace = text.parse().unwrap();
        prop_assert_eq!(parsed.len(), ops.len());
        for (gap, is_write, line_addr) in ops {
            let op = parsed.next_op();
            prop_assert_eq!(op.gap, gap);
            prop_assert_eq!(op.is_write, is_write);
            prop_assert_eq!(op.line_addr, line_addr);
        }
    }

    #[test]
    fn xed_survives_one_random_chip_failure(
        line: [u64; 8],
        chip in 0usize..9,
        transient: bool,
    ) {
        use xed::core::fault::{FaultKind, InjectedFault};
        use xed::core::{XedConfig, XedDimm};
        let mut dimm = XedDimm::new(XedConfig::default());
        dimm.write_line(0, &line);
        let kind = if transient { FaultKind::Transient } else { FaultKind::Permanent };
        dimm.inject_fault(chip, InjectedFault::chip(kind));
        let out = dimm.read_line(0).unwrap();
        prop_assert_eq!(out.data, line);
    }
}
