//! Randomized property tests on the core data structures and invariants
//! across the workspace.
//!
//! These were originally written with `proptest`; they are now seeded
//! sweeps over the deterministic in-tree RNG so the workspace builds and
//! tests fully offline. Each test draws a few hundred cases from a fixed
//! seed, so failures are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed::ecc::chipkill::Chipkill;
use xed::ecc::gf::Field;
use xed::ecc::rs::ReedSolomon;
use xed::ecc::secded::{DecodeOutcome, SecDed};
use xed::ecc::{parity, CodeWord72, Crc8Atm, Hamming7264};
use xed::faultsim::fault::{FaultExtent, FaultRange};
use xed::faultsim::geometry::DramGeometry;
use xed::testkit::seeds;

const CASES: usize = 300;

fn rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(seeds::PROPTEST_BASE ^ salt)
}

// ---- SECDED codes ------------------------------------------------

#[test]
fn crc8_roundtrip() {
    let code = Crc8Atm::new();
    let mut r = rng(1);
    for _ in 0..CASES {
        let data: u64 = r.gen();
        assert_eq!(
            code.decode(code.encode(data)),
            DecodeOutcome::Clean { data }
        );
    }
}

#[test]
fn hamming_roundtrip() {
    let code = Hamming7264::new();
    let mut r = rng(2);
    for _ in 0..CASES {
        let data: u64 = r.gen();
        assert_eq!(
            code.decode(code.encode(data)),
            DecodeOutcome::Clean { data }
        );
    }
}

#[test]
fn crc8_corrects_any_single_flip() {
    let code = Crc8Atm::new();
    let mut r = rng(3);
    for _ in 0..CASES {
        let data: u64 = r.gen();
        let bit = r.gen_range(0..72u32);
        let rx = code.encode(data).with_bit_flipped(bit);
        assert_eq!(code.decode(rx), DecodeOutcome::Corrected { data, bit });
    }
}

#[test]
fn hamming_never_miscorrects_double_flips() {
    let code = Hamming7264::new();
    let mut r = rng(4);
    for _ in 0..CASES {
        let data: u64 = r.gen();
        let a = r.gen_range(0..72u32);
        let mut b = r.gen_range(0..72u32);
        while b == a {
            b = r.gen_range(0..72u32);
        }
        let rx = code.encode(data).with_bit_flipped(a).with_bit_flipped(b);
        assert_eq!(code.decode(rx), DecodeOutcome::Detected);
    }
}

#[test]
fn crc8_is_linear_in_data() {
    let code = Crc8Atm::new();
    let mut r = rng(5);
    for _ in 0..CASES {
        let (a, b): (u64, u64) = (r.gen(), r.gen());
        assert_eq!(code.crc8(a ^ b), code.crc8(a) ^ code.crc8(b));
    }
}

#[test]
fn codeword_flip_involution() {
    let mut r = rng(6);
    for _ in 0..CASES {
        let w = CodeWord72::new(r.gen(), r.gen());
        let bit = r.gen_range(0..72u32);
        assert_eq!(w.with_bit_flipped(bit).with_bit_flipped(bit), w);
        let expect = if w.bit(bit) == 1 {
            w.weight() - 1
        } else {
            w.weight() + 1
        };
        assert_eq!(w.with_bit_flipped(bit).weight(), expect);
    }
}

// ---- RAID-3 parity ------------------------------------------------

fn random_words<const N: usize>(r: &mut StdRng) -> [u64; N] {
    let mut out = [0u64; N];
    for w in &mut out {
        *w = r.gen();
    }
    out
}

#[test]
fn parity_reconstructs_any_erasure() {
    let mut r = rng(7);
    for _ in 0..CASES {
        let words: [u64; 8] = random_words(&mut r);
        let erased = r.gen_range(0..8usize);
        let p = parity::compute(&words);
        let mut rx = words;
        rx[erased] = r.gen();
        assert_eq!(parity::reconstruct(&rx, p, erased), words[erased]);
    }
}

#[test]
fn parity_update_equals_recompute() {
    let mut r = rng(8);
    for _ in 0..CASES {
        let words: [u64; 8] = random_words(&mut r);
        let idx = r.gen_range(0..8usize);
        let new_word: u64 = r.gen();
        let p = parity::compute(&words);
        let updated = parity::update(p, words[idx], new_word);
        let mut w2 = words;
        w2[idx] = new_word;
        assert_eq!(updated, parity::compute(&w2));
    }
}

// ---- GF(256) ------------------------------------------------------

#[test]
fn gf256_mul_commutes_and_distributes() {
    let f = Field::gf256();
    let mut r = rng(9);
    for _ in 0..CASES {
        let (a, b, c): (u8, u8, u8) = (r.gen(), r.gen(), r.gen());
        assert_eq!(f.mul(a, b), f.mul(b, a));
        assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
    }
}

#[test]
fn gf256_inverse() {
    let f = Field::gf256();
    for a in 1..=255u8 {
        assert_eq!(f.mul(a, f.inv(a)), 1);
    }
}

// ---- Reed-Solomon ---------------------------------------------------

#[test]
fn rs_corrects_single_symbol() {
    let rs = ReedSolomon::new(Field::gf256(), 18, 16);
    let mut r = rng(10);
    for _ in 0..CASES {
        let mut data = [0u8; 16];
        for d in &mut data {
            *d = r.gen();
        }
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let pos = r.gen_range(0..18usize);
        rx[pos] ^= r.gen_range(1..=255u8);
        let out = rs.decode(&rx, &[]).unwrap();
        assert_eq!(out.codeword, cw);
    }
}

#[test]
fn rs_erasure_pair() {
    let rs = ReedSolomon::new(Field::gf256(), 18, 16);
    let mut r = rng(11);
    for _ in 0..CASES {
        let mut data = [0u8; 16];
        for d in &mut data {
            *d = r.gen();
        }
        let cw = rs.encode(&data);
        let a = r.gen_range(0..18usize);
        let mut b = r.gen_range(0..18usize);
        while b == a {
            b = r.gen_range(0..18usize);
        }
        let mut rx = cw.clone();
        rx[a] = r.gen();
        rx[b] = r.gen();
        let out = rs.decode(&rx, &[a, b]).unwrap();
        assert_eq!(out.codeword, cw);
    }
}

#[test]
fn chipkill_never_returns_wrong_data_for_single_error() {
    let ck = Chipkill::new();
    let mut r = rng(12);
    for _ in 0..CASES {
        let mut data = [0u8; 16];
        for d in &mut data {
            *d = r.gen();
        }
        let beat = ck.encode(&data);
        let mut rx = beat;
        let pos = r.gen_range(0..18usize);
        rx[pos] ^= r.gen_range(1..=255u8);
        match ck.decode(&rx) {
            xed::ecc::chipkill::SymbolOutcome::Corrected { data: d, .. } => {
                assert_eq!(d, data.to_vec());
            }
            xed::ecc::chipkill::SymbolOutcome::Clean(_) => panic!("corruption unseen"),
            xed::ecc::chipkill::SymbolOutcome::Due => panic!("single error is correctable"),
        }
    }
}

// ---- Fault ranges ---------------------------------------------------

#[test]
fn fault_range_intersection_symmetric() {
    let geom = DramGeometry::x8_2gb();
    let mut r = rng(13);
    for _ in 0..CASES {
        let mut ra = StdRng::seed_from_u64(r.gen());
        let mut rb = StdRng::seed_from_u64(r.gen());
        let ea = FaultExtent::ALL[ra.gen_range(0..6)];
        let eb = FaultExtent::ALL[rb.gen_range(0..6)];
        let a = FaultRange::sample(&mut ra, ea, &geom);
        let b = FaultRange::sample(&mut rb, eb, &geom);
        assert_eq!(a.intersect(&b), b.intersect(&a));
        assert!(a.overlaps(&a));
        // Intersection is "smaller": anything overlapping the intersection
        // overlaps both.
        if let Some(x) = a.intersect(&b) {
            assert!(x.overlaps(&a) && x.overlaps(&b));
        }
    }
}

// ---- Functional XED system -----------------------------------------

#[test]
fn xed_roundtrips_arbitrary_lines() {
    use xed::core::{XedConfig, XedDimm};
    let mut r = rng(14);
    for _ in 0..32 {
        let n = r.gen_range(1..8usize);
        let lines: Vec<[u64; 8]> = (0..n).map(|_| random_words(&mut r)).collect();
        let mut dimm = XedDimm::new(XedConfig::default());
        for (i, line) in lines.iter().enumerate() {
            dimm.write_line(i as u64, line);
        }
        for (i, line) in lines.iter().enumerate() {
            let out = dimm.read_line(i as u64).unwrap();
            assert_eq!(&out.data, line);
        }
    }
}

// ---- (40,32) x4 SECDED ----------------------------------------------

#[test]
fn crc8_32_roundtrip_and_single_bit() {
    use xed::ecc::secded32::{Crc8Atm32, Decode32};
    let code = Crc8Atm32::new();
    let mut r = rng(15);
    for _ in 0..CASES {
        let data: u32 = r.gen();
        let bit = r.gen_range(0..40u32);
        let w = code.encode(data);
        assert_eq!(code.decode(w), Decode32::Clean { data });
        let rx = w.with_bit_flipped(bit);
        assert_eq!(code.decode(rx), Decode32::Corrected { data, bit });
    }
}

// ---- XED-on-Chipkill (x4) ---------------------------------------------

#[test]
fn xed_chipkill_survives_any_two_chip_failures() {
    use xed::core::fault::{FaultKind, InjectedFault};
    use xed::core::xed_chipkill::XedChipkillSystem;
    let mut r = rng(16);
    let mut tested = 0;
    while tested < 64 {
        let seed: u64 = r.gen();
        let mut line = [0u32; 16];
        for w in &mut line {
            *w = r.gen();
        }
        let a = r.gen_range(0..18usize);
        let mut b = r.gen_range(0..18usize);
        while b == a {
            b = r.gen_range(0..18usize);
        }
        let mut sys = XedChipkillSystem::new(seed);
        // Avoid lines whose data equals a catch-word (tested separately).
        if (0..16).any(|i| line[i] == sys.catch_word(i)) {
            continue;
        }
        sys.write_line(0, &line);
        sys.inject_fault(a, InjectedFault::chip(FaultKind::Permanent));
        sys.inject_fault(b, InjectedFault::chip(FaultKind::Permanent));
        let out = sys.read_line(0).unwrap();
        assert_eq!(out.data, line);
        tested += 1;
    }
}

// ---- Trace files ------------------------------------------------------

#[test]
fn trace_file_serialization_roundtrip() {
    use xed::memsim::tracefile::FileTrace;
    let mut r = rng(17);
    for _ in 0..32 {
        let n = r.gen_range(1..50usize);
        let ops: Vec<(u64, bool, u64)> = (0..n)
            .map(|_| {
                (
                    r.gen_range(1..10_000u64),
                    r.gen::<bool>(),
                    r.gen_range(0..1u64 << 40),
                )
            })
            .collect();
        let text: String = ops
            .iter()
            .map(|(gap, w, addr)| {
                format!("{gap} {} {:#x}\n", if *w { "W" } else { "R" }, addr * 64)
            })
            .collect();
        let mut parsed: FileTrace = text.parse().unwrap();
        assert_eq!(parsed.len(), ops.len());
        for (gap, is_write, line_addr) in ops {
            let op = parsed.next_op();
            assert_eq!(op.gap, gap);
            assert_eq!(op.is_write, is_write);
            assert_eq!(op.line_addr, line_addr);
        }
    }
}

#[test]
fn xed_survives_one_random_chip_failure() {
    use xed::core::fault::{FaultKind, InjectedFault};
    use xed::core::{XedConfig, XedDimm};
    let mut r = rng(18);
    for _ in 0..64 {
        let line: [u64; 8] = random_words(&mut r);
        let chip = r.gen_range(0..9usize);
        let transient: bool = r.gen();
        let mut dimm = XedDimm::new(XedConfig::default());
        dimm.write_line(0, &line);
        let kind = if transient {
            FaultKind::Transient
        } else {
            FaultKind::Permanent
        };
        dimm.inject_fault(chip, InjectedFault::chip(kind));
        let out = dimm.read_line(0).unwrap();
        assert_eq!(out.data, line);
    }
}
