//! Exhaustive SECDED sweeps and golden constants (ISSUE satellite).
//!
//! The compile-time `const` proofs in `xed-ecc` show the syndrome *tables*
//! have the distance-4 structure; these tests drive the full runtime
//! encode/decode path through every error pattern the code claims to handle:
//!
//! * all 72 single-bit flips correct back to the original data, reporting
//!   the exact flipped position — for **both** (72,64) variants;
//! * all C(72,2) = 2556 double-bit flips are flagged `Detected` and never
//!   mis-corrected;
//! * the same sweep for the (40,32) x4 codec over its 40 positions;
//! * `FitRates::table_i()` is pinned to the paper's Table I values (also
//!   enforced at lint time by xed-lint rule XL007).

use xed::ecc::secded::{DecodeOutcome, SecDed};
use xed::ecc::secded32::{Crc8Atm32, Decode32};
use xed::ecc::{Crc8Atm, Hamming7264};
use xed::faultsim::fault::{FaultExtent, Persistence};
use xed::faultsim::fit::FitRates;

/// Data words chosen to exercise diverse bit patterns (sparse, dense,
/// alternating, byte-boundary, and random-looking).
const DATA_WORDS: [u64; 6] = [
    0,
    u64::MAX,
    0xAAAA_5555_AAAA_5555,
    0x0123_4567_89AB_CDEF,
    0x8000_0000_0000_0001,
    0xDEAD_BEEF_0BAD_F00D,
];

fn sweep_72<C: SecDed>(code: &C, name: &str) {
    for &data in &DATA_WORDS {
        let w = code.encode(data);
        assert_eq!(
            code.decode(w),
            DecodeOutcome::Clean { data },
            "{name}: clean decode"
        );

        // Every single-bit flip corrects to the original data and names the
        // flipped position.
        for i in 0..72 {
            let rx = w.with_bit_flipped(i);
            assert_eq!(
                code.decode(rx),
                DecodeOutcome::Corrected { data, bit: i },
                "{name}: single-bit flip at {i} (data {data:#x})"
            );
        }

        // Every double-bit flip is detected, never mis-corrected.
        for i in 0..72 {
            for j in (i + 1)..72 {
                let rx = w.with_bit_flipped(i).with_bit_flipped(j);
                assert_eq!(
                    code.decode(rx),
                    DecodeOutcome::Detected,
                    "{name}: double-bit flip at ({i},{j}) (data {data:#x})"
                );
            }
        }
    }
}

#[test]
fn hamming_exhaustive_single_and_double_sweep() {
    sweep_72(&Hamming7264::new(), "Hamming7264");
}

#[test]
fn crc8_atm_exhaustive_single_and_double_sweep() {
    sweep_72(&Crc8Atm::new(), "Crc8Atm");
}

#[test]
fn crc8_atm32_exhaustive_single_and_double_sweep() {
    let code = Crc8Atm32::new();
    for &data64 in &DATA_WORDS {
        let data = data64 as u32;
        let w = code.encode(data);
        assert_eq!(code.decode(w), Decode32::Clean { data });
        for i in 0..40 {
            let rx = w.with_bit_flipped(i);
            assert_eq!(
                code.decode(rx),
                Decode32::Corrected { data, bit: i },
                "x4 single-bit flip at {i} (data {data:#x})"
            );
        }
        for i in 0..40 {
            for j in (i + 1)..40 {
                let rx = w.with_bit_flipped(i).with_bit_flipped(j);
                assert_eq!(
                    code.decode(rx),
                    Decode32::Detected,
                    "x4 double-bit flip at ({i},{j}) (data {data:#x})"
                );
            }
        }
    }
}

/// Pins `FitRates::table_i()` to the paper's Table I (Sridharan & Liberty
/// per-chip FIT rates), including the folded multi-bank/multi-rank Chip row
/// and the derived totals. xed-lint rule XL007 enforces the same values at
/// lint time by linking against the crate.
#[test]
fn fit_rates_table_i_golden() {
    let rates = FitRates::table_i();
    let golden: [(FaultExtent, f64, f64); 6] = [
        (FaultExtent::Bit, 14.2, 18.6),
        (FaultExtent::Word, 1.4, 0.3),
        (FaultExtent::Column, 1.4, 5.6),
        (FaultExtent::Row, 0.2, 8.2),
        (FaultExtent::Bank, 0.8, 10.0),
        // multi-bank 0.3/1.4 + multi-rank 0.9/2.8 folded into Chip.
        (FaultExtent::Chip, 1.2, 4.2),
    ];
    assert_eq!(rates.rows().len(), golden.len());
    for (extent, t, p) in golden {
        assert!(
            (rates.fit_for(extent, Persistence::Transient) - t).abs() < 1e-12,
            "transient FIT drift for {extent:?}"
        );
        assert!(
            (rates.fit_for(extent, Persistence::Permanent) - p).abs() < 1e-12,
            "permanent FIT drift for {extent:?}"
        );
    }
    assert!((rates.total_fit() - 66.1).abs() < 1e-9);
    assert!((rates.large_fault_fit() - 33.3).abs() < 1e-9);
}
