//! Differential proofs that the word-parallel, allocation-free ECC kernels
//! are bit-identical to the seed's bit-serial / `Vec`-allocating reference
//! implementations (`xed::ecc::reference`).
//!
//! * Hamming(72,64) and CRC8-ATM(72,64): exhaustive over all 72 single-bit
//!   and all C(72,2) = 2556 double-bit error patterns per sample word, plus
//!   every aligned burst-8 pattern.
//! * CRC8-ATM(40,32): exhaustive over all 40 single-bit and C(40,2) = 780
//!   double-bit patterns.
//! * Reed–Solomon: `decode_with` (fixed scratch) vs the reference `decode`
//!   (`Vec` pipeline) over seeded random error and erasure sweeps for the
//!   RS(18,16), RS(36,32) and GF(16) RS(15,11) configurations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed::ecc::gf::Field;
use xed::ecc::reference::{
    crc8_u32_bitserial, crc8_u64_bitserial, RefCrc8Atm, RefCrc8Atm32, RefHamming7264,
};
use xed::ecc::rs::{ReedSolomon, RsScratch};
use xed::ecc::secded::SecDed;
use xed::ecc::secded32::{CodeWord40, Crc8Atm32};
use xed::ecc::{CodeWord72, Crc8Atm, Hamming7264};

const SAMPLE_WORDS: &[u64] = &[
    0,
    u64::MAX,
    1,
    0x8000_0000_0000_0000,
    0xDEAD_BEEF_0BAD_F00D,
    0x0123_4567_89AB_CDEF,
    0x5555_5555_5555_5555,
    0xAAAA_AAAA_AAAA_AAAA,
    0xFFFF_0000_FFFF_0000,
    42,
];

/// Every received word a (72,64) differential sweep should cover for one
/// data word: clean, all single-bit, all double-bit, all aligned burst-8.
fn received_variants(clean: CodeWord72) -> Vec<CodeWord72> {
    let mut out = vec![clean];
    for i in 0..72 {
        out.push(clean.with_bit_flipped(i));
    }
    for i in 0..72u32 {
        for j in (i + 1)..72 {
            out.push(clean.with_bit_flipped(i).with_bit_flipped(j));
        }
    }
    for chip in 0..9u32 {
        for pattern in 1..=255u8 {
            let e = CodeWord72::error_pattern(
                (0..8u32)
                    .filter(|b| (pattern >> b) & 1 == 1)
                    .map(|b| 8 * chip + b),
            );
            out.push(clean.with_error(e));
        }
    }
    out
}

#[test]
fn hamming_kernel_matches_reference_exhaustively() {
    let fast = Hamming7264::new();
    let slow = RefHamming7264::new();
    for &d in SAMPLE_WORDS {
        let wf = fast.encode(d);
        let ws = slow.encode(d);
        assert_eq!(wf, ws, "encode({d:#x})");
        for r in received_variants(wf) {
            assert_eq!(fast.decode(r), slow.decode(r), "decode({r})");
            assert_eq!(fast.is_valid(r), slow.is_valid(r), "is_valid({r})");
        }
    }
}

#[test]
fn crc8_kernel_matches_reference_exhaustively() {
    let fast = Crc8Atm::new();
    let slow = RefCrc8Atm::new();
    for &d in SAMPLE_WORDS {
        let wf = fast.encode(d);
        let ws = slow.encode(d);
        assert_eq!(wf, ws, "encode({d:#x})");
        assert_eq!(fast.crc8(d), crc8_u64_bitserial(d));
        for r in received_variants(wf) {
            assert_eq!(fast.decode(r), slow.decode(r), "decode({r})");
            assert_eq!(fast.is_valid(r), slow.is_valid(r), "is_valid({r})");
        }
    }
}

#[test]
fn crc8_kernels_match_on_random_received_words() {
    // Arbitrary (data, check) pairs — mostly invalid words, far outside
    // the single/double/burst classes above.
    let fast_h = Hamming7264::new();
    let slow_h = RefHamming7264::new();
    let fast_c = Crc8Atm::new();
    let slow_c = RefCrc8Atm::new();
    let mut rng = StdRng::seed_from_u64(0xECC0_0001);
    for _ in 0..20_000 {
        let r = CodeWord72::new(rng.gen(), rng.gen());
        assert_eq!(fast_h.decode(r), slow_h.decode(r), "hamming {r}");
        assert_eq!(fast_c.decode(r), slow_c.decode(r), "crc8 {r}");
    }
}

#[test]
fn secded32_kernel_matches_reference_exhaustively() {
    let fast = Crc8Atm32::new();
    let slow = RefCrc8Atm32::new();
    for &w in SAMPLE_WORDS {
        let d = w as u32;
        let wf = fast.encode(d);
        assert_eq!(wf, slow.encode(d), "encode({d:#x})");
        assert_eq!(fast.crc8(d), crc8_u32_bitserial(d));
        let mut received = vec![wf];
        for i in 0..40 {
            received.push(wf.with_bit_flipped(i));
        }
        for i in 0..40u32 {
            for j in (i + 1)..40 {
                received.push(wf.with_bit_flipped(i).with_bit_flipped(j));
            }
        }
        for r in received {
            assert_eq!(fast.decode(r), slow.decode(r));
            assert_eq!(fast.is_valid(r), slow.is_valid(r));
        }
    }
    // Random (data, check) pairs.
    let mut rng = StdRng::seed_from_u64(0xECC0_0032);
    for _ in 0..20_000 {
        let r = CodeWord40::new(rng.gen(), rng.gen());
        assert_eq!(fast.decode(r), slow.decode(r));
    }
}

/// Asserts `decode_with` (scratch) and `decode` (reference) agree — on the
/// Ok codeword+corrected set, or on both returning Err.
fn assert_rs_agree(rs: &ReedSolomon, scratch: &mut RsScratch, rx: &[u8], erasures: &[usize]) {
    let reference = rs.decode(rx, erasures);
    let fast = rs.decode_with(rx, erasures, scratch);
    match (&reference, &fast) {
        (Ok(a), Ok(b)) => {
            assert_eq!(&a.codeword[..], b.codeword, "codeword mismatch");
            assert_eq!(&a.corrected[..], b.corrected, "corrected mismatch");
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        _ => panic!("divergence: reference={reference:?} fast={fast:?}"),
    }
}

fn rs_random_sweep(field: Field, n: usize, k: usize, seed: u64, trials: usize) {
    let rs = ReedSolomon::new(field, n, k);
    let mut scratch = RsScratch::new();
    let nsym = n - k;
    let max_sym = (rs.field().size() - 1) as u8;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let data: Vec<u8> = (0..k).map(|_| rng.gen::<u8>() & max_sym).collect();
        let mut rx = rs.encode(&data);

        // Random errata: e erasures + t corrupted unknown positions, from
        // in-capability through decidedly beyond it.
        let e = rng.gen_range(0..=nsym);
        let t = rng.gen_range(0..=nsym);
        let mut erasures: Vec<usize> = Vec::new();
        while erasures.len() < e {
            let p = rng.gen_range(0..n);
            if !erasures.contains(&p) {
                erasures.push(p);
            }
        }
        for &p in &erasures {
            rx[p] = rng.gen::<u8>() & max_sym;
        }
        for _ in 0..t {
            let p = rng.gen_range(0..n);
            rx[p] ^= (rng.gen::<u8>() & max_sym).max(1);
        }
        assert_rs_agree(&rs, &mut scratch, &rx, &erasures);

        // And the same received word with no erasure information.
        assert_rs_agree(&rs, &mut scratch, &rx, &[]);
    }
}

#[test]
fn rs_18_16_decode_with_matches_reference() {
    rs_random_sweep(Field::gf256(), 18, 16, 0x5EED_1816, 4000);
}

#[test]
fn rs_36_32_decode_with_matches_reference() {
    rs_random_sweep(Field::gf256(), 36, 32, 0x5EED_3632, 2500);
}

#[test]
fn rs_15_11_gf16_decode_with_matches_reference() {
    rs_random_sweep(Field::gf16(), 15, 11, 0x5EED_1511, 2500);
}

#[test]
fn rs_encode_into_matches_reference_encode() {
    let mut rng = StdRng::seed_from_u64(0x5EED_E4C0);
    for (field, n, k) in [
        (Field::gf256(), 18, 16),
        (Field::gf256(), 36, 32),
        (Field::gf16(), 15, 11),
    ] {
        let max_sym = (field.size() - 1) as u8;
        let rs = ReedSolomon::new(field, n, k);
        let mut out = [0u8; xed::ecc::rs::MAX_N];
        for _ in 0..500 {
            let data: Vec<u8> = (0..k).map(|_| rng.gen::<u8>() & max_sym).collect();
            rs.encode_into(&data, &mut out[..n]);
            assert_eq!(rs.encode(&data), &out[..n]);
            assert!(rs.is_valid(&out[..n]));
        }
    }
}

#[test]
fn rs_exhaustive_single_symbol_errors_match() {
    // Every position × a spread of error values, for the paper's RS(18,16).
    let rs = ReedSolomon::new(Field::gf256(), 18, 16);
    let mut scratch = RsScratch::new();
    let data: Vec<u8> = (0..16).map(|i| (i * 17 + 3) as u8).collect();
    let clean = rs.encode(&data);
    for pos in 0..18 {
        for val in [1u8, 0x55, 0xAA, 0xFF] {
            let mut rx = clean.clone();
            rx[pos] ^= val;
            assert_rs_agree(&rs, &mut scratch, &rx, &[]);
            assert_rs_agree(&rs, &mut scratch, &rx, &[pos]);
            // Erasing an unrelated healthy position too.
            let other = (pos + 7) % 18;
            assert_rs_agree(&rs, &mut scratch, &rx, &[pos.min(other), pos.max(other)]);
        }
    }
}

#[test]
fn line_decode_matches_per_beat_reference() {
    use xed::ecc::secded::{DecodeOutcome, BEATS_PER_LINE};
    let fast = Crc8Atm::new();
    let slow = RefCrc8Atm::new();
    let mut rng = StdRng::seed_from_u64(0x11FE_11FE);
    for _ in 0..2000 {
        let data: [u64; BEATS_PER_LINE] = std::array::from_fn(|_| rng.gen());
        let mut beats = fast.encode_line(&data);
        // Corrupt a random subset of beats with 0–3 bit flips each.
        for w in beats.iter_mut() {
            for _ in 0..rng.gen_range(0..=3u32) {
                if rng.gen_bool(0.4) {
                    *w = w.with_bit_flipped(rng.gen_range(0..72));
                }
            }
        }
        let line = fast.decode_line(&beats);
        for (i, &w) in beats.iter().enumerate() {
            match slow.decode(w) {
                DecodeOutcome::Clean { data: d } => {
                    assert_eq!(line.data[i], d);
                    assert_eq!(line.corrected_beats >> i & 1, 0);
                    assert_eq!(line.bad_beats >> i & 1, 0);
                }
                DecodeOutcome::Corrected { data: d, .. } => {
                    assert_eq!(line.data[i], d);
                    assert_eq!(line.corrected_beats >> i & 1, 1);
                    assert_eq!(line.bad_beats >> i & 1, 0);
                }
                DecodeOutcome::Detected => {
                    assert_eq!(line.data[i], w.data());
                    assert_eq!(line.bad_beats >> i & 1, 1);
                }
            }
        }
    }
}
