//! Seeded round-trips through BEER-style code inference (DESIGN.md
//! §17.2).
//!
//! Random valid SEC-DED parity maps nobody hand-picked must survive
//! generate → black-box probe → solve → compare bit-exactly; a
//! pattern-starved campaign must certify its ambiguity instead of
//! guessing.

use xed_ecc::infer::{
    infer, AmbiguityReason, InferConfig, InferOutcome, SyndromeCode, SyndromeOracle,
};
use xed_testkit::seeds;

#[test]
fn random_secded_matrices_round_trip_bit_exactly() {
    for salt in 0..12u64 {
        let truth = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP ^ salt);
        assert!(truth.is_secded(), "generator must emit SEC-DED codes");
        let mut oracle = SyndromeOracle::new(truth);
        let out = infer(&mut oracle, &InferConfig::default()).expect("inference runs");
        match out {
            InferOutcome::Recovered(code) => {
                assert_eq!(code.k, truth.data_bits());
                assert_eq!(code.r, truth.check_bits());
                assert_eq!(
                    code.rows,
                    truth.canonical_rows(),
                    "salt {salt}: recovered matrix differs from ground truth"
                );
                assert_eq!(
                    code.probes_used,
                    oracle.probes(),
                    "probe accounting must match the oracle's own tally"
                );
            }
            InferOutcome::Ambiguous(a) => {
                panic!("salt {salt}: unexpectedly ambiguous: {a:?}")
            }
        }
    }
}

#[test]
fn inference_is_deterministic() {
    let truth = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP);
    let run = |_: u32| {
        let mut oracle = SyndromeOracle::new(truth);
        infer(&mut oracle, &InferConfig::default()).expect("inference runs")
    };
    let (a, b) = (run(0), run(1));
    match (a, b) {
        (InferOutcome::Recovered(x), InferOutcome::Recovered(y)) => {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.probes_used, y.probes_used);
        }
        other => panic!("expected two recoveries, got {other:?}"),
    }
}

#[test]
fn a_pattern_starved_campaign_certifies_its_ambiguity() {
    let truth = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP ^ 0xA0);
    // Enough budget for the singleton phase (64 probes) but far too
    // little to identify the coset structure of a (72,64) code.
    let starved = InferConfig { max_probes: 90 };
    let mut oracle = SyndromeOracle::new(truth);
    match infer(&mut oracle, &starved).expect("inference runs") {
        InferOutcome::Ambiguous(a) => {
            assert_eq!(a.r, truth.check_bits());
            assert!(
                a.resolved_rows < a.r,
                "a starved run cannot resolve every row: {a:?}"
            );
            assert!(a.probes_used <= 90, "budget is a hard cap: {a:?}");
            assert_eq!(a.reason, AmbiguityReason::ProbeBudgetExhausted);
            assert!(a.unresolved_rows() >= 1);
        }
        InferOutcome::Recovered(code) => {
            panic!("90 probes cannot identify a (72,64) code: {code:?}")
        }
    }
}

#[test]
fn a_generous_budget_changes_nothing_but_headroom() {
    // Doubling the budget must not change the recovered matrix or the
    // probes actually spent — the solver never pads its campaign.
    let truth = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP ^ 0xB1);
    let tight = {
        let mut oracle = SyndromeOracle::new(truth);
        infer(&mut oracle, &InferConfig::default()).expect("inference runs")
    };
    let roomy = {
        let mut oracle = SyndromeOracle::new(truth);
        infer(
            &mut oracle,
            &InferConfig {
                max_probes: InferConfig::default().max_probes * 2,
            },
        )
        .expect("inference runs")
    };
    match (tight, roomy) {
        (InferOutcome::Recovered(x), InferOutcome::Recovered(y)) => {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.probes_used, y.probes_used);
        }
        other => panic!("expected two recoveries, got {other:?}"),
    }
}
