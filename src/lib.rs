//! # XED — Exposing On-Die Error Detection Information for Strong Memory Reliability
//!
//! A full Rust reproduction of the ISCA 2016 paper by Nair, Sridharan and
//! Qureshi. This meta-crate re-exports the six constituent crates:
//!
//! * [`ecc`] — SECDED codes (Hamming, CRC8-ATM), RAID-3 parity, GF
//!   arithmetic and Reed–Solomon Chipkill codecs.
//! * [`faultsim`] — a FaultSim-style Monte-Carlo DRAM fault/repair
//!   simulator used for all reliability results.
//! * [`core`] — the XED mechanism itself: catch-words, functional
//!   on-die-ECC DRAM chips, the RAID-3 memory controller and fault
//!   diagnosis.
//! * [`memsim`] — a USIMM-style cycle-level DDR3 simulator with a power
//!   model, used for all performance/power results.
//! * [`telemetry`] — the workspace observability substrate: allocation-free
//!   counters, log2 histograms, event rings and the unified run-report
//!   exporters (DESIGN.md §11).
//! * [`testkit`] — the verification-oracle subsystem behind
//!   `cargo xtask verify-matrix`: exhaustive small-geometry oracles,
//!   analytic gates, metamorphic laws and golden conformance traces
//!   (DESIGN.md §12).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use xed::core::{XedDimm, XedConfig};
//! use xed::core::fault::{InjectedFault, FaultKind};
//!
//! // Build a 9-chip XED DIMM, write a cache line, break a chip, read back.
//! let mut dimm = XedDimm::new(XedConfig::default());
//! let line = [0x0123_4567_89AB_CDEFu64; 8];
//! dimm.write_line(0, &line);
//! dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
//! let read = dimm.read_line(0).expect("XED corrects a full chip failure");
//! assert_eq!(read.data, line);
//! ```

pub use xed_core as core;
pub use xed_ecc as ecc;
pub use xed_faultsim as faultsim;
pub use xed_memsim as memsim;
pub use xed_telemetry as telemetry;
pub use xed_testkit as testkit;
