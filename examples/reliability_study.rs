//! A miniature version of the paper's reliability evaluation: Monte-Carlo
//! simulate every protection scheme over a 7-year lifetime and print the
//! probability of system failure (cf. Figures 1, 7 and 9).
//!
//! Run with: `cargo run --release --example reliability_study`
//! (release mode recommended; this simulates 4M systems in a few seconds).

use xed::faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed::faultsim::scaling::ScalingFaults;
use xed::faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let samples = 500_000;
    println!("Monte-Carlo: {samples} systems per scheme, 7-year lifetime, Table I FIT rates\n");

    let mc = MonteCarlo::new(MonteCarloConfig {
        samples,
        seed: 2016,
        ..Default::default()
    });
    println!(
        "{:45} {:>12} {:>8} {:>8}",
        "scheme", "P(fail, 7y)", "DUE", "SDC"
    );
    // One work-stealing pool simulates all seven schemes; the results are
    // identical to seven solo runs (and to any thread count).
    let (results, stats) = mc.run_all_timed(&Scheme::ALL);
    let mut baseline = None;
    for (scheme, r) in Scheme::ALL.into_iter().zip(&results) {
        let p = r.failure_probability(7.0);
        if scheme == Scheme::EccDimm {
            baseline = Some(p);
        }
        let vs = match (baseline, p > 0.0) {
            (Some(b), true) if scheme != Scheme::EccDimm => {
                format!("  ({:.0}x vs ECC-DIMM)", b / p)
            }
            _ => String::new(),
        };
        println!(
            "{:45} {:>12.3e} {:>8} {:>8}{vs}",
            scheme.label(),
            p,
            r.due,
            r.sdc
        );
    }
    println!(
        "  [{:.2e} samples/sec on {} thread(s)]",
        stats.samples_per_sec, stats.threads
    );

    // The same comparison with scaling faults at the paper's 10^-4 rate
    // (Figure 8): XED still wins because on-die ECC absorbs scaling faults
    // and catch-words expose everything else.
    println!("\nwith scaling faults at rate 1e-4 (Figure 8):");
    let mc = MonteCarlo::new(MonteCarloConfig {
        samples,
        seed: 2016,
        params: ModelParams {
            scaling: ScalingFaults::paper_default(),
            ..Default::default()
        },
        ..Default::default()
    });
    let schemes = [Scheme::EccDimm, Scheme::Xed, Scheme::Chipkill];
    for (scheme, r) in schemes.iter().zip(&mc.run_all(&schemes)) {
        println!(
            "{:45} {:>12.3e}",
            scheme.label(),
            r.failure_probability(7.0)
        );
    }

    // Year-by-year failure CDF for XED (the curve the figures plot).
    let r = MonteCarlo::new(MonteCarloConfig {
        samples: 2_000_000,
        seed: 7,
        ..Default::default()
    })
    .run(Scheme::Xed);
    println!("\nXED cumulative failure probability by year:");
    for (year, p) in r.curve().iter().enumerate() {
        println!("  year {:>2}: {:.2e}", year + 1, p);
    }
}
