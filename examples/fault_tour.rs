//! A guided tour of every fault mode the paper discusses and how the XED
//! machinery responds: on-die correction, catch-words, serial mode,
//! collisions, and both fault-diagnosis procedures.
//!
//! Run with: `cargo run --example fault_tour`

use xed::core::fault::{FaultKind, InjectedFault};
use xed::core::{XedConfig, XedDimm};

const LINE: [u64; 8] = [0xA1, 0xB2, 0xC3, 0xD4, 0xE5, 0xF6, 0x07, 0x18];

fn fresh() -> XedDimm {
    let mut dimm = XedDimm::new(XedConfig::default());
    for line in 0..256 {
        dimm.write_line(line, &LINE);
    }
    dimm
}

fn main() {
    scenario_scaling_fault();
    scenario_transient_word();
    scenario_row_failure();
    scenario_two_chips_with_scaling();
    scenario_collision();
    scenario_bank_failure_parity_chip();
}

// 1. A scaling (single-bit) fault: the on-die SECDED corrects it; with
// XED enabled the chip still announces the event via its catch-word, and
// parity rebuilds the word — the data is never wrong.
fn scenario_scaling_fault() {
    let mut dimm = fresh();
    let addr = dimm.line_addr(5);
    dimm.inject_fault(2, InjectedFault::bit(addr, 17, FaultKind::Permanent));
    let out = dimm.read_line(5).unwrap();
    assert_eq!(out.data, LINE);
    assert_eq!(out.reconstructed_chip, Some(2));
    println!("[scaling fault]     1-bit fault in chip 2 -> catch-word -> parity rebuild: OK");
}

// 2. A transient word fault: the catch-word identifies the chip, parity
// rebuilds the data, and the scrub-on-correct write-back *heals* the
// corrupted cells — the next read takes the clean fast path.
fn scenario_transient_word() {
    let mut dimm = fresh();
    let addr = dimm.line_addr(9);
    dimm.inject_fault(4, InjectedFault::word(addr, FaultKind::Transient));
    let first = dimm.read_line(9).unwrap();
    assert_eq!(first.data, LINE);
    let before = dimm.stats().reconstructions;
    let second = dimm.read_line(9).unwrap();
    assert_eq!(second.data, LINE);
    assert_eq!(
        dimm.stats().reconstructions,
        before,
        "scrub healed the line"
    );
    println!("[transient word]    corrected once, scrubbed, second read clean: OK");
}

// 3. A permanent row failure: every line of the row is reconstructed on
// demand; the data keeps flowing.
fn scenario_row_failure() {
    let mut dimm = fresh();
    let addr = dimm.line_addr(0);
    dimm.inject_fault(
        7,
        InjectedFault::row(addr.bank, addr.row, FaultKind::Permanent),
    );
    let cols = dimm.geometry().cols as u64;
    let mut reconstructed = 0;
    for line in 0..cols {
        let out = dimm.read_line(line).unwrap();
        assert_eq!(out.data, LINE, "line {line}");
        if out.reconstructed_chip == Some(7) {
            reconstructed += 1;
        }
    }
    println!(
        "[row failure]       {reconstructed}/{cols} lines of the row reconstructed from parity: OK"
    );
}

// 4. Section VII-C: a runtime chip failure concurrent with a scaling
// fault in another chip. Two catch-words arrive; the controller enters
// serial mode, lets on-die ECC fix the scaling fault, and diagnosis pins
// the broken chip.
fn scenario_two_chips_with_scaling() {
    let mut dimm = fresh();
    let addr = dimm.line_addr(40);
    dimm.inject_fault(1, InjectedFault::bit(addr, 30, FaultKind::Permanent));
    dimm.inject_fault(
        5,
        InjectedFault::row(addr.bank, addr.row, FaultKind::Permanent),
    );
    let out = dimm.read_line(40).unwrap();
    assert_eq!(out.data, LINE);
    assert!(dimm.stats().serial_modes >= 1);
    println!(
        "[failure + scaling] 2 catch-words -> serial mode -> diagnosis -> corrected: OK \
         (serial modes: {})",
        dimm.stats().serial_modes
    );
}

// 5. A catch-word collision: legitimate data happens to equal a chip's
// catch-word. XED reconstructs the same value from parity, *detects* the
// collision and re-keys the catch-word (Section V-D).
fn scenario_collision() {
    let mut dimm = XedDimm::new(XedConfig::default());
    // A program legitimately stores the exact 64-bit value that happens to
    // be chip 6's catch-word (a 1-in-2^64 event, Figure 6).
    let unlucky_value = dimm.controller().catch_word(6).value();
    let mut line = LINE;
    line[6] = unlucky_value;
    dimm.write_line(77, &line);
    // The read still returns the right data: the controller "corrects" the
    // suspected chip from parity, notices the reconstruction equals the
    // catch-word — a collision — and re-keys chip 6's CWR.
    let out = dimm.read_line(77).unwrap();
    assert_eq!(out.data, line);
    assert!(out.collision);
    assert_eq!(dimm.stats().collisions, 1);
    assert_ne!(dimm.controller().catch_word(6).value(), unlucky_value);
    // With the new catch-word, the same data no longer trips anything.
    let again = dimm.read_line(77).unwrap();
    assert!(!again.collision);
    println!("[collision]         data == catch-word detected, CWR re-keyed, data correct: OK");
}

// 6. The parity chip itself can die: data chips are unaffected and the
// controller keeps serving lines (rebuilding parity on scrub).
fn scenario_bank_failure_parity_chip() {
    let mut dimm = fresh();
    let addr = dimm.line_addr(0);
    dimm.inject_fault(8, InjectedFault::bank(addr.bank, FaultKind::Permanent));
    let out = dimm.read_line(0).unwrap();
    assert_eq!(out.data, LINE);
    assert_eq!(out.reconstructed_chip, Some(8));
    println!("[parity-chip fail]  bank failure in the 9th chip -> data unaffected: OK");
}
