//! Section IX as running code: take Single-Chipkill hardware (18 x4
//! chips, two Reed–Solomon check-symbol chips) and upgrade it to
//! Double-Chipkill-level reliability by exposing on-die error detection —
//! the check symbols become *erasure* correctors.
//!
//! Run with: `cargo run --example double_chipkill_upgrade`

use xed::core::fault::{FaultKind, InjectedFault};
use xed::core::xed_chipkill::XedChipkillSystem;
use xed::ecc::chipkill::{Chipkill, SymbolOutcome};

fn main() {
    // --- What plain Single-Chipkill can do -----------------------------
    // At the symbol level: one unknown faulty chip is correctable, two are
    // a detected-uncorrectable error.
    let ck = Chipkill::new();
    let data: Vec<u8> = (0..16).collect();
    let beat = ck.encode(&data);
    let mut two_bad = beat.clone();
    two_bad[4] ^= 0xDE;
    two_bad[13] ^= 0xAD;
    assert_eq!(ck.decode(&two_bad), SymbolOutcome::Due);
    println!("plain Single-Chipkill: two faulty chips  -> DUE (machine check)");

    // --- The XED upgrade ------------------------------------------------
    // Same two check symbols, but catch-words tell the controller *which*
    // chips failed, so it erases them instead of solving for locations.
    let mut sys = XedChipkillSystem::new(2016);
    let line: [u32; 16] = core::array::from_fn(|i| 0xC0DE_0000 | i as u32);
    for l in 0..8 {
        sys.write_line(l, &line);
    }

    sys.inject_fault(4, InjectedFault::chip(FaultKind::Permanent));
    println!("XED + Single-Chipkill: chip 4 died");
    let out = sys.read_line(0).unwrap();
    assert_eq!(out.data, line);
    println!("  one dead chip      -> corrected via catch-word erasure");

    sys.inject_fault(13, InjectedFault::chip(FaultKind::Permanent));
    println!("XED + Single-Chipkill: chip 13 died too");
    for l in 0..8 {
        let out = sys.read_line(l).unwrap();
        assert_eq!(out.data, line, "line {l}");
    }
    println!("  TWO dead chips     -> still corrected (Double-Chipkill-level!)");

    // A third failure is finally beyond the two check symbols.
    sys.inject_fault(1, InjectedFault::chip(FaultKind::Permanent));
    let err = sys.read_line(0).unwrap_err();
    println!("  three dead chips   -> {err}");

    // The x4 trade-off: 32-bit catch-words collide in hours, not
    // millennia — but collisions are detected and re-keyed, costing only a
    // CWR update (Section IX-A).
    let mut sys = XedChipkillSystem::new(7);
    let mut unlucky = line;
    unlucky[9] = sys.catch_word(9);
    sys.write_line(0, &unlucky);
    let out = sys.read_line(0).unwrap();
    assert_eq!(out.data, unlucky);
    assert!(out.collision);
    println!(
        "\n32-bit catch-word collision: detected, catch-word re-keyed ({} update), data intact",
        sys.stats().catch_word_updates
    );

    let s = sys.stats();
    println!(
        "\nstats: reads {} / reconstructions {} / serial modes {} / DUEs {}",
        s.reads, s.reconstructions, s.serial_modes, s.due_events
    );
}
