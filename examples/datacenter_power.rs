//! A performance/power what-if study: what does each protection scheme
//! cost a server running a mixed workload? (A compact version of the
//! paper's Figures 11 and 12.)
//!
//! Run with: `cargo run --release --example datacenter_power`

use xed::memsim::overlay::ReliabilityScheme;
use xed::memsim::sim::{SimConfig, Simulation};
use xed::memsim::workloads::{geometric_mean, Workload};

fn main() {
    // A representative slice of the paper's benchmark set: one streaming,
    // one latency-bound, one commercial, one compute-leaning.
    let workloads = ["libquantum", "mcf", "comm1", "dealII"];
    let schemes = ReliabilityScheme::figure11_set();
    let instructions = 200_000;

    println!("8 cores x {instructions} instructions each, DDR3-1600, Table V config\n");
    println!(
        "{:12} {:>34} {:>10} {:>10} {:>10}",
        "benchmark", "scheme", "exec(us)", "norm.time", "norm.power"
    );

    let mut ratios: Vec<(usize, f64, f64)> = Vec::new();
    for name in workloads {
        let workload = Workload::by_name(name).unwrap();
        let mut base: Option<(f64, f64)> = None;
        for (si, scheme) in schemes.iter().enumerate() {
            let result = Simulation::new(SimConfig {
                workload,
                scheme: *scheme,
                instructions_per_core: instructions,
                ..Default::default()
            })
            .run();
            let exec_us = result.exec_time_ns() / 1000.0;
            let power = result.power_mw();
            let (bt, bp) = *base.get_or_insert((exec_us, power));
            println!(
                "{:12} {:>34} {:>10.1} {:>10.3} {:>10.3}",
                name,
                scheme.name,
                exec_us,
                exec_us / bt,
                power / bp
            );
            ratios.push((si, exec_us / bt, power / bp));
        }
        println!();
    }

    println!("geometric means across benchmarks:");
    for (si, scheme) in schemes.iter().enumerate() {
        let time = geometric_mean(ratios.iter().filter(|r| r.0 == si).map(|r| r.1));
        let power = geometric_mean(ratios.iter().filter(|r| r.0 == si).map(|r| r.2));
        println!("  {:34} time {:.3}  power {:.3}", scheme.name, time, power);
    }
    println!(
        "\nThe paper's headline (Section XI): XED costs nothing over SECDED, while \
         Chipkill pays ~21% execution time and Double-Chipkill far more."
    );
}
