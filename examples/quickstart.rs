//! Quickstart: boot a XED memory system, break a chip, and watch XED
//! reconstruct the data.
//!
//! Run with: `cargo run --example quickstart`

use xed::core::fault::{FaultKind, InjectedFault};
use xed::core::{XedConfig, XedDimm};

fn main() {
    // Boot a 9-chip ECC-DIMM in XED mode: the memory controller programs a
    // random catch-word into each chip's Catch-Word Register and flips the
    // XED-Enable mode bit (paper Section V-A).
    let mut dimm = XedDimm::new(XedConfig::default());

    // Write a few cache lines (eight 64-bit words each; the controller
    // stores their XOR in the ninth chip — RAID-3 parity, Equation 1).
    for line in 0..16u64 {
        let data = [line.wrapping_mul(0x0101_0101_0101_0101); 8];
        dimm.write_line(line, &data);
    }

    // Disaster: chip 3 suffers a permanent whole-chip failure at runtime.
    dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    println!("chip 3 failed (permanent, whole chip)");

    // Reads still return correct data: chip 3's on-die ECC detects garbage
    // and transmits its catch-word; the controller recognizes it, treats
    // chip 3 as an erasure and rebuilds its word from parity (Equation 3).
    for line in 0..16u64 {
        let expected = [line.wrapping_mul(0x0101_0101_0101_0101); 8];
        let out = dimm
            .read_line(line)
            .expect("XED corrects a single chip failure");
        assert_eq!(out.data, expected);
        assert_eq!(out.reconstructed_chip, Some(3));
    }
    println!("all 16 lines read back correctly despite the dead chip");

    let stats = dimm.stats();
    println!("\ncontroller stats:");
    println!("  reads:               {}", stats.reads);
    println!("  catch-words seen:    {}", stats.catch_words_observed);
    println!("  reconstructions:     {}", stats.reconstructions);
    println!("  collisions:          {}", stats.collisions);
    println!("  uncorrectable (DUE): {}", stats.due_events);

    // A second chip failing in the same rank exceeds XED's single-parity
    // correction capability: the controller reports a detected
    // uncorrectable error instead of returning wrong data.
    dimm.inject_fault(6, InjectedFault::chip(FaultKind::Permanent));
    let err = dimm
        .read_line(0)
        .expect_err("two dead chips are uncorrectable");
    println!("\nsecond chip failed -> {err}");
}
