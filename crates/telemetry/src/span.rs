//! Cheap wall-clock span timers feeding log2 histograms.
//!
//! A [`Span`] captures `Instant::now()` on start and records the elapsed
//! nanoseconds into a [`Histogram`] when finished (explicitly via
//! [`Span::finish`] or implicitly on drop). Cost is two clock reads and
//! one histogram record per span — suitable for work items in the
//! microsecond range and up (the Monte-Carlo engine spans *chunks* of
//! 4096 trials, never individual 12 ns trials).
//!
//! Wall time is reporting-only metadata everywhere in this workspace:
//! nothing a span measures feeds back into simulation state, which is why
//! the XL005 waivers below are sound.

use crate::hist::Histogram;
use std::time::Instant;

/// An in-flight timed span; records into its histogram when finished.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
    done: bool,
}

impl<'a> Span<'a> {
    /// Starts timing against `hist`.
    ///
    /// Bind the result to a *named* variable: `let _ = Span::start(..)`
    /// drops the span immediately, recording a zero-width measurement
    /// (the Rust `_` pattern never binds, so Drop runs on the spot).
    /// Use `let _span = ...` to time a scope.
    #[inline]
    #[must_use = "dropping a Span records it; `let _ = ...` records a zero-width span"]
    pub fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            // Reporting-only wall clock; see module docs.
            start: Instant::now(), // xed-lint: allow(XL005)
            done: false,
        }
    }

    /// Stops the span and records the elapsed nanoseconds, returning them.
    pub fn finish(mut self) -> u64 {
        self.done = true;
        let ns = self.elapsed_ns();
        self.hist.record(ns);
        ns
    }

    /// Nanoseconds since the span started (saturating at `u64::MAX`).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.hist.record(self.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let h = Histogram::new();
        let span = Span::start(&h);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = span.finish();
        assert!(ns >= 1_000_000, "{ns}");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), ns);
    }

    #[test]
    fn drop_records_too() {
        let h = Histogram::new();
        {
            let _span = Span::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn underscore_binding_records_a_zero_width_span() {
        // The footgun #[must_use] + XL012's named-binding note guard
        // against: `_` never binds, so the span drops (and records)
        // immediately instead of timing the scope below it.
        let h = Histogram::new();
        #[allow(clippy::let_underscore_must_use)]
        let _ = Span::start(&h);
        assert_eq!(
            h.count(),
            1,
            "`let _ = Span::start(..)` must have recorded at the binding"
        );
        assert!(
            h.max() < 1_000_000,
            "the span must be zero-width (recorded instantly), saw {} ns",
            h.max()
        );
    }
}
