//! Fixed-capacity event rings: the last N interesting things that
//! happened, with zero allocation and wraparound overwrite.
//!
//! A [`Ring`] is single-owner by construction — each functional
//! controller (and each worker that wants one) embeds its own, so pushes
//! are plain stores with no synchronization. The ring keeps the most
//! recent [`Ring::capacity`] events plus a total-pushed count, so a run
//! report can show both "what just happened" and "how much was dropped".

/// What happened. The variants mirror the events the XED mechanism is
/// built around (paper Sections IV–VII): fault arrival, the on-die
/// detection signal, the controller's erasure repair, and the two failure
/// outcomes, plus the rarer control events worth seeing in a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A fault was injected into a chip (`a` = chip index).
    FaultInjected,
    /// A chip emitted its catch-word / raised its alert (`a` = chip).
    CatchWord,
    /// A chip's data was erasure-reconstructed (`a` = chip).
    ErasureReconstructed,
    /// A detected-uncorrectable error (`a` = suspect count).
    Due,
    /// A silent data corruption was (externally) observed.
    Sdc,
    /// A catch-word collision was detected and re-keyed (`a` = chip).
    Collision,
    /// The controller fell back to serial mode (`a` = catch-word count).
    SerialMode,
    /// A diagnosis procedure ran (`a` = 0 inter-line, 1 intra-line).
    Diagnosis,
}

/// One recorded event: a kind plus two free-form operands whose meaning
/// is documented per [`EventKind`] variant (`b` is usually an address or
/// line number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// First operand (commonly a chip index or count).
    pub a: u64,
    /// Second operand (commonly a line address; 0 when unused).
    pub b: u64,
}

impl Event {
    /// Builds an event.
    pub const fn new(kind: EventKind, a: u64, b: u64) -> Self {
        Self { kind, a, b }
    }
}

/// Default ring capacity: enough context to explain a failure without
/// bloating every controller (256 × 24 B = 6 KiB).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// A fixed-capacity ring of the most recent [`Event`]s.
#[derive(Debug, Clone)]
pub struct Ring<const N: usize = DEFAULT_RING_CAPACITY> {
    buf: [Event; N],
    /// Index the *next* push writes to.
    head: usize,
    /// Events currently held (saturates at `N`).
    len: usize,
    /// Events ever pushed (including overwritten ones).
    total: u64,
}

impl<const N: usize> Ring<N> {
    /// An empty ring.
    pub const fn new() -> Self {
        Self {
            buf: [Event::new(EventKind::FaultInjected, 0, 0); N],
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Capacity in events.
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events ever pushed, including ones the wraparound overwrote.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.len as u64
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, e: Event) {
        // indexing: head is kept < N by the modular bump below.
        self.buf[self.head] = e;
        self.head = (self.head + 1) % N;
        if self.len < N {
            self.len += 1;
        }
        self.total += 1;
    }

    /// Records a `(kind, a, b)` triple.
    #[inline]
    pub fn record(&mut self, kind: EventKind, a: u64, b: u64) {
        self.push(Event::new(kind, a, b));
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let start = (self.head + N - self.len) % N;
        // indexing: reduced mod N, always in bounds.
        (0..self.len).map(move |i| &self.buf[(start + i) % N])
    }

    /// Clears the ring (total-pushed resets too).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.total = 0;
    }
}

impl<const N: usize> Default for Ring<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: u64) -> Event {
        Event::new(EventKind::CatchWord, a, 0)
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut r: Ring<4> = Ring::new();
        assert!(r.is_empty());
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        let got: Vec<u64> = r.iter().map(|e| e.a).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_pushed(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        // The satellite test: push 10 into capacity 4; the ring holds the
        // last 4 in order and reports 6 dropped.
        let mut r: Ring<4> = Ring::new();
        for i in 1..=10u64 {
            r.push(ev(i));
        }
        let got: Vec<u64> = r.iter().map(|e| e.a).collect();
        assert_eq!(got, vec![7, 8, 9, 10]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 10);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut r: Ring<3> = Ring::new();
        for i in 1..=3u64 {
            r.push(ev(i));
        }
        assert_eq!(r.iter().map(|e| e.a).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 0);
        r.push(ev(4));
        assert_eq!(r.iter().map(|e| e.a).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r: Ring<2> = Ring::new();
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 0);
        r.push(ev(9));
        assert_eq!(r.iter().map(|e| e.a).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn default_capacity_is_documented() {
        let r: Ring = Ring::new();
        assert_eq!(r.capacity(), DEFAULT_RING_CAPACITY);
    }
}
