//! The workspace metric registry: every metric is a static, registered
//! exactly once in [`CATALOGUE`] under a stable dotted ID.
//!
//! IDs are namespaced by the crate that owns the *phenomenon* (not the
//! crate that happens to bump the counter): `faultsim.*` for the
//! Monte-Carlo engine, `memsim.*` for the cycle-level simulator,
//! `core.*` for the functional controllers, and `ecc.*` for decode-kernel
//! work. The ECC kernels themselves stay telemetry-free (their per-word
//! throughput is benchmarked to the nanosecond); `ecc.*` counters are
//! bumped by the kernels' *consumers* at batch boundaries.
//!
//! The catalogue below is machine-checked: xed-lint rule XL010 verifies
//! that every ID appears exactly once here, that every `metrics::NAME`
//! referenced from workspace code is registered, and that the DESIGN.md
//! §11 table lists every ID. Keep each entry on one line — the lint's
//! parser pairs the ID literal with the `metrics::NAME` token per line.

use crate::counter::Counter;
use crate::export::{MetricSample, SampleValue, Snapshot};
use crate::hist::Histogram;

/// Where a metric's live value comes from.
#[derive(Debug, Clone, Copy)]
pub enum MetricSource {
    /// A sharded monotonic counter.
    Counter(&'static Counter),
    /// A log2 histogram.
    Histogram(&'static Histogram),
}

/// One registered metric: stable ID, human help text, live source.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Stable dotted ID (e.g. `faultsim.trials`). Never renamed; reports
    /// and downstream tooling key on it.
    pub id: &'static str,
    /// One-line description for the table exporter and DESIGN.md §11.
    pub help: &'static str,
    /// The live metric behind the ID.
    pub source: MetricSource,
}

/// The metric statics. Instrumented code reaches these directly
/// (`registry::metrics::FAULTSIM_TRIALS.add(n)`); exporters go through
/// [`CATALOGUE`].
pub mod metrics {
    use crate::counter::Counter;
    use crate::hist::Histogram;

    // -- faultsim: the Monte-Carlo engine ---------------------------------
    pub static FAULTSIM_RUNS: Counter = Counter::new();
    pub static FAULTSIM_TRIALS: Counter = Counter::new();
    pub static FAULTSIM_ZERO_FAULT_TRIALS: Counter = Counter::new();
    pub static FAULTSIM_DUE: Counter = Counter::new();
    pub static FAULTSIM_SDC: Counter = Counter::new();
    pub static FAULTSIM_STEAL_CHUNKS: Counter = Counter::new();
    pub static FAULTSIM_STEAL_CHUNK_TRIALS: Histogram = Histogram::new();
    pub static FAULTSIM_CHUNK_NS: Histogram = Histogram::new();
    pub static FAULTSIM_TRIAL_NS: Histogram = Histogram::new();
    pub static FAULTSIM_BITSLICE_BLOCKS: Counter = Counter::new();
    pub static FAULTSIM_BITSLICE_SPILLS: Counter = Counter::new();
    pub static FAULTSIM_TAIL_RUNS: Counter = Counter::new();
    pub static FAULTSIM_TAIL_TRIALS: Counter = Counter::new();
    pub static FAULTSIM_TAIL_FORCED_PAIRS: Counter = Counter::new();
    pub static FAULTSIM_TAIL_FALLBACKS: Counter = Counter::new();

    // -- xedd: the reliability-as-a-service daemon ------------------------
    pub static XEDD_REQUESTS: Counter = Counter::new();
    pub static XEDD_CACHE_HITS: Counter = Counter::new();
    pub static XEDD_CACHE_MISSES: Counter = Counter::new();
    pub static XEDD_CACHE_EVICTIONS: Counter = Counter::new();
    pub static XEDD_COALESCED: Counter = Counter::new();
    pub static XEDD_EVALUATIONS: Counter = Counter::new();
    pub static XEDD_SHED: Counter = Counter::new();
    pub static XEDD_HTTP_ERRORS: Counter = Counter::new();
    pub static XEDD_STREAM_CHUNKS: Counter = Counter::new();
    pub static XEDD_EARLY_STOPS: Counter = Counter::new();
    pub static XEDD_QUEUE_DEPTH: Histogram = Histogram::new();
    pub static XEDD_TTFC_NS: Histogram = Histogram::new();
    pub static XEDD_REQUEST_NS: Histogram = Histogram::new();
    pub static XEDD_FLIGHT_DUMPS: Counter = Counter::new();
    pub static XEDD_PHASE_ADMISSION_NS: Histogram = Histogram::new();
    pub static XEDD_PHASE_CACHE_NS: Histogram = Histogram::new();
    pub static XEDD_PHASE_COALESCE_NS: Histogram = Histogram::new();
    pub static XEDD_PHASE_EVALUATE_NS: Histogram = Histogram::new();
    pub static XEDD_PHASE_STREAM_NS: Histogram = Histogram::new();
    pub static XEDD_ENDPOINT_HEALTHZ_NS: Histogram = Histogram::new();
    pub static XEDD_ENDPOINT_METRICS_NS: Histogram = Histogram::new();
    pub static XEDD_ENDPOINT_QUERY_NS: Histogram = Histogram::new();
    pub static XEDD_ENDPOINT_FLIGHT_NS: Histogram = Histogram::new();

    // -- telemetry: the tracing subsystem's own bookkeeping ----------------
    pub static TELEMETRY_TRACE_SPANS: Counter = Counter::new();
    pub static TELEMETRY_TRACE_DROPPED: Counter = Counter::new();

    // -- memsim: the cycle-level memory simulator -------------------------
    pub static MEMSIM_SCHED_READS_DONE: Counter = Counter::new();
    pub static MEMSIM_SCHED_WRITES_DONE: Counter = Counter::new();
    pub static MEMSIM_SCHED_QUEUE_DEPTH: Histogram = Histogram::new();
    pub static MEMSIM_SCHED_READ_LATENCY: Histogram = Histogram::new();
    pub static MEMSIM_ECCPATH_LINES_DECODED: Counter = Counter::new();
    pub static MEMSIM_ECCPATH_BEATS_CORRECTED: Counter = Counter::new();
    pub static MEMSIM_ECCPATH_DUE_LINES: Counter = Counter::new();

    // -- core: the functional controllers ---------------------------------
    pub static CORE_XED_READS: Counter = Counter::new();
    pub static CORE_XED_WRITES: Counter = Counter::new();
    pub static CORE_XED_CATCH_WORDS: Counter = Counter::new();
    pub static CORE_XED_RECONSTRUCTIONS: Counter = Counter::new();
    pub static CORE_XED_SERIAL_MODES: Counter = Counter::new();
    pub static CORE_XED_CATCHWORD_COLLISIONS: Counter = Counter::new();
    pub static CORE_XED_DIAGNOSIS_RUNS: Counter = Counter::new();
    pub static CORE_XED_DUE: Counter = Counter::new();
    pub static CORE_XED_SCRUB_WRITES: Counter = Counter::new();
    pub static CORE_ALERT_READS: Counter = Counter::new();
    pub static CORE_ALERT_ALERTS: Counter = Counter::new();
    pub static CORE_ALERT_RECONSTRUCTIONS: Counter = Counter::new();
    pub static CORE_ALERT_DIAGNOSES: Counter = Counter::new();
    pub static CORE_ALERT_DUE: Counter = Counter::new();
    pub static CORE_SECDED_READS: Counter = Counter::new();
    pub static CORE_SECDED_CORRECTIONS: Counter = Counter::new();
    pub static CORE_SECDED_DUE: Counter = Counter::new();

    // -- ecc: decode-kernel work, attributed by consumers -----------------
    pub static ECC_LINES_DECODED: Counter = Counter::new();
    pub static ECC_WORDS_DECODED: Counter = Counter::new();
    pub static ECC_CORRECTIONS: Counter = Counter::new();
    pub static ECC_DUE_WORDS: Counter = Counter::new();
    pub static ECC_RS_CORRECTIONS: Counter = Counter::new();
    pub static ECC_RS_ERASURES: Counter = Counter::new();
    pub static ECC_INFER_PROBES: Counter = Counter::new();
    pub static ECC_INFER_RECOVERED: Counter = Counter::new();
    pub static ECC_INFER_AMBIGUOUS: Counter = Counter::new();
}

/// Shorthand for a counter catalogue entry (keeps entries one-line for
/// the XL010 parser).
const fn c(id: &'static str, help: &'static str, m: &'static Counter) -> MetricDef {
    MetricDef {
        id,
        help,
        source: MetricSource::Counter(m),
    }
}

/// Shorthand for a histogram catalogue entry.
const fn h(id: &'static str, help: &'static str, m: &'static Histogram) -> MetricDef {
    MetricDef {
        id,
        help,
        source: MetricSource::Histogram(m),
    }
}

/// Every metric in the workspace, exactly once, in report order.
///
/// One entry per line — xed-lint XL010 parses this region.
#[rustfmt::skip]
pub static CATALOGUE: &[MetricDef] = &[
    c("faultsim.runs", "Monte-Carlo run_many invocations", &metrics::FAULTSIM_RUNS),
    c("faultsim.trials", "Monte-Carlo trials simulated (all schemes)", &metrics::FAULTSIM_TRIALS),
    c("faultsim.zero_fault_trials", "Trials that took the zero-fault fast path", &metrics::FAULTSIM_ZERO_FAULT_TRIALS),
    c("faultsim.due", "Trials ending in a detected-uncorrectable failure", &metrics::FAULTSIM_DUE),
    c("faultsim.sdc", "Trials ending in silent data corruption", &metrics::FAULTSIM_SDC),
    c("faultsim.steal.chunks", "Work-stealing chunks claimed by workers", &metrics::FAULTSIM_STEAL_CHUNKS),
    h("faultsim.steal.chunk_trials", "Trials per claimed work-stealing chunk", &metrics::FAULTSIM_STEAL_CHUNK_TRIALS),
    h("faultsim.chunk_ns", "Wall nanoseconds per work-stealing chunk", &metrics::FAULTSIM_CHUNK_NS),
    h("faultsim.trial_ns", "Average nanoseconds per trial, sampled per chunk", &metrics::FAULTSIM_TRIAL_NS),
    c("faultsim.bitslice.blocks", "64-lane blocks classified by the bit-sliced trial kernel", &metrics::FAULTSIM_BITSLICE_BLOCKS),
    c("faultsim.bitslice.spills", "Trials a bit-sliced block spilled to the scalar event machinery", &metrics::FAULTSIM_BITSLICE_SPILLS),
    c("faultsim.tail.runs", "Rare-event (importance-sampled) tail-estimation invocations", &metrics::FAULTSIM_TAIL_RUNS),
    c("faultsim.tail.trials", "Conditioned trials simulated by the rare-event engine", &metrics::FAULTSIM_TAIL_TRIALS),
    c("faultsim.tail.forced_pairs", "Rare-event trials using the pair-forced proposal", &metrics::FAULTSIM_TAIL_FORCED_PAIRS),
    c("faultsim.tail.fallbacks", "Tail requests that fell back to count-conditioning or plain MC", &metrics::FAULTSIM_TAIL_FALLBACKS),
    c("xedd.requests", "HTTP reliability queries accepted by the daemon", &metrics::XEDD_REQUESTS),
    c("xedd.cache.hits", "Queries answered from the canonical-key memo cache", &metrics::XEDD_CACHE_HITS),
    c("xedd.cache.misses", "Queries whose canonical key was not cached", &metrics::XEDD_CACHE_MISSES),
    c("xedd.cache.evictions", "Cached estimates evicted by the sharded LRU policy", &metrics::XEDD_CACHE_EVICTIONS),
    c("xedd.coalesced", "Requests that attached to an identical in-flight computation", &metrics::XEDD_COALESCED),
    c("xedd.evaluations", "Engine evaluations actually run (misses minus coalesced)", &metrics::XEDD_EVALUATIONS),
    c("xedd.shed", "Requests rejected 503 by admission control (queue full)", &metrics::XEDD_SHED),
    c("xedd.http.errors", "Malformed or invalid requests answered 4xx", &metrics::XEDD_HTTP_ERRORS),
    c("xedd.stream.chunks", "Partial-confidence chunks streamed to clients", &metrics::XEDD_STREAM_CHUNKS),
    c("xedd.early_stops", "Streaming evaluations stopped early by epsilon", &metrics::XEDD_EARLY_STOPS),
    h("xedd.queue.depth", "Accepted-connection queue depth observed at each enqueue", &metrics::XEDD_QUEUE_DEPTH),
    h("xedd.ttfc_ns", "Nanoseconds from request parse to first response chunk", &metrics::XEDD_TTFC_NS),
    h("xedd.request_ns", "Nanoseconds from request parse to response complete", &metrics::XEDD_REQUEST_NS),
    c("xedd.flight.dumps", "Flight-recorder dumps (panic, shed burst, or /debug/flight)", &metrics::XEDD_FLIGHT_DUMPS),
    h("xedd.phase.admission_ns", "Nanoseconds a request waited in the admission queue", &metrics::XEDD_PHASE_ADMISSION_NS),
    h("xedd.phase.cache_ns", "Nanoseconds canonicalizing the query and probing the memo cache", &metrics::XEDD_PHASE_CACHE_NS),
    h("xedd.phase.coalesce_ns", "Nanoseconds a follower waited on a coalesced leader", &metrics::XEDD_PHASE_COALESCE_NS),
    h("xedd.phase.evaluate_ns", "Nanoseconds inside engine evaluation (leader side)", &metrics::XEDD_PHASE_EVALUATE_NS),
    h("xedd.phase.stream_ns", "Nanoseconds streaming partial-confidence chunks to a client", &metrics::XEDD_PHASE_STREAM_NS),
    h("xedd.endpoint.healthz_ns", "Request latency of the /healthz endpoint", &metrics::XEDD_ENDPOINT_HEALTHZ_NS),
    h("xedd.endpoint.metrics_ns", "Request latency of the /metrics endpoint", &metrics::XEDD_ENDPOINT_METRICS_NS),
    h("xedd.endpoint.query_ns", "Request latency of the /v1/query endpoint", &metrics::XEDD_ENDPOINT_QUERY_NS),
    h("xedd.endpoint.flight_ns", "Request latency of the /debug/flight endpoint", &metrics::XEDD_ENDPOINT_FLIGHT_NS),
    c("telemetry.trace.spans", "Span events written into the tracing flight rings", &metrics::TELEMETRY_TRACE_SPANS),
    c("telemetry.trace.dropped", "Span events that overwrote an unread flight-ring slot", &metrics::TELEMETRY_TRACE_DROPPED),
    c("memsim.sched.reads_done", "Demand reads completed by the memory controller", &metrics::MEMSIM_SCHED_READS_DONE),
    c("memsim.sched.writes_done", "Writebacks issued to DRAM", &metrics::MEMSIM_SCHED_WRITES_DONE),
    h("memsim.sched.queue_depth", "Read-queue depth observed at each enqueue", &metrics::MEMSIM_SCHED_QUEUE_DEPTH),
    h("memsim.sched.read_latency", "Per-read latency in memory cycles (enqueue to data)", &metrics::MEMSIM_SCHED_READ_LATENCY),
    c("memsim.eccpath.lines_decoded", "Cache lines pushed through the functional decode stage", &metrics::MEMSIM_ECCPATH_LINES_DECODED),
    c("memsim.eccpath.beats_corrected", "Beats whose single-bit error the (72,64) code corrected", &metrics::MEMSIM_ECCPATH_BEATS_CORRECTED),
    c("memsim.eccpath.due_lines", "Lines with at least one detected-uncorrectable beat", &metrics::MEMSIM_ECCPATH_DUE_LINES),
    c("core.xed.reads", "Cache-line reads served by the XED controller", &metrics::CORE_XED_READS),
    c("core.xed.writes", "Cache-line writes (excluding scrubs and diagnosis)", &metrics::CORE_XED_WRITES),
    c("core.xed.catch_words", "Catch-words observed on the bus", &metrics::CORE_XED_CATCH_WORDS),
    c("core.xed.reconstructions", "Lines erasure-reconstructed from RAID-3 parity", &metrics::CORE_XED_RECONSTRUCTIONS),
    c("core.xed.serial_modes", "Serial-mode episodes (multiple catch-words)", &metrics::CORE_XED_SERIAL_MODES),
    c("core.xed.catchword_collisions", "Catch-word collisions detected and re-keyed", &metrics::CORE_XED_CATCHWORD_COLLISIONS),
    c("core.xed.diagnosis_runs", "Inter-Line plus Intra-Line diagnosis procedures run", &metrics::CORE_XED_DIAGNOSIS_RUNS),
    c("core.xed.due", "Detected-uncorrectable errors reported by XED controllers", &metrics::CORE_XED_DUE),
    c("core.xed.scrub_writes", "Scrub write-backs issued after corrections", &metrics::CORE_XED_SCRUB_WRITES),
    c("core.alert.reads", "Reads served by the ALERT_n-style controller", &metrics::CORE_ALERT_READS),
    c("core.alert.alerts", "ALERT_n assertions observed", &metrics::CORE_ALERT_ALERTS),
    c("core.alert.reconstructions", "Lines the alert controller corrected via parity", &metrics::CORE_ALERT_RECONSTRUCTIONS),
    c("core.alert.diagnoses", "Pattern-diagnosis procedures run (anonymous mode)", &metrics::CORE_ALERT_DIAGNOSES),
    c("core.alert.due", "DUEs reported by the alert controller", &metrics::CORE_ALERT_DUE),
    c("core.secded.reads", "Reads served by the rank-level SEC-DED DIMM", &metrics::CORE_SECDED_READS),
    c("core.secded.corrections", "Single-bit corrections by the rank-level SEC-DED code", &metrics::CORE_SECDED_CORRECTIONS),
    c("core.secded.due", "DUEs reported by the rank-level SEC-DED DIMM", &metrics::CORE_SECDED_DUE),
    c("ecc.lines_decoded", "64-byte lines through the batched decode kernels", &metrics::ECC_LINES_DECODED),
    c("ecc.words_decoded", "Codewords through the word decode kernels", &metrics::ECC_WORDS_DECODED),
    c("ecc.corrections", "Codewords corrected by SEC-DED/CRC8 decode", &metrics::ECC_CORRECTIONS),
    c("ecc.due_words", "Codewords flagged detected-uncorrectable", &metrics::ECC_DUE_WORDS),
    c("ecc.rs.corrections", "Reed-Solomon symbols corrected (chipkill decode)", &metrics::ECC_RS_CORRECTIONS),
    c("ecc.rs.erasures", "Reed-Solomon erasure reconstructions", &metrics::ECC_RS_ERASURES),
    c("ecc.infer.probes", "Retention probes issued by BEER-style code inference", &metrics::ECC_INFER_PROBES),
    c("ecc.infer.recovered", "Inference runs that recovered the full matrix bit-exactly", &metrics::ECC_INFER_RECOVERED),
    c("ecc.infer.ambiguous", "Inference runs ending in a certified ambiguity class", &metrics::ECC_INFER_AMBIGUOUS),
];

/// Looks up a metric definition by ID.
pub fn find(id: &str) -> Option<&'static MetricDef> {
    CATALOGUE.iter().find(|d| d.id == id)
}

/// The live value of a counter metric (None if the ID is unknown or a
/// histogram).
pub fn counter_value(id: &str) -> Option<u64> {
    match find(id)?.source {
        MetricSource::Counter(m) => Some(m.value()),
        MetricSource::Histogram(_) => None,
    }
}

/// Captures every registered metric into an immutable [`Snapshot`].
///
/// Each metric is read atomically per field; a snapshot taken while
/// writers run observes some valid intermediate state of each metric
/// (never torn values), and successive snapshots are monotone.
pub fn snapshot() -> Snapshot {
    let samples = CATALOGUE
        .iter()
        .map(|def| MetricSample {
            id: def.id,
            help: def.help,
            value: match def.source {
                MetricSource::Counter(m) => SampleValue::Counter(m.value()),
                MetricSource::Histogram(m) => SampleValue::Histogram(Box::new(m.sample())),
            },
        })
        .collect();
    Snapshot { samples }
}

/// Zeroes every registered metric. Run-report binaries call this before
/// the measured region so the snapshot covers exactly one run.
pub fn reset_all() {
    for def in CATALOGUE {
        match def.source {
            MetricSource::Counter(m) => m.reset(),
            MetricSource::Histogram(m) => m.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_ids_are_unique_and_dotted() {
        let mut seen = std::collections::HashSet::new();
        for def in CATALOGUE {
            assert!(seen.insert(def.id), "duplicate metric id {}", def.id);
            assert!(def.id.contains('.'), "{} is not dotted", def.id);
            assert!(
                def.id
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{} has chars outside [a-z0-9._]",
                def.id
            );
            assert!(!def.help.is_empty(), "{} has no help text", def.id);
        }
    }

    #[test]
    fn required_ids_are_registered() {
        // The IDs named in ISSUE/DESIGN docs; renaming any of these is a
        // breaking change to the report schema.
        for id in [
            "faultsim.trials",
            "ecc.rs.corrections",
            "memsim.sched.queue_depth",
            "core.xed.catchword_collisions",
            "ecc.lines_decoded",
            "xedd.cache.hits",
            "xedd.coalesced",
            "xedd.shed",
        ] {
            assert!(find(id).is_some(), "required metric {id} missing");
        }
    }

    #[test]
    fn snapshot_covers_the_whole_catalogue() {
        let snap = snapshot();
        assert_eq!(snap.samples.len(), CATALOGUE.len());
        for (s, d) in snap.samples.iter().zip(CATALOGUE.iter()) {
            assert_eq!(s.id, d.id);
        }
    }

    #[test]
    fn counter_value_reads_live_state() {
        // Use a metric no other test touches.
        metrics::CORE_SECDED_READS.reset();
        metrics::CORE_SECDED_READS.add(41);
        metrics::CORE_SECDED_READS.incr();
        assert_eq!(counter_value("core.secded.reads"), Some(42));
        assert_eq!(counter_value("memsim.sched.queue_depth"), None);
        assert_eq!(counter_value("no.such.metric"), None);
        metrics::CORE_SECDED_READS.reset();
    }
}
