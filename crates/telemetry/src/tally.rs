//! Owned, thread-local counter blocks — the merge primitive behind the
//! workspace's per-run stat structs.
//!
//! A [`Tallies<N>`] is a fixed array of `u64` counts with plain
//! (non-atomic) adds: the right shape for code on a nanosecond budget,
//! like the Monte-Carlo trial loop, where even an uncontended atomic is
//! measurable. Workers accumulate into their own block and the driver
//! folds blocks together with [`Tallies::merge`] at the join point; every
//! operation is a commutative add, so the fold order can never change the
//! totals (the foundation of the engine's thread-count invariance).
//!
//! `RunStats`, `AlertStats`, and `EccPathStats` are all thin snapshot
//! views over blocks of this type (see the equivalence tests in
//! `tests/telemetry_equivalence.rs`).

/// A fixed-size block of `u64` tallies with commutative merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tallies<const N: usize> {
    vals: [u64; N],
}

impl<const N: usize> Tallies<N> {
    /// A zeroed block.
    pub const fn new() -> Self {
        Self { vals: [0; N] }
    }

    /// A block with explicit initial values.
    pub const fn from_array(vals: [u64; N]) -> Self {
        Self { vals }
    }

    /// Adds `n` to slot `i`.
    ///
    /// Callers pass enum discriminants strictly below `N`; a bad index
    /// is a programming error surfaced in tests.
    #[inline]
    pub fn add(&mut self, i: usize, n: u64) {
        // indexing: slot contract above — discriminants are < N.
        self.vals[i] = self.vals[i].wrapping_add(n);
    }

    /// Adds one to slot `i`.
    #[inline]
    pub fn bump(&mut self, i: usize) {
        self.add(i, 1);
    }

    /// The value in slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.vals[i]
    }

    /// Element-wise wrapping sum of two blocks.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = *self;
        out.merge_from(other);
        out
    }

    /// In-place element-wise wrapping add of `other` into `self`.
    pub fn merge_from(&mut self, other: &Self) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a = a.wrapping_add(*b);
        }
    }

    /// Sum of every slot.
    pub fn total(&self) -> u64 {
        self.vals.iter().fold(0u64, |a, &v| a.wrapping_add(v))
    }

    /// The underlying array.
    pub fn as_array(&self) -> &[u64; N] {
        &self.vals
    }
}

impl<const N: usize> Default for Tallies<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bump_get() {
        let mut t: Tallies<3> = Tallies::new();
        t.add(0, 5);
        t.bump(1);
        t.bump(1);
        assert_eq!(t.as_array(), &[5, 2, 0]);
        assert_eq!(t.total(), 7);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = Tallies::from_array([1u64, 2, 3]);
        let b = Tallies::from_array([10, 20, 30]);
        let c = Tallies::from_array([100, 200, 300]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b).as_array(), &[11, 22, 33]);
    }

    #[test]
    fn merge_from_matches_merge() {
        let a = Tallies::from_array([7u64, 8]);
        let b = Tallies::from_array([1, 2]);
        let mut m = a;
        m.merge_from(&b);
        assert_eq!(m, a.merge(&b));
    }

    #[test]
    fn wrapping_never_panics() {
        let mut t = Tallies::from_array([u64::MAX]);
        t.add(0, 2);
        assert_eq!(t.get(0), 1);
    }
}
