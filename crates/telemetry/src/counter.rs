//! Sharded, lock-free, allocation-free monotonic counters.
//!
//! A [`Counter`] is a fixed array of cache-line-padded `AtomicU64` shards.
//! Each thread is assigned one shard on first use (a round-robin ticket,
//! cached in a thread-local), so concurrent writers on different threads
//! touch different cache lines and an `add` is a single uncontended
//! relaxed `fetch_add`. Reads sum the shards; because every update is an
//! atomic add of the exact amount, the sum over shards is *deterministic*
//! — the same set of `add` calls yields the same total no matter how
//! threads were scheduled or which shards they landed on (proved by the
//! merge-determinism tests below).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. Enough that the 8–16 worker threads the
/// engines spawn rarely share a shard; small enough that a `Counter`
/// static is one page-fraction (16 × 64 B = 1 KiB).
pub const SHARDS: usize = 16;

/// One cache line worth of counter, so shards never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

/// Round-robin ticket source for thread → shard assignment.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned once on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The shard index for the calling thread.
#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|&i| i)
}

/// A sharded, monotonically increasing event counter.
///
/// `const`-constructible so metrics live in statics; see
/// [`crate::registry`] for the workspace catalogue.
#[derive(Debug)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        // indexing: shard_index() is `thread id % SHARDS`, always in bounds.
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total: the wrapping sum over all shards. Concurrent
    /// writers may land between shard loads, so a racing read observes
    /// some value between "all adds that happened-before" and "all adds
    /// so far" — never a torn or decreasing total once writers stop.
    /// Acquire pairs with the hot path's Relaxed adds: any write that
    /// happened-before the snapshot is visible in it (XA102 boundary).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Acquire)))
    }

    /// Zeroes every shard (run-report binaries reset before a run).
    /// Release publishes the zeroes to subsequent Acquire snapshots.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Release);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_value() {
        let c = Counter::new();
        assert_eq!(c.value(), 0);
        c.add(5);
        c.incr();
        assert_eq!(c.value(), 6);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn merge_is_deterministic_across_thread_counts() {
        // The satellite test: N threads each add a known amount; the
        // shard-sum must be exact for 1, 2, 4, and 8 threads regardless of
        // which shards the threads were ticketed onto.
        for threads in [1usize, 2, 4, 8] {
            let c = Counter::new();
            let per_thread: u64 = 100_000;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let c = &c;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            // Mixed add sizes so the totals aren't trivially
                            // symmetric.
                            c.add(1 + ((t as u64 + i) % 3));
                        }
                    });
                }
            });
            let expected: u64 = (0..threads as u64)
                .map(|t| (0..per_thread).map(|i| 1 + ((t + i) % 3)).sum::<u64>())
                .sum();
            assert_eq!(c.value(), expected, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_shards_still_exact() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..(2 * SHARDS) {
                let c = &c;
                scope.spawn(move || c.add(7));
            }
        });
        assert_eq!(c.value(), 7 * 2 * SHARDS as u64);
    }
}
