//! Request-scoped tracing: fixed-size span events in per-thread flight
//! rings (DESIGN.md §16).
//!
//! A *span* is one `(trace id, span id, parent, phase, t_start, t_end)`
//! record; a *trace* is every span sharing one 64-bit trace id. `xedd`
//! opens a trace per request (or honors one propagated via the
//! `X-Xedd-Trace` header) and records a span per pipeline phase —
//! admission wait, cache lookup, coalescer handoff, engine evaluation,
//! each work-stealing scheduler chunk — so a slow request decomposes
//! into exactly the stages that cost time.
//!
//! The write path is allocation-free (xed-lint XL009, xed-analyze
//! XA100/XA101 over [`record_span`] and [`TraceBuf::record`]): events are
//! fixed-size `Copy` structs written into static ring buffers guarded by
//! per-slot mutexes, with each thread pinned round-robin to one of
//! [`FLIGHT_SLOTS`] slots. The rings double as a **flight recorder**: the
//! last [`TRACE_BUF_EVENTS`] spans per slot survive until overwritten and
//! are dumped on panic, on 503 shed bursts, and on demand via `xedd`'s
//! `/debug/flight` endpoint. Exporting (which allocates) lives in
//! [`crate::export`], never here.
//!
//! Tracing is gated by its own switch, default **off** — independent of
//! the metric switch [`crate::enabled`] — so the always-on counters stay
//! free of tracing costs and the bench suite can bound the traced
//! overhead explicitly.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The pipeline stage a span covers. Every variant is documented in the
/// DESIGN.md §16 phase table — xed-lint rule XL012 enforces the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Whole request, accept to last response byte (the root span).
    Request,
    /// Admission-queue wait: accept enqueue to worker dequeue.
    Admission,
    /// Canonicalization plus memo-cache probe.
    CacheLookup,
    /// Leader side of a coalesced evaluation (covers the engine run).
    CoalesceLead,
    /// Follower attached to an in-flight leader; `a` holds the leader's
    /// trace id (the cross-trace handoff edge).
    CoalesceFollow,
    /// One `engine::evaluate_streaming` call.
    Evaluate,
    /// One work-stealing scheduler chunk; `a` holds the trial count.
    SchedulerChunk,
    /// Streamed chunked-transfer replay of partials to the client.
    Stream,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::Request,
        Phase::Admission,
        Phase::CacheLookup,
        Phase::CoalesceLead,
        Phase::CoalesceFollow,
        Phase::Evaluate,
        Phase::SchedulerChunk,
        Phase::Stream,
    ];

    /// Stable lowercase label (the `name` field in exported traces).
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Request => "request",
            Phase::Admission => "admission",
            Phase::CacheLookup => "cache_lookup",
            Phase::CoalesceLead => "coalesce_lead",
            Phase::CoalesceFollow => "coalesce_follow",
            Phase::Evaluate => "evaluate",
            Phase::SchedulerChunk => "scheduler_chunk",
            Phase::Stream => "stream",
        }
    }
}

/// One recorded span: fixed-size, `Copy`, no payload pointers.
///
/// Times are nanoseconds on the process-local monotonic clock
/// ([`now_ns`]); they order spans within one process and never appear in
/// response bodies (determinism stays untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The request's 64-bit trace id (never 0).
    pub trace_id: u64,
    /// This span's id, unique within the process (never 0).
    pub span_id: u32,
    /// Parent span id; 0 marks a root span.
    pub parent: u32,
    /// The pipeline stage covered.
    pub phase: Phase,
    /// Phase-specific attribute (trial count for `SchedulerChunk`,
    /// leader trace id for `CoalesceFollow`, 0 otherwise).
    pub a: u64,
    /// Monotonic start tick, nanoseconds.
    pub t_start: u64,
    /// Monotonic end tick, nanoseconds.
    pub t_end: u64,
}

impl SpanEvent {
    /// The all-zero placeholder ring slots start as.
    pub const EMPTY: SpanEvent = SpanEvent {
        trace_id: 0,
        span_id: 0,
        parent: 0,
        phase: Phase::Request,
        a: 0,
        t_start: 0,
        t_end: 0,
    };
}

/// Span events retained per flight-recorder slot.
pub const TRACE_BUF_EVENTS: usize = 128;

/// Flight-recorder slots; threads are pinned round-robin, so this bounds
/// write contention, not thread count.
pub const FLIGHT_SLOTS: usize = 32;

/// A fixed-capacity ring of span events: the per-slot flight recorder.
/// Same overwrite-oldest discipline as [`crate::Ring`], const-capacity,
/// allocation-free.
#[derive(Debug)]
pub struct TraceBuf {
    buf: [SpanEvent; TRACE_BUF_EVENTS],
    /// Next write position (< `TRACE_BUF_EVENTS`).
    head: usize,
    /// Live events (≤ `TRACE_BUF_EVENTS`).
    len: usize,
    /// Lifetime writes, including overwritten ones.
    total: u64,
}

impl TraceBuf {
    /// An empty ring; `const` so slots embed in statics.
    #[must_use]
    pub const fn new() -> Self {
        TraceBuf {
            buf: [SpanEvent::EMPTY; TRACE_BUF_EVENTS],
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Records `e`, overwriting the oldest event when full; returns
    /// whether an event was overwritten (lost to the recorder).
    #[inline]
    pub fn record(&mut self, e: SpanEvent) -> bool {
        let overwrote = self.len == TRACE_BUF_EVENTS;
        // indexing: head is kept < TRACE_BUF_EVENTS by the modular bump below.
        self.buf[self.head] = e;
        self.head = (self.head + 1) % TRACE_BUF_EVENTS;
        if self.len < TRACE_BUF_EVENTS {
            self.len += 1;
        }
        self.total += 1;
        overwrote
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        let start = (self.head + TRACE_BUF_EVENTS - self.len) % TRACE_BUF_EVENTS;
        (0..self.len).map(move |i| {
            // indexing: reduced mod TRACE_BUF_EVENTS, within the buffer.
            &self.buf[(start + i) % TRACE_BUF_EVENTS]
        })
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime writes, including overwritten ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Forgets every retained event (capacity is untouched).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.total = 0;
    }
}

impl Default for TraceBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// The static flight-recorder rings, one mutex per slot.
static SLOTS: [Mutex<TraceBuf>; FLIGHT_SLOTS] =
    [const { Mutex::new(TraceBuf::new()) }; FLIGHT_SLOTS];

/// Round-robin slot assignment cursor for new threads.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's pinned slot; `usize::MAX` until first use.
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };

    /// The span context engine code inherits ([`current`]/[`set_current`]).
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

/// The tracing switch, independent of the metric switch and default
/// **off**: a daemon opts in at startup, batch binaries stay untraced.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is enabled — a single relaxed load, the only
/// cost tracing adds when off.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. Release pairs with the
/// hot path's Relaxed [`trace_enabled`] loads (XA102 boundary).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Release);
}

/// Trace-id sequence; mixed through the SplitMix64 finalizer so ids are
/// well-spread 64-bit values, not small integers.
static TRACE_IDS: AtomicU64 = AtomicU64::new(0);

/// Span-id sequence (starts at 1; 0 is the root-parent sentinel).
static SPAN_IDS: AtomicU32 = AtomicU32::new(1);

/// The SplitMix64 output finalizer — the same mixing discipline the
/// workspace RNG streams build on.
const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh process-unique trace id, never 0.
pub fn next_trace_id() -> u64 {
    let n = TRACE_IDS.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    let mixed = mix64(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// A fresh process-unique span id, never 0.
pub fn next_span_id() -> u32 {
    let raw = SPAN_IDS.fetch_add(1, Ordering::Relaxed);
    if raw == 0 {
        u32::MAX
    } else {
        raw
    }
}

/// The process-local monotonic epoch every `t_start`/`t_end` counts from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call in this process — the monotonic tick
/// spans are stamped with. Wall time never reaches response bodies.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now); // xed-lint: allow(XL005)
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A propagation handle: the ids a child span needs from its parent.
/// `Copy`, so it crosses thread boundaries by value (thread-locals do
/// not propagate into scoped workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The request's trace id.
    pub trace_id: u64,
    /// The span to parent new children under.
    pub span_id: u32,
}

/// This thread's inherited span context, if a request set one.
pub fn current() -> Option<SpanCtx> {
    // UFCS so the analyzer resolves these to std::cell::Cell, not to
    // same-named workspace methods.
    CURRENT.with(Cell::get)
}

/// Sets (or clears) this thread's span context for downstream callees.
pub fn set_current(ctx: Option<SpanCtx>) {
    CURRENT.with(|c| Cell::set(c, ctx));
}

/// This thread's flight-recorder slot, assigned round-robin on first use.
fn slot_index() -> usize {
    SLOT.with(|s| {
        // UFCS so the analyzer resolves these to std::cell::Cell, not to
        // same-named workspace methods.
        let mut i = Cell::get(s);
        if i == usize::MAX {
            i = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % FLIGHT_SLOTS;
            Cell::set(s, i);
        }
        i
    })
}

/// Records one span event into this thread's flight ring. The hot write
/// path: one relaxed gate load when tracing is off; a counter bump, an
/// uncontended per-slot mutex and a fixed-size array write when on.
#[inline]
pub fn record_span(e: SpanEvent) {
    if !trace_enabled() {
        return;
    }
    crate::registry::metrics::TELEMETRY_TRACE_SPANS.incr();
    let i = slot_index();
    // indexing: slot_index() reduces modulo FLIGHT_SLOTS.
    let mut buf = match SLOTS[i].lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if buf.record(e) {
        crate::registry::metrics::TELEMETRY_TRACE_DROPPED.incr();
    }
}

/// Visits every flight-recorder slot in order under its lock — the
/// boundary the exporters and dump paths read through.
pub fn with_slots(mut f: impl FnMut(usize, &TraceBuf)) {
    for (i, slot) in SLOTS.iter().enumerate() {
        let buf = match slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(i, &buf);
    }
}

/// Empties every flight-recorder slot (tests and selftest isolation).
pub fn clear_all() {
    for slot in SLOTS.iter() {
        let mut buf = match slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, span_id: u32) -> SpanEvent {
        SpanEvent {
            trace_id,
            span_id,
            parent: 0,
            phase: Phase::Request,
            a: 0,
            t_start: 1,
            t_end: 2,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_it() {
        let mut buf = TraceBuf::new();
        assert!(buf.is_empty());
        for i in 0..TRACE_BUF_EVENTS {
            assert!(
                !buf.record(ev(1, i as u32 + 1)),
                "no overwrite while filling"
            );
        }
        assert_eq!(buf.len(), TRACE_BUF_EVENTS);
        assert!(buf.record(ev(1, 10_000)), "full ring must report overwrite");
        assert_eq!(buf.len(), TRACE_BUF_EVENTS);
        assert_eq!(buf.total_recorded(), TRACE_BUF_EVENTS as u64 + 1);
        let first = buf.iter().next().expect("ring is full");
        assert_eq!(first.span_id, 2, "oldest event (span 1) was evicted");
        let last = buf.iter().last().expect("ring is full");
        assert_eq!(last.span_id, 10_000);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.total_recorded(), 0);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        let s1 = next_span_id();
        let s2 = next_span_id();
        assert_ne!(s1, 0);
        assert_ne!(s2, 0);
        assert_ne!(s1, s2);
    }

    #[test]
    fn trace_ids_follow_splitmix_mixing() {
        // The generator is the SplitMix64 finalizer over a golden-ratio
        // stepped sequence: consecutive ids must not be consecutive ints.
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(b.wrapping_sub(a) != 1, "ids must be mixed, not sequential");
    }

    #[test]
    fn recording_respects_the_gate_and_lands_in_a_slot() {
        // Serialized via the slot rings themselves: this test owns its
        // thread, and asserts only deltas attributable to its own writes.
        let marker = 0xFEED_FACE_0000_0001;
        set_trace_enabled(false);
        record_span(ev(marker, 1));
        let mut seen = 0usize;
        with_slots(|_, buf| seen += buf.iter().filter(|e| e.trace_id == marker).count());
        assert_eq!(seen, 0, "gated-off record_span must write nothing");

        set_trace_enabled(true);
        record_span(ev(marker, 2));
        set_trace_enabled(false);
        let mut seen = 0usize;
        with_slots(|_, buf| seen += buf.iter().filter(|e| e.trace_id == marker).count());
        assert_eq!(seen, 1, "enabled record_span must land in one slot");
    }

    #[test]
    fn span_ctx_is_thread_local() {
        let ctx = SpanCtx {
            trace_id: 7,
            span_id: 3,
        };
        set_current(Some(ctx));
        assert_eq!(current(), Some(ctx));
        let other = std::thread::spawn(current).join().expect("thread runs");
        assert_eq!(other, None, "span context must not leak across threads");
        set_current(None);
        assert_eq!(current(), None);
    }

    #[test]
    fn every_phase_has_a_distinct_label() {
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::ALL.len());
    }
}
