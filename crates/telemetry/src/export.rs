//! Snapshot and export layer: immutable captures of the registry plus
//! the two render targets every reporting binary shares — JSON lines for
//! machines and an aligned text table for humans.
//!
//! This is the one part of the crate allowed to allocate: it runs once
//! per report, never on a hot path. JSON is hand-rendered (the workspace
//! has no serialization dependency); the envelope matches the
//! `xed-report-v1` schema documented in DESIGN.md §11, which the
//! `BENCH_*.json` trajectories and `results/fig*.json` sidecars share.

use crate::hist::{bucket_bounds, BUCKETS};
use crate::trace::SpanEvent;

/// An immutable capture of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Per-bucket observation counts (see [`crate::hist::bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Wrapping sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSample {
    /// Total observations (sum over buckets — internally consistent by
    /// construction, even if writers raced the capture).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Mean recorded value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// values: the inclusive high edge of the log2 bucket the rank lands
    /// in (0 for an empty histogram). Quantiles from log2 buckets are
    /// resolution-limited by construction — good to a factor of 2, which
    /// is what a latency dashboard needs.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum = cum.wrapping_add(b);
            if cum >= rank {
                return bucket_bounds(i).1;
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lo, hi, count)` triples, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
    }
}

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter's total.
    Counter(u64),
    /// A histogram capture (boxed: the fixed bucket array dwarfs the
    /// counter variant, and snapshots are cold-path only).
    Histogram(Box<HistogramSample>),
}

/// One metric in a snapshot: identity plus captured value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Stable dotted ID.
    pub id: &'static str,
    /// One-line description.
    pub help: &'static str,
    /// The captured value.
    pub value: SampleValue,
}

/// An immutable capture of every registered metric, in catalogue order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// One sample per catalogue entry.
    pub samples: Vec<MetricSample>,
}

impl Snapshot {
    /// The sample for `id`, if registered.
    pub fn get(&self, id: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.id == id)
    }

    /// The counter total for `id` (None for histograms / unknown IDs).
    pub fn counter(&self, id: &str) -> Option<u64> {
        match &self.get(id)?.value {
            SampleValue::Counter(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }

    /// The histogram capture for `id` (None for counters / unknown IDs).
    pub fn histogram(&self, id: &str) -> Option<&HistogramSample> {
        match &self.get(id)?.value {
            SampleValue::Histogram(h) => Some(h.as_ref()),
            SampleValue::Counter(_) => None,
        }
    }

    /// Samples with any recorded activity (non-zero counters, non-empty
    /// histograms).
    pub fn active(&self) -> impl Iterator<Item = &MetricSample> {
        self.samples.iter().filter(|s| match &s.value {
            SampleValue::Counter(v) => *v > 0,
            SampleValue::Histogram(h) => h.count() > 0,
        })
    }

    /// The change between `baseline` (captured earlier) and `self`
    /// (captured later): a snapshot containing only the metrics whose
    /// value moved, with counters replaced by their *delta*.
    ///
    /// Counters are monotonic, so the delta is a plain wrapping
    /// subtraction. A histogram that moved is carried over as-is from
    /// `self` (bucket-wise subtraction would fabricate a "histogram of
    /// the interval" that racing writers can skew); callers that need
    /// interval counts should diff `count()` themselves. Metrics absent
    /// from `baseline` (e.g. a newer catalogue) are treated as starting
    /// from zero. The verify-matrix driver uses this to pin the
    /// telemetry a replayed trial is expected to publish.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let samples = self
            .samples
            .iter()
            .filter_map(|s| {
                let value = match (&s.value, baseline.get(s.id).map(|b| &b.value)) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(then))) => {
                        let delta = now.wrapping_sub(*then);
                        (delta != 0).then_some(SampleValue::Counter(delta))
                    }
                    (SampleValue::Counter(now), _) => {
                        (*now != 0).then_some(SampleValue::Counter(*now))
                    }
                    (SampleValue::Histogram(h), Some(SampleValue::Histogram(b))) => {
                        (h != b).then(|| s.value.clone())
                    }
                    (SampleValue::Histogram(h), _) => (h.count() != 0).then(|| s.value.clone()),
                };
                value.map(|value| MetricSample {
                    id: s.id,
                    help: s.help,
                    value,
                })
            })
            .collect();
        Snapshot { samples }
    }

    /// Renders every metric as one JSON object per line:
    ///
    /// ```text
    /// {"id":"faultsim.trials","kind":"counter","value":1000000}
    /// {"id":"faultsim.chunk_ns","kind":"histogram","count":245,...}
    /// ```
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            render_sample_json(&mut out, s);
            out.push('\n');
        }
        out
    }

    /// Renders every metric as one JSON array (for embedding in a report
    /// envelope under a `"metrics"` key).
    pub fn to_json_array(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_sample_json(&mut out, s);
        }
        out.push(']');
        out
    }

    /// Renders only the *active* metrics as one JSON array — the compact
    /// form the `xed-report-v1` envelope embeds under its `"telemetry"`
    /// key (an all-zero catalogue row is noise in a run report).
    pub fn active_to_json_array(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.active().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_sample_json(&mut out, s);
        }
        out.push(']');
        out
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): dotted IDs become underscore names, counters one
    /// sample each, histograms as cumulative `_bucket{le="..."}` series
    /// (inclusive log2 bucket high edges, zero-delta buckets elided) plus
    /// the `+Inf` terminal, `_sum`, and `_count`. The output must satisfy
    /// [`prometheus_check`]; `xedd --selftest` gates on that.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        for s in &self.samples {
            let name = s.id.replace('.', "_");
            out.push_str(&format!("# HELP {name} {}\n", s.help));
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let count = h.count();
                    let mut cum = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum = cum.wrapping_add(n);
                        let (_, hi) = bucket_bounds(i);
                        out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
                    out.push_str(&format!("{name}_sum {}\n{name}_count {count}\n", h.sum));
                }
            }
        }
        out
    }

    /// Renders an aligned, human-readable table of the *active* metrics
    /// (an all-zero catalogue row is noise in a run report).
    pub fn to_table(&self) -> String {
        let active: Vec<&MetricSample> = self.active().collect();
        let id_w = active
            .iter()
            .map(|s| s.id.len())
            .chain(["metric".len()])
            .max()
            .unwrap_or(6);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<id_w$}  {:<9}  {}\n",
            "metric", "kind", "value"
        ));
        for s in &active {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{:<id_w$}  {:<9}  {v}\n", s.id, "counter"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<id_w$}  {:<9}  n={} mean={:.1} max={}\n",
                        s.id,
                        "histogram",
                        h.count(),
                        h.mean(),
                        h.max
                    ));
                }
            }
        }
        if active.is_empty() {
            out.push_str("(no activity recorded)\n");
        }
        out
    }
}

/// Appends one metric sample as a JSON object (no trailing newline).
fn render_sample_json(out: &mut String, s: &MetricSample) {
    match &s.value {
        SampleValue::Counter(v) => {
            out.push_str(&format!(
                "{{\"id\":{},\"kind\":\"counter\",\"value\":{v}}}",
                json_string(s.id)
            ));
        }
        SampleValue::Histogram(h) => {
            out.push_str(&format!(
                "{{\"id\":{},\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.6},\"buckets\":[",
                json_string(s.id),
                h.count(),
                h.sum,
                h.max,
                h.mean()
            ));
            for (i, (lo, hi, n)) in h.nonzero_buckets().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lo},{hi},{n}]"));
            }
            out.push_str("]}");
        }
    }
}

/// Renders `s` as a JSON string literal (quotes included), escaping the
/// characters JSON requires. Shared by every hand-rendered JSON writer in
/// the workspace.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates Prometheus text-exposition output: line grammar, metric
/// name charset, and histogram series invariants (monotone cumulative
/// buckets ending in `+Inf`, with `_count` equal to the `+Inf` sample).
/// This is the independent format self-check `xedd --selftest` runs over
/// the daemon's own `/metrics?format=prometheus` response.
///
/// # Errors
///
/// Returns the first violated rule, naming the offending line.
pub fn prometheus_check(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    // (histogram base name) -> (last cumulative, saw +Inf, inf value)
    let mut histograms: Vec<(String, Option<u64>, Option<u64>)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => {
                    if !valid_name(name) || parts.next().is_none() {
                        return Err(format!("malformed HELP line: {line}"));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or_default();
                    if !valid_name(name) {
                        return Err(format!("malformed TYPE line: {line}"));
                    }
                    match kind {
                        "histogram" => histograms.push((name.to_string(), None, None)),
                        "counter" | "gauge" => {}
                        other => return Err(format!("unknown TYPE `{other}`: {line}")),
                    }
                }
                _ => return Err(format!("unknown comment keyword: {line}")),
            }
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line has no value: {line}"))?;
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("unparseable sample value `{value}`: {line}"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label set: {line}"))?;
                (n, Some(labels))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("invalid metric name `{name}`: {line}"));
        }
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(format!("malformed label `{pair}`: {line}"));
                };
                if !valid_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("malformed label `{pair}`: {line}"));
                }
            }
        }
        // Histogram series bookkeeping.
        if let Some(base) = name.strip_suffix("_bucket") {
            let Some(h) = histograms.iter_mut().find(|(n, _, _)| n == base) else {
                return Err(format!(
                    "`{name}` has no TYPE histogram declaration: {line}"
                ));
            };
            let le = labels
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("bucket without an le label: {line}"))?;
            let cum: u64 = value
                .parse()
                .map_err(|_| format!("non-integer bucket count: {line}"))?;
            if let Some(prev) = h.1 {
                if cum < prev {
                    return Err(format!("bucket series not cumulative: {line}"));
                }
            }
            if h.2.is_some() {
                return Err(format!("bucket after the +Inf terminal: {line}"));
            }
            h.1 = Some(cum);
            if le == "+Inf" {
                h.2 = Some(cum);
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if histograms.iter().any(|(n, _, _)| n == base) {
                let c: u64 = value
                    .parse()
                    .map_err(|_| format!("non-integer _count: {line}"))?;
                counts.push((base.to_string(), c));
            }
        }
    }
    for (name, _, inf) in &histograms {
        let Some(inf) = inf else {
            return Err(format!("histogram `{name}` has no +Inf bucket"));
        };
        let Some((_, count)) = counts.iter().find(|(n, _)| n == name) else {
            return Err(format!("histogram `{name}` has no _count sample"));
        };
        if count != inf {
            return Err(format!(
                "histogram `{name}`: _count {count} != +Inf bucket {inf}"
            ));
        }
    }
    Ok(())
}

/// The trace-span export format identifier; bump on any rendering change.
pub const SPANS_FORMAT: &str = "xed-trace-spans-v1";

/// Drains a copy of the flight-recorder rings into `(slot, event)` pairs,
/// oldest first per slot, optionally keeping only one trace id.
pub fn collect_spans(trace_filter: Option<u64>) -> Vec<(usize, SpanEvent)> {
    let mut out = Vec::new();
    crate::trace::with_slots(|slot, buf| {
        for e in buf.iter() {
            if trace_filter.is_none_or(|t| t == e.trace_id) {
                out.push((slot, *e));
            }
        }
    });
    out
}

/// Appends a nanosecond tick as a microsecond JSON number with three
/// decimals (the Chrome trace format's `ts`/`dur` unit is microseconds).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

/// Renders `(slot, event)` pairs as a `xed-trace-spans-v1` document: a
/// Chrome-tracing/Perfetto JSON object of complete (`"ph":"X"`) events,
/// one per span, with the flight slot as `tid` and the trace id carried
/// in `args` as fixed-width hex. Deterministic for fixed input — the
/// testkit pins a golden rendering byte-for-byte.
pub fn spans_to_chrome_json(events: &[(usize, SpanEvent)]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 192);
    out.push_str("{\"schema\":\"");
    out.push_str(SPANS_FORMAT);
    out.push_str("\",\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, (slot, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"xedd\",\"ph\":\"X\",\"ts\":",
            e.phase.label()
        ));
        push_us(&mut out, e.t_start);
        out.push_str(",\"dur\":");
        push_us(&mut out, e.t_end.saturating_sub(e.t_start));
        out.push_str(&format!(
            ",\"pid\":1,\"tid\":{slot},\"args\":{{\"trace\":\"{:016x}\",\"span\":{},\"parent\":{},\"a\":{}}}}}",
            e.trace_id, e.span_id, e.parent, e.a
        ));
    }
    if !events.is_empty() {
        out.push('\n');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::{self, metrics};

    fn sample_of(h: &Histogram) -> HistogramSample {
        h.sample()
    }

    #[test]
    fn histogram_sample_consistency() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 1000] {
            h.record(v);
        }
        let s = sample_of(&h);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        let nz: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(nz, vec![(0, 0, 1), (1, 1, 1), (4, 7, 1), (512, 1023, 1)]);
    }

    #[test]
    fn diff_keeps_only_moved_metrics_as_deltas() {
        let hist_then = HistogramSample {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        };
        let mut hist_now = hist_then.clone();
        hist_now.buckets[0] = 2;
        hist_now.sum = 0;
        let mk = |c_val: u64, h: &HistogramSample| Snapshot {
            samples: vec![
                MetricSample {
                    id: "t.counter",
                    help: "",
                    value: SampleValue::Counter(c_val),
                },
                MetricSample {
                    id: "t.steady",
                    help: "",
                    value: SampleValue::Counter(7),
                },
                MetricSample {
                    id: "t.hist",
                    help: "",
                    value: SampleValue::Histogram(Box::new(h.clone())),
                },
            ],
        };
        let then = mk(10, &hist_then);
        let now = mk(14, &hist_now);
        let d = now.diff(&then);
        // The unchanged counter and nothing else drops out; the moved
        // counter becomes its delta; the moved histogram is carried over.
        assert_eq!(d.counter("t.counter"), Some(4));
        assert!(d.get("t.steady").is_none());
        assert_eq!(d.histogram("t.hist").map(|h| h.count()), Some(2));
        // Diffing a snapshot against itself is empty.
        assert!(now.diff(&now).samples.is_empty());
        // A metric missing from the baseline counts from zero.
        let empty = Snapshot { samples: vec![] };
        assert_eq!(now.diff(&empty).counter("t.counter"), Some(14));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn snapshot_render_roundtrip_shapes() {
        // Use metrics no other test writes concurrently.
        metrics::ECC_RS_ERASURES.reset();
        metrics::MEMSIM_SCHED_READ_LATENCY.reset();
        metrics::ECC_RS_ERASURES.add(3);
        metrics::MEMSIM_SCHED_READ_LATENCY.record(100);
        metrics::MEMSIM_SCHED_READ_LATENCY.record(200);

        let snap = registry::snapshot();
        assert_eq!(snap.counter("ecc.rs.erasures"), Some(3));
        let h = snap.histogram("memsim.sched.read_latency").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 300);

        let lines = snap.to_json_lines();
        assert!(lines.contains("{\"id\":\"ecc.rs.erasures\",\"kind\":\"counter\",\"value\":3}"));
        assert!(lines.contains("\"id\":\"memsim.sched.read_latency\",\"kind\":\"histogram\""));
        // One line per catalogue entry.
        assert_eq!(lines.lines().count(), snap.samples.len());
        // Every line parses as a balanced object (cheap structural check).
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        let arr = snap.to_json_array();
        assert!(arr.starts_with('[') && arr.ends_with(']'));

        let table = snap.to_table();
        assert!(table.contains("ecc.rs.erasures"));
        assert!(table.contains("n=2 mean=150.0 max=200"));

        metrics::ECC_RS_ERASURES.reset();
        metrics::MEMSIM_SCHED_READ_LATENCY.reset();
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.sample().quantile(0.5), 0, "empty histogram");
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.sample();
        // Ranks 1-2 land in [8,15], 3-4 in [16,31]/[32,63], 5 in [512,1023].
        assert_eq!(s.quantile(0.0), 15);
        assert_eq!(s.quantile(0.2), 15);
        assert_eq!(s.quantile(0.5), 31);
        assert_eq!(s.quantile(0.99), 1023);
        assert_eq!(s.quantile(1.0), 1023);
    }

    #[test]
    fn prometheus_text_renders_and_self_checks() {
        metrics::ECC_DUE_WORDS.reset();
        metrics::MEMSIM_SCHED_QUEUE_DEPTH.reset();
        metrics::ECC_DUE_WORDS.add(5);
        for v in [1u64, 3, 900] {
            metrics::MEMSIM_SCHED_QUEUE_DEPTH.record(v);
        }
        let text = registry::snapshot().to_prometheus_text();
        prometheus_check(&text).expect("own exposition must self-check clean");
        assert!(text.contains("# TYPE ecc_due_words counter\necc_due_words 5\n"));
        assert!(text.contains("# TYPE memsim_sched_queue_depth histogram\n"));
        assert!(text.contains("memsim_sched_queue_depth_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("memsim_sched_queue_depth_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("memsim_sched_queue_depth_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("memsim_sched_queue_depth_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("memsim_sched_queue_depth_sum 904\n"));
        assert!(text.contains("memsim_sched_queue_depth_count 3\n"));
        metrics::ECC_DUE_WORDS.reset();
        metrics::MEMSIM_SCHED_QUEUE_DEPTH.reset();
    }

    #[test]
    fn prometheus_check_rejects_malformed_expositions() {
        for (text, why) in [
            ("metric_without_value\n", "no value"),
            ("9bad_name 1\n", "bad name"),
            ("m{le=\"1\" 1\n", "unterminated labels"),
            ("m{le1} 1\n", "malformed label"),
            ("m nope\n", "unparseable value"),
            ("# TYPE m summary\n", "unknown type"),
            (
                "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_sum 1\n",
                "no _count",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n",
                "no +Inf",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"2\"} 1\n",
                "not cumulative",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 2\nm_sum 1\nm_count 1\n",
                "_count != +Inf",
            ),
            ("m_bucket{le=\"1\"} 1\n", "bucket without TYPE"),
        ] {
            assert!(prometheus_check(text).is_err(), "must reject: {why}");
        }
        assert!(prometheus_check("").is_ok(), "empty exposition is valid");
    }

    #[test]
    fn spans_export_is_deterministic_chrome_json() {
        use crate::trace::{Phase, SpanEvent};
        let events = [
            (
                0usize,
                SpanEvent {
                    trace_id: 0xDEAD_BEEF,
                    span_id: 1,
                    parent: 0,
                    phase: Phase::Request,
                    a: 0,
                    t_start: 1_500,
                    t_end: 2_000_250,
                },
            ),
            (
                3usize,
                SpanEvent {
                    trace_id: 0xDEAD_BEEF,
                    span_id: 2,
                    parent: 1,
                    phase: Phase::SchedulerChunk,
                    a: 4096,
                    t_start: 10_000,
                    t_end: 20_000,
                },
            ),
        ];
        let doc = spans_to_chrome_json(&events);
        assert_eq!(doc, spans_to_chrome_json(&events), "must be deterministic");
        assert!(doc.starts_with(
            "{\"schema\":\"xed-trace-spans-v1\",\"displayTimeUnit\":\"ns\",\"traceEvents\":["
        ));
        assert!(doc.contains(
            "{\"name\":\"request\",\"cat\":\"xedd\",\"ph\":\"X\",\"ts\":1.500,\"dur\":1998.750,\
             \"pid\":1,\"tid\":0,\"args\":{\"trace\":\"00000000deadbeef\",\"span\":1,\"parent\":0,\"a\":0}}"
        ));
        assert!(doc.contains("\"name\":\"scheduler_chunk\""));
        assert!(doc.contains("\"a\":4096"));
        assert!(doc.ends_with("\n]}"));
        assert_eq!(
            spans_to_chrome_json(&[]),
            "{\"schema\":\"xed-trace-spans-v1\",\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn snapshot_while_writing_is_consistent_and_monotone() {
        // The satellite test: snapshots taken while writers are mid-flight
        // must observe valid, monotonically non-decreasing state — never a
        // torn or decreasing total.
        let h = Histogram::new();
        let c = crate::Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (h, c) = (&h, &c);
                scope.spawn(move || {
                    for i in 0..50_000u64 {
                        h.record(i % 1024);
                        c.add(2);
                    }
                });
            }
            let (h, c) = (&h, &c);
            scope.spawn(move || {
                let mut last_count = 0u64;
                let mut last_total = 0u64;
                for _ in 0..200 {
                    let s = h.sample();
                    let count = s.count();
                    assert!(count >= last_count, "histogram count went backwards");
                    assert!(count <= 200_000);
                    // Max only grows and stays in the recorded domain.
                    assert!(s.max < 1024);
                    let total = c.value();
                    assert!(total >= last_total, "counter went backwards");
                    assert!(total <= 400_000 && total % 2 == 0);
                    last_count = count;
                    last_total = total;
                }
            });
        });
        assert_eq!(h.sample().count(), 200_000);
        assert_eq!(c.value(), 400_000);
    }
}
