//! `xed-telemetry`: the workspace-wide observability substrate
//! (DESIGN.md §11).
//!
//! Every runtime crate of the reproduction — the Monte-Carlo engine, the
//! cycle-level memory simulator, and the functional XED controllers —
//! reports what it did through this crate, so one `snapshot()` answers
//! "what did this run actually do": fault mix, decode outcomes, catch-word
//! collisions, queue occupancy, work-steal balance.
//!
//! # Design rules
//!
//! * **Zero dependencies, offline-friendly.** Pure `std`; the exporters
//!   hand-render JSON exactly like the rest of the workspace.
//! * **Allocation-free hot paths.** [`Counter`], [`Histogram`], [`Ring`],
//!   [`Tallies`], and the [`trace`] flight rings never touch the heap
//!   after construction (xed-lint XL009 is enforced over these modules).
//!   Allocation is confined to the snapshot/export layer, which runs once
//!   per report.
//! * **Owned tallies, publish-at-merge.** Code on a nanosecond budget
//!   (the Monte-Carlo trial loop, the batched line decode) accumulates
//!   into *owned* [`Tallies`] blocks with plain adds — zero atomics — and
//!   publishes the totals into the static [`registry`] counters once, at
//!   its natural merge point (end of `run_many`, end of a simulation).
//!   Only genuinely cheap-per-event instrumentation (a histogram record
//!   per 4096-trial chunk, a queue-depth sample per enqueue in the
//!   microsecond-scale memory simulator) records live.
//! * **Stable dotted metric IDs.** Every metric is a static registered
//!   exactly once in [`registry::CATALOGUE`] under an ID like
//!   `faultsim.trials` or `core.xed.catchword_collisions`; xed-lint XL010
//!   cross-checks code usage, the catalogue, and the DESIGN.md §11 table.
//! * **Determinism untouched.** Telemetry is reporting-only metadata:
//!   nothing here feeds back into simulation state, and the global
//!   [`enabled`] switch lets benchmarks prove the overhead is noise.
//!
//! # Quick tour
//!
//! ```
//! use xed_telemetry::{registry, Tallies};
//!
//! // Hot loop: owned tallies, no atomics.
//! const DECODED: usize = 0;
//! const CORRECTED: usize = 1;
//! let mut t: Tallies<2> = Tallies::new();
//! t.bump(DECODED);
//! t.add(CORRECTED, 3);
//!
//! // Merge point: publish once into the static registry.
//! registry::metrics::ECC_LINES_DECODED.add(t.get(DECODED));
//!
//! // Report: snapshot everything that happened in this process.
//! let snap = registry::snapshot();
//! assert!(snap.get("ecc.lines_decoded").is_some());
//! println!("{}", snap.to_table());
//! ```

pub mod counter;
pub mod export;
pub mod hist;
pub mod registry;
pub mod ring;
pub mod span;
pub mod tally;
pub mod trace;

pub use counter::Counter;
pub use export::{HistogramSample, MetricSample, SampleValue, Snapshot};
pub use hist::Histogram;
pub use registry::{snapshot, MetricDef, MetricSource};
pub use ring::{Event, EventKind, Ring};
pub use span::Span;
pub use tally::Tallies;
pub use trace::{SpanCtx, SpanEvent, TraceBuf};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global instrumentation switch (default: on). Cleared by benchmark
/// binaries' `--no-telemetry` flag so the CI overhead check can compare
/// instrumented vs. uninstrumented runs of the same build.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is enabled. A single relaxed load — callers on
/// hot paths gate their recording on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off process-wide. Release pairs with
/// the hot path's Relaxed `enabled()` loads (XA102 boundary).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Adds one to `c` when telemetry is enabled. The one-liner for
/// event-grain instrumentation sites (functional controllers, where a
/// relaxed add is far below the cost of the modeled operation).
#[inline]
pub fn tick(c: &Counter) {
    if enabled() {
        c.incr();
    }
}

/// Adds `n` to `c` when telemetry is enabled.
#[inline]
pub fn count(c: &Counter, n: u64) {
    if enabled() {
        c.add(n);
    }
}

/// Records `v` into `h` when telemetry is enabled.
#[inline]
pub fn observe(h: &Histogram, v: u64) {
    if enabled() {
        h.record(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_defaults_on_and_toggles() {
        // Other tests never touch the switch, so default-on is observable.
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
