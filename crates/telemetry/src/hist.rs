//! Fixed-bucket base-2 logarithmic histograms.
//!
//! A [`Histogram`] has exactly [`BUCKETS`] = 65 buckets covering the full
//! `u64` range with no configuration and no allocation:
//!
//! * bucket `0` holds the value `0`;
//! * bucket `k` (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k - 1]` — i.e.
//!   `k = floor(log2(v)) + 1`, computed from `leading_zeros`.
//!
//! Records are three relaxed atomic updates (bucket count, value sum,
//! running max); snapshots read every bucket. Like [`crate::Counter`],
//! totals are exact once writers quiesce and monotone while they race.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: value 0, plus one bucket per power-of-two decade.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub const fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub const fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS);
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A log2 histogram over `u64` values.
///
/// `const`-constructible so metrics live in statics; see
/// [`crate::registry`] for the workspace catalogue.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Wrapping sum of recorded values (for the mean).
    sum: AtomicU64,
    /// Largest recorded value.
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        // indexing: bucket_of clamps to BUCKETS - 1, always in bounds.
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations in bucket `i`.
    ///
    /// Read-side boundary: Acquire pairs with the hot path's Relaxed
    /// increments (XA102), as do the other getters below.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Acquire)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, b| acc.wrapping_add(b.load(Ordering::Acquire)))
    }

    /// Wrapping sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Acquire)
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Acquire)
    }

    /// Mean recorded value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Captures an immutable [`crate::export::HistogramSample`]. Each
    /// bucket is read atomically; see the snapshot-while-writing test in
    /// [`crate::export`] for the consistency contract.
    pub fn sample(&self) -> crate::export::HistogramSample {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Acquire);
        }
        crate::export::HistogramSample {
            buckets,
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// Clears every bucket and the sum/max. Release publishes the
    /// zeroes to subsequent Acquire snapshots (XA102 boundary).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Release);
        }
        self.sum.store(0, Ordering::Release);
        self.max.store(0, Ordering::Release);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bucket_boundaries() {
        // The satellite test: 0, 1, 2^k, 2^k - 1, and u64::MAX land
        // exactly where the module contract says.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for k in 1..=63usize {
            let p = 1u64 << k;
            assert_eq!(bucket_of(p), k + 1, "2^{k}");
            assert_eq!(bucket_of(p - 1), k, "2^{k} - 1");
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(10), (512, 1023));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        // Adjacent buckets tile with no gap or overlap, and every value's
        // bucket contains it.
        for i in 1..64 {
            let (lo, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, next_lo, "bucket {i}");
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn record_updates_count_sum_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2); // 2 and 3
        assert_eq!(h.bucket(10), 1); // 1000
        assert_eq!(h.bucket(64), 1); // u64::MAX
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 1000).wrapping_add(u64::MAX)
        );
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn mean_of_known_values() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.max(), 39_999);
    }
}
