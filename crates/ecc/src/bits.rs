//! Small bit-manipulation helpers shared by the codecs.

/// Returns the parity (XOR of all bits) of `x` as 0 or 1.
///
/// ```
/// assert_eq!(xed_ecc::bits::parity64(0b1011), 1);
/// assert_eq!(xed_ecc::bits::parity64(0b1001), 0);
/// ```
#[inline]
pub fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Extracts bit `i` of `x` (0 = least significant).
///
/// # Panics
///
/// Panics in debug builds if `i >= 64`.
#[inline]
pub fn bit64(x: u64, i: u32) -> u8 {
    debug_assert!(i < 64);
    ((x >> i) & 1) as u8
}

/// Returns `x` with bit `i` set to `v` (`v` must be 0 or 1).
#[inline]
pub fn with_bit64(x: u64, i: u32, v: u8) -> u64 {
    debug_assert!(v <= 1);
    (x & !(1u64 << i)) | ((v as u64) << i)
}

/// Iterator over the indices of the set bits of `x`, ascending.
///
/// ```
/// let set: Vec<u32> = xed_ecc::bits::set_bits64(0b1010_0001).collect();
/// assert_eq!(set, vec![0, 5, 7]);
/// ```
pub fn set_bits64(x: u64) -> SetBits {
    SetBits { rem: x }
}

/// Iterator produced by [`set_bits64`].
#[derive(Debug, Clone)]
pub struct SetBits {
    rem: u64,
}

impl Iterator for SetBits {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.rem == 0 {
            return None;
        }
        let i = self.rem.trailing_zeros();
        self.rem &= self.rem - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rem.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetBits {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_zero_is_zero() {
        assert_eq!(parity64(0), 0);
    }

    #[test]
    fn parity_of_all_ones_is_zero() {
        assert_eq!(parity64(u64::MAX), 0);
    }

    #[test]
    fn parity_single_bit() {
        // Every weight-1 word has parity 1; enumerate them through the
        // mask-based set-bits iterator rather than a per-bit counter loop.
        assert!(set_bits64(u64::MAX)
            .map(|i| 1u64 << i)
            .all(|w| parity64(w) == 1));
    }

    #[test]
    fn bit_roundtrip() {
        let x = 0xA5A5_5A5A_DEAD_BEEFu64;
        assert!(set_bits64(u64::MAX).all(|i| {
            let b = bit64(x, i);
            with_bit64(x, i, b) == x && (with_bit64(x, i, 1 - b) ^ x) == (1u64 << i)
        }));
    }

    #[test]
    fn set_bits_matches_count() {
        let x = 0xF0F0_1234_5678_9ABCu64;
        let v: Vec<u32> = set_bits64(x).collect();
        assert_eq!(v.len(), x.count_ones() as usize);
        for &i in &v {
            assert_eq!(bit64(x, i), 1);
        }
        // ascending
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn set_bits_empty() {
        assert_eq!(set_bits64(0).count(), 0);
    }

    #[test]
    fn set_bits_exact_size() {
        let it = set_bits64(0b1011);
        assert_eq!(it.len(), 3);
    }
}
