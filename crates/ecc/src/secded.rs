//! The common interface of (72,64) SECDED codes.

use crate::codeword::CodeWord72;

/// Beats (72-bit codewords) per 64-byte cache line: 8 × 64 data bits.
pub const BEATS_PER_LINE: usize = 8;

/// Outcome of decoding one cache line (8 beats) in a single batched call.
///
/// Per-beat outcomes are folded into two bitmasks so the common all-clean
/// case is a pair of zero checks, with no per-beat allocation or enum
/// matching for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineOutcome {
    /// Decoded data words, one per beat. Beats flagged in `bad_beats` hold
    /// the *received* (uncorrectable) data and must not be consumed.
    pub data: [u64; BEATS_PER_LINE],
    /// Bitmask of beats that had a single-bit error corrected.
    pub corrected_beats: u8,
    /// Bitmask of beats with a detected-uncorrectable error.
    pub bad_beats: u8,
}

impl LineOutcome {
    /// `true` when any beat was uncorrectable (the line is a DUE).
    pub fn is_due(self) -> bool {
        self.bad_beats != 0
    }

    /// Number of corrected beats.
    pub fn corrected_count(self) -> u32 {
        self.corrected_beats.count_ones()
    }

    /// `true` when every beat decoded clean (no correction, no detection).
    pub fn is_clean(self) -> bool {
        self.corrected_beats == 0 && self.bad_beats == 0
    }
}

/// Result of decoding a (possibly corrupted) 72-bit codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The codeword was valid; the stored data is returned unchanged.
    Clean {
        /// Decoded data word.
        data: u64,
    },
    /// A single-bit error was detected and corrected.
    Corrected {
        /// Corrected data word.
        data: u64,
        /// Physical bit position (0–71) that was corrected.
        bit: u32,
    },
    /// An error was detected that the code cannot correct
    /// (e.g. a double-bit error).
    Detected,
}

impl DecodeOutcome {
    /// The decoded data if the decoder produced any (`Clean` or `Corrected`).
    pub fn data(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Detected => None,
        }
    }

    /// `true` for every outcome other than [`DecodeOutcome::Clean`].
    ///
    /// This is exactly the condition on which a XED-enabled chip transmits a
    /// catch-word (paper Section V-B: the DC-Mux selects the catch-word when
    /// the on-die ECC *detects or corrects* an error).
    pub fn is_event(self) -> bool {
        !matches!(self, DecodeOutcome::Clean { .. })
    }
}

/// A (72,64) single-error-correct double-error-detect code.
///
/// Implemented by [`crate::hamming::Hamming7264`] (the conventional choice)
/// and [`crate::crc8::Crc8Atm`] (the paper's recommendation for on-die ECC).
///
/// Invariants every implementation upholds (enforced by the shared test
/// suite in this crate):
///
/// * `decode(encode(d)) == Clean { data: d }` for all `d`;
/// * flipping any single bit of a valid codeword decodes to
///   `Corrected { data: d, bit }` with the flipped position;
/// * flipping any two bits decodes to `Detected` (never a mis-correction).
pub trait SecDed {
    /// Encodes a 64-bit data word into a 72-bit codeword.
    fn encode(&self, data: u64) -> CodeWord72;

    /// Decodes a received codeword, correcting a single-bit error if present.
    fn decode(&self, received: CodeWord72) -> DecodeOutcome;

    /// `true` if `received` is a valid codeword (zero syndrome).
    ///
    /// The default implementation re-encodes the decoded data; codecs
    /// override it with a cheaper syndrome check.
    fn is_valid(&self, received: CodeWord72) -> bool {
        matches!(self.decode(received), DecodeOutcome::Clean { .. })
    }

    /// `true` if the decoder reports *any* non-clean event for `received`.
    ///
    /// This models the signal the XED DC-Mux taps: detection **or**
    /// correction by the on-die ECC triggers catch-word transmission.
    fn detects_event(&self, received: CodeWord72) -> bool {
        self.decode(received).is_event()
    }

    /// Encodes a whole cache line (8 data words) into 8 codewords.
    fn encode_line(&self, data: &[u64; BEATS_PER_LINE]) -> [CodeWord72; BEATS_PER_LINE] {
        let mut out = [CodeWord72::default(); BEATS_PER_LINE];
        for (w, &d) in out.iter_mut().zip(data) {
            *w = self.encode(d);
        }
        out
    }

    /// Decodes a whole cache line (8 received beats) in one batched call,
    /// folding per-beat outcomes into [`LineOutcome`] bitmasks. This is the
    /// API the memory-controller models consume on their access path.
    fn decode_line(&self, beats: &[CodeWord72; BEATS_PER_LINE]) -> LineOutcome {
        let mut out = LineOutcome {
            data: [0u64; BEATS_PER_LINE],
            corrected_beats: 0,
            bad_beats: 0,
        };
        for (i, &w) in beats.iter().enumerate() {
            // indexing: i enumerates the BEATS_PER_LINE input beats and
            // out.data has exactly BEATS_PER_LINE slots.
            let d = &mut out.data[i];
            match self.decode(w) {
                DecodeOutcome::Clean { data } => *d = data,
                DecodeOutcome::Corrected { data, .. } => {
                    *d = data;
                    out.corrected_beats |= 1 << i;
                }
                DecodeOutcome::Detected => {
                    *d = w.data();
                    out.bad_beats |= 1 << i;
                }
            }
        }
        out
    }
}

/// Shared conformance checks used by the unit tests of both codecs.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub(crate) const SAMPLE_DATA: &[u64] = &[
        0,
        u64::MAX,
        1,
        0x8000_0000_0000_0000,
        0xDEAD_BEEF_0BAD_F00D,
        0x0123_4567_89AB_CDEF,
        0x5555_5555_5555_5555,
        0xAAAA_AAAA_AAAA_AAAA,
        42,
        0xFFFF_0000_FFFF_0000,
    ];

    pub(crate) fn roundtrip<C: SecDed>(code: &C) {
        for &d in SAMPLE_DATA {
            let w = code.encode(d);
            assert_eq!(code.decode(w), DecodeOutcome::Clean { data: d });
            assert!(code.is_valid(w));
            assert!(!code.detects_event(w));
        }
    }

    pub(crate) fn corrects_all_single_bit_errors<C: SecDed>(code: &C) {
        for &d in SAMPLE_DATA {
            let w = code.encode(d);
            for i in 0..72 {
                let r = w.with_bit_flipped(i);
                match code.decode(r) {
                    DecodeOutcome::Corrected { data, bit } => {
                        assert_eq!(data, d, "data mismatch for flipped bit {i}");
                        assert_eq!(bit, i, "wrong bit located for flipped bit {i}");
                    }
                    other => panic!("bit {i}: expected Corrected, got {other:?}"),
                }
                assert!(code.detects_event(r));
            }
        }
    }

    pub(crate) fn detects_all_double_bit_errors<C: SecDed>(code: &C) {
        // Exhaustive over all C(72,2) = 2556 pairs for a handful of words.
        for &d in &SAMPLE_DATA[..4] {
            let w = code.encode(d);
            for i in 0..72u32 {
                for j in (i + 1)..72 {
                    let r = w.with_bit_flipped(i).with_bit_flipped(j);
                    assert_eq!(
                        code.decode(r),
                        DecodeOutcome::Detected,
                        "double error ({i},{j}) not flagged Detected"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_data_accessor() {
        assert_eq!(DecodeOutcome::Clean { data: 7 }.data(), Some(7));
        assert_eq!(DecodeOutcome::Corrected { data: 9, bit: 3 }.data(), Some(9));
        assert_eq!(DecodeOutcome::Detected.data(), None);
    }

    #[test]
    fn outcome_is_event() {
        assert!(!DecodeOutcome::Clean { data: 0 }.is_event());
        assert!(DecodeOutcome::Corrected { data: 0, bit: 0 }.is_event());
        assert!(DecodeOutcome::Detected.is_event());
    }

    #[test]
    fn line_roundtrip_and_masks() {
        let code = crate::crc8::Crc8Atm::new();
        let data: [u64; BEATS_PER_LINE] = [0, u64::MAX, 1, 2, 3, 0xDEAD_BEEF, 42, 7];
        let mut beats = code.encode_line(&data);
        let clean = code.decode_line(&beats);
        assert!(clean.is_clean());
        assert!(!clean.is_due());
        assert_eq!(clean.data, data);

        // One corrected beat, one DUE beat.
        beats[2] = beats[2].with_bit_flipped(17);
        beats[5] = beats[5].with_bit_flipped(0).with_bit_flipped(1);
        let out = code.decode_line(&beats);
        assert_eq!(out.corrected_beats, 1 << 2);
        assert_eq!(out.bad_beats, 1 << 5);
        assert_eq!(out.corrected_count(), 1);
        assert!(out.is_due());
        assert_eq!(out.data[2], data[2]);
        for i in [0usize, 1, 3, 4, 6, 7] {
            assert_eq!(out.data[i], data[i]);
        }
    }
}
