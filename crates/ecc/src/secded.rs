//! The common interface of (72,64) SECDED codes.

use crate::codeword::CodeWord72;

/// Result of decoding a (possibly corrupted) 72-bit codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The codeword was valid; the stored data is returned unchanged.
    Clean {
        /// Decoded data word.
        data: u64,
    },
    /// A single-bit error was detected and corrected.
    Corrected {
        /// Corrected data word.
        data: u64,
        /// Physical bit position (0–71) that was corrected.
        bit: u32,
    },
    /// An error was detected that the code cannot correct
    /// (e.g. a double-bit error).
    Detected,
}

impl DecodeOutcome {
    /// The decoded data if the decoder produced any (`Clean` or `Corrected`).
    pub fn data(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Detected => None,
        }
    }

    /// `true` for every outcome other than [`DecodeOutcome::Clean`].
    ///
    /// This is exactly the condition on which a XED-enabled chip transmits a
    /// catch-word (paper Section V-B: the DC-Mux selects the catch-word when
    /// the on-die ECC *detects or corrects* an error).
    pub fn is_event(self) -> bool {
        !matches!(self, DecodeOutcome::Clean { .. })
    }
}

/// A (72,64) single-error-correct double-error-detect code.
///
/// Implemented by [`crate::hamming::Hamming7264`] (the conventional choice)
/// and [`crate::crc8::Crc8Atm`] (the paper's recommendation for on-die ECC).
///
/// Invariants every implementation upholds (enforced by the shared test
/// suite in this crate):
///
/// * `decode(encode(d)) == Clean { data: d }` for all `d`;
/// * flipping any single bit of a valid codeword decodes to
///   `Corrected { data: d, bit }` with the flipped position;
/// * flipping any two bits decodes to `Detected` (never a mis-correction).
pub trait SecDed {
    /// Encodes a 64-bit data word into a 72-bit codeword.
    fn encode(&self, data: u64) -> CodeWord72;

    /// Decodes a received codeword, correcting a single-bit error if present.
    fn decode(&self, received: CodeWord72) -> DecodeOutcome;

    /// `true` if `received` is a valid codeword (zero syndrome).
    ///
    /// The default implementation re-encodes the decoded data; codecs
    /// override it with a cheaper syndrome check.
    fn is_valid(&self, received: CodeWord72) -> bool {
        matches!(self.decode(received), DecodeOutcome::Clean { .. })
    }

    /// `true` if the decoder reports *any* non-clean event for `received`.
    ///
    /// This models the signal the XED DC-Mux taps: detection **or**
    /// correction by the on-die ECC triggers catch-word transmission.
    fn detects_event(&self, received: CodeWord72) -> bool {
        self.decode(received).is_event()
    }
}

/// Shared conformance checks used by the unit tests of both codecs.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub(crate) const SAMPLE_DATA: &[u64] = &[
        0,
        u64::MAX,
        1,
        0x8000_0000_0000_0000,
        0xDEAD_BEEF_0BAD_F00D,
        0x0123_4567_89AB_CDEF,
        0x5555_5555_5555_5555,
        0xAAAA_AAAA_AAAA_AAAA,
        42,
        0xFFFF_0000_FFFF_0000,
    ];

    pub(crate) fn roundtrip<C: SecDed>(code: &C) {
        for &d in SAMPLE_DATA {
            let w = code.encode(d);
            assert_eq!(code.decode(w), DecodeOutcome::Clean { data: d });
            assert!(code.is_valid(w));
            assert!(!code.detects_event(w));
        }
    }

    pub(crate) fn corrects_all_single_bit_errors<C: SecDed>(code: &C) {
        for &d in SAMPLE_DATA {
            let w = code.encode(d);
            for i in 0..72 {
                let r = w.with_bit_flipped(i);
                match code.decode(r) {
                    DecodeOutcome::Corrected { data, bit } => {
                        assert_eq!(data, d, "data mismatch for flipped bit {i}");
                        assert_eq!(bit, i, "wrong bit located for flipped bit {i}");
                    }
                    other => panic!("bit {i}: expected Corrected, got {other:?}"),
                }
                assert!(code.detects_event(r));
            }
        }
    }

    pub(crate) fn detects_all_double_bit_errors<C: SecDed>(code: &C) {
        // Exhaustive over all C(72,2) = 2556 pairs for a handful of words.
        for &d in &SAMPLE_DATA[..4] {
            let w = code.encode(d);
            for i in 0..72u32 {
                for j in (i + 1)..72 {
                    let r = w.with_bit_flipped(i).with_bit_flipped(j);
                    assert_eq!(
                        code.decode(r),
                        DecodeOutcome::Detected,
                        "double error ({i},{j}) not flagged Detected"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_data_accessor() {
        assert_eq!(DecodeOutcome::Clean { data: 7 }.data(), Some(7));
        assert_eq!(DecodeOutcome::Corrected { data: 9, bit: 3 }.data(), Some(9));
        assert_eq!(DecodeOutcome::Detected.data(), None);
    }

    #[test]
    fn outcome_is_event() {
        assert!(!DecodeOutcome::Clean { data: 0 }.is_event());
        assert!(DecodeOutcome::Corrected { data: 0, bit: 0 }.is_event());
        assert!(DecodeOutcome::Detected.is_event());
    }
}
