//! RAID-3 style XOR parity across the chips of an ECC-DIMM.
//!
//! XED repurposes the 9th chip of a commodity ECC-DIMM: instead of a SECDED
//! check byte it stores the XOR of the eight data chips' 64-bit words
//! (paper Equation 1). Combined with the erasure location that catch-words
//! provide, this allows the memory controller to reconstruct the word of any
//! single faulty chip (Equation 3) — exactly how RAID-3 reconstructs a
//! failed disk.

/// Computes the parity word of a set of data words (paper Equation 1).
///
/// ```
/// let parity = xed_ecc::parity::compute(&[1, 2, 4]);
/// assert_eq!(parity, 7);
/// ```
pub fn compute(words: &[u64]) -> u64 {
    words.iter().fold(0, |acc, &w| acc ^ w)
}

/// Checks Equation 1: XOR of all data words and the parity word is zero.
pub fn holds(words: &[u64], parity: u64) -> bool {
    compute(words) == parity
}

/// Reconstructs the word of the chip at `erased` from the remaining words
/// and the parity word (paper Equation 3).
///
/// The value currently stored at `words[erased]` is ignored, so callers can
/// pass the received burst unchanged (including a catch-word in the erased
/// slot).
///
/// # Panics
///
/// Panics if `erased >= words.len()`.
///
/// ```
/// let data = [10u64, 20, 30, 40];
/// let parity = xed_ecc::parity::compute(&data);
/// let mut received = data;
/// received[2] = 0xDEAD; // chip 2 returned garbage (or a catch-word)
/// assert_eq!(xed_ecc::parity::reconstruct(&received, parity, 2), 30);
/// ```
pub fn reconstruct(words: &[u64], parity: u64, erased: usize) -> u64 {
    assert!(erased < words.len(), "erased index {erased} out of range");
    words
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != erased)
        .fold(parity, |acc, (_, &w)| acc ^ w)
}

/// Incrementally updates a parity word after one data word changes.
///
/// RAID small-write optimization: `new_parity = parity ^ old ^ new`. XED's
/// memory controller uses this on writes so it never needs to read the other
/// seven chips.
#[inline]
#[must_use]
pub fn update(parity: u64, old_word: u64, new_word: u64) -> u64 {
    parity ^ old_word ^ new_word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_empty_is_zero() {
        assert_eq!(compute(&[]), 0);
    }

    #[test]
    fn parity_self_inverse() {
        let words = [0xDEADu64, 0xBEEF, 0xF00D, 0xCAFE, 1, 2, 3, 4];
        let p = compute(&words);
        assert!(holds(&words, p));
        assert_eq!(compute(&words) ^ p, 0);
    }

    #[test]
    fn reconstruct_every_position() {
        let words: Vec<u64> = (0..8).map(|i| 0x1111_1111_1111_1111u64 * (i + 3)).collect();
        let p = compute(&words);
        for erased in 0..8 {
            let mut corrupted = words.clone();
            corrupted[erased] = !words[erased]; // garbage
            assert_eq!(reconstruct(&corrupted, p, erased), words[erased]);
        }
    }

    #[test]
    fn update_matches_full_recompute() {
        let mut words = [5u64, 6, 7, 8];
        let mut p = compute(&words);
        p = update(p, words[1], 999);
        words[1] = 999;
        assert_eq!(p, compute(&words));
    }

    #[test]
    fn holds_detects_corruption() {
        let words = [1u64, 2, 3];
        let p = compute(&words);
        let mut bad = words;
        bad[0] ^= 0x10;
        assert!(!holds(&bad, p));
    }

    #[test]
    #[should_panic]
    fn reconstruct_out_of_range_panics() {
        reconstruct(&[1, 2], 3, 2);
    }
}
