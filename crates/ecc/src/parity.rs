//! RAID-3 style XOR parity across the chips of an ECC-DIMM.
//!
//! XED repurposes the 9th chip of a commodity ECC-DIMM: instead of a SECDED
//! check byte it stores the XOR of the eight data chips' 64-bit words
//! (paper Equation 1). Combined with the erasure location that catch-words
//! provide, this allows the memory controller to reconstruct the word of any
//! single faulty chip (Equation 3) — exactly how RAID-3 reconstructs a
//! failed disk.

/// Computes the parity word of a set of data words (paper Equation 1).
///
/// `const fn`: the reconstruction identity it anchors is proved at compile
/// time by this module's `const` assertion block.
///
/// ```
/// let parity = xed_ecc::parity::compute(&[1, 2, 4]);
/// assert_eq!(parity, 7);
/// ```
pub const fn compute(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    let mut i = 0;
    while i < words.len() {
        acc ^= words[i];
        i += 1;
    }
    acc
}

/// Checks Equation 1: XOR of all data words and the parity word is zero.
pub const fn holds(words: &[u64], parity: u64) -> bool {
    compute(words) == parity
}

/// Reconstructs the word of the chip at `erased` from the remaining words
/// and the parity word (paper Equation 3).
///
/// The value currently stored at `words[erased]` is ignored, so callers can
/// pass the received burst unchanged (including a catch-word in the erased
/// slot).
///
/// # Panics
///
/// Panics if `erased >= words.len()`.
///
/// ```
/// let data = [10u64, 20, 30, 40];
/// let parity = xed_ecc::parity::compute(&data);
/// let mut received = data;
/// received[2] = 0xDEAD; // chip 2 returned garbage (or a catch-word)
/// assert_eq!(xed_ecc::parity::reconstruct(&received, parity, 2), 30);
/// ```
pub const fn reconstruct(words: &[u64], parity: u64, erased: usize) -> u64 {
    assert!(erased < words.len(), "erased index out of range");
    let mut acc = parity;
    let mut i = 0;
    while i < words.len() {
        if i != erased {
            acc ^= words[i];
        }
        i += 1;
    }
    acc
}

/// Incrementally updates a parity word after one data word changes.
///
/// RAID small-write optimization: `new_parity = parity ^ old ^ new`. XED's
/// memory controller uses this on writes so it never needs to read the other
/// seven chips.
#[inline]
#[must_use]
pub const fn update(parity: u64, old_word: u64, new_word: u64) -> u64 {
    parity ^ old_word ^ new_word
}

// ---------------------------------------------------------------------------
// Compile-time RAID-3 proof over the paper's 8-chip geometry: for a fixed
// bit-diverse 8-word pattern, (a) Equation 1 holds for the computed parity,
// (b) reconstruction (Equation 3) recovers every erased position exactly,
// regardless of what garbage occupies the erased slot, and (c) the
// small-write update (parity ^ old ^ new) equals a full recompute for every
// position. Breaking any of the three fails `cargo build`.
// ---------------------------------------------------------------------------
const _: () = {
    const WORDS: [u64; 8] = [
        0xDEAD_BEEF_0BAD_F00D,
        0x0123_4567_89AB_CDEF,
        0xFFFF_FFFF_0000_0000,
        0xAAAA_5555_AAAA_5555,
        0x8000_0000_0000_0001,
        0x0F0F_0F0F_F0F0_F0F0,
        0,
        u64::MAX,
    ];
    const P: u64 = compute(&WORDS);
    assert!(
        holds(&WORDS, P),
        "Equation 1 violated for the computed parity"
    );

    let mut erased = 0usize;
    while erased < 8 {
        let mut rx = WORDS;
        rx[erased] = !WORDS[erased]; // garbage (or a catch-word)
        assert!(
            reconstruct(&rx, P, erased) == WORDS[erased],
            "XOR reconstruction not exact"
        );

        // Small-write update must match a full recompute.
        let mut updated = WORDS;
        updated[erased] = 0xC0DE_C0DE_C0DE_C0DE;
        let incremental = update(P, WORDS[erased], updated[erased]);
        assert!(
            incremental == compute(&updated),
            "incremental parity update diverges"
        );
        erased += 1;
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_empty_is_zero() {
        assert_eq!(compute(&[]), 0);
    }

    #[test]
    fn parity_self_inverse() {
        let words = [0xDEADu64, 0xBEEF, 0xF00D, 0xCAFE, 1, 2, 3, 4];
        let p = compute(&words);
        assert!(holds(&words, p));
        assert_eq!(compute(&words) ^ p, 0);
    }

    #[test]
    fn reconstruct_every_position() {
        let words: Vec<u64> = (0..8).map(|i| 0x1111_1111_1111_1111u64 * (i + 3)).collect();
        let p = compute(&words);
        for erased in 0..8 {
            let mut corrupted = words.clone();
            corrupted[erased] = !words[erased]; // garbage
            assert_eq!(reconstruct(&corrupted, p, erased), words[erased]);
        }
    }

    #[test]
    fn update_matches_full_recompute() {
        let mut words = [5u64, 6, 7, 8];
        let mut p = compute(&words);
        p = update(p, words[1], 999);
        words[1] = 999;
        assert_eq!(p, compute(&words));
    }

    #[test]
    fn holds_detects_corruption() {
        let words = [1u64, 2, 3];
        let p = compute(&words);
        let mut bad = words;
        bad[0] ^= 0x10;
        assert!(!holds(&bad, p));
    }

    #[test]
    #[should_panic]
    fn reconstruct_out_of_range_panics() {
        reconstruct(&[1, 2], 3, 2);
    }
}
