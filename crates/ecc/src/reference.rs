//! Pre-optimization reference implementations of the ECC kernels.
//!
//! The word-parallel kernels in [`crate::hamming`], [`crate::crc8`],
//! [`crate::secded32`], and [`crate::rs`] replaced the seed's bit-serial /
//! `Vec`-allocating implementations. Those originals live here, verbatim,
//! for two reasons:
//!
//! 1. **Differential testing.** The equivalence suite
//!    (`tests/ecc_kernel_equivalence.rs`) proves the optimized kernels
//!    bit-identical to these references — exhaustively over all single- and
//!    double-bit errors of the 72/40-bit codes, and under seeded
//!    random/burst/errata sweeps for the Reed–Solomon decoder.
//! 2. **Convenience API.** The `Vec`-returning Reed–Solomon
//!    [`ReedSolomon::encode`]/[`ReedSolomon::decode`]/
//!    [`ReedSolomon::syndromes`] entry points are defined here and remain
//!    available for callers that prefer owned results over scratch reuse
//!    (tests, tools, one-shot decodes).
//!
//! Nothing in this module is on the simulation hot path; the `xed-lint`
//! XL009 rule keeps heap allocation out of the designated hot modules of
//! this crate, and this module is the designated home for everything the
//! rule banishes.

use crate::codeword::CodeWord72;
use crate::crc8::POLY;
use crate::gf::Field;
use crate::hamming::{DATA_POS, POS_TO_DATABIT};
use crate::rs::{Decoded, ReedSolomon, RsError};
use crate::secded::{DecodeOutcome, SecDed};
use crate::secded32::{CodeWord40, Decode32};

/// Number of Hamming positions (1..=71) in the inner (71,64) code.
const POSITIONS: usize = 71;
/// Number of Hamming check bits (positions 1,2,4,...,64).
const CHECKS: usize = 7;

// ---------------------------------------------------------------------------
// Bit-serial (72,64) extended Hamming codec — the seed implementation of
// `Hamming7264`, walking all 64 data bits and 7 check bits per word.
// ---------------------------------------------------------------------------

/// The original bit-serial (72,64) extended Hamming SECDED codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefHamming7264;

impl RefHamming7264 {
    /// Builds the reference codec.
    pub fn new() -> Self {
        Self
    }

    /// Bit-serial syndrome: loops every data and check bit, XORing Hamming
    /// positions into the accumulator.
    fn syndrome(&self, received: CodeWord72) -> (u8, u8) {
        let mut syn = 0u8;
        let mut overall = 0u8;
        // Data bits contribute their Hamming position to the syndrome.
        for (i, &p) in DATA_POS.iter().enumerate() {
            let b = ((received.data() >> i) & 1) as u8;
            if b == 1 {
                syn ^= p;
                overall ^= 1;
            }
        }
        // Check bits: physical check bit c (0..7 exclusive of last) sits at
        // Hamming position 2^c; physical check bit 7 is the overall parity.
        let check = received.check();
        for c in 0..CHECKS {
            if (check >> c) & 1 == 1 {
                syn ^= 1u8 << c;
                overall ^= 1;
            }
        }
        overall ^= (check >> 7) & 1;
        (syn, overall)
    }

    /// Bit-serial check-byte computation.
    fn check_bits(&self, data: u64) -> u8 {
        let mut syn = 0u8;
        let mut ones = 0u8;
        for (i, &p) in DATA_POS.iter().enumerate() {
            if (data >> i) & 1 == 1 {
                syn ^= p;
                ones ^= 1;
            }
        }
        // Check bits are chosen to zero the syndrome.
        let mut check = syn & 0x7F;
        // Overall parity covers all 71 inner bits.
        let inner_parity = ones ^ ((check.count_ones() & 1) as u8);
        check |= inner_parity << 7;
        check
    }

    /// Translates a Hamming position (1..=71) into a physical bit index.
    fn position_to_physical(&self, p: u8) -> u32 {
        if (p as usize).is_power_of_two() {
            // Hamming check bit c sits in check-byte bit c = physical 71 - c.
            71 - p.trailing_zeros()
        } else {
            // Data bit di of the u64 word = physical 63 - di.
            // indexing: decode only passes positions in 1..=71.
            63 - POS_TO_DATABIT[p as usize] as u32
        }
    }
}

impl SecDed for RefHamming7264 {
    fn encode(&self, data: u64) -> CodeWord72 {
        CodeWord72::new(data, self.check_bits(data))
    }

    fn decode(&self, received: CodeWord72) -> DecodeOutcome {
        let (syn, overall) = self.syndrome(received);
        match (syn, overall) {
            (0, 0) => DecodeOutcome::Clean {
                data: received.data(),
            },
            (0, 1) => DecodeOutcome::Corrected {
                data: received.data(),
                bit: 64,
            },
            (s, 1) if (s as usize) <= POSITIONS => {
                let phys = self.position_to_physical(s);
                let fixed = received.with_bit_flipped(phys);
                DecodeOutcome::Corrected {
                    data: fixed.data(),
                    bit: phys,
                }
            }
            _ => DecodeOutcome::Detected,
        }
    }

    fn is_valid(&self, received: CodeWord72) -> bool {
        self.syndrome(received) == (0, 0)
    }
}

// ---------------------------------------------------------------------------
// Bit-at-a-time CRC8-ATM codecs — LFSR shifted one bit per step, and a
// linear-search decoder with no lookup tables at all.
// ---------------------------------------------------------------------------

/// Bit-at-a-time CRC8-ATM of a 64-bit word (MSB-first LFSR, no tables).
pub fn crc8_u64_bitserial(data: u64) -> u8 {
    let mut crc = 0u8;
    for byte in data.to_be_bytes() {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Bit-at-a-time CRC8-ATM of a 32-bit word.
pub fn crc8_u32_bitserial(data: u32) -> u8 {
    let mut crc = 0u8;
    for byte in data.to_be_bytes() {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Syndrome of the single-bit error at physical position `i` of a (72,64)
/// codeword, computed bit-serially.
fn single_bit_syndrome_72(i: u32) -> u8 {
    if i < 64 {
        crc8_u64_bitserial(1u64 << (63 - i))
    } else {
        1u8 << (71 - i)
    }
}

/// Syndrome of the single-bit error at physical position `i` of a (40,32)
/// codeword, computed bit-serially.
fn single_bit_syndrome_40(i: u32) -> u8 {
    if i < 32 {
        crc8_u32_bitserial(1u32 << (31 - i))
    } else {
        1u8 << (39 - i)
    }
}

/// The (72,64) CRC8-ATM SECDED codec, bit-serial: LFSR CRC plus a linear
/// search over the 72 single-bit syndromes instead of a lookup table.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefCrc8Atm;

impl RefCrc8Atm {
    /// Builds the reference codec.
    pub fn new() -> Self {
        Self
    }
}

impl SecDed for RefCrc8Atm {
    fn encode(&self, data: u64) -> CodeWord72 {
        CodeWord72::new(data, crc8_u64_bitserial(data))
    }

    fn decode(&self, received: CodeWord72) -> DecodeOutcome {
        let s = crc8_u64_bitserial(received.data()) ^ received.check();
        if s == 0 {
            return DecodeOutcome::Clean {
                data: received.data(),
            };
        }
        for i in 0..72u32 {
            if single_bit_syndrome_72(i) == s {
                let fixed = received.with_bit_flipped(i);
                return DecodeOutcome::Corrected {
                    data: fixed.data(),
                    bit: i,
                };
            }
        }
        DecodeOutcome::Detected
    }

    fn is_valid(&self, received: CodeWord72) -> bool {
        crc8_u64_bitserial(received.data()) == received.check()
    }
}

/// The (40,32) CRC8-ATM SECDED codec, bit-serial (mirrors
/// [`crate::secded32::Crc8Atm32`]'s API).
#[derive(Debug, Clone, Copy, Default)]
pub struct RefCrc8Atm32;

impl RefCrc8Atm32 {
    /// Builds the reference codec.
    pub fn new() -> Self {
        Self
    }

    /// Encodes 32 data bits into a 40-bit codeword.
    pub fn encode(&self, data: u32) -> CodeWord40 {
        CodeWord40::new(data, crc8_u32_bitserial(data))
    }

    /// Decodes, correcting a single-bit error if present.
    pub fn decode(&self, received: CodeWord40) -> Decode32 {
        let s = crc8_u32_bitserial(received.data()) ^ received.check();
        if s == 0 {
            return Decode32::Clean {
                data: received.data(),
            };
        }
        for i in 0..40u32 {
            if single_bit_syndrome_40(i) == s {
                let fixed = received.with_bit_flipped(i);
                return Decode32::Corrected {
                    data: fixed.data(),
                    bit: i,
                };
            }
        }
        Decode32::Detected
    }

    /// `true` if the received word is a valid codeword.
    pub fn is_valid(&self, received: CodeWord40) -> bool {
        crc8_u32_bitserial(received.data()) == received.check()
    }
}

// ---------------------------------------------------------------------------
// Vec-based Reed–Solomon pipeline — the seed implementation of
// `ReedSolomon::{encode, syndromes, decode}`, allocating every intermediate
// polynomial. Doubles as the public convenience API.
// ---------------------------------------------------------------------------

/// Seed-verbatim Horner evaluation of the received word through
/// [`Field::mul`]'s log/antilog walk. The optimized decoder now computes
/// syndromes as XOR folds of independent flat-table products; the
/// reference pipeline keeps its own copy of the original walk so the
/// differential baseline stays genuinely pre-optimization.
fn eval_received_ref(rs: &ReedSolomon, received: &[u8], x: u8) -> u8 {
    let f = rs.field();
    let mut acc = 0u8;
    for &c in received {
        acc = f.mul(acc, x) ^ c;
    }
    acc
}

/// Seed-verbatim codeword validity check (see [`eval_received_ref`]).
fn is_valid_ref(rs: &ReedSolomon, received: &[u8]) -> bool {
    (0..rs.nsym()).all(|j| eval_received_ref(rs, received, rs.field().alpha_pow(j)) == 0)
}

impl ReedSolomon {
    /// Encodes `data` (length `k`) into a systematic codeword of length `n`.
    ///
    /// Allocating counterpart of [`ReedSolomon::encode_into`]; this is the
    /// seed implementation, kept as the reference.
    ///
    /// ```
    /// use xed_ecc::rs::ReedSolomon;
    /// use xed_ecc::gf::Field;
    ///
    /// let rs = ReedSolomon::new(Field::gf256(), 18, 16);
    /// let data: Vec<u8> = (0..16).collect();
    /// let cw = rs.encode(&data);
    /// let mut rx = cw.clone();
    /// rx[3] ^= 0xFF; // one chip returns garbage
    /// let out = rs.decode(&rx, &[]).unwrap();
    /// assert_eq!(out.data(16), &data[..]);
    /// assert_eq!(out.corrected, vec![3]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or a symbol exceeds the field size.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k(), "expected {} data symbols", self.k());
        let f = self.field();
        let max = (f.size() - 1) as u8;
        assert!(data.iter().all(|&s| s <= max), "symbol exceeds field size");
        let nsym = self.nsym();
        let gen = self.generator();
        // Synthetic division of data(x)·x^nsym by g(x); codeword index i
        // corresponds to the coefficient of x^(n-1-i).
        let mut out = vec![0u8; self.n()];
        out[..self.k()].copy_from_slice(data);
        for i in 0..self.k() {
            let coef = out[i];
            if coef != 0 {
                for j in 1..=nsym {
                    // generator is ascending; g[nsym] = 1 is the lead term.
                    out[i + j] ^= f.mul(gen[nsym - j], coef);
                }
            }
        }
        out[..self.k()].copy_from_slice(data);
        out
    }

    /// Computes the `nsym` syndromes `S_j = r(α^j)`.
    pub fn syndromes(&self, received: &[u8]) -> Vec<u8> {
        (0..self.nsym())
            .map(|j| eval_received_ref(self, received, self.field().alpha_pow(j)))
            .collect()
    }

    /// Decodes a received word, correcting up to `nsym` erased symbols (at
    /// the given indices) and unknown errors, provided
    /// `2·errors + erasures ≤ nsym`.
    ///
    /// This is the seed's `Vec`-allocating pipeline, kept verbatim as the
    /// reference for [`ReedSolomon::decode_with`] (which is asserted
    /// bit-identical by the equivalence suite) and as a convenience API.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::Detected`] when the corruption exceeds the code's
    /// capability (including decoder-detected inconsistencies).
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n` or an erasure index is out of range.
    pub fn decode(&self, received: &[u8], erasures: &[usize]) -> Result<Decoded, RsError> {
        assert_eq!(received.len(), self.n(), "expected {} symbols", self.n());
        for &e in erasures {
            assert!(e < self.n(), "erasure index {e} out of range");
        }
        let nsym = self.nsym();
        if erasures.len() > nsym {
            return Err(RsError::Detected);
        }

        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok(Decoded {
                codeword: received.to_vec(),
                corrected: Vec::new(),
            });
        }

        let f = self.field();
        // Erasure locator Γ(x) = Π (1 + X_i·x), X_i = α^(n-1-index).
        let mut gamma = vec![1u8];
        for &idx in erasures {
            let x = f.alpha_pow(self.n() - 1 - idx);
            gamma = f.poly_mul(&gamma, &[1, x]);
        }

        // Forney syndromes: coefficients e..nsym-1 of Γ(x)·S(x).
        let e = erasures.len();
        let prod = f.poly_mul(&gamma, &synd);
        let forney: Vec<u8> = (e..nsym)
            .map(|i| prod.get(i).copied().unwrap_or(0))
            .collect();

        // Berlekamp–Massey on the Forney syndromes finds the error locator σ.
        let sigma = berlekamp_massey(f, &forney);
        let errors = sigma.len() - 1;
        if 2 * errors + e > nsym {
            return Err(RsError::Detected);
        }

        // Errata locator Ψ = σ·Γ; Chien search for its roots.
        let psi = f.poly_mul(&sigma, &gamma);
        let mut positions = Vec::new();
        for i in 0..self.n() {
            let x_inv = f.alpha_pow(f.order() - ((self.n() - 1 - i) % f.order()));
            if f.poly_eval(&psi, x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != psi.len() - 1 {
            return Err(RsError::Detected);
        }

        // Error evaluator Ω = (S·Ψ) mod x^nsym.
        let mut omega = f.poly_mul(&synd, &psi);
        omega.truncate(nsym);

        // Formal derivative Ψ'(x): over GF(2^m) only odd-degree terms survive.
        let mut psi_prime = vec![0u8; psi.len().saturating_sub(1)];
        for (i, slot) in psi_prime.iter_mut().enumerate() {
            if i % 2 == 0 {
                *slot = psi[i + 1];
            }
        }

        // Forney magnitudes: e_k = X_k · Ω(X_k⁻¹) / Ψ'(X_k⁻¹).
        let mut corrected_word = received.to_vec();
        for &i in &positions {
            let xk = f.alpha_pow(self.n() - 1 - i);
            let xk_inv = f.inv(xk);
            let denom = f.poly_eval(&psi_prime, xk_inv);
            if denom == 0 {
                return Err(RsError::Detected);
            }
            let num = f.mul(xk, f.poly_eval(&omega, xk_inv));
            corrected_word[i] ^= f.div(num, denom);
        }

        // Verify: the corrected word must be a valid codeword.
        if !is_valid_ref(self, &corrected_word) {
            return Err(RsError::Detected);
        }
        // Report only positions whose value actually changed (an erasure may
        // have held the correct value by luck).
        let corrected: Vec<usize> = positions
            .into_iter()
            .filter(|&i| corrected_word[i] != received[i])
            .collect();
        Ok(Decoded {
            codeword: corrected_word,
            corrected,
        })
    }
}

/// Berlekamp–Massey: smallest LFSR (as locator polynomial σ, ascending,
/// σ(0)=1) generating the syndrome sequence. `Vec`-based seed version.
fn berlekamp_massey(f: &Field, synd: &[u8]) -> Vec<u8> {
    let mut sigma = vec![1u8];
    let mut prev = vec![1u8];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u8;
    for n in 0..synd.len() {
        let mut delta = synd[n];
        for i in 1..=l.min(sigma.len() - 1) {
            delta ^= f.mul(sigma[i], synd[n - i]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t = sigma.clone();
            let coef = f.div(delta, b);
            sigma = poly_sub_shifted(f, &sigma, &prev, coef, m);
            l = n + 1 - l;
            prev = t;
            b = delta;
            m = 1;
        } else {
            let coef = f.div(delta, b);
            sigma = poly_sub_shifted(f, &sigma, &prev, coef, m);
            m += 1;
        }
    }
    // Trim trailing zeros so sigma.len()-1 == degree.
    while sigma.len() > 1 && sigma[sigma.len() - 1] == 0 {
        sigma.pop();
    }
    sigma
}

/// Returns `a(x) + coef·x^shift·b(x)` (subtraction == addition in GF(2^m)).
fn poly_sub_shifted(f: &Field, a: &[u8], b: &[u8], coef: u8, shift: usize) -> Vec<u8> {
    let mut out = a.to_vec();
    if out.len() < b.len() + shift {
        out.resize(b.len() + shift, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] ^= f.mul(coef, bi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secded::conformance;

    #[test]
    fn ref_hamming_conformance() {
        let c = RefHamming7264::new();
        conformance::roundtrip(&c);
        conformance::corrects_all_single_bit_errors(&c);
    }

    #[test]
    fn ref_crc8_conformance() {
        let c = RefCrc8Atm::new();
        conformance::roundtrip(&c);
        conformance::corrects_all_single_bit_errors(&c);
    }

    #[test]
    fn ref_crc8_matches_table_crc() {
        let fast = crate::crc8::Crc8Atm::new();
        for d in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            assert_eq!(crc8_u64_bitserial(d), fast.crc8(d));
        }
    }

    #[test]
    fn ref_crc8_32_roundtrip() {
        let c = RefCrc8Atm32::new();
        for d in [0u32, 1, u32::MAX, 0xCAFE_F00D] {
            let w = c.encode(d);
            assert!(c.is_valid(w));
            assert_eq!(c.decode(w), Decode32::Clean { data: d });
            for i in 0..40 {
                assert_eq!(
                    c.decode(w.with_bit_flipped(i)),
                    Decode32::Corrected { data: d, bit: i }
                );
            }
        }
    }
}
