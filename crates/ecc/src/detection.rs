//! Monte-Carlo measurement of SECDED detection rates (paper Table II).
//!
//! Table II compares the fraction of *invalid codewords detected* by the
//! (72,64) Hamming code and the (72,64) CRC8-ATM code under two error
//! models:
//!
//! * **random errors** — `k` distinct bit positions flipped uniformly at
//!   random across the 72-bit codeword;
//! * **burst errors** — `k` *consecutive* physical bits all flipped, with a
//!   uniformly random start position.
//!
//! An error pattern is **undetected** exactly when it maps the codeword onto
//! another valid codeword (i.e. the pattern is itself a codeword). Note that
//! mis-correction (e.g. a 3-bit error that looks like a 1-bit error) still
//! counts as *detected* here: the on-die engine saw an invalid word and — in
//! a XED system — transmits the catch-word, after which DIMM-level parity
//! repairs the data (paper Figure 4).

use crate::codeword::CodeWord72;
use crate::secded::SecDed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The error model of one Table II column group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorModel {
    /// `k` distinct uniformly random bit flips.
    Random,
    /// `k` consecutive bit flips at a uniformly random start.
    Burst,
}

/// One measured cell of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRate {
    /// Number of flipped bits (random) or burst length (burst).
    pub errors: u32,
    /// Error model used.
    pub model: ErrorModel,
    /// Trials performed.
    pub trials: u64,
    /// Trials in which the corruption produced an invalid codeword
    /// (syndrome ≠ 0), i.e. was detectable.
    pub detected: u64,
}

impl DetectionRate {
    /// Detection rate in percent.
    pub fn percent(&self) -> f64 {
        100.0 * self.detected as f64 / self.trials as f64
    }
}

/// Applies one sampled error pattern of the given model to `word`.
pub fn apply_error<R: Rng>(rng: &mut R, word: CodeWord72, k: u32, model: ErrorModel) -> CodeWord72 {
    match model {
        ErrorModel::Random => {
            let mut positions = Vec::with_capacity(k as usize);
            while positions.len() < k as usize {
                let p = rng.gen_range(0..72u32);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            positions
                .into_iter()
                .fold(word, |w, p| w.with_bit_flipped(p))
        }
        ErrorModel::Burst => {
            let start = rng.gen_range(0..=(72 - k));
            (0..k).fold(word, |w, i| w.with_bit_flipped(start + i))
        }
    }
}

/// Measures the detection rate of `code` for `k`-bit errors of `model`.
///
/// Each trial encodes a random data word, applies a sampled error pattern,
/// and checks whether the result is an invalid codeword.
pub fn measure<C: SecDed>(
    code: &C,
    k: u32,
    model: ErrorModel,
    trials: u64,
    seed: u64,
) -> DetectionRate {
    assert!((1..=72).contains(&k), "error count {k} out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0u64;
    for _ in 0..trials {
        let data: u64 = rng.gen();
        let word = code.encode(data);
        let corrupted = apply_error(&mut rng, word, k, model);
        if !code.is_valid(corrupted) {
            detected += 1;
        }
    }
    DetectionRate {
        errors: k,
        model,
        trials,
        detected,
    }
}

/// Exhaustively counts the *undetectable* error patterns of a given
/// weight: patterns that map every valid codeword onto another valid
/// codeword (i.e. the error pattern is itself a codeword). By linearity
/// this is data-independent, so one codeword census characterizes the
/// code.
///
/// Weight 4 is the interesting census for a distance-4 SECDED code: its
/// count divided by C(72,4) is the exact undetected fraction behind the
/// Table II "random 4-bit" row.
///
/// # Panics
///
/// Panics if `weight` is not in `1..=4` (larger weights are
/// combinatorially expensive; use [`measure`] instead).
pub fn undetected_pattern_census<C: SecDed>(code: &C, weight: u32) -> u64 {
    assert!(
        (1..=4).contains(&weight),
        "census supported for weights 1-4"
    );
    let base = code.encode(0);
    let mut count = 0u64;
    let mut idx = [0u32; 4];
    // Iterate all ascending index tuples of the requested weight.
    fn rec<C: SecDed>(
        code: &C,
        base: crate::codeword::CodeWord72,
        weight: u32,
        start: u32,
        depth: u32,
        idx: &mut [u32; 4],
        count: &mut u64,
    ) {
        if depth == weight {
            let mut w = base;
            for &i in &idx[..weight as usize] {
                w = w.with_bit_flipped(i);
            }
            if code.is_valid(w) {
                *count += 1;
            }
            return;
        }
        for i in start..(72 - (weight - depth - 1)) {
            idx[depth as usize] = i;
            rec(code, base, weight, i + 1, depth + 1, idx, count);
        }
    }
    rec(code, base, weight, 0, 0, &mut idx, &mut count);
    count
}

/// Measures a full Table II row set: `k = 1..=8` for both error models.
pub fn table2_rows<C: SecDed>(
    code: &C,
    trials: u64,
    seed: u64,
) -> Vec<(DetectionRate, DetectionRate)> {
    (1..=8)
        .map(|k| {
            let random = measure(code, k, ErrorModel::Random, trials, seed ^ (k as u64) << 8);
            let burst = measure(
                code,
                k,
                ErrorModel::Burst,
                trials,
                seed ^ (k as u64) << 16 | 1,
            );
            (random, burst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc8::Crc8Atm;
    use crate::hamming::Hamming7264;

    const TRIALS: u64 = 4_000;

    #[test]
    fn single_and_double_always_detected_both_codes() {
        let h = Hamming7264::new();
        let c = Crc8Atm::new();
        for k in 1..=2 {
            for model in [ErrorModel::Random, ErrorModel::Burst] {
                assert_eq!(measure(&h, k, model, TRIALS, 1).percent(), 100.0);
                assert_eq!(measure(&c, k, model, TRIALS, 2).percent(), 100.0);
            }
        }
    }

    #[test]
    fn crc8_detects_all_bursts_to_8() {
        // The headline Table II property of CRC8-ATM.
        let c = Crc8Atm::new();
        for k in 1..=8 {
            let r = measure(&c, k, ErrorModel::Burst, TRIALS, 3);
            assert_eq!(r.percent(), 100.0, "burst-{k}");
        }
    }

    #[test]
    fn hamming_misses_some_bursts() {
        // Hamming's Table II weakness: burst-4 and burst-8 patterns escape.
        let h = Hamming7264::new();
        let b4 = measure(&h, 4, ErrorModel::Burst, TRIALS, 4);
        let b8 = measure(&h, 8, ErrorModel::Burst, TRIALS, 5);
        assert!(b4.percent() < 100.0, "burst-4 rate {}", b4.percent());
        assert!(b8.percent() < 100.0, "burst-8 rate {}", b8.percent());
    }

    #[test]
    fn odd_errors_always_detected_random() {
        // Both codes have even-weight codewords only (extended parity /
        // (x+1) factor), so odd-weight error patterns are always detected.
        let h = Hamming7264::new();
        let c = Crc8Atm::new();
        for k in [3u32, 5, 7] {
            assert_eq!(
                measure(&h, k, ErrorModel::Random, TRIALS, 6).percent(),
                100.0
            );
            assert_eq!(
                measure(&c, k, ErrorModel::Random, TRIALS, 7).percent(),
                100.0
            );
        }
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let h = Hamming7264::new();
        let a = measure(&h, 4, ErrorModel::Random, 1000, 42);
        let b = measure(&h, 4, ErrorModel::Random, 1000, 42);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn census_no_codewords_below_distance() {
        // d = 4 for both codes: no nonzero codeword of weight 1-3.
        for weight in 1..=3 {
            assert_eq!(undetected_pattern_census(&Hamming7264::new(), weight), 0);
            assert_eq!(undetected_pattern_census(&Crc8Atm::new(), weight), 0);
        }
    }

    #[test]
    fn census_weight4_matches_sampled_detection_rate() {
        // The exact undetected fraction from the exhaustive census must
        // agree with the Monte-Carlo "random 4" measurement.
        let code = Crc8Atm::new();
        let census = undetected_pattern_census(&code, 4);
        assert!(census > 0, "a (72,64) code has weight-4 codewords");
        let exact_undetected = census as f64 / 1_028_790.0; // C(72,4)
        let sampled = measure(&code, 4, ErrorModel::Random, 300_000, 17);
        let sampled_undetected = 1.0 - sampled.percent() / 100.0;
        assert!(
            (exact_undetected - sampled_undetected).abs() < 0.002,
            "census {exact_undetected} vs sampled {sampled_undetected}"
        );
    }

    #[test]
    fn table2_has_eight_rows() {
        let rows = table2_rows(&Crc8Atm::new(), 200, 9);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].0.errors, 1);
        assert_eq!(rows[7].1.errors, 8);
    }
}
