//! Lane-transposed (bit-sliced) batch entry points for the SECDED codes.
//!
//! The scalar codecs process one 72-bit codeword at a time: seven AND +
//! popcount-parity folds per word ([`crate::hamming`]), or a table walk
//! ([`crate::crc8`]). A memory-system simulation, however, touches
//! codewords in bulk — a scrub pass or a fault-injection batch checks
//! thousands of words whose *validity bit* is all that matters. This
//! module transposes 64 codewords into word lanes (the same layout as the
//! Monte-Carlo driver's 64-trial blocks): after a 64×64 bit transpose,
//! *data bit `i` of all 64 words* lives in one `u64`, and check bit `c` of
//! all 64 words is the XOR of the slices selected by row `c` of the
//! H-matrix. One XOR per matrix entry replaces one AND + popcount per
//! word, and the 64 validity bits come out as a single mask word.
//!
//! The kernel is code-agnostic: [`LaneSecDed::for_code`] derives the mask
//! rows of **any** GF(2)-linear systematic `(72,64)` code by probing its
//! scalar encoder on the 64 basis vectors, so the same lane kernel serves
//! both the Hamming and the CRC8-ATM code (both are linear; construction
//! verifies this). The scalar codecs in [`crate::hamming`] / [`crate::crc8`]
//! remain the oracles the lane kernels are differentially tested against.

use crate::codeword::CodeWord72;
use crate::secded::SecDed;

/// Number of codewords per lane-transposed block.
pub const LANES: usize = 64;

/// Check bits per codeword.
const CHECKS: usize = 8;

/// Transposes a 64×64 bit matrix: bit `l` of `out[b]` equals bit `b` of
/// `input[l]`.
///
/// In codeword terms: feeding 64 data words produces 64 *bit slices*,
/// where slice `b` collects bit `b` of every word — lane `l` of each slice
/// belongs to word `l`. The transform is an involution (applying it twice
/// returns the input), so the same routine maps both directions.
///
/// Classic mask-and-shift block transpose: swap the off-diagonal 32×32
/// blocks, then the off-diagonal 16×16 blocks within each half, and so on
/// down to single bits — 6 rounds of 32 XOR-swap steps instead of 4096
/// single-bit moves.
pub fn transpose64(input: &[u64; LANES]) -> [u64; LANES] {
    // The block-swap rounds below transpose with most-significant-first
    // row/column labels; reversing the rows on the way in and out converts
    // that into the least-significant-first contract documented above.
    let mut a = [0u64; LANES];
    for (i, slot) in a.iter_mut().enumerate() {
        *slot = input[LANES - 1 - i];
    }
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < LANES {
            // indexing: the stride formula below keeps bit j of k clear,
            // so k | j < 64.
            let t = (a[k] ^ (a[k | j] >> j)) & m;
            a[k] ^= t;
            a[k | j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
    a.reverse();
    a
}

/// Lane-parallel batch kernel for a GF(2)-linear systematic SECDED code.
///
/// Holds the eight H-matrix mask rows of the code (including the row of
/// the overall-parity/extension bit, which basis probing captures like any
/// other check bit). Cheap to construct; build one per code and reuse it.
///
/// ```
/// use xed_ecc::lanes::{LaneSecDed, LANES};
/// use xed_ecc::{Crc8Atm, SecDed};
///
/// let code = Crc8Atm::new();
/// let lane = LaneSecDed::for_code(&code);
/// let data: [u64; LANES] = std::array::from_fn(|i| 0x0123_4567_89AB_CDEF ^ i as u64);
/// let words = lane.encode_batch(&data);
/// assert_eq!(lane.valid_mask(&words), u64::MAX);
/// assert_eq!(words[3], code.encode(data[3]));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LaneSecDed {
    /// `masks[c]` has bit `i` set iff data bit `i` participates in check
    /// bit `c` — row `c` of the code's H-matrix restricted to the data
    /// columns.
    masks: [u64; CHECKS],
}

impl LaneSecDed {
    /// Derives the lane kernel of `code` by probing its scalar encoder on
    /// the 64 basis vectors.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not GF(2)-linear: the zero word must encode to
    /// a zero check byte, and a superposition spot-check must match the
    /// XOR of the basis encodings. (Both in-tree SECDED codes are linear.)
    pub fn for_code<C: SecDed>(code: &C) -> Self {
        assert_eq!(
            code.encode(0).check(),
            0,
            "code is affine, not linear: zero data must have zero check"
        );
        let mut masks = [0u64; CHECKS];
        for i in 0..64u32 {
            let check = code.encode(1u64 << i).check();
            for (c, mask) in masks.iter_mut().enumerate() {
                if (check >> c) & 1 == 1 {
                    *mask |= 1u64 << i;
                }
            }
        }
        let kernel = Self { masks };
        // Linearity spot-check beyond the basis: any disagreement between
        // the probed masks and the scalar encoder on a superposition means
        // the code is not linear and the kernel would be silently wrong.
        for probe in [0xDEAD_BEEF_0BAD_F00Du64, 0x0123_4567_89AB_CDEF, u64::MAX] {
            assert_eq!(
                kernel.check_byte_scalar(probe),
                code.encode(probe).check(),
                "code is not GF(2)-linear; lane kernel unsupported"
            );
        }
        kernel
    }

    /// The probed H-matrix mask rows (row `c` restricted to the data
    /// columns).
    pub fn masks(&self) -> &[u64; CHECKS] {
        &self.masks
    }

    /// Check byte of one word from the probed masks (construction-time
    /// verification only; runtime batches use the lane kernel).
    fn check_byte_scalar(&self, data: u64) -> u8 {
        let mut check = 0u8;
        for (c, &mask) in self.masks.iter().enumerate() {
            check |= (((data & mask).count_ones() & 1) as u8) << c;
        }
        check
    }

    /// Check bit `c` of all 64 words of a *transposed* data block: the XOR
    /// of the bit slices selected by mask row `c`.
    fn check_lanes(&self, slices: &[u64; LANES]) -> [u64; CHECKS] {
        let mut out = [0u64; CHECKS];
        for (c, &mask) in self.masks.iter().enumerate() {
            let mut acc = 0u64;
            let mut m = mask;
            while m != 0 {
                // indexing: trailing_zeros of a nonzero u64 is < 64.
                acc ^= slices[m.trailing_zeros() as usize];
                m &= m - 1;
            }
            out[c] = acc;
        }
        out
    }

    /// Computes the check bytes of 64 data words lane-parallel.
    pub fn check_bytes(&self, data: &[u64; LANES]) -> [u8; LANES] {
        let lanes = self.check_lanes(&transpose64(data));
        let mut out = [0u8; LANES];
        for (l, byte) in out.iter_mut().enumerate() {
            for (c, &lane) in lanes.iter().enumerate() {
                *byte |= (((lane >> l) & 1) as u8) << c;
            }
        }
        out
    }

    /// Encodes 64 data words into codewords lane-parallel. Equals 64 calls
    /// to the scalar [`SecDed::encode`].
    pub fn encode_batch(&self, data: &[u64; LANES]) -> [CodeWord72; LANES] {
        let checks = self.check_bytes(data);
        std::array::from_fn(|l| CodeWord72::new(data[l], checks[l]))
    }

    /// Classifies 64 received words at once: bit `l` of the result is set
    /// iff `words[l]` is a valid codeword.
    ///
    /// For a systematic linear code, validity is exactly agreement between
    /// the received check byte and the one recomputed from the received
    /// data — the batch form of [`SecDed::is_valid`]. The mask fans
    /// straight into the bit-sliced consumers (one branch decides whether
    /// a whole block needs scalar-path attention), never materializing 64
    /// booleans.
    pub fn valid_mask(&self, words: &[CodeWord72; LANES]) -> u64 {
        let mut data = [0u64; LANES];
        for (l, w) in words.iter().enumerate() {
            data[l] = w.data();
        }
        let expected = self.check_lanes(&transpose64(&data));
        // Transpose the received check bytes into 8 lanes of 64.
        let mut received = [0u64; CHECKS];
        for (l, w) in words.iter().enumerate() {
            let check = w.check();
            for (c, lane) in received.iter_mut().enumerate() {
                *lane |= u64::from((check >> c) & 1) << l;
            }
        }
        let mut diff = 0u64;
        for c in 0..CHECKS {
            diff |= expected[c] ^ received[c];
        }
        !diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc8::Crc8Atm;
    use crate::hamming::Hamming7264;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_block(rng: &mut StdRng) -> [u64; LANES] {
        std::array::from_fn(|_| rng.gen())
    }

    #[test]
    fn transpose_matches_per_bit_extraction() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = random_block(&mut rng);
        let t = transpose64(&m);
        for (b, slice) in t.iter().enumerate() {
            for (l, word) in m.iter().enumerate() {
                assert_eq!(
                    (slice >> l) & 1,
                    (word >> b) & 1,
                    "slice {b}, lane {l} disagree"
                );
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = StdRng::seed_from_u64(43);
        let m = random_block(&mut rng);
        assert_eq!(transpose64(&transpose64(&m)), m);
    }

    #[test]
    fn hamming_masks_match_the_codec_tables() {
        // Basis probing must rediscover the codec's own H-matrix rows for
        // the seven Hamming check bits (bit 7, the overall parity, has no
        // codec-side mask — its row is derived inside check_bits).
        let lane = LaneSecDed::for_code(&Hamming7264::new());
        for (c, &mask) in crate::hamming::DATA_MASKS.iter().enumerate() {
            assert_eq!(lane.masks()[c], mask, "check bit {c}");
        }
    }

    #[test]
    fn encode_batch_matches_scalar_hamming_and_crc8() {
        let mut rng = StdRng::seed_from_u64(44);
        let data = random_block(&mut rng);
        let hamming = Hamming7264::new();
        let crc = Crc8Atm::new();
        for words in [
            LaneSecDed::for_code(&hamming).encode_batch(&data),
            LaneSecDed::for_code(&crc).encode_batch(&data),
        ] {
            for l in 0..LANES {
                assert_eq!(words[l].data(), data[l]);
            }
        }
        let lane_h = LaneSecDed::for_code(&hamming).encode_batch(&data);
        let lane_c = LaneSecDed::for_code(&crc).encode_batch(&data);
        for l in 0..LANES {
            assert_eq!(lane_h[l], hamming.encode(data[l]), "hamming lane {l}");
            assert_eq!(lane_c[l], crc.encode(data[l]), "crc8 lane {l}");
        }
    }

    #[test]
    fn valid_mask_matches_scalar_is_valid() {
        let mut rng = StdRng::seed_from_u64(45);
        let hamming = Hamming7264::new();
        let crc = Crc8Atm::new();
        for _ in 0..20 {
            let data = random_block(&mut rng);
            for (code, lane) in [
                (&hamming as &dyn SecDed, LaneSecDed::for_code(&hamming)),
                (&crc as &dyn SecDed, LaneSecDed::for_code(&crc)),
            ] {
                let mut words: [CodeWord72; LANES] = std::array::from_fn(|l| code.encode(data[l]));
                // Corrupt a random subset with 1–3 bit flips each.
                for w in words.iter_mut() {
                    if rng.gen_bool(0.5) {
                        for _ in 0..rng.gen_range(1..=3u32) {
                            *w = w.with_bit_flipped(rng.gen_range(0..72));
                        }
                    }
                }
                let mask = lane.valid_mask(&words);
                for (l, w) in words.iter().enumerate() {
                    assert_eq!(
                        (mask >> l) & 1 == 1,
                        code.is_valid(*w),
                        "lane {l} disagrees with scalar is_valid"
                    );
                }
            }
        }
    }

    #[test]
    fn all_clean_blocks_and_all_corrupt_blocks() {
        let lane = LaneSecDed::for_code(&Crc8Atm::new());
        let code = Crc8Atm::new();
        let clean: [CodeWord72; LANES] = std::array::from_fn(|l| code.encode(l as u64 * 3));
        assert_eq!(lane.valid_mask(&clean), u64::MAX);
        let corrupt: [CodeWord72; LANES] =
            std::array::from_fn(|l| clean[l].with_bit_flipped((l % 72) as u32));
        assert_eq!(lane.valid_mask(&corrupt), 0);
    }
}
