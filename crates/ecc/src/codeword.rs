//! A 72-bit codeword: 64 data bits plus 8 check bits.
//!
//! Both SECDED codes in this crate ([`crate::hamming`] and [`crate::crc8`])
//! operate on (72,64) codewords, matching the paper's assumption of 8 bits of
//! on-die ECC per 64-bit word (Section II-B) and the layout of a 72-bit wide
//! ECC-DIMM beat.

use std::fmt;

/// A 72-bit codeword stored as 64 data bits plus 8 check bits.
///
/// The *physical* bit order — the order in which bits are serialized out of
/// a DRAM array onto the bus, and therefore the order over which a "burst
/// error" is contiguous — is most-significant-first: physical bit `i` for
/// `i < 64` is data bit `63 − i`, and physical bit `i` for `i ≥ 64` is check
/// bit `71 − i`. This matches the polynomial-degree order a CRC processes,
/// so a physically contiguous burst is also polynomial-contiguous (the
/// property behind CRC8-ATM's 100% burst detection in Table II).
///
/// ```
/// use xed_ecc::CodeWord72;
///
/// let w = CodeWord72::new(0x1234, 0xAB);
/// assert_eq!(w.data(), 0x1234);
/// assert_eq!(w.check(), 0xAB);
/// assert_eq!(w.bit(0), 0);               // data bit 63
/// assert_eq!(w.bit(64), (0xAB >> 7) & 1); // check bit 7
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CodeWord72 {
    data: u64,
    check: u8,
}

impl CodeWord72 {
    /// Total number of bits in the codeword.
    pub const BITS: u32 = 72;
    /// Number of data bits.
    pub const DATA_BITS: u32 = 64;
    /// Number of check bits.
    pub const CHECK_BITS: u32 = 8;

    /// Creates a codeword from its data and check parts.
    #[inline]
    pub fn new(data: u64, check: u8) -> Self {
        Self { data, check }
    }

    /// The 64 data bits.
    #[inline]
    pub fn data(self) -> u64 {
        self.data
    }

    /// The 8 check bits.
    #[inline]
    pub fn check(self) -> u8 {
        self.check
    }

    /// Reads physical bit `i` (0–71).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 72`.
    #[inline]
    pub fn bit(self, i: u32) -> u8 {
        assert!(i < Self::BITS, "bit index {i} out of range");
        if i < 64 {
            ((self.data >> (63 - i)) & 1) as u8
        } else {
            (self.check >> (71 - i)) & 1
        }
    }

    /// Returns a copy with physical bit `i` flipped.
    ///
    /// The bit index must be below 72; this precondition is checked in
    /// debug builds only, so the decode hot path stays panic-free
    /// (every in-tree caller derives `i` from a syndrome table that
    /// holds valid positions).
    #[inline]
    #[must_use]
    pub fn with_bit_flipped(self, i: u32) -> Self {
        debug_assert!(i < Self::BITS, "bit index {i} out of range");
        let mut w = self;
        if i < 64 {
            w.data ^= 1u64 << (63 - i);
        } else {
            w.check ^= 1u8 << (71 - i);
        }
        w
    }

    /// XORs an error pattern (same layout) into the codeword.
    #[inline]
    #[must_use]
    pub fn with_error(self, error: CodeWord72) -> Self {
        Self {
            data: self.data ^ error.data,
            check: self.check ^ error.check,
        }
    }

    /// Number of set bits (used to weigh error patterns).
    #[inline]
    pub fn weight(self) -> u32 {
        self.data.count_ones() + self.check.count_ones()
    }

    /// Builds an error pattern with the given physical bit positions set.
    ///
    /// # Panics
    ///
    /// Panics if any position is `>= 72`.
    pub fn error_pattern<I: IntoIterator<Item = u32>>(bits: I) -> Self {
        let mut w = Self::default();
        for i in bits {
            w = w.with_bit_flipped(i);
        }
        w
    }
}

impl fmt::Debug for CodeWord72 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CodeWord72 {{ data: {:#018x}, check: {:#04x} }}",
            self.data, self.check
        )
    }
}

impl fmt::Display for CodeWord72 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}|{:02x}", self.data, self.check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accessors_cover_data_and_check() {
        let w = CodeWord72::new(u64::MAX, 0);
        // Enumerate positions through iterators rather than bit-counter
        // loops; data bits must all read 1, check bits all 0.
        assert!((0u32..64).all(|i| w.bit(i) == 1));
        assert!((64u32..72).all(|i| w.bit(i) == 0));
    }

    #[test]
    fn flip_is_involution() {
        let w = CodeWord72::new(0x0123_4567_89AB_CDEF, 0x5A);
        assert!((0u32..72)
            .all(|i| w.with_bit_flipped(i).with_bit_flipped(i) == w && w.with_bit_flipped(i) != w));
    }

    #[test]
    fn error_pattern_weight() {
        let e = CodeWord72::error_pattern([0, 5, 63, 64, 71]);
        assert_eq!(e.weight(), 5);
        assert_eq!(e.bit(0), 1);
        assert_eq!(e.bit(63), 1);
        assert_eq!(e.bit(64), 1);
        assert_eq!(e.bit(71), 1);
        assert_eq!(e.bit(1), 0);
    }

    #[test]
    fn with_error_is_xor() {
        let w = CodeWord72::new(0xFF, 0x0F);
        let e = CodeWord72::new(0x0F, 0xFF);
        let r = w.with_error(e);
        assert_eq!(r.data(), 0xF0);
        assert_eq!(r.check(), 0xF0);
        assert_eq!(r.with_error(e), w);
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        CodeWord72::default().bit(72);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", CodeWord72::new(1, 2));
        assert!(s.contains('|'));
        let d = format!("{:?}", CodeWord72::default());
        assert!(d.contains("CodeWord72"));
    }
}
