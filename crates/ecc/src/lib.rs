//! Coding-theory substrate for the XED reproduction.
//!
//! This crate implements every error-correcting code the paper
//! *"XED: Exposing On-Die Error Detection Information for Strong Memory
//! Reliability"* (ISCA 2016) relies on:
//!
//! * [`hamming`] — a (72,64) extended Hamming SECDED code, the conventional
//!   choice for on-die ECC and DIMM-level ECC.
//! * [`crc8`] — a (72,64) CRC8-ATM based SECDED code, the paper's
//!   recommended on-die code because it detects **all** burst errors of
//!   length ≤ 8 (Section V-E, Table II).
//! * [`parity`] — RAID-3 style XOR parity across the chips of an ECC-DIMM,
//!   used by the XED memory controller for erasure correction.
//! * [`gf`] — GF(2^m) arithmetic (m = 4, 8) backed by log/antilog tables.
//! * [`rs`] — Reed–Solomon codes with both error decoding
//!   (Berlekamp–Massey + Chien + Forney) and erasure decoding, used to model
//!   Chipkill and Double-Chipkill.
//! * [`chipkill`] — symbol-organized Chipkill / Double-Chipkill codecs built
//!   on [`rs`].
//! * [`detection`] — the Monte-Carlo harness that regenerates Table II
//!   (detection rate of random and burst errors).
//! * [`infer`] — BEER-style inference of *undisclosed* on-die codes from
//!   retention-test probe signatures, plus the HARP-style miscorrection
//!   profiler that ranks at-risk bit positions.
//! * [`lanes`] — lane-transposed (bit-sliced) batch entry points: 64
//!   codewords encoded or validity-classified at once via a 64×64 bit
//!   transpose and per-H-row XOR folds.
//! * [`reference`] — the original bit-serial / `Vec`-allocating codecs, kept
//!   as the oracle the word-parallel hot-path kernels are differentially
//!   tested against.
//!
//! # Quick example
//!
//! ```
//! use xed_ecc::secded::{SecDed, DecodeOutcome};
//! use xed_ecc::crc8::Crc8Atm;
//!
//! let code = Crc8Atm::new();
//! let word = code.encode(0xDEAD_BEEF_0BAD_F00D);
//! // Flip one bit: the code corrects it.
//! let corrupted = word.with_bit_flipped(17);
//! match code.decode(corrupted) {
//!     DecodeOutcome::Corrected { data, bit } => {
//!         assert_eq!(data, 0xDEAD_BEEF_0BAD_F00D);
//!         assert_eq!(bit, 17);
//!     }
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

pub mod bits;
pub mod chipkill;
pub mod codeword;
pub mod crc8;
pub mod detection;
pub mod gf;
pub mod hamming;
pub mod infer;
pub mod lanes;
pub mod parity;
pub mod reference;
pub mod rs;
pub mod secded;
pub mod secded32;

pub use codeword::CodeWord72;
pub use crc8::Crc8Atm;
pub use hamming::Hamming7264;
pub use secded::{DecodeOutcome, SecDed};
