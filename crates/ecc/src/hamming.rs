//! A (72,64) extended Hamming SECDED code.
//!
//! This is the conventional code used for DIMM-level ECC and assumed for
//! on-die ECC by default (paper Section II-B). It corrects any single-bit
//! error and detects any double-bit error, but — as the paper's Table II
//! shows — it is *weak against burst errors*: certain aligned multi-bit
//! bursts produce a zero syndrome and escape detection entirely. That
//! weakness is the paper's motivation for recommending CRC8-ATM
//! ([`crate::crc8::Crc8Atm`]) as the on-die code instead.
//!
//! # Construction
//!
//! We use the textbook extended Hamming construction: 71 positions indexed
//! `1..=71`, where the power-of-two positions (1, 2, 4, 8, 16, 32, 64) hold
//! the seven Hamming check bits and the remaining 64 positions hold the data
//! bits in ascending order; one additional overall-parity bit extends the
//! minimum distance to 4 (SECDED).
//!
//! The physical bit order of [`CodeWord72`] (data bits 0–63, then check bits
//! 64–71) is mapped onto Hamming positions via a fixed permutation computed
//! at construction.

use crate::bits::parity64;
use crate::codeword::CodeWord72;
use crate::secded::{DecodeOutcome, SecDed};

/// Number of Hamming positions (1..=71) in the inner (71,64) code.
const POSITIONS: usize = 71;
/// Number of Hamming check bits (positions 1,2,4,...,64).
const CHECKS: usize = 7;

/// Compile-time position permutation: `(data_pos, pos_to_databit)`.
///
/// `data_pos[i]` is the Hamming position (1..=71) of data bit `i`;
/// `pos_to_databit[p]` inverts it (−1 for check-bit positions). The const
/// proof blocks below consume these tables, so corrupting a column of the
/// H-matrix (i.e. any entry here) fails `cargo build`.
const POSITION_TABLES: ([u8; 64], [i8; POSITIONS + 1]) = build_position_tables();

const fn build_position_tables() -> ([u8; 64], [i8; POSITIONS + 1]) {
    let mut data_pos = [0u8; 64];
    let mut pos_to_databit = [-1i8; POSITIONS + 1];
    let mut di = 0usize;
    let mut p = 1usize;
    while p <= POSITIONS {
        if !p.is_power_of_two() {
            data_pos[di] = p as u8;
            pos_to_databit[p] = di as i8;
            di += 1;
        }
        p += 1;
    }
    assert!(
        di == 64,
        "expected exactly 64 non-power-of-two positions in 1..=71"
    );
    (data_pos, pos_to_databit)
}

pub(crate) const DATA_POS: [u8; 64] = POSITION_TABLES.0;
pub(crate) const POS_TO_DATABIT: [i8; POSITIONS + 1] = POSITION_TABLES.1;

/// Per-check-bit data masks: `DATA_MASKS[c]` has u64 bit `i` (data bit `i`)
/// set iff Hamming position `DATA_POS[i]` participates in check bit `c` —
/// i.e. row `c` of the H-matrix restricted to the data columns. The runtime
/// syndrome is then seven GF(2) dot products, each one `AND` + popcount
/// parity fold, instead of a 64-iteration bit loop.
pub(crate) const DATA_MASKS: [u64; CHECKS] = build_data_masks();

const fn build_data_masks() -> [u64; CHECKS] {
    let mut masks = [0u64; CHECKS];
    let mut i = 0usize;
    while i < 64 {
        let p = DATA_POS[i];
        let mut c = 0usize;
        while c < CHECKS {
            if (p >> c) & 1 == 1 {
                masks[c] |= 1u64 << i;
            }
            c += 1;
        }
        i += 1;
    }
    masks
}

/// `PHYS_OF_POS[p]` for `p` in 1..=71: the physical bit index ([`CodeWord72`]
/// order, MSB-first) of Hamming position `p`. Entry 0 is unused (the overall
/// parity bit has no Hamming position; the decoder handles it separately).
const PHYS_OF_POS: [u8; POSITIONS + 1] = build_phys_of_pos();

const fn build_phys_of_pos() -> [u8; POSITIONS + 1] {
    let mut t = [0u8; POSITIONS + 1];
    let mut p = 1usize;
    while p <= POSITIONS {
        t[p] = if p.is_power_of_two() {
            // Hamming check bit c sits in check-byte bit c = physical 71 - c.
            71 - p.trailing_zeros() as u8
        } else {
            // Data bit di of the u64 word = physical 63 - di.
            63 - POS_TO_DATABIT[p] as u8
        };
        p += 1;
    }
    t
}

/// The 7-bit Hamming syndrome of the single-bit error at physical position
/// `i` of a [`CodeWord72`] (the overall parity always flips, so the pair is
/// `(syndrome, 1)` for every `i`). Physical order: data bit `63−i` at
/// physical `i < 64`; check-byte bit `71−i` at physical `i ≥ 64`; check-byte
/// bit 7 is the extension (overall-parity) bit with no Hamming position.
const fn single_bit_syndrome(i: u32) -> u8 {
    if i < 64 {
        DATA_POS[(63 - i) as usize]
    } else {
        let c = 71 - i;
        if c == 7 {
            0 // the overall-parity bit itself
        } else {
            1u8 << c
        }
    }
}

// ---------------------------------------------------------------------------
// Compile-time SECDED proof for the extended Hamming code.
//
// Every single-bit error flips the overall parity, so its signature is the
// pair `(syndrome, overall=1)`. The 72 syndromes are exactly the values
// {0, 1, ..., 71}, each occurring once (0 for the extension bit). Checked
// here:
//
//  * single-bit errors are correctable: the 72 `(syndrome, 1)` pairs are
//    pairwise distinct and every nonzero syndrome points at a valid
//    position `≤ 71`, so the decoder's correction arm is total;
//  * double-bit errors are always detected, never mis-corrected: the two
//    parity flips cancel (`overall=0`) while the syndromes differ, so the
//    combined syndrome is NONZERO with even overall parity — the decoder's
//    `Detected` arm, disjoint from every single-bit signature.
//
// Distinct singles + (nonzero, even) doubles ⟹ minimum distance ≥ 4.
// ---------------------------------------------------------------------------
const _: () = {
    // The permutation is consistent and in range.
    let mut di = 0usize;
    while di < 64 {
        let p = DATA_POS[di] as usize;
        assert!(p >= 1 && p <= POSITIONS, "data position out of range");
        assert!(
            !p.is_power_of_two(),
            "data bit mapped onto a check-bit position"
        );
        assert!(POS_TO_DATABIT[p] == di as i8, "position tables disagree");
        di += 1;
    }
    // Single-bit syndromes are pairwise distinct; doubles are nonzero.
    let mut i = 0u32;
    while i < 72 {
        let si = single_bit_syndrome(i);
        assert!(
            (si as usize) <= POSITIONS,
            "syndrome points outside the code"
        );
        let mut j = i + 1;
        while j < 72 {
            let sj = single_bit_syndrome(j);
            assert!(
                si != sj,
                "two single-bit errors share a syndrome (distance < 3)"
            );
            // With overall parity even, syndrome si^sj != 0 lands in the
            // Detected arm of the decoder. (si != sj makes it nonzero.)
            j += 1;
        }
        i += 1;
    }
};

// ---------------------------------------------------------------------------
// Compile-time proof that the word-parallel kernel equals the H-matrix.
//
// The mask kernel computes syndrome bit c as parity(data & DATA_MASKS[c]).
// Both sides are GF(2)-linear in the data word, so agreement on the 64 basis
// vectors (single data bits) implies agreement on every word. Checked here:
// every mask column reproduces DATA_POS, and PHYS_OF_POS inverts
// `single_bit_syndrome` for all 72 physical bits.
// ---------------------------------------------------------------------------
const _: () = {
    let mut i = 0usize;
    while i < 64 {
        let w = 1u64 << i;
        let mut syn = 0u8;
        let mut c = 0usize;
        while c < CHECKS {
            if (w & DATA_MASKS[c]).count_ones() & 1 == 1 {
                syn |= 1 << c;
            }
            c += 1;
        }
        assert!(
            syn == DATA_POS[i],
            "mask column disagrees with the H-matrix"
        );
        i += 1;
    }
    // PHYS_OF_POS is a left inverse of the single-bit syndrome map.
    let mut i = 0u32;
    while i < 72 {
        let s = single_bit_syndrome(i);
        if i == 64 {
            assert!(s == 0, "overall-parity bit must have zero syndrome");
        } else {
            assert!(
                PHYS_OF_POS[s as usize] as u32 == i,
                "PHYS_OF_POS fails to invert single_bit_syndrome"
            );
        }
        i += 1;
    }
};

/// The (72,64) extended Hamming SECDED codec.
///
/// The codec is cheap to construct and stateless after construction; build
/// one and reuse it.
///
/// ```
/// use xed_ecc::{Hamming7264, SecDed, DecodeOutcome};
///
/// let code = Hamming7264::new();
/// let w = code.encode(123456789);
/// assert_eq!(code.decode(w), DecodeOutcome::Clean { data: 123456789 });
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming7264;

impl Hamming7264 {
    /// Builds the codec. The position permutation and mask tables are
    /// compile-time constants whose SECDED invariants are proved by `const`
    /// assertions in this module — a build that links this function has
    /// already verified them.
    pub fn new() -> Self {
        Self
    }

    /// Computes the 7-bit Hamming syndrome and overall parity of a received
    /// word, as `(syndrome, overall_parity)`.
    ///
    /// `syndrome == 0 && overall_parity == 0` ⟺ valid codeword.
    ///
    /// Word-parallel: syndrome bit `c` is the GF(2) dot product of the data
    /// word with H-matrix row `c` (`DATA_MASKS[c]`), folded with a popcount,
    /// XORed with the received check bit. The overall parity is the parity
    /// of all 72 received bits. (The bit-serial original lives in
    /// [`crate::reference`].)
    fn syndrome(&self, received: CodeWord72) -> (u8, u8) {
        let d = received.data();
        let check = received.check();
        let mut syn = check & 0x7F;
        for (c, &mask) in DATA_MASKS.iter().enumerate() {
            syn ^= parity64(d & mask) << c;
        }
        let overall = parity64(d) ^ ((check.count_ones() & 1) as u8);
        (syn, overall)
    }

    /// Recomputes the expected check byte for `data` (same mask kernel,
    /// empty check byte).
    fn check_bits(&self, data: u64) -> u8 {
        let mut check = 0u8;
        for (c, &mask) in DATA_MASKS.iter().enumerate() {
            check |= parity64(data & mask) << c;
        }
        // Overall parity covers all 71 inner bits (data + 7 check bits).
        let inner_parity = parity64(data) ^ ((check.count_ones() & 1) as u8);
        check | (inner_parity << 7)
    }

    /// Translates a Hamming position (1..=71) into a physical bit index
    /// (see [`CodeWord72`] for the physical order: MSB-first).
    fn position_to_physical(&self, p: u8) -> u32 {
        // indexing: decode only passes syndromes in 1..=POSITIONS.
        PHYS_OF_POS[p as usize] as u32
    }
}

impl SecDed for Hamming7264 {
    fn encode(&self, data: u64) -> CodeWord72 {
        CodeWord72::new(data, self.check_bits(data))
    }

    fn decode(&self, received: CodeWord72) -> DecodeOutcome {
        let (syn, overall) = self.syndrome(received);
        match (syn, overall) {
            (0, 0) => DecodeOutcome::Clean {
                data: received.data(),
            },
            (0, 1) => {
                // Error in the overall parity bit itself (check-byte bit 7,
                // physical bit 64).
                DecodeOutcome::Corrected {
                    data: received.data(),
                    bit: 64,
                }
            }
            (s, 1) if (s as usize) <= POSITIONS => {
                // Odd number of errors with a syndrome pointing at a
                // position: correct it as a single-bit error.
                let phys = self.position_to_physical(s);
                let fixed = received.with_bit_flipped(phys);
                DecodeOutcome::Corrected {
                    data: fixed.data(),
                    bit: phys,
                }
            }
            // Even number of errors (syndrome != 0, overall parity even), or
            // a syndrome pointing outside the code: detected, uncorrectable.
            _ => DecodeOutcome::Detected,
        }
    }

    fn is_valid(&self, received: CodeWord72) -> bool {
        self.syndrome(received) == (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secded::conformance;

    #[test]
    fn roundtrip() {
        conformance::roundtrip(&Hamming7264::new());
    }

    #[test]
    fn corrects_all_single_bit_errors() {
        conformance::corrects_all_single_bit_errors(&Hamming7264::new());
    }

    #[test]
    fn detects_all_double_bit_errors() {
        conformance::detects_all_double_bit_errors(&Hamming7264::new());
    }

    #[test]
    fn position_permutation_is_bijective() {
        let c = Hamming7264::new();
        let mut seen = [false; 72];
        for p in 1..=POSITIONS as u8 {
            let phys = c.position_to_physical(p);
            assert!(!seen[phys as usize], "physical bit {phys} mapped twice");
            seen[phys as usize] = true;
        }
        // position 0 does not exist; the 72nd physical bit is the overall
        // parity bit (physical 64 = check-byte bit 7), which has no Hamming
        // position.
        assert_eq!(seen.iter().filter(|&&s| s).count(), 71);
        assert!(!seen[64]);
    }

    #[test]
    fn some_aligned_burst4_is_undetected() {
        // The motivating weakness from Table II: there exists a 4-bit
        // physically contiguous burst whose error pattern is a codeword.
        let code = Hamming7264::new();
        let w = code.encode(0);
        let mut found = false;
        for start in 0..=(72 - 4) {
            let r = (0..4).fold(w, |acc, k| acc.with_bit_flipped(start + k));
            if code.is_valid(r) && r != w {
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one undetected burst-4 pattern");
    }

    #[test]
    fn zero_data_codeword_has_zero_check() {
        let code = Hamming7264::new();
        assert_eq!(code.encode(0).check(), 0);
    }

    #[test]
    fn check_bits_differ_across_data() {
        let code = Hamming7264::new();
        // Not a guarantee in general, but these particular words differ.
        assert_ne!(code.encode(1).check(), code.encode(2).check());
    }
}
