//! A (72,64) SECDED code built from the CRC8-ATM polynomial.
//!
//! The paper (Section V-E) recommends CRC8-ATM (`g(x) = x^8 + x^2 + x + 1`,
//! the ATM HEC polynomial from ITU-T I.432.1) for the on-die ECC because it
//! matches Hamming's SECDED guarantees while detecting **100% of burst
//! errors up to 8 bits long** (Table II) — a property Hamming codes lack.
//!
//! # Why CRC8-ATM is SECDED over 72 bits
//!
//! `g(x) = (x + 1)·p(x)` where `p(x)` is primitive of degree 7 (order 127):
//!
//! * Single-bit errors at positions `0..127` have **distinct, nonzero**
//!   syndromes (`x^i mod g` are pairwise distinct because `x` has order 127
//!   modulo `p` and the `(x+1)` factor separates parities) → single-error
//!   *correction* via a syndrome lookup table.
//! * Any double-bit error is detected and never mis-corrected: if
//!   `x^i + x^j ≡ x^k (mod g)` then `g` would divide a weight-3 polynomial,
//!   impossible because `(x+1) | g` forces even weight on all multiples.
//! * Any burst of length ≤ 8 leaves a nonzero remainder modulo a degree-8
//!   polynomial → 100% burst detection.
//!
//! These properties are verified exhaustively by this module's tests.

use crate::bits::parity64;
use crate::codeword::CodeWord72;
use crate::secded::{DecodeOutcome, SecDed};

/// The CRC8-ATM generator polynomial x^8 + x^2 + x + 1 (low 8 bits).
pub const POLY: u8 = 0x07;

/// Byte-at-a-time CRC table: `CRC_TABLE[b]` = CRC of the single byte `b`.
///
/// Computed at compile time; the const proof blocks below consume it, so a
/// corrupted entry is a *build failure*, not a latent decoder bug.
pub(crate) const CRC_TABLE: [u8; 256] = build_crc_table();

const fn build_crc_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u8;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            k += 1;
        }
        table[b] = crc;
        b += 1;
    }
    table
}

/// CRC8-ATM of a 64-bit word (const-evaluable; same table as the runtime
/// codec, big-endian byte order).
pub(crate) const fn crc8_u64(data: u64) -> u8 {
    let bytes = data.to_be_bytes();
    let mut crc = 0u8;
    let mut i = 0;
    while i < 8 {
        crc = CRC_TABLE[(crc ^ bytes[i]) as usize];
        i += 1;
    }
    crc
}

/// Per-syndrome-bit data masks: `SYNDROME_MASKS[b]` has u64 bit `j` set iff
/// `crc8(1 << j)` has bit `b` set — row `b` of the CRC's GF(2) parity-check
/// matrix restricted to the data columns. Because the CRC is GF(2)-linear,
/// `crc8(data)` bit `b` equals `parity(data & SYNDROME_MASKS[b])`, turning
/// the syndrome into eight AND+popcount dot products with no byte or bit
/// loop over the data word.
const SYNDROME_MASKS: [u64; 8] = build_syndrome_masks();

const fn build_syndrome_masks() -> [u64; 8] {
    let mut masks = [0u64; 8];
    let mut j = 0u32;
    while j < 64 {
        let s = crc8_u64(1u64 << j);
        let mut b = 0usize;
        while b < 8 {
            if (s >> b) & 1 == 1 {
                masks[b] |= 1u64 << j;
            }
            b += 1;
        }
        j += 1;
    }
    masks
}

// The mask kernel and the table-driven CRC are both GF(2)-linear in the data
// word, so agreement on the 64 basis vectors implies agreement everywhere.
// Checked at compile time: every mask column reproduces crc8 of that basis
// vector.
const _: () = {
    let mut j = 0u32;
    while j < 64 {
        let w = 1u64 << j;
        let mut s = 0u8;
        let mut b = 0usize;
        while b < 8 {
            if (w & SYNDROME_MASKS[b]).count_ones() & 1 == 1 {
                s |= 1 << b;
            }
            b += 1;
        }
        assert!(
            s == crc8_u64(w),
            "CRC syndrome mask column disagrees with the byte-table CRC"
        );
        j += 1;
    }
};

/// Syndrome of the single-bit error at physical position `i` of a (72,64)
/// codeword: data bits contribute `crc8` of their weight-1 word, check bits
/// contribute themselves.
const fn single_bit_syndrome(i: u32) -> u8 {
    if i < 64 {
        crc8_u64(1u64 << (63 - i))
    } else {
        1u8 << (71 - i)
    }
}

/// `SYNDROME_POS[s]` = physical bit whose single-bit error has syndrome
/// `s`, or −1. Built at compile time; construction itself asserts the 72
/// syndromes are nonzero and pairwise distinct.
const SYNDROME_POS: [i8; 256] = build_syndrome_pos();

const fn build_syndrome_pos() -> [i8; 256] {
    let mut pos = [-1i8; 256];
    let mut i = 0u32;
    while i < 72 {
        let s = single_bit_syndrome(i);
        assert!(
            s != 0,
            "CRC8-ATM: a single-bit syndrome is zero (not even SEC)"
        );
        assert!(
            pos[s as usize] == -1,
            "CRC8-ATM: two single-bit errors share a syndrome"
        );
        pos[s as usize] = i as i8;
        i += 1;
    }
    pos
}

// ---------------------------------------------------------------------------
// Compile-time SECDED proof (distance ≥ 4 over the 72-bit codeword).
//
// `g(x) = (x+1)·p(x)` with p primitive of degree 7, so every multiple of g
// has even weight, so every single-bit syndrome `x^i mod g` has ODD weight
// (1 + weight(r) must be even). Two consequences, both machine-checked here:
//
//  * single-bit errors are correctable: 72 distinct odd-weight nonzero
//    syndromes (distinctness is re-proved pairwise below and during
//    `build_syndrome_pos`);
//  * double-bit errors are always detected and never mis-corrected: the
//    XOR of two distinct odd-weight syndromes is nonzero with EVEN weight,
//    hence never zero (valid) and never equal to any single-bit syndrome.
//
// Together: minimum distance ≥ 4 ⟹ SECDED. `cargo build` fails if any of
// this stops holding — e.g. if `POLY` or a `CRC_TABLE` entry is corrupted.
// ---------------------------------------------------------------------------
const _: () = {
    let mut i = 0u32;
    while i < 72 {
        let si = single_bit_syndrome(i);
        assert!(si != 0, "single-bit syndrome is zero");
        assert!(
            si.count_ones() % 2 == 1,
            "single-bit syndrome has even weight"
        );
        let mut j = i + 1;
        while j < 72 {
            let sj = single_bit_syndrome(j);
            let d = si ^ sj;
            assert!(
                d != 0,
                "two single-bit syndromes collide (weight-2 codeword!)"
            );
            assert!(
                d.count_ones().is_multiple_of(2),
                "double-bit syndrome has odd weight"
            );
            // Even nonzero weight ⟹ not in the odd-weight single-bit set:
            // the decoder reports Detected, never a wrong correction.
            assert!(
                SYNDROME_POS[d as usize] == -1,
                "double-bit error aliases a single-bit one"
            );
            j += 1;
        }
        i += 1;
    }
};

/// The (72,64) CRC8-ATM SECDED codec.
///
/// Encoding appends `crc8(data)` as the check byte; decoding uses a
/// 256-entry syndrome→position table (exactly the single-cycle table-lookup
/// implementation the paper cites from the ATM literature).
///
/// ```
/// use xed_ecc::{Crc8Atm, SecDed, DecodeOutcome};
///
/// let code = Crc8Atm::new();
/// let w = code.encode(0xFEED_FACE_CAFE_BABE);
/// let r = w.with_bit_flipped(70); // corrupt a check bit
/// assert!(matches!(code.decode(r), DecodeOutcome::Corrected { bit: 70, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Crc8Atm {
    /// Byte-at-a-time CRC table: `crc_table[b]` = crc of byte `b`.
    crc_table: [u8; 256],
    /// `syndrome_pos[s]` = physical bit position whose single-bit error has
    /// syndrome `s`, or -1 if `s` is not a single-bit syndrome.
    syndrome_pos: [i8; 256],
}

impl Default for Crc8Atm {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc8Atm {
    /// Builds the codec. The CRC and syndrome lookup tables are compile-time
    /// constants whose SECDED invariants are proved by `const` assertions in
    /// this module — a build that links this function has already verified
    /// them.
    pub fn new() -> Self {
        Self {
            crc_table: CRC_TABLE,
            syndrome_pos: SYNDROME_POS,
        }
    }

    /// CRC8-ATM of a 64-bit data word (big-endian byte order, standard
    /// MSB-first bit order).
    pub fn crc8(&self, data: u64) -> u8 {
        let mut crc = 0u8;
        for byte in data.to_be_bytes() {
            crc = self.crc_table[(crc ^ byte) as usize];
        }
        crc
    }

    /// The 8-bit syndrome of a received word: `crc8(data) ^ check`.
    ///
    /// Zero ⟺ valid codeword.
    ///
    /// Word-parallel: each syndrome bit is one AND + popcount parity fold
    /// against `SYNDROME_MASKS` (proved equal to the byte-table CRC by the
    /// `const` block above; the bit-serial original lives in
    /// [`crate::reference`]).
    pub fn raw_syndrome(&self, received: CodeWord72) -> u8 {
        let d = received.data();
        let mut s = received.check();
        for (b, &mask) in SYNDROME_MASKS.iter().enumerate() {
            s ^= parity64(d & mask) << b;
        }
        s
    }
}

impl SecDed for Crc8Atm {
    fn encode(&self, data: u64) -> CodeWord72 {
        CodeWord72::new(data, self.crc8(data))
    }

    fn decode(&self, received: CodeWord72) -> DecodeOutcome {
        let s = self.raw_syndrome(received);
        if s == 0 {
            return DecodeOutcome::Clean {
                data: received.data(),
            };
        }
        // indexing: a u8 syndrome into a 256-entry table.
        match self.syndrome_pos[s as usize] {
            -1 => DecodeOutcome::Detected,
            pos => {
                let phys = pos as u32;
                let fixed = received.with_bit_flipped(phys);
                DecodeOutcome::Corrected {
                    data: fixed.data(),
                    bit: phys,
                }
            }
        }
    }

    fn is_valid(&self, received: CodeWord72) -> bool {
        self.raw_syndrome(received) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secded::conformance;

    #[test]
    fn roundtrip() {
        conformance::roundtrip(&Crc8Atm::new());
    }

    #[test]
    fn corrects_all_single_bit_errors() {
        conformance::corrects_all_single_bit_errors(&Crc8Atm::new());
    }

    #[test]
    fn detects_all_double_bit_errors() {
        conformance::detects_all_double_bit_errors(&Crc8Atm::new());
    }

    #[test]
    fn crc_of_zero_is_zero() {
        assert_eq!(Crc8Atm::new().crc8(0), 0);
    }

    #[test]
    fn const_syndrome_table_matches_runtime_tabulation() {
        // The compile-time table must agree with syndromes computed through
        // the public runtime path (CodeWord72 bit flips).
        let c = Crc8Atm::new();
        for i in 0..72u32 {
            let e = CodeWord72::default().with_bit_flipped(i);
            let s = c.raw_syndrome(e);
            assert_eq!(c.syndrome_pos[s as usize], i as i8, "bit {i}");
        }
    }

    #[test]
    fn crc_is_linear() {
        // CRC over GF(2) is linear: crc(a ^ b) == crc(a) ^ crc(b).
        let c = Crc8Atm::new();
        let pairs = [(0x1234u64, 0x9876u64), (u64::MAX, 0x0F0F), (1 << 63, 1)];
        for (a, b) in pairs {
            assert_eq!(c.crc8(a ^ b), c.crc8(a) ^ c.crc8(b));
        }
    }

    #[test]
    fn detects_every_burst_up_to_8() {
        // The paper's Table II claim: 100% detection of bursts of length
        // 1..=8. Exhaustive over all start positions and all interior
        // patterns of the burst (endpoints fixed to 1).
        let code = Crc8Atm::new();
        let w = code.encode(0xABCD_EF01_2345_6789);
        for len in 1..=8u32 {
            for start in 0..=(72 - len) {
                let interior = len.saturating_sub(2);
                for pat in 0..(1u32 << interior) {
                    let mut r = w.with_bit_flipped(start);
                    if len > 1 {
                        r = r.with_bit_flipped(start + len - 1);
                    }
                    for k in 0..interior {
                        if (pat >> k) & 1 == 1 {
                            r = r.with_bit_flipped(start + 1 + k);
                        }
                    }
                    assert!(
                        !code.is_valid(r),
                        "burst len {len} at {start} pattern {pat:#b} undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn mask_syndrome_matches_table_crc() {
        // The popcount-mask syndrome must equal crc8(data) ^ check for
        // arbitrary (not necessarily valid) received words.
        let c = Crc8Atm::new();
        let words = [
            (0u64, 0u8),
            (u64::MAX, 0xFF),
            (0xDEAD_BEEF_0BAD_F00D, 0x5A),
            (0x0123_4567_89AB_CDEF, 0x81),
            (1 << 63, 1),
        ];
        for (d, ch) in words {
            let w = CodeWord72::new(d, ch);
            assert_eq!(c.raw_syndrome(w), c.crc8(d) ^ ch);
        }
    }

    #[test]
    fn table_matches_bitwise_crc() {
        // Cross-check the table-driven CRC against a bit-at-a-time reference.
        fn crc_bitwise(data: u64) -> u8 {
            let mut crc = 0u8;
            for byte in data.to_be_bytes() {
                crc ^= byte;
                for _ in 0..8 {
                    crc = if crc & 0x80 != 0 {
                        (crc << 1) ^ POLY
                    } else {
                        crc << 1
                    };
                }
            }
            crc
        }
        let c = Crc8Atm::new();
        for d in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            assert_eq!(c.crc8(d), crc_bitwise(d));
        }
    }
}
