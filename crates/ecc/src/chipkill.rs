//! Symbol-organized Chipkill and Double-Chipkill codecs.
//!
//! These wrap the Reed–Solomon machinery of [`crate::rs`] in the DIMM
//! geometries the paper evaluates:
//!
//! * **Chipkill** (Section II-D2): 18 chips per access — 16 data + 2 check
//!   symbol chips. Corrects one faulty chip, detects two (SSC-DSD policy).
//! * **Double-Chipkill** (Section IX): 36 chips — 32 data + 4 check. Corrects
//!   two faulty chips.
//! * **XED-on-Chipkill** (Section IX-A): the Chipkill geometry driven in
//!   *erasure* mode. Because catch-words identify the faulty chips, the two
//!   check symbols correct up to **two** chip failures instead of one.
//!
//! Each chip contributes one 8-bit symbol per beat (for x4 devices two
//! consecutive beats are paired into one byte symbol, the construction used
//! by commercial chipkill implementations).

use crate::gf::Field;
use crate::rs::{Decoded, ReedSolomon, RsError};

/// Result of a chipkill-style decode at the beat level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolOutcome {
    /// No corruption.
    Clean(Vec<u8>),
    /// Corruption corrected; lists the chip indices that were repaired.
    Corrected {
        /// Corrected data symbols.
        data: Vec<u8>,
        /// Chip (symbol) indices that were repaired.
        chips: Vec<usize>,
    },
    /// Detected uncorrectable error.
    Due,
}

impl SymbolOutcome {
    /// The decoded data, if any.
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            SymbolOutcome::Clean(d) => Some(d),
            SymbolOutcome::Corrected { data, .. } => Some(data),
            SymbolOutcome::Due => None,
        }
    }
}

/// Single-symbol-correct, double-symbol-detect Chipkill over 18 chips.
///
/// ```
/// use xed_ecc::chipkill::{Chipkill, SymbolOutcome};
///
/// let ck = Chipkill::new();
/// let data: Vec<u8> = (0..16).collect();
/// let stored = ck.encode(&data);
/// let mut beat = stored.clone();
/// beat[5] = 0x99; // chip 5 fails
/// match ck.decode(&beat) {
///     SymbolOutcome::Corrected { data: d, chips } => {
///         assert_eq!(d, data);
///         assert_eq!(chips, vec![5]);
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Chipkill {
    rs: ReedSolomon,
}

impl Default for Chipkill {
    fn default() -> Self {
        Self::new()
    }
}

impl Chipkill {
    /// Number of data chips.
    pub const DATA_CHIPS: usize = 16;
    /// Total chips per access.
    pub const TOTAL_CHIPS: usize = 18;

    /// Builds the RS(18,16) codec over GF(256).
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(Field::gf256(), Self::TOTAL_CHIPS, Self::DATA_CHIPS),
        }
    }

    /// Encodes 16 data symbols into an 18-symbol beat.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        self.rs.encode(data)
    }

    /// Decodes an 18-symbol beat with the SSC-DSD policy.
    pub fn decode(&self, beat: &[u8]) -> SymbolOutcome {
        to_outcome(self.rs.decode(beat, &[]), Self::DATA_CHIPS)
    }

    /// Decodes treating the listed chips as erasures (XED-on-Chipkill mode).
    ///
    /// With the faulty chips identified by catch-words, the two check
    /// symbols correct up to two chip failures (paper Section IX-A).
    pub fn decode_with_erasures(&self, beat: &[u8], erased_chips: &[usize]) -> SymbolOutcome {
        to_outcome(self.rs.decode(beat, erased_chips), Self::DATA_CHIPS)
    }

    /// The underlying Reed–Solomon code.
    pub fn rs(&self) -> &ReedSolomon {
        &self.rs
    }
}

/// Double-symbol-correct Double-Chipkill over 36 chips (32 data + 4 check).
#[derive(Debug, Clone)]
pub struct DoubleChipkill {
    rs: ReedSolomon,
}

impl Default for DoubleChipkill {
    fn default() -> Self {
        Self::new()
    }
}

impl DoubleChipkill {
    /// Number of data chips.
    pub const DATA_CHIPS: usize = 32;
    /// Total chips per access.
    pub const TOTAL_CHIPS: usize = 36;

    /// Builds the RS(36,32) codec over GF(256).
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(Field::gf256(), Self::TOTAL_CHIPS, Self::DATA_CHIPS),
        }
    }

    /// Encodes 32 data symbols into a 36-symbol beat.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        self.rs.encode(data)
    }

    /// Decodes, correcting up to two unknown symbol errors.
    pub fn decode(&self, beat: &[u8]) -> SymbolOutcome {
        to_outcome(self.rs.decode(beat, &[]), Self::DATA_CHIPS)
    }

    /// The underlying Reed–Solomon code.
    pub fn rs(&self) -> &ReedSolomon {
        &self.rs
    }
}

fn to_outcome(result: Result<Decoded, RsError>, k: usize) -> SymbolOutcome {
    match result {
        Ok(d) if d.corrected.is_empty() => SymbolOutcome::Clean(d.data(k).to_vec()),
        Ok(d) => {
            let chips = d.corrected.clone();
            SymbolOutcome::Corrected {
                data: d.data(k).to_vec(),
                chips,
            }
        }
        Err(RsError::Detected) => SymbolOutcome::Due,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chipkill_clean() {
        let ck = Chipkill::new();
        let data = vec![0xAB; 16];
        let beat = ck.encode(&data);
        assert_eq!(ck.decode(&beat), SymbolOutcome::Clean(data));
    }

    #[test]
    fn chipkill_corrects_any_single_chip() {
        let ck = Chipkill::new();
        let data: Vec<u8> = (0..16).map(|i| i * 7).collect();
        let beat = ck.encode(&data);
        for chip in 0..18 {
            let mut rx = beat.clone();
            rx[chip] ^= 0x3C;
            match ck.decode(&rx) {
                SymbolOutcome::Corrected { data: d, chips } => {
                    assert_eq!(d, data);
                    assert_eq!(chips, vec![chip]);
                }
                other => panic!("chip {chip}: {other:?}"),
            }
        }
    }

    #[test]
    fn chipkill_two_chips_due_mostly() {
        let ck = Chipkill::new();
        let beat = ck.encode(&[5u8; 16]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut due = 0;
        for _ in 0..100 {
            let mut rx = beat.clone();
            let a = rng.gen_range(0..18);
            let mut b = rng.gen_range(0..18);
            while a == b {
                b = rng.gen_range(0..18);
            }
            rx[a] ^= rng.gen_range(1..=255u8);
            rx[b] ^= rng.gen_range(1..=255u8);
            if ck.decode(&rx) == SymbolOutcome::Due {
                due += 1;
            }
        }
        assert!(due >= 75, "only {due}/100 double-chip errors flagged DUE");
    }

    #[test]
    fn xed_on_chipkill_corrects_two_erased_chips() {
        let ck = Chipkill::new();
        let data: Vec<u8> = (0..16).map(|i| 0x10 + i).collect();
        let beat = ck.encode(&data);
        let mut rx = beat.clone();
        rx[4] = 0xEE;
        rx[11] = 0x77;
        match ck.decode_with_erasures(&rx, &[4, 11]) {
            SymbolOutcome::Corrected { data: d, .. } => assert_eq!(d, data),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xed_on_chipkill_three_erasures_due() {
        let ck = Chipkill::new();
        let mut rx = ck.encode(&[1u8; 16]);
        rx[0] ^= 1;
        rx[1] ^= 1;
        rx[2] ^= 1;
        assert_eq!(ck.decode_with_erasures(&rx, &[0, 1, 2]), SymbolOutcome::Due);
    }

    #[test]
    fn double_chipkill_corrects_two_unknown_chips() {
        let dck = DoubleChipkill::new();
        let data: Vec<u8> = (0..32).collect();
        let beat = dck.encode(&data);
        let mut rx = beat.clone();
        rx[7] ^= 0xFF;
        rx[30] ^= 0x0F;
        match dck.decode(&rx) {
            SymbolOutcome::Corrected { data: d, chips } => {
                assert_eq!(d, data);
                assert_eq!(chips, vec![7, 30]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outcome_data_accessor() {
        assert_eq!(SymbolOutcome::Due.data(), None);
        assert_eq!(SymbolOutcome::Clean(vec![1]).data(), Some(&[1u8][..]));
    }
}
