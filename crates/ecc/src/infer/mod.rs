//! Inference of **undisclosed** on-die ECC functions, after BEER
//! (Patel et al., MICRO 2020) and HARP (Patel et al., MICRO 2021).
//!
//! XED (the reproduced paper) assumes the controller knows the vendor's
//! on-die (72,64) code. Real on-die ECC is proprietary and undisclosed.
//! This module closes that gap in three steps, each differentially
//! certified against the registered `xed_ecc` matrices:
//!
//! 1. **[`pattern`]** — validated BEER-style charge patterns (all-0 /
//!    all-1 / walking-1 and arbitrary masks), with the degenerate
//!    all-zero pattern rejected by a typed error at construction.
//! 2. **[`solve`]** — the inference engine: craft patterns, observe
//!    post-correction signatures through a black-box
//!    [`RetentionOracle`], and recover the parity-check matrix up to
//!    check-column permutation — or report a certified
//!    [`AmbiguityClass`] when the probe budget underdetermines the
//!    code, never a guess.
//! 3. **[`miscorrect`]** — the HARP-style profiler: enumerate how the
//!    (inferred or true) code turns 2-bit faults into 3-bit delivered
//!    words and rank at-risk bit positions.
//!
//! [`code::SyndromeCode`] is the shared substrate: the systematic view
//! of the real codecs (ground truth), erased-row SEC views, exhaustive
//! small geometries, and seeded random SEC-DED codes.

pub mod code;
pub mod miscorrect;
pub mod pattern;
pub mod solve;

pub use code::{CodeError, SynOutcome, SyndromeCode};
pub use miscorrect::{profile, profile_brute_force, BitRisk, MiscorrectionProfile};
pub use pattern::{ChargePattern, PatternError};
pub use solve::{
    infer, AmbiguityClass, AmbiguityReason, InferConfig, InferError, InferOutcome, InferredCode,
    ProbeSignature, RetentionOracle, SecDedOracle, SyndromeOracle,
};
