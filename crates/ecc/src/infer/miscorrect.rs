//! HARP-style miscorrection profiling: what an on-die SEC(-DED) code
//! does to every 2-bit fault.
//!
//! A SEC decoder confronted with a double-bit error sees the XOR of two
//! column syndromes. Three things can happen:
//!
//! * the XOR matches **no** column — the error is *detected* (the
//!   SEC-DED guarantee, when it holds for every pair);
//! * the XOR matches a **data** column — the decoder flips a third,
//!   innocent data bit and delivers a **3-bit** corrupted word while
//!   reporting a successful correction (the miscorrection HARP warns
//!   about);
//! * the XOR matches a **check** column — the decoder "fixes" a check
//!   bit and delivers the doubly-corrupted data as if it were clean.
//!
//! [`profile`] enumerates all `C(n,2)` pairs by pure column algebra
//! (never touching a decoder), while [`profile_brute_force`] injects
//! every pair into an actual decode call for a given data word. The
//! differential harness asserts they match count-for-count on small
//! geometries, for **every** data word — which also certifies that the
//! profile is a property of the code alone, not of the stored data.
//!
//! The profile ranks *at-risk* positions: bits the decoder spuriously
//! flips when doubles alias. Those are the positions a HARP-style
//! controller profiler should watch, because errors delivered there
//! carry a corrected-not-detected signature.

use super::code::{SynOutcome, SyndromeCode};

/// How often one code position is the target of spurious corrections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRisk {
    /// Code position (`0..k` data, `k..k+r` check).
    pub position: u32,
    /// Number of 2-bit faults whose miscorrection flips this position.
    pub spurious_flips: u64,
}

/// The full 2-bit-fault census of a code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiscorrectionProfile {
    /// Data width of the profiled code.
    pub k: u32,
    /// Check width of the profiled code.
    pub r: u32,
    /// Total number of distinct 2-bit faults, `C(k+r, 2)`.
    pub doubles: u64,
    /// Doubles flagged detected-uncorrectable (the safe outcome).
    pub detected: u64,
    /// Doubles mis-corrected into a third **data**-bit flip: a 3-bit
    /// corrupted word delivered under a "corrected" signature.
    pub miscorrected_data: u64,
    /// Doubles mis-corrected into a spurious **check**-bit flip: the
    /// 2-bit corruption delivered as if clean.
    pub miscorrected_check: u64,
    /// Doubles producing a zero syndrome (impossible for a valid SEC
    /// column set; kept so the invariant is *checked*, not assumed).
    pub silent: u64,
    /// Positions ranked by spurious-flip count, most at-risk first
    /// (ties broken by ascending position). Only nonzero entries.
    pub at_risk: Vec<BitRisk>,
}

impl MiscorrectionProfile {
    /// Doubles that escape detection (delivered wrong, signaled fine).
    pub fn undetected(&self) -> u64 {
        self.silent + self.miscorrected_data + self.miscorrected_check
    }

    /// Fraction of 2-bit faults the code fails to flag — the empirical
    /// per-word on-die miss probability a fault-model scenario can feed
    /// in place of an assumed constant.
    pub fn undetected_fraction(&self) -> f64 {
        if self.doubles == 0 {
            0.0
        } else {
            self.undetected() as f64 / self.doubles as f64
        }
    }

    /// `true` when every double is detected (the DED property, as
    /// measured rather than asserted).
    pub fn is_clean(&self) -> bool {
        self.undetected() == 0
    }

    fn from_counts(code: &SyndromeCode, counts: Counts) -> Self {
        let mut at_risk: Vec<BitRisk> = counts
            .spurious
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(p, &n)| BitRisk {
                position: p as u32,
                spurious_flips: n,
            })
            .collect();
        at_risk.sort_by(|a, b| {
            b.spurious_flips
                .cmp(&a.spurious_flips)
                .then(a.position.cmp(&b.position))
        });
        let n = u64::from(code.len_bits());
        MiscorrectionProfile {
            k: code.data_bits(),
            r: code.check_bits(),
            doubles: n * (n - 1) / 2,
            detected: counts.detected,
            miscorrected_data: counts.miscorrected_data,
            miscorrected_check: counts.miscorrected_check,
            silent: counts.silent,
            at_risk,
        }
    }
}

/// Per-pair tallies accumulated by both profilers.
struct Counts {
    detected: u64,
    miscorrected_data: u64,
    miscorrected_check: u64,
    silent: u64,
    spurious: Vec<u64>,
}

impl Counts {
    fn new(n: u32) -> Self {
        Counts {
            detected: 0,
            miscorrected_data: 0,
            miscorrected_check: 0,
            silent: 0,
            spurious: vec![0u64; n as usize],
        }
    }

    fn record(&mut self, k: u32, outcome: SynOutcome) {
        match outcome {
            SynOutcome::Clean => self.silent += 1,
            SynOutcome::Detected => self.detected += 1,
            SynOutcome::CorrectedData { bit } => {
                self.miscorrected_data += 1;
                if let Some(slot) = self.spurious.get_mut(bit as usize) {
                    *slot += 1;
                }
            }
            SynOutcome::CorrectedCheck { bit } => {
                self.miscorrected_check += 1;
                if let Some(slot) = self.spurious.get_mut((k + bit) as usize) {
                    *slot += 1;
                }
            }
        }
    }
}

/// Profiles every 2-bit fault by column algebra: the syndrome of the
/// pair `{a, b}` is `col_a ^ col_b`, classified exactly as the decoder
/// would classify it, without running the decoder. `O(n²)` syndrome
/// lookups; this is the fast path the differential oracle certifies.
pub fn profile(code: &SyndromeCode) -> MiscorrectionProfile {
    let n = code.len_bits();
    let mut counts = Counts::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let syn = code.position_col(a) ^ code.position_col(b);
            // decode(0, syn) classifies a bare syndrome: zero data plus
            // the syndrome as the check part reproduces the decision.
            counts.record(code.data_bits(), code.decode(0, syn));
        }
    }
    MiscorrectionProfile::from_counts(code, counts)
}

/// Profiles every 2-bit fault by actually corrupting an encoded word
/// and running the decoder — the ground-truth oracle for [`profile`].
/// The result must be identical for every `data` value (miscorrection
/// is a property of the column set); the harness checks exactly that.
pub fn profile_brute_force(code: &SyndromeCode, data: u64) -> MiscorrectionProfile {
    let k = code.data_bits();
    let n = code.len_bits();
    let check = code.encode_check(data);
    let mut counts = Counts::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let (mut d, mut c) = (data, check);
            for p in [a, b] {
                if p < k {
                    d ^= 1u64 << p;
                } else {
                    c ^= 1u32 << (p - k);
                }
            }
            counts.record(k, code.decode(d, c));
        }
    }
    MiscorrectionProfile::from_counts(code, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc8::Crc8Atm;
    use crate::hamming::Hamming7264;

    #[test]
    fn secded_codes_profile_clean() {
        for code in [
            SyndromeCode::secded8_4(),
            SyndromeCode::from_code72(&Hamming7264::new()).unwrap(),
            SyndromeCode::from_code72(&Crc8Atm::new()).unwrap(),
        ] {
            let p = profile(&code);
            assert!(p.is_clean(), "SEC-DED code mis-corrects: {p:?}");
            assert_eq!(p.detected, p.doubles);
            assert!(p.at_risk.is_empty());
            assert_eq!(p.undetected_fraction(), 0.0);
        }
    }

    #[test]
    fn sec_only_codes_have_nonzero_miscorrections() {
        let code = SyndromeCode::sec8_4();
        let p = profile(&code);
        assert!(!p.is_clean());
        assert!(p.undetected() > 0);
        assert!(!p.at_risk.is_empty());
        // silent is structurally impossible for a valid column set.
        assert_eq!(p.silent, 0);
        // at_risk is sorted most-dangerous-first.
        assert!(p
            .at_risk
            .windows(2)
            .all(|w| w[0].spurious_flips >= w[1].spurious_flips));
        // Tallies partition the pair census.
        assert_eq!(
            p.detected + p.miscorrected_data + p.miscorrected_check + p.silent,
            p.doubles
        );
    }

    #[test]
    fn hamming_sec_view_turns_doubles_into_triples() {
        // The HARP setting: drop the overall-parity row of the (72,64)
        // extended Hamming code and doubles start aliasing.
        let sec = SyndromeCode::from_code72(&Hamming7264::new())
            .unwrap()
            .drop_row(7)
            .unwrap();
        let p = profile(&sec);
        assert!(p.miscorrected_data > 0, "no 3-bit deliveries: {p:?}");
        assert_eq!(p.silent, 0);
    }

    #[test]
    fn fast_profile_matches_brute_force_on_small_codes() {
        for code in [SyndromeCode::secded8_4(), SyndromeCode::sec8_4()] {
            let fast = profile(&code);
            for data in 0..16u64 {
                assert_eq!(fast, profile_brute_force(&code, data));
            }
        }
    }
}
