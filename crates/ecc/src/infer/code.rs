//! A generic systematic single-error-correcting code over GF(2), given
//! by its per-data-bit column syndromes.
//!
//! [`SyndromeCode`] models a code with parity-check matrix `H = [A | I]`
//! in systematic form: `k ≤ 64` data bits whose columns are arbitrary
//! distinct nonzero syndromes, plus `r ≤ 16` check bits whose columns
//! are the unit vectors. Decoding is standard syndrome decoding: a zero
//! syndrome passes the word through, a syndrome matching any column
//! corrects that single bit, anything else is flagged detected. Whether
//! the code is SEC-DED (all 2-bit errors detected) or merely SEC (some
//! 2-bit errors mis-corrected into 3-bit delivered words) is a property
//! of the column set — [`SyndromeCode::is_secded`] checks it — which is
//! exactly the distinction the miscorrection profiler quantifies.
//!
//! The same type serves four roles in the inference pack:
//!
//! * the **systematic view** of the registered (72,64) codecs
//!   ([`SyndromeCode::from_code72`]), used to extract ground truth;
//! * the **SEC-only view** obtained by erasing a check row
//!   ([`SyndromeCode::drop_row`]) — the HARP setting where an on-die
//!   SEC code turns 2-bit faults into 3-bit delivered words;
//! * **small-geometry codes** like the (8,4) extended Hamming
//!   ([`SyndromeCode::secded8_4`]) for exhaustive oracles;
//! * **random SEC-DED codes** ([`SyndromeCode::random_secded`]) for
//!   seeded inference round-trips against codes nobody hand-picked.

use super::pattern::ChargePattern;
use crate::secded::SecDed;

/// Maximum supported data width (one machine word).
pub const MAX_DATA_BITS: usize = 64;
/// Maximum supported check width.
pub const MAX_CHECK_BITS: u32 = 16;

/// Why a column set does not describe a valid systematic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// More than [`MAX_DATA_BITS`] data columns, or none.
    BadDataWidth(usize),
    /// Check width outside `1..=`[`MAX_CHECK_BITS`].
    BadCheckWidth(u32),
    /// A data column is zero (an error there would be undetectable).
    ZeroColumn(u32),
    /// A data column does not fit in `r` bits.
    WideColumn(u32),
    /// A data column equals a unit vector (aliases a check column).
    UnitColumn(u32),
    /// Two data columns are equal (their single-bit errors alias).
    DuplicateColumn(u32, u32),
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::BadDataWidth(k) => write!(f, "unsupported data width {k}"),
            CodeError::BadCheckWidth(r) => write!(f, "unsupported check width {r}"),
            CodeError::ZeroColumn(j) => write!(f, "data column {j} is zero"),
            CodeError::WideColumn(j) => write!(f, "data column {j} exceeds the check width"),
            CodeError::UnitColumn(j) => write!(f, "data column {j} aliases a check column"),
            CodeError::DuplicateColumn(i, j) => write!(f, "data columns {i} and {j} are equal"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Outcome of one syndrome decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynOutcome {
    /// Zero syndrome: the word is (believed) error-free.
    Clean,
    /// The syndrome matched data column `bit`; the decoder flipped that
    /// data bit.
    CorrectedData {
        /// Data-bit index in `0..k`.
        bit: u32,
    },
    /// The syndrome matched check column `bit`; the decoder flipped
    /// that check bit and delivered the data word untouched.
    CorrectedCheck {
        /// Check-bit index in `0..r`.
        bit: u32,
    },
    /// The syndrome matched no column: detected-uncorrectable.
    Detected,
}

/// A systematic code `H = [A | I_r]` given by its data-column syndromes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyndromeCode {
    k: u32,
    r: u32,
    data_cols: [u32; MAX_DATA_BITS],
}

impl SyndromeCode {
    /// Builds a code from its data-column syndromes, validating that
    /// every single-bit error has a distinct nonzero syndrome (the SEC
    /// property; DED is *not* required — see [`Self::is_secded`]).
    pub fn new(r: u32, cols: &[u32]) -> Result<Self, CodeError> {
        if cols.is_empty() || cols.len() > MAX_DATA_BITS {
            return Err(CodeError::BadDataWidth(cols.len()));
        }
        if r == 0 || r > MAX_CHECK_BITS {
            return Err(CodeError::BadCheckWidth(r));
        }
        let width_mask = (1u32 << r) - 1;
        let mut data_cols = [0u32; MAX_DATA_BITS];
        for (j, &c) in cols.iter().enumerate() {
            let j32 = j as u32;
            if c == 0 {
                return Err(CodeError::ZeroColumn(j32));
            }
            if c & !width_mask != 0 {
                return Err(CodeError::WideColumn(j32));
            }
            if c.is_power_of_two() {
                return Err(CodeError::UnitColumn(j32));
            }
            for (i, &prev) in cols.iter().enumerate().take(j) {
                if prev == c {
                    return Err(CodeError::DuplicateColumn(i as u32, j32));
                }
            }
            data_cols[j] = c;
        }
        Ok(Self {
            k: cols.len() as u32,
            r,
            data_cols,
        })
    }

    /// The (8,4) extended Hamming SEC-DED code: the four weight-3
    /// columns over 4 check bits — the *only* choice of four distinct
    /// odd-weight non-unit nibbles, which is what makes this geometry
    /// exhaustively checkable.
    pub fn secded8_4() -> Self {
        // The literal columns are distinct, nonzero, non-unit and 4 bits
        // wide, so construction cannot fail; built directly to keep this
        // constructor infallible.
        let mut data_cols = [0u32; MAX_DATA_BITS];
        data_cols[0] = 0b0111;
        data_cols[1] = 0b1011;
        data_cols[2] = 0b1101;
        data_cols[3] = 0b1110;
        Self {
            k: 4,
            r: 4,
            data_cols,
        }
    }

    /// An (8,4)-class SEC (not DED) code: distinct nonzero columns of
    /// mixed weight, so some 2-bit faults alias a third column and
    /// mis-correct — the smallest geometry where the miscorrection
    /// profiler has nonzero work to certify.
    pub fn sec8_4() -> Self {
        // Distinct, nonzero, non-unit, 4 bits wide: infallible as above.
        let mut data_cols = [0u32; MAX_DATA_BITS];
        data_cols[0] = 0b0011;
        data_cols[1] = 0b0101;
        data_cols[2] = 0b0110;
        data_cols[3] = 0b0111;
        Self {
            k: 4,
            r: 4,
            data_cols,
        }
    }

    /// The systematic view of a registered (72,64) codec: data column
    /// `j` is the check byte the codec computes for the unit data word
    /// `1 << j`. By linearity this is exactly the parity map `A`, so
    /// [`Self::rows`] of the result is the ground truth the inference
    /// engine is certified against.
    pub fn from_code72(code: &impl SecDed) -> Result<Self, CodeError> {
        let mut cols = [0u32; MAX_DATA_BITS];
        for (j, col) in cols.iter_mut().enumerate() {
            *col = u32::from(code.encode(1u64 << j).check());
        }
        Self::new(8, &cols)
    }

    /// Erases check row `row`, producing the SEC-only view with one
    /// fewer syndrome bit (e.g. a (72,64) extended Hamming minus its
    /// overall-parity row is the classic (71,64) Hamming SEC code).
    /// Fails if the surviving columns no longer form a valid SEC code.
    pub fn drop_row(&self, row: u32) -> Result<Self, CodeError> {
        if row >= self.r {
            return Err(CodeError::BadCheckWidth(row));
        }
        let keep_low = (1u32 << row) - 1;
        let cols: Vec<u32> = self
            .data_cols
            .iter()
            .take(self.k as usize)
            .map(|&c| (c & keep_low) | ((c >> (row + 1)) << row))
            .collect();
        Self::new(self.r - 1, &cols)
    }

    /// The code with its data columns permuted: new column `j` is old
    /// column `perm[j]`. `perm` must be a permutation of `0..k`.
    pub fn permute_data(&self, perm: &[u32]) -> Result<Self, CodeError> {
        if perm.len() != self.k as usize {
            return Err(CodeError::BadDataWidth(perm.len()));
        }
        let cols: Vec<u32> = perm
            .iter()
            .map(|&p| self.data_cols.get(p as usize).copied().unwrap_or(0))
            .collect();
        Self::new(self.r, &cols)
    }

    /// The code with its check bits relabeled: new check bit `c` is old
    /// check bit `perm[c]` (a row permutation of `A`). `perm` must be a
    /// permutation of `0..r`.
    pub fn permute_checks(&self, perm: &[u32]) -> Result<Self, CodeError> {
        if perm.len() != self.r as usize {
            return Err(CodeError::BadCheckWidth(perm.len() as u32));
        }
        let cols: Vec<u32> = self
            .data_cols
            .iter()
            .take(self.k as usize)
            .map(|&c| {
                perm.iter()
                    .enumerate()
                    .fold(0u32, |acc, (new, &old)| acc | (((c >> old) & 1) << new))
            })
            .collect();
        Self::new(self.r, &cols)
    }

    /// A random valid SEC-DED code with `k = 64`, `r = 8`: 64 distinct
    /// odd-weight non-unit byte columns drawn from a seeded generator.
    /// Odd column weight makes every 2-bit error's syndrome even and
    /// hence unlike any column — the same argument that makes CRC8-ATM
    /// double-error-proof — so the result is SEC-DED by construction.
    pub fn random_secded(seed: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cols = [0u32; MAX_DATA_BITS];
        let mut taken = [false; 256];
        // Units are odd-weight too; exclude them up front.
        for c in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            taken[c as usize] = true;
        }
        for col in cols.iter_mut() {
            loop {
                let c = rng.gen::<u32>() & 0xFF;
                if c.count_ones() % 2 == 1 && !taken[c as usize] {
                    taken[c as usize] = true;
                    *col = c;
                    break;
                }
            }
        }
        // The loop admits only distinct odd-weight non-unit nonzero
        // bytes, so the column set is valid by construction.
        Self {
            k: 64,
            r: 8,
            data_cols: cols,
        }
    }

    /// Data width `k`.
    pub fn data_bits(&self) -> u32 {
        self.k
    }

    /// Check width `r`.
    pub fn check_bits(&self) -> u32 {
        self.r
    }

    /// Total code length `n = k + r`.
    pub fn len_bits(&self) -> u32 {
        self.k + self.r
    }

    /// The syndrome column of data bit `j` (zero for `j ≥ k`).
    pub fn data_col(&self, j: u32) -> u32 {
        if j < self.k {
            // indexing: j < k ≤ 64 = data_cols.len(), enforced by every
            // constructor.
            self.data_cols[j as usize]
        } else {
            0
        }
    }

    /// The column of code position `p` (`0..k` data, `k..k+r` check).
    pub fn position_col(&self, p: u32) -> u32 {
        if p < self.k {
            self.data_col(p)
        } else if p < self.k + self.r {
            1u32 << (p - self.k)
        } else {
            0
        }
    }

    /// The check word `A·d` for a data word.
    pub fn encode_check(&self, data: u64) -> u32 {
        self.syndrome(data, 0)
    }

    /// The syndrome of a received `(data, check)` pair.
    ///
    /// Allocation-free and panic-free: this is the inner loop of every
    /// inference probe and of the brute-force miscorrection oracle.
    pub fn syndrome(&self, data: u64, check: u32) -> u32 {
        let mut syn = check;
        let mut bits = if self.k >= 64 {
            data
        } else {
            data & ((1u64 << self.k) - 1)
        };
        while bits != 0 {
            let j = bits.trailing_zeros();
            bits &= bits - 1;
            syn ^= self.data_col(j);
        }
        syn & ((1u32 << self.r) - 1)
    }

    /// Syndrome-decodes a received `(data, check)` pair.
    pub fn decode(&self, data: u64, check: u32) -> SynOutcome {
        let syn = self.syndrome(data, check);
        if syn == 0 {
            return SynOutcome::Clean;
        }
        if syn.is_power_of_two() && syn.trailing_zeros() < self.r {
            return SynOutcome::CorrectedCheck {
                bit: syn.trailing_zeros(),
            };
        }
        for (j, &c) in self.data_cols.iter().take(self.k as usize).enumerate() {
            if c == syn {
                return SynOutcome::CorrectedData { bit: j as u32 };
            }
        }
        SynOutcome::Detected
    }

    /// `true` iff the code is SEC-**DED**: no 2-bit error's syndrome
    /// matches any column, so every double is flagged detected instead
    /// of mis-corrected. Checked by enumeration over all column pairs.
    pub fn is_secded(&self) -> bool {
        let n = self.len_bits();
        for a in 0..n {
            for b in (a + 1)..n {
                let syn = self.position_col(a) ^ self.position_col(b);
                if syn == 0 || !matches!(self.decode_syndrome_only(syn), SynOutcome::Detected) {
                    return false;
                }
            }
        }
        true
    }

    /// Decode classification of a bare syndrome (helper for column-set
    /// property checks; `decode` computes the syndrome itself).
    fn decode_syndrome_only(&self, syn: u32) -> SynOutcome {
        if syn == 0 {
            return SynOutcome::Clean;
        }
        // Reuse the decoder on a synthetic received word: zero data with
        // the syndrome as the check error reproduces the classification.
        self.decode(0, syn)
    }

    /// The rows of the parity map `A`, each a mask over data bits
    /// (`rows()[c]` bit `j` set ⟺ data bit `j` feeds check bit `c`).
    pub fn rows(&self) -> Vec<u64> {
        (0..self.r)
            .map(|c| {
                let mut row = 0u64;
                for j in 0..self.k {
                    row |= u64::from((self.data_col(j) >> c) & 1) << j;
                }
                row
            })
            .collect()
    }

    /// The rows of `A` in canonical order (descending as integers):
    /// the representative of the code's equivalence class under check
    /// relabeling, which is all a black-box retention test can resolve.
    pub fn canonical_rows(&self) -> Vec<u64> {
        let mut rows = self.rows();
        rows.sort_unstable_by(|a, b| b.cmp(a));
        rows
    }

    /// Runs one retention probe against this code: program the pattern,
    /// decay every charged data cell, decode, and classify what the
    /// controller can observe (delivered data diff + event flags).
    pub fn probe(&self, pattern: ChargePattern) -> super::solve::ProbeSignature {
        use super::solve::ProbeSignature;
        let written = pattern.mask();
        let check = self.encode_check(written);
        // All charged data cells decay: received data is all zeros; the
        // check cells are modeled as retention-hardened (the test pauses
        // refresh on the data array only).
        match self.decode(0, check) {
            SynOutcome::Clean => ProbeSignature::Silent,
            SynOutcome::CorrectedCheck { .. } => ProbeSignature::CheckEvent,
            SynOutcome::CorrectedData { bit } => ProbeSignature::DataCorrected { bit },
            SynOutcome::Detected => ProbeSignature::Uncorrectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc8::Crc8Atm;
    use crate::hamming::Hamming7264;

    #[test]
    fn construction_rejects_invalid_column_sets() {
        assert_eq!(SyndromeCode::new(4, &[]), Err(CodeError::BadDataWidth(0)));
        assert_eq!(SyndromeCode::new(0, &[3]), Err(CodeError::BadCheckWidth(0)));
        assert_eq!(SyndromeCode::new(4, &[3, 0]), Err(CodeError::ZeroColumn(1)));
        assert_eq!(
            SyndromeCode::new(4, &[3, 0x10]),
            Err(CodeError::WideColumn(1))
        );
        assert_eq!(SyndromeCode::new(4, &[2]), Err(CodeError::UnitColumn(0)));
        assert_eq!(
            SyndromeCode::new(4, &[3, 5, 3]),
            Err(CodeError::DuplicateColumn(0, 2))
        );
    }

    #[test]
    fn small_codes_have_the_advertised_properties() {
        assert!(SyndromeCode::secded8_4().is_secded());
        assert!(!SyndromeCode::sec8_4().is_secded());
    }

    #[test]
    fn decode_corrects_all_singles_on_the_small_code() {
        let code = SyndromeCode::secded8_4();
        let data = 0b1010u64;
        let check = code.encode_check(data);
        assert_eq!(code.decode(data, check), SynOutcome::Clean);
        for j in 0..4u32 {
            assert_eq!(
                code.decode(data ^ (1 << j), check),
                SynOutcome::CorrectedData { bit: j }
            );
        }
        for c in 0..4u32 {
            assert_eq!(
                code.decode(data, check ^ (1 << c)),
                SynOutcome::CorrectedCheck { bit: c }
            );
        }
    }

    #[test]
    fn registered_codecs_yield_valid_secded_systematic_views() {
        for rows in [
            SyndromeCode::from_code72(&Hamming7264::new()).unwrap(),
            SyndromeCode::from_code72(&Crc8Atm::new()).unwrap(),
        ] {
            assert_eq!(rows.data_bits(), 64);
            assert_eq!(rows.check_bits(), 8);
            assert!(rows.is_secded());
        }
    }

    #[test]
    fn hamming_minus_parity_row_is_sec_but_not_ded() {
        let full = SyndromeCode::from_code72(&Hamming7264::new()).unwrap();
        // The overall-parity row is the one every data column feeds with
        // the complement of its inner weight; find the row whose erasure
        // still leaves a valid code and breaks DED.
        let sec = full.drop_row(7).unwrap();
        assert_eq!(sec.check_bits(), 7);
        assert!(!sec.is_secded(), "SEC view must mis-correct some doubles");
    }

    #[test]
    fn crc8_minus_any_row_keeps_detecting_or_fails_closed() {
        // Not asserted SEC: erasing a CRC row may alias columns, in which
        // case construction fails (fail-closed) rather than mis-modeling.
        let full = SyndromeCode::from_code72(&Crc8Atm::new()).unwrap();
        for row in 0..8 {
            let _ = full.drop_row(row);
        }
    }

    #[test]
    fn permutations_roundtrip() {
        let code = SyndromeCode::random_secded(0x5EED);
        let perm: Vec<u32> = (0..64u32).rev().collect();
        let permuted = code.permute_data(&perm).unwrap();
        let back = permuted.permute_data(&perm).unwrap();
        assert_eq!(code, back);
        // Check relabeling preserves the canonical row multiset.
        let rot: Vec<u32> = (0..8u32).map(|c| (c + 3) % 8).collect();
        let relabeled = code.permute_checks(&rot).unwrap();
        assert_eq!(code.canonical_rows(), relabeled.canonical_rows());
        assert_ne!(code.rows(), relabeled.rows());
    }

    #[test]
    fn random_codes_are_seed_deterministic_and_secded() {
        let a = SyndromeCode::random_secded(42);
        assert_eq!(a, SyndromeCode::random_secded(42));
        assert_ne!(a, SyndromeCode::random_secded(43));
        assert!(a.is_secded());
    }
}
