//! BEER-style charge patterns: the unit of fault injection during a
//! simulated data-retention test.
//!
//! A pattern names the *data* cells programmed to the charged state
//! before the refresh pause. Under the true-cell convention the paper's
//! retention experiments rely on, only charged cells can decay, so the
//! pattern doubles as the worst-case error mask the decoder will face:
//! the oracle decays **every** charged cell (the long-pause limit),
//! which is what makes probe outcomes a deterministic function of the
//! undisclosed parity-check matrix.
//!
//! Patterns are validated at construction. In particular the all-zero
//! pattern — no charged cells, hence no possible retention failures —
//! is rejected with a typed error instead of silently producing the
//! uninformative "nothing happened" signature (a real bug class: an
//! inference loop that XORs two equal probe sets would otherwise spin
//! on probes that can never discriminate anything).

use std::fmt;

/// Why a charge pattern was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// The degenerate all-zero pattern: no cell is charged, so no
    /// retention failure can occur and the probe signature is
    /// unconditionally `Silent` — it carries no information about the
    /// code and must never be injected.
    AllZero,
    /// The pattern charges a cell at or beyond the code's data width.
    OutOfRange {
        /// Lowest offending data-bit index.
        bit: u32,
        /// The code's data width `k`.
        k: u32,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::AllZero => {
                write!(f, "degenerate all-zero charge pattern (no cell can decay)")
            }
            PatternError::OutOfRange { bit, k } => {
                write!(
                    f,
                    "charge pattern touches data bit {bit}, but the code has only {k} data bits"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A validated set of charged data cells, as a mask over data bits
/// `0..k` (bit `j` of the mask ↔ data bit `j` of the codeword).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChargePattern {
    mask: u64,
}

impl ChargePattern {
    /// Validates `mask` as a charge pattern for a code with `k` data
    /// bits. Rejects the degenerate all-zero pattern and any bit at or
    /// above `k`.
    pub fn new(mask: u64, k: u32) -> Result<Self, PatternError> {
        if mask == 0 {
            return Err(PatternError::AllZero);
        }
        let width_mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        if mask & !width_mask != 0 {
            return Err(PatternError::OutOfRange {
                bit: (mask & !width_mask).trailing_zeros(),
                k,
            });
        }
        Ok(Self { mask })
    }

    /// A walking-1 pattern: the single data cell `j` charged.
    pub fn walking_one(j: u32, k: u32) -> Result<Self, PatternError> {
        if j >= k || j >= 64 {
            return Err(PatternError::OutOfRange { bit: j, k });
        }
        Self::new(1u64 << j, k)
    }

    /// The charged-cell mask.
    pub fn mask(self) -> u64 {
        self.mask
    }

    /// Number of charged cells.
    pub fn weight(self) -> u32 {
        self.mask.count_ones()
    }

    /// The symmetric difference of two patterns — the key algebraic
    /// move of the inference engine (GF(2): the combined probe's
    /// syndrome is the XOR of the two constituents'). Returns
    /// [`PatternError::AllZero`] when the patterns are equal, which the
    /// solver treats as a *certain* match, not something to probe.
    pub fn symmetric_difference(self, other: Self, k: u32) -> Result<Self, PatternError> {
        Self::new(self.mask ^ other.mask, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_the_degenerate_all_zero_pattern_with_a_typed_error() {
        // Regression: the all-zero test pattern used to be representable
        // and produced an uninformative Silent signature downstream.
        assert_eq!(ChargePattern::new(0, 64), Err(PatternError::AllZero));
        let a = ChargePattern::new(0b101, 64).unwrap();
        assert_eq!(a.symmetric_difference(a, 64), Err(PatternError::AllZero));
        assert!(ChargePattern::new(0, 64)
            .unwrap_err()
            .to_string()
            .contains("all-zero"));
    }

    #[test]
    fn rejects_out_of_range_cells() {
        assert_eq!(
            ChargePattern::new(1 << 5, 4),
            Err(PatternError::OutOfRange { bit: 5, k: 4 })
        );
        assert_eq!(
            ChargePattern::walking_one(8, 8),
            Err(PatternError::OutOfRange { bit: 8, k: 8 })
        );
        // k = 64 accepts the full word.
        assert!(ChargePattern::new(u64::MAX, 64).is_ok());
    }

    #[test]
    fn accessors_and_symmetric_difference() {
        let a = ChargePattern::new(0b0110, 8).unwrap();
        let b = ChargePattern::new(0b0101, 8).unwrap();
        assert_eq!(a.weight(), 2);
        let d = a.symmetric_difference(b, 8).unwrap();
        assert_eq!(d.mask(), 0b0011);
        assert_eq!(ChargePattern::walking_one(3, 8).unwrap().mask(), 0b1000);
    }
}
