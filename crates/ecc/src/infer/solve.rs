//! The BEER-style code-inference engine.
//!
//! Given only black-box retention probes against an undisclosed
//! systematic SEC-DED code, the solver recovers the parity map `A`
//! (equivalently `H = [A | I]`) **up to check-column permutation** —
//! the physical identity of the hidden check cells is unobservable, so
//! that equivalence class is the information-theoretic limit, and the
//! recovered matrix is reported in the canonical row order of
//! [`super::SyndromeCode::canonical_rows`] for bit-exact comparison.
//!
//! # The observable
//!
//! A probe programs a charge pattern `J` (a set of data cells), lets
//! every charged cell decay, and reads back through the on-die decoder.
//! The controller sees only XED-grade information: the delivered data
//! word and whether the decoder signaled a correction or a detected
//! uncorrectable. With `s_j` the (hidden) column syndrome of data bit
//! `j` and `σ(J) = Σ_{j∈J} s_j` over GF(2), the four signature classes
//! partition the outcomes:
//!
//! | signature                | meaning                                  |
//! |--------------------------|------------------------------------------|
//! | `Silent`                 | `σ(J) = 0` — the decay pattern is a codeword projection |
//! | `CheckEvent`             | `σ(J)` equals some (anonymous) check column |
//! | `DataCorrected { bit }`  | `σ(J) = s_bit` — the decoder flipped a visible data bit |
//! | `Uncorrectable`          | anything else                            |
//!
//! # The algorithm
//!
//! 1. **Walking-1 sanity** — every singleton must come back
//!    `DataCorrected` at its own position (all codes under test correct
//!    single-bit errors); anything else is an inconsistent oracle.
//! 2. **Check-coset discovery** — scan triples `{a,b,c}` in
//!    lexicographic order; a `CheckEvent` triple has `σ` equal to one of
//!    the `r` check columns. Two such probes hit the *same* column iff
//!    the probe of their symmetric difference is `Silent` (GF(2)
//!    cancellation), so a handful of follow-up probes buckets them.
//!    Collect one representative per column; `r` of them span the whole
//!    syndrome space.
//! 3. **Column readout** — for each data bit `j`, find the unique
//!    subset `T` of representatives with
//!    `probe({j} Δ R_{t∈T}) = Silent`: then `s_j = Σ_{t∈T} t_c`, i.e.
//!    the bits of `T` are column `j` of `A` (in the anonymous check
//!    order).
//!
//! When the probe budget (or the pattern supply) runs out before all
//! `r` check columns are seen, the solver does **not** guess: it
//! returns a certified [`AmbiguityClass`] recording how much of the
//! code was pinned down.

use super::code::SyndromeCode;
use super::pattern::{ChargePattern, PatternError};
use crate::secded::{DecodeOutcome, SecDed};

/// What a single retention probe reveals to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSignature {
    /// No event: the delivered data equals the fully-decayed pattern.
    Silent,
    /// A correction event that left the data word untouched (the
    /// decoder "fixed" one of its hidden check cells).
    CheckEvent,
    /// A correction event that flipped visible data bit `bit`.
    DataCorrected {
        /// Data-bit index in `0..k`.
        bit: u32,
    },
    /// Detected-uncorrectable.
    Uncorrectable,
}

/// A black-box device under retention test.
pub trait RetentionOracle {
    /// Data width `k` of the code under test (≤ 64).
    fn data_bits(&self) -> u32;
    /// Check width `r` of the code under test (known a priori from the
    /// geometry: 8 redundant cells per 64 data cells on die).
    fn check_bits(&self) -> u32;
    /// Runs one probe and classifies the outcome.
    fn probe(&mut self, pattern: ChargePattern) -> ProbeSignature;
}

/// [`RetentionOracle`] over a registered `(72,64)` codec, observing it
/// strictly as a black box (encode, decay, decode, diff the data).
#[derive(Debug)]
pub struct SecDedOracle<C: SecDed> {
    code: C,
    probes: u64,
}

impl<C: SecDed> SecDedOracle<C> {
    /// Wraps a codec for probing.
    pub fn new(code: C) -> Self {
        Self { code, probes: 0 }
    }

    /// Probes issued so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

impl<C: SecDed> RetentionOracle for SecDedOracle<C> {
    fn data_bits(&self) -> u32 {
        64
    }

    fn check_bits(&self) -> u32 {
        8
    }

    fn probe(&mut self, pattern: ChargePattern) -> ProbeSignature {
        self.probes += 1;
        let written = pattern.mask();
        let encoded = self.code.encode(written);
        // Every charged data cell decays to zero; the check cells keep
        // their programmed values (the test pauses refresh on the data
        // array only — the existing fault model's multi-bit injection
        // restricted to the data region).
        let received = crate::codeword::CodeWord72::new(0, encoded.check());
        match self.code.decode(received) {
            DecodeOutcome::Detected => ProbeSignature::Uncorrectable,
            DecodeOutcome::Clean { .. } => ProbeSignature::Silent,
            DecodeOutcome::Corrected { data, .. } => {
                // Classify by the visible data diff against the fully
                // decayed word, never by the decoder's internal bit
                // index: the controller cannot see check-cell labels.
                if data == 0 {
                    ProbeSignature::CheckEvent
                } else {
                    ProbeSignature::DataCorrected {
                        bit: data.trailing_zeros(),
                    }
                }
            }
        }
    }
}

/// [`RetentionOracle`] over a [`SyndromeCode`] (random or small codes).
#[derive(Debug)]
pub struct SyndromeOracle {
    code: SyndromeCode,
    probes: u64,
}

impl SyndromeOracle {
    /// Wraps a syndrome code for probing.
    pub fn new(code: SyndromeCode) -> Self {
        Self { code, probes: 0 }
    }

    /// Probes issued so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

impl RetentionOracle for SyndromeOracle {
    fn data_bits(&self) -> u32 {
        self.code.data_bits()
    }

    fn check_bits(&self) -> u32 {
        self.code.check_bits()
    }

    fn probe(&mut self, pattern: ChargePattern) -> ProbeSignature {
        self.probes += 1;
        self.code.probe(pattern)
    }
}

/// Inference tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct InferConfig {
    /// Hard cap on probes; hitting it yields a certified
    /// [`AmbiguityClass`], never a guess.
    pub max_probes: u64,
}

impl Default for InferConfig {
    fn default() -> Self {
        // Generous: full recovery of a (72,64) code takes a few
        // thousand probes (coset discovery) plus ≤ 64·256 readouts.
        Self {
            max_probes: 1 << 20,
        }
    }
}

/// The recovered code, canonicalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredCode {
    /// Data width.
    pub k: u32,
    /// Check width.
    pub r: u32,
    /// Rows of the parity map `A` in canonical (descending) order —
    /// the representative of the check-relabeling equivalence class.
    pub rows: Vec<u64>,
    /// Probes spent.
    pub probes_used: u64,
}

/// Why inference stopped short of full recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmbiguityReason {
    /// The probe budget ran out (pattern-starved test campaign).
    ProbeBudgetExhausted,
    /// Every permissible pattern was tried without spanning the
    /// syndrome space (the pattern family underdetermines the code).
    PatternsExhausted,
}

/// A certified partial result: how much of the code the probes pinned
/// down before the campaign ran dry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbiguityClass {
    /// Check columns actually distinguished (`< r`).
    pub resolved_rows: u32,
    /// Check width the geometry promises.
    pub r: u32,
    /// Data columns fully expressed over the resolved rows.
    pub resolved_cols: u32,
    /// Probes spent.
    pub probes_used: u64,
    /// What dried up.
    pub reason: AmbiguityReason,
}

impl AmbiguityClass {
    /// Check rows the controller must treat as unknown.
    pub fn unresolved_rows(&self) -> u32 {
        self.r - self.resolved_rows
    }
}

/// Inference result: exact recovery or a certified ambiguity class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferOutcome {
    /// The full parity map, up to check relabeling.
    Recovered(InferredCode),
    /// The patterns underdetermine the code; here is exactly how much
    /// was established.
    Ambiguous(AmbiguityClass),
}

/// Hard inference failures (as opposed to certified partial results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// A probe pattern was rejected (solver bug or hostile geometry).
    Pattern(PatternError),
    /// Geometry outside the supported envelope.
    UnsupportedGeometry {
        /// Claimed data width.
        k: u32,
        /// Claimed check width.
        r: u32,
    },
    /// The oracle contradicted the systematic SEC-DED model (e.g. a
    /// single-cell decay that was not corrected in place).
    InconsistentOracle {
        /// Human-readable contradiction.
        detail: String,
    },
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Pattern(e) => write!(f, "probe pattern rejected: {e}"),
            InferError::UnsupportedGeometry { k, r } => {
                write!(f, "unsupported geometry ({k} data, {r} check bits)")
            }
            InferError::InconsistentOracle { detail } => {
                write!(
                    f,
                    "oracle inconsistent with a systematic SEC-DED code: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for InferError {}

impl From<PatternError> for InferError {
    fn from(e: PatternError) -> Self {
        InferError::Pattern(e)
    }
}

/// Budget-tracked probe wrapper used by the solver.
struct Budget {
    used: u64,
    max: u64,
}

impl Budget {
    fn probe(
        &mut self,
        oracle: &mut dyn RetentionOracle,
        pattern: ChargePattern,
    ) -> Option<ProbeSignature> {
        if self.used >= self.max {
            return None;
        }
        self.used += 1;
        Some(oracle.probe(pattern))
    }
}

/// Runs BEER-style inference against a black-box oracle.
///
/// Returns [`InferOutcome::Recovered`] with the canonicalized parity
/// map, or [`InferOutcome::Ambiguous`] when the probe budget or the
/// pattern family underdetermines the code. Hard model violations
/// (geometry out of range, an oracle that is not a systematic SEC code)
/// are [`InferError`]s.
pub fn infer(
    oracle: &mut dyn RetentionOracle,
    cfg: &InferConfig,
) -> Result<InferOutcome, InferError> {
    let k = oracle.data_bits();
    let r = oracle.check_bits();
    if k == 0 || k > 64 || r == 0 || r > 16 {
        return Err(InferError::UnsupportedGeometry { k, r });
    }
    let mut budget = Budget {
        used: 0,
        max: cfg.max_probes,
    };

    // Phase 1 — walking-1: each singleton decay must be corrected back
    // in place. This is both a sanity check and the proof that every
    // data column is nonzero and distinct from the check columns.
    for j in 0..k {
        let pattern = ChargePattern::walking_one(j, k)?;
        let Some(sig) = budget.probe(oracle, pattern) else {
            return Ok(starved(0, 0, r, budget.used));
        };
        if sig != (ProbeSignature::DataCorrected { bit: j }) {
            return Err(InferError::InconsistentOracle {
                detail: format!("walking-1 probe at data bit {j} returned {sig:?}"),
            });
        }
    }

    // Phase 2 — check-coset discovery over lexicographic triples. A
    // pair can never be a CheckEvent on a distance-4 code (that would
    // be a weight-3 codeword), so triples are the cheapest informative
    // family.
    let mut reps: Vec<u64> = Vec::with_capacity(r as usize);
    'scan: for a in 0..k {
        for b in (a + 1)..k {
            for c in (b + 1)..k {
                if reps.len() == r as usize {
                    break 'scan;
                }
                let mask = (1u64 << a) | (1u64 << b) | (1u64 << c);
                let pattern = ChargePattern::new(mask, k)?;
                let Some(sig) = budget.probe(oracle, pattern) else {
                    return Ok(starved(reps.len() as u32, 0, r, budget.used));
                };
                if sig != ProbeSignature::CheckEvent {
                    continue;
                }
                // Bucket against known representatives: same check
                // column ⟺ the symmetric difference probes Silent.
                let mut known = false;
                for &rep in &reps {
                    let diff = match ChargePattern::new(mask ^ rep, k) {
                        Ok(p) => p,
                        // Equal sets cancel: trivially the same coset.
                        Err(PatternError::AllZero) => {
                            known = true;
                            break;
                        }
                        Err(e) => return Err(e.into()),
                    };
                    let Some(dsig) = budget.probe(oracle, diff) else {
                        return Ok(starved(reps.len() as u32, 0, r, budget.used));
                    };
                    if dsig == ProbeSignature::Silent {
                        known = true;
                        break;
                    }
                }
                if !known {
                    reps.push(mask);
                }
            }
        }
    }
    if reps.len() < r as usize {
        let reason = if budget.used >= budget.max {
            AmbiguityReason::ProbeBudgetExhausted
        } else {
            AmbiguityReason::PatternsExhausted
        };
        return Ok(InferOutcome::Ambiguous(AmbiguityClass {
            resolved_rows: reps.len() as u32,
            r,
            resolved_cols: 0,
            probes_used: budget.used,
            reason,
        }));
    }

    // Phase 3 — column readout: express every data column over the
    // representative basis. Exactly one subset matches (the reps are
    // independent and span the r-dimensional syndrome space).
    let mut cols = vec![0u32; k as usize];
    for j in 0..k {
        let mut found = false;
        for t in 1u32..(1 << r) {
            let mut mask = 1u64 << j;
            for (c, &rep) in reps.iter().enumerate() {
                if (t >> c) & 1 == 1 {
                    mask ^= rep;
                }
            }
            if mask == 0 {
                // {j} equals the symmetric difference of the chosen
                // reps: σ cancels identically — a certain match with no
                // probe needed (and the all-zero pattern is unprobeable
                // by design).
                if let Some(slot) = cols.get_mut(j as usize) {
                    *slot = t;
                }
                found = true;
                break;
            }
            let pattern = ChargePattern::new(mask, k)?;
            let Some(sig) = budget.probe(oracle, pattern) else {
                return Ok(starved(r, j, r, budget.used));
            };
            if sig == ProbeSignature::Silent {
                if let Some(slot) = cols.get_mut(j as usize) {
                    *slot = t;
                }
                found = true;
                break;
            }
        }
        if !found {
            return Err(InferError::InconsistentOracle {
                detail: format!("data column {j} is outside the span of the check columns"),
            });
        }
    }

    // Assemble rows in the anonymous check order, then canonicalize.
    let mut rows: Vec<u64> = (0..r)
        .map(|c| {
            cols.iter().enumerate().fold(0u64, |acc, (j, &col)| {
                acc | (u64::from((col >> c) & 1) << j)
            })
        })
        .collect();
    rows.sort_unstable_by(|a, b| b.cmp(a));
    Ok(InferOutcome::Recovered(InferredCode {
        k,
        r,
        rows,
        probes_used: budget.used,
    }))
}

/// Budget-exhaustion constructor (keeps the early returns readable).
fn starved(resolved_rows: u32, resolved_cols: u32, r: u32, probes_used: u64) -> InferOutcome {
    InferOutcome::Ambiguous(AmbiguityClass {
        resolved_rows,
        r,
        resolved_cols,
        probes_used,
        reason: AmbiguityReason::ProbeBudgetExhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc8::Crc8Atm;
    use crate::hamming::Hamming7264;

    fn recover(oracle: &mut dyn RetentionOracle) -> InferredCode {
        match infer(oracle, &InferConfig::default()).unwrap() {
            InferOutcome::Recovered(code) => code,
            InferOutcome::Ambiguous(a) => panic!("unexpected ambiguity: {a:?}"),
        }
    }

    #[test]
    fn recovers_the_hamming_matrix_bit_exactly() {
        let truth = SyndromeCode::from_code72(&Hamming7264::new()).unwrap();
        let mut oracle = SecDedOracle::new(Hamming7264::new());
        let got = recover(&mut oracle);
        assert_eq!(got.rows, truth.canonical_rows());
        assert_eq!(got.probes_used, oracle.probes());
    }

    #[test]
    fn recovers_the_crc8_matrix_bit_exactly() {
        let truth = SyndromeCode::from_code72(&Crc8Atm::new()).unwrap();
        let mut oracle = SecDedOracle::new(Crc8Atm::new());
        let got = recover(&mut oracle);
        assert_eq!(got.rows, truth.canonical_rows());
    }

    #[test]
    fn recovers_the_small_code() {
        let code = SyndromeCode::secded8_4();
        let mut oracle = SyndromeOracle::new(code);
        let got = recover(&mut oracle);
        assert_eq!(got.rows, code.canonical_rows());
        assert_eq!(got.k, 4);
        assert_eq!(got.r, 4);
    }

    #[test]
    fn inference_is_invariant_under_check_relabeling() {
        let code = SyndromeCode::random_secded(0xBEE5);
        let rot: Vec<u32> = (0..8u32).map(|c| (c + 5) % 8).collect();
        let relabeled = code.permute_checks(&rot).unwrap();
        let mut a = SyndromeOracle::new(code);
        let mut b = SyndromeOracle::new(relabeled);
        assert_eq!(recover(&mut a).rows, recover(&mut b).rows);
    }

    #[test]
    fn starved_budget_reports_a_certified_ambiguity_class() {
        let mut oracle = SecDedOracle::new(Hamming7264::new());
        let out = infer(&mut oracle, &InferConfig { max_probes: 80 }).unwrap();
        match out {
            InferOutcome::Ambiguous(a) => {
                assert!(a.resolved_rows < a.r);
                assert_eq!(a.probes_used, 80);
                assert_eq!(a.reason, AmbiguityReason::ProbeBudgetExhausted);
                assert_eq!(a.unresolved_rows(), a.r - a.resolved_rows);
            }
            InferOutcome::Recovered(_) => panic!("80 probes cannot span 8 check columns"),
        }
    }

    #[test]
    fn rejects_unsupported_geometry() {
        struct Weird;
        impl RetentionOracle for Weird {
            fn data_bits(&self) -> u32 {
                65
            }
            fn check_bits(&self) -> u32 {
                8
            }
            fn probe(&mut self, _p: ChargePattern) -> ProbeSignature {
                ProbeSignature::Silent
            }
        }
        assert!(matches!(
            infer(&mut Weird, &InferConfig::default()),
            Err(InferError::UnsupportedGeometry { k: 65, r: 8 })
        ));
    }
}
