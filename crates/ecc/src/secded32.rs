//! A (40,32) CRC8-ATM SECDED code for x4 devices.
//!
//! When XED runs on x4 parts (paper Section IX), each device supplies a
//! 32-bit word per cache-line access, so the on-die ECC word — and the
//! catch-word — shrink to 32 bits. This module is the 32-bit counterpart
//! of [`crate::crc8`]: the same CRC8-ATM polynomial over a 40-bit codeword
//! (32 data + 8 check bits). The ATM HEC literature the paper cites used
//! exactly this regime (single-bit correction over a 40-bit header).
//!
//! The SECDED argument of [`crate::crc8`] carries over verbatim: all 40
//! single-bit syndromes are distinct and nonzero (x has order 127 modulo
//! the degree-7 primitive factor), double errors are always detected, and
//! every burst of length ≤ 8 is detected.

use crate::crc8::CRC_TABLE;
use std::fmt;

/// Returns the parity (XOR of all bits) of `x` as 0 or 1.
#[inline]
fn parity32(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

/// CRC8-ATM of a 32-bit word (const-evaluable; leading zero bytes keep the
/// CRC state at zero, so this agrees with the 64-bit codec on zero-extended
/// words).
pub(crate) const fn crc8_u32(data: u32) -> u8 {
    let bytes = data.to_be_bytes();
    let mut crc = 0u8;
    let mut i = 0;
    while i < 4 {
        crc = CRC_TABLE[(crc ^ bytes[i]) as usize];
        i += 1;
    }
    crc
}

/// Per-syndrome-bit data masks for the 32-bit regime: `SYNDROME_MASKS[b]`
/// has u32 bit `j` set iff `crc8(1 << j)` has bit `b` set (see
/// [`crate::crc8`] for the 64-bit analogue and the linearity argument).
const SYNDROME_MASKS: [u32; 8] = build_syndrome_masks();

const fn build_syndrome_masks() -> [u32; 8] {
    let mut masks = [0u32; 8];
    let mut j = 0u32;
    while j < 32 {
        let s = crc8_u32(1u32 << j);
        let mut b = 0usize;
        while b < 8 {
            if (s >> b) & 1 == 1 {
                masks[b] |= 1u32 << j;
            }
            b += 1;
        }
        j += 1;
    }
    masks
}

// Linearity reduces mask-kernel correctness to the 32 basis vectors; checked
// at compile time against the byte-table CRC.
const _: () = {
    let mut j = 0u32;
    while j < 32 {
        let w = 1u32 << j;
        let mut s = 0u8;
        let mut b = 0usize;
        while b < 8 {
            if (w & SYNDROME_MASKS[b]).count_ones() & 1 == 1 {
                s |= 1 << b;
            }
            b += 1;
        }
        assert!(
            s == crc8_u32(w),
            "CRC/40 syndrome mask column disagrees with the byte-table CRC"
        );
        j += 1;
    }
};

/// Syndrome of the single-bit error at physical position `i` of a (40,32)
/// codeword.
const fn single_bit_syndrome(i: u32) -> u8 {
    if i < 32 {
        crc8_u32(1u32 << (31 - i))
    } else {
        1u8 << (39 - i)
    }
}

/// `SYNDROME_POS[s]` = physical bit (0–39) whose single-bit error has
/// syndrome `s`, or −1. Compile-time constant; construction asserts the 40
/// syndromes are nonzero and pairwise distinct.
const SYNDROME_POS: [i8; 256] = build_syndrome_pos();

const fn build_syndrome_pos() -> [i8; 256] {
    let mut pos = [-1i8; 256];
    let mut i = 0u32;
    while i < 40 {
        let s = single_bit_syndrome(i);
        assert!(
            s != 0,
            "CRC8-ATM/40: a single-bit syndrome is zero (not even SEC)"
        );
        assert!(
            pos[s as usize] == -1,
            "CRC8-ATM/40: two single-bit errors share a syndrome"
        );
        pos[s as usize] = i as i8;
        i += 1;
    }
    pos
}

// Compile-time SECDED proof for the 40-bit regime; the argument is the one
// in `crate::crc8` (odd-weight singles, even nonzero doubles ⟹ distance
// ≥ 4), restricted to positions 0..40.
const _: () = {
    let mut i = 0u32;
    while i < 40 {
        let si = single_bit_syndrome(i);
        assert!(
            si != 0 && si.count_ones() % 2 == 1,
            "single-bit syndrome not odd-weight"
        );
        let mut j = i + 1;
        while j < 40 {
            let d = si ^ single_bit_syndrome(j);
            assert!(
                d != 0,
                "two single-bit syndromes collide (weight-2 codeword!)"
            );
            assert!(
                d.count_ones().is_multiple_of(2),
                "double-bit syndrome has odd weight"
            );
            assert!(
                SYNDROME_POS[d as usize] == -1,
                "double-bit error aliases a single-bit one"
            );
            j += 1;
        }
        i += 1;
    }
};

/// A 40-bit codeword: 32 data bits plus 8 check bits, physical order
/// MSB-first (data bit `31 − i` at physical `i`, check bit `39 − i` for
/// `i ≥ 32`), matching [`crate::codeword::CodeWord72`]'s convention.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CodeWord40 {
    data: u32,
    check: u8,
}

impl CodeWord40 {
    /// Total bits.
    pub const BITS: u32 = 40;

    /// Creates a codeword from its parts.
    #[inline]
    pub fn new(data: u32, check: u8) -> Self {
        Self { data, check }
    }

    /// The 32 data bits.
    #[inline]
    pub fn data(self) -> u32 {
        self.data
    }

    /// The 8 check bits.
    #[inline]
    pub fn check(self) -> u8 {
        self.check
    }

    /// Returns a copy with physical bit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 40`.
    #[inline]
    #[must_use]
    pub fn with_bit_flipped(self, i: u32) -> Self {
        assert!(i < Self::BITS, "bit index {i} out of range");
        let mut w = self;
        if i < 32 {
            w.data ^= 1u32 << (31 - i);
        } else {
            w.check ^= 1u8 << (39 - i);
        }
        w
    }
}

impl fmt::Debug for CodeWord40 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CodeWord40 {{ data: {:#010x}, check: {:#04x} }}",
            self.data, self.check
        )
    }
}

/// Decode outcome for the 32-bit code (mirrors
/// [`crate::secded::DecodeOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decode32 {
    /// Valid codeword.
    Clean {
        /// Decoded data.
        data: u32,
    },
    /// Single-bit error corrected.
    Corrected {
        /// Corrected data.
        data: u32,
        /// Physical bit position (0–39).
        bit: u32,
    },
    /// Uncorrectable error detected.
    Detected,
}

impl Decode32 {
    /// `true` for any non-clean outcome (the catch-word trigger).
    pub fn is_event(self) -> bool {
        !matches!(self, Decode32::Clean { .. })
    }
}

/// The (40,32) CRC8-ATM SECDED codec.
///
/// ```
/// use xed_ecc::secded32::{Crc8Atm32, Decode32};
///
/// let code = Crc8Atm32::new();
/// let w = code.encode(0xCAFE_F00D);
/// assert_eq!(code.decode(w), Decode32::Clean { data: 0xCAFE_F00D });
/// let rx = w.with_bit_flipped(7);
/// assert!(matches!(code.decode(rx), Decode32::Corrected { data: 0xCAFE_F00D, bit: 7 }));
/// ```
#[derive(Debug, Clone)]
pub struct Crc8Atm32 {
    crc_table: [u8; 256],
    syndrome_pos: [i8; 256],
}

impl Default for Crc8Atm32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc8Atm32 {
    /// Builds the codec. The lookup tables are compile-time constants whose
    /// SECDED invariants are proved by `const` assertions in this module.
    pub fn new() -> Self {
        Self {
            crc_table: CRC_TABLE,
            syndrome_pos: SYNDROME_POS,
        }
    }

    /// CRC8-ATM of a 32-bit word.
    pub fn crc8(&self, data: u32) -> u8 {
        let mut crc = 0u8;
        for byte in data.to_be_bytes() {
            crc = self.crc_table[(crc ^ byte) as usize];
        }
        crc
    }

    /// Encodes 32 data bits into a 40-bit codeword.
    pub fn encode(&self, data: u32) -> CodeWord40 {
        CodeWord40::new(data, self.crc8(data))
    }

    /// The 8-bit syndrome (zero ⟺ valid).
    ///
    /// Word-parallel: eight AND+popcount dot products against
    /// `SYNDROME_MASKS` (the bit-serial original lives in
    /// [`crate::reference`]).
    pub fn raw_syndrome(&self, received: CodeWord40) -> u8 {
        let d = received.data();
        let mut s = received.check();
        for (b, &mask) in SYNDROME_MASKS.iter().enumerate() {
            s ^= parity32(d & mask) << b;
        }
        s
    }

    /// `true` if the received word is a valid codeword.
    pub fn is_valid(&self, received: CodeWord40) -> bool {
        self.raw_syndrome(received) == 0
    }

    /// Decodes, correcting a single-bit error if present.
    pub fn decode(&self, received: CodeWord40) -> Decode32 {
        let s = self.raw_syndrome(received);
        if s == 0 {
            return Decode32::Clean {
                data: received.data(),
            };
        }
        match self.syndrome_pos[s as usize] {
            -1 => Decode32::Detected,
            pos => {
                let bit = pos as u32;
                let fixed = received.with_bit_flipped(bit);
                Decode32::Corrected {
                    data: fixed.data(),
                    bit,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_samples() {
        let c = Crc8Atm32::new();
        for d in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x8000_0001] {
            assert_eq!(c.decode(c.encode(d)), Decode32::Clean { data: d });
        }
    }

    #[test]
    fn corrects_all_single_bit_errors_exhaustive() {
        let c = Crc8Atm32::new();
        for d in [0u32, u32::MAX, 0x1234_5678] {
            let w = c.encode(d);
            for i in 0..40 {
                match c.decode(w.with_bit_flipped(i)) {
                    Decode32::Corrected { data, bit } => {
                        assert_eq!(data, d);
                        assert_eq!(bit, i);
                    }
                    other => panic!("bit {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn detects_all_double_bit_errors_exhaustive() {
        let c = Crc8Atm32::new();
        let w = c.encode(0xA5A5_5A5A);
        for i in 0..40u32 {
            for j in (i + 1)..40 {
                assert_eq!(
                    c.decode(w.with_bit_flipped(i).with_bit_flipped(j)),
                    Decode32::Detected,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn detects_every_full_burst_up_to_8() {
        let c = Crc8Atm32::new();
        let w = c.encode(0x0F0F_F0F0);
        for len in 1..=8u32 {
            for start in 0..=(40 - len) {
                let r = (0..len).fold(w, |acc, k| acc.with_bit_flipped(start + k));
                assert!(!c.is_valid(r), "burst {len} at {start}");
            }
        }
    }

    #[test]
    fn mask_syndrome_matches_table_crc() {
        let c = Crc8Atm32::new();
        for (d, ch) in [
            (0u32, 0u8),
            (u32::MAX, 0xFF),
            (0xDEAD_BEEF, 0x5A),
            (0x8000_0001, 1),
        ] {
            let w = CodeWord40::new(d, ch);
            assert_eq!(c.raw_syndrome(w), c.crc8(d) ^ ch);
        }
    }

    #[test]
    fn flip_involution() {
        let w = CodeWord40::new(0x1357_9BDF, 0x42);
        for i in 0..40 {
            assert_eq!(w.with_bit_flipped(i).with_bit_flipped(i), w);
        }
    }

    #[test]
    fn is_event_classification() {
        assert!(!Decode32::Clean { data: 0 }.is_event());
        assert!(Decode32::Corrected { data: 0, bit: 1 }.is_event());
        assert!(Decode32::Detected.is_event());
    }

    #[test]
    fn crc_matches_64bit_codec_on_shared_prefix() {
        // The 32-bit CRC must equal the 64-bit codec's CRC of the value
        // zero-extended *in the high bytes* shifted appropriately: CRC of
        // the 4-byte message equals CRC64 of the same bytes preceded by
        // zero bytes only if leading zeros don't affect state — they do
        // keep crc at 0, so crc64(d as u64) == crc32(d).
        let c32 = Crc8Atm32::new();
        let c64 = crate::crc8::Crc8Atm::new();
        for d in [0u32, 5, 0xFFFF_FFFF, 0x0BAD_F00D] {
            assert_eq!(c32.crc8(d), c64.crc8(d as u64));
        }
    }

    #[test]
    fn debug_format_nonempty() {
        assert!(format!("{:?}", CodeWord40::new(1, 2)).contains("CodeWord40"));
    }
}
