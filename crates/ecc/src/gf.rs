//! Finite-field arithmetic GF(2^m) for m ≤ 8, backed by log/antilog tables.
//!
//! Chipkill-style codes operate on DRAM-device-sized *symbols* rather than
//! bits. This module provides the field arithmetic for the Reed–Solomon
//! codecs in [`crate::rs`]: GF(16) for x4-device symbols and GF(256) for
//! 8-bit symbols (and for pairing two x4 beats into one byte symbol, the
//! construction commercial chipkill uses).

use std::fmt;

/// A GF(2^m) field defined by a primitive polynomial.
///
/// Elements are represented as integers `0..2^m` in polynomial basis.
/// Multiplication and inversion go through log/antilog tables built at
/// construction.
#[derive(Clone)]
pub struct Field {
    m: u32,
    size: usize,
    poly: u32,
    log: Vec<u16>,
    exp: Vec<u8>,
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .finish()
    }
}

impl Field {
    /// Builds GF(2^m) from a primitive polynomial given including the leading
    /// term (e.g. `0x11D` = x^8+x^4+x^3+x^2+1 for GF(256)).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `1..=8` or the polynomial is not primitive
    /// (i.e. `x` does not generate the multiplicative group).
    pub fn new(m: u32, poly: u32) -> Self {
        assert!((1..=8).contains(&m), "only GF(2^1)..GF(2^8) supported");
        let size = 1usize << m;
        let order = size - 1;
        let mut log = vec![0u16; size];
        let mut exp = vec![0u8; 2 * order];
        let mut x = 1u32;
        for i in 0..order {
            assert!(
                i == 0 || x != 1,
                "polynomial {poly:#x} is not primitive for m={m} (x has order {i})"
            );
            exp[i] = x as u8;
            exp[i + order] = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        assert_eq!(x, 1, "polynomial {poly:#x} is not primitive for m={m}");
        Self { m, size, poly, log, exp }
    }

    /// The standard GF(256) field used by the byte-symbol Reed–Solomon
    /// codecs (primitive polynomial x^8+x^4+x^3+x^2+1).
    pub fn gf256() -> Self {
        Self::new(8, 0x11D)
    }

    /// GF(16) with primitive polynomial x^4+x+1, for x4-device symbols.
    pub fn gf16() -> Self {
        Self::new(4, 0x13)
    }

    /// Field extension degree m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of field elements (2^m).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Order of the multiplicative group (2^m − 1).
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// α^i for the primitive element α = x.
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % self.order()]
    }

    /// Discrete log base α of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, a: u8) -> usize {
        assert!(a != 0, "log of zero");
        self.log[a as usize] as usize
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// a^n by repeated table lookups.
    pub fn pow(&self, a: u8, n: usize) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        self.exp[(self.log[a as usize] as usize * n) % self.order()]
    }

    /// Evaluates a polynomial (coefficients ascending, `poly[i]·x^i`) at `x`.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// Multiplies two polynomials over the field (ascending coefficients).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<Field> {
        vec![Field::gf256(), Field::gf16()]
    }

    #[test]
    fn mul_identity_and_zero() {
        for f in fields() {
            for a in 0..f.size() as u16 {
                let a = a as u8;
                assert_eq!(f.mul(a, 1), a);
                assert_eq!(f.mul(1, a), a);
                assert_eq!(f.mul(a, 0), 0);
            }
        }
    }

    #[test]
    fn mul_commutative_associative_distributive_gf16() {
        let f = Field::gf16();
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..16u8 {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for f in fields() {
            for a in 1..f.size() as u16 {
                let a = a as u8;
                assert_eq!(f.mul(a, f.inv(a)), 1, "a={a} in GF(2^{})", f.m());
                assert_eq!(f.div(f.mul(a, 7.min(f.order() as u8)), a), 7.min(f.order() as u8));
            }
        }
    }

    #[test]
    fn alpha_generates_group() {
        for f in fields() {
            let mut seen = vec![false; f.size()];
            for i in 0..f.order() {
                let v = f.alpha_pow(i);
                assert!(!seen[v as usize], "α^{i} repeats in GF(2^{})", f.m());
                seen[v as usize] = true;
            }
            assert!(!seen[0]);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Field::gf256();
        for a in [1u8, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(f.pow(a, n), acc);
                acc = f.mul(acc, a);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_horner() {
        let f = Field::gf256();
        // p(x) = 3 + 2x + x^2 at x=2 : 3 ^ mul(2,2) ^ mul(1,4) = 3^4^4 = 3
        let p = [3u8, 2, 1];
        assert_eq!(f.poly_eval(&p, 2), 3);
        assert_eq!(f.poly_eval(&p, 0), 3);
        assert_eq!(f.poly_eval(&[], 5), 0);
    }

    #[test]
    fn poly_mul_degree_and_linearity() {
        let f = Field::gf256();
        let a = [1u8, 1]; // (1 + x)
        let b = [1u8, 2]; // (1 + 2x)
        let prod = f.poly_mul(&a, &b);
        assert_eq!(prod.len(), 3);
        // roots of the product are roots of either factor
        assert_eq!(f.poly_eval(&prod, 1), 0);
        assert_eq!(f.poly_eval(&prod, f.inv(2)), 0);
    }

    #[test]
    #[should_panic]
    fn non_primitive_poly_rejected() {
        // x^4 + x^3 + x^2 + x + 1 has order 5, not primitive for GF(16).
        let _ = Field::new(4, 0x1F);
    }

    #[test]
    fn log_exp_inverse() {
        let f = Field::gf256();
        for a in 1..=255u8 {
            assert_eq!(f.alpha_pow(f.log(a)), a);
        }
    }
}
