//! Finite-field arithmetic GF(2^m) for m ≤ 8, backed by log/antilog tables.
//!
//! Chipkill-style codes operate on DRAM-device-sized *symbols* rather than
//! bits. This module provides the field arithmetic for the Reed–Solomon
//! codecs in [`crate::rs`]: GF(16) for x4-device symbols and GF(256) for
//! 8-bit symbols (and for pairing two x4 beats into one byte symbol, the
//! construction commercial chipkill uses).

use std::fmt;

/// Builds the `(exp, log)` tables of GF(2^m) at compile time, where
/// `SIZE = 2^m` and `EXP2 = 2·(2^m − 1)` (the exp table is doubled so
/// `mul` can skip a modular reduction). Evaluation FAILS THE BUILD if the
/// polynomial is not primitive — i.e. if `x` does not generate the full
/// multiplicative group.
const fn build_exp_log<const SIZE: usize, const EXP2: usize>(
    m: u32,
    poly: u32,
) -> ([u8; EXP2], [u16; SIZE]) {
    assert!(
        EXP2 == 2 * (SIZE - 1),
        "exp table must be twice the group order"
    );
    let order = SIZE - 1;
    let mut exp = [0u8; EXP2];
    let mut log = [0u16; SIZE];
    let mut x = 1u32;
    let mut i = 0usize;
    while i < order {
        assert!(
            i == 0 || x != 1,
            "polynomial is not primitive (x has smaller order)"
        );
        exp[i] = x as u8;
        exp[i + order] = x as u8;
        log[x as usize] = i as u16;
        x <<= 1;
        if x & (1 << m) != 0 {
            x ^= poly;
        }
        i += 1;
    }
    assert!(x == 1, "polynomial is not primitive (x never returns to 1)");
    (exp, log)
}

const GF256_TABLES: ([u8; 510], [u16; 256]) = build_exp_log::<256, 510>(8, 0x11D);
/// Compile-time antilog table of GF(256): `GF256_EXP[i] = α^i` (doubled).
pub(crate) const GF256_EXP: [u8; 510] = GF256_TABLES.0;
/// Compile-time log table of GF(256) (entry 0 unused).
pub(crate) const GF256_LOG: [u16; 256] = GF256_TABLES.1;

const GF16_TABLES: ([u8; 30], [u16; 16]) = build_exp_log::<16, 30>(4, 0x13);
const GF16_EXP: [u8; 30] = GF16_TABLES.0;
const GF16_LOG: [u16; 16] = GF16_TABLES.1;

/// GF(256) multiplication through the compile-time tables (const-evaluable
/// mirror of [`Field::mul`]; used by the Reed–Solomon generator proofs).
pub(crate) const fn gf256_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF256_EXP[GF256_LOG[a as usize] as usize + GF256_LOG[b as usize] as usize]
    }
}

/// Flat GF(256) multiplication table `GF256_MUL[a][b] = a·b`, built at
/// compile time from the proved log/antilog tables. The Reed–Solomon hot
/// path multiplies through this single L1-resident load instead of the
/// zero-test + two log reads + antilog read of [`gf256_mul`]; the table is
/// 64 KiB and entry-for-entry identical to [`Field::mul`] on GF(256)
/// (asserted below and by this module's tests).
pub(crate) static GF256_MUL: [[u8; 256]; 256] = build_gf256_mul();

const fn build_gf256_mul() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0usize;
        while b < 256 {
            t[a][b] = gf256_mul(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

// ---------------------------------------------------------------------------
// Compile-time field proofs. `build_exp_log` already proves α generates the
// multiplicative group (primitivity); these blocks prove the tables are
// mutually inverse and that every nonzero element has a multiplicative
// inverse — the properties the Reed–Solomon decoder's divisions rely on.
// A corrupted table entry fails `cargo build` here.
// ---------------------------------------------------------------------------
const _: () = {
    // exp and log are mutual inverses on the nonzero elements.
    let mut a = 1usize;
    while a < 256 {
        assert!(
            GF256_EXP[GF256_LOG[a] as usize] as usize == a,
            "GF256 exp∘log ≠ id"
        );
        let inv = GF256_EXP[255 - GF256_LOG[a] as usize];
        assert!(
            gf256_mul(a as u8, inv) == 1,
            "GF256 element without inverse"
        );
        a += 1;
    }
    let mut i = 0usize;
    while i < 255 {
        assert!(
            GF256_LOG[GF256_EXP[i] as usize] as usize == i,
            "GF256 log∘exp ≠ id"
        );
        assert!(
            GF256_EXP[i] == GF256_EXP[i + 255],
            "GF256 doubled exp table mismatch"
        );
        i += 1;
    }
};

const _: () = {
    // The flat table row/column structure: a·0 = 0·b = 0, a·1 = a, and the
    // diagonal of inverses multiplies to 1 (spot-proofs; the full 256×256
    // equality against `Field::mul` is a unit test).
    let mut a = 0usize;
    while a < 256 {
        assert!(GF256_MUL[a][0] == 0 && GF256_MUL[0][a] == 0);
        assert!(GF256_MUL[a][1] == a as u8 && GF256_MUL[1][a] == a as u8);
        if a != 0 {
            let inv = GF256_EXP[255 - GF256_LOG[a] as usize];
            assert!(
                GF256_MUL[a][inv as usize] == 1,
                "GF256_MUL row lacks inverse product"
            );
        }
        a += 1;
    }
};

const _: () = {
    let mut a = 1usize;
    while a < 16 {
        assert!(
            GF16_EXP[GF16_LOG[a] as usize] as usize == a,
            "GF16 exp∘log ≠ id"
        );
        let la = GF16_LOG[a] as usize;
        let inv = GF16_EXP[15 - la];
        // mul through the tables: α^(log a + log inv) must be 1.
        assert!(
            GF16_EXP[la + GF16_LOG[inv as usize] as usize] == 1,
            "GF16 element without inverse"
        );
        a += 1;
    }
    let mut i = 0usize;
    while i < 15 {
        assert!(
            GF16_LOG[GF16_EXP[i] as usize] as usize == i,
            "GF16 log∘exp ≠ id"
        );
        i += 1;
    }
};

/// A GF(2^m) field defined by a primitive polynomial.
///
/// Elements are represented as integers `0..2^m` in polynomial basis.
/// Multiplication and inversion go through log/antilog tables built at
/// construction.
#[derive(Clone)]
pub struct Field {
    m: u32,
    size: usize,
    poly: u32,
    log: Vec<u16>,
    exp: Vec<u8>,
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .finish()
    }
}

impl Field {
    /// Builds GF(2^m) from a primitive polynomial given including the leading
    /// term (e.g. `0x11D` = x^8+x^4+x^3+x^2+1 for GF(256)).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `1..=8` or the polynomial is not primitive
    /// (i.e. `x` does not generate the multiplicative group).
    pub fn new(m: u32, poly: u32) -> Self {
        assert!((1..=8).contains(&m), "only GF(2^1)..GF(2^8) supported");
        let size = 1usize << m;
        let order = size - 1;
        let mut log = vec![0u16; size];
        let mut exp = vec![0u8; 2 * order];
        let mut x = 1u32;
        for i in 0..order {
            assert!(
                i == 0 || x != 1,
                "polynomial {poly:#x} is not primitive for m={m} (x has order {i})"
            );
            exp[i] = x as u8;
            exp[i + order] = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        assert_eq!(x, 1, "polynomial {poly:#x} is not primitive for m={m}");
        Self {
            m,
            size,
            poly,
            log,
            exp,
        }
    }

    /// The standard GF(256) field used by the byte-symbol Reed–Solomon
    /// codecs (primitive polynomial x^8+x^4+x^3+x^2+1). Backed by the
    /// compile-time tables proved correct by this module's `const`
    /// assertions.
    pub fn gf256() -> Self {
        Self {
            m: 8,
            size: 256,
            poly: 0x11D,
            log: GF256_LOG.to_vec(),
            exp: GF256_EXP.to_vec(),
        }
    }

    /// GF(16) with primitive polynomial x^4+x+1, for x4-device symbols.
    /// Backed by compile-time tables like [`Field::gf256`].
    pub fn gf16() -> Self {
        Self {
            m: 4,
            size: 16,
            poly: 0x13,
            log: GF16_LOG.to_vec(),
            exp: GF16_EXP.to_vec(),
        }
    }

    /// Field extension degree m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The defining primitive polynomial, including the leading term.
    pub fn poly(&self) -> u32 {
        self.poly
    }

    /// Number of field elements (2^m).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Order of the multiplicative group (2^m − 1).
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// α^i for the primitive element α = x.
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % self.order()]
    }

    /// Discrete log base α of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, a: u8) -> usize {
        assert!(a != 0, "log of zero");
        self.log[a as usize] as usize
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            // indexing: log entries are < order, so the sum is < 2*order-1
            // = exp.len(), and a u8 always indexes the 256-entry log.
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// The Reed–Solomon decoder uses this instead of [`Field::inv`] so a
    /// degenerate received word surfaces as [`crate::rs::RsError::Detected`]
    /// rather than a library panic.
    #[inline]
    pub fn try_inv(&self, a: u8) -> Option<u8> {
        if a == 0 {
            None
        } else {
            // indexing: log[a] < order for a != 0, so the difference is
            // in 1..=order < exp.len(); a u8 indexes the 256-entry log.
            Some(self.exp[self.order() - self.log[a as usize] as usize])
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// Field division `a / b`, or `None` when `b == 0`.
    #[inline]
    pub fn try_div(&self, a: u8, b: u8) -> Option<u8> {
        if a == 0 && b != 0 {
            return Some(0);
        }
        self.try_inv(b).map(|binv| self.mul(a, binv))
    }

    /// a^n by repeated table lookups.
    pub fn pow(&self, a: u8, n: usize) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        self.exp[(self.log[a as usize] as usize * n) % self.order()]
    }

    /// Evaluates a polynomial (coefficients ascending, `poly[i]·x^i`) at `x`.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// Multiplies two polynomials over the field (ascending coefficients).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<Field> {
        vec![Field::gf256(), Field::gf16()]
    }

    #[test]
    fn mul_identity_and_zero() {
        for f in fields() {
            for a in 0..f.size() as u16 {
                let a = a as u8;
                assert_eq!(f.mul(a, 1), a);
                assert_eq!(f.mul(1, a), a);
                assert_eq!(f.mul(a, 0), 0);
            }
        }
    }

    #[test]
    fn mul_commutative_associative_distributive_gf16() {
        let f = Field::gf16();
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..16u8 {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for f in fields() {
            for a in 1..f.size() as u16 {
                let a = a as u8;
                assert_eq!(f.mul(a, f.inv(a)), 1, "a={a} in GF(2^{})", f.m());
                assert_eq!(
                    f.div(f.mul(a, 7.min(f.order() as u8)), a),
                    7.min(f.order() as u8)
                );
            }
        }
    }

    #[test]
    fn try_inv_and_try_div_match_checked_variants() {
        for f in fields() {
            assert_eq!(f.try_inv(0), None);
            assert_eq!(f.try_div(5.min(f.order() as u8), 0), None);
            assert_eq!(f.try_div(0, 0), None);
            for a in 1..f.size() as u16 {
                let a = a as u8;
                assert_eq!(f.try_inv(a), Some(f.inv(a)));
                assert_eq!(f.try_div(a, a), Some(1));
                assert_eq!(f.try_div(0, a), Some(0));
            }
        }
    }

    #[test]
    fn alpha_generates_group() {
        for f in fields() {
            let mut seen = vec![false; f.size()];
            for i in 0..f.order() {
                let v = f.alpha_pow(i);
                assert!(!seen[v as usize], "α^{i} repeats in GF(2^{})", f.m());
                seen[v as usize] = true;
            }
            assert!(!seen[0]);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Field::gf256();
        for a in [1u8, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(f.pow(a, n), acc);
                acc = f.mul(acc, a);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_horner() {
        let f = Field::gf256();
        // p(x) = 3 + 2x + x^2 at x=2 : 3 ^ mul(2,2) ^ mul(1,4) = 3^4^4 = 3
        let p = [3u8, 2, 1];
        assert_eq!(f.poly_eval(&p, 2), 3);
        assert_eq!(f.poly_eval(&p, 0), 3);
        assert_eq!(f.poly_eval(&[], 5), 0);
    }

    #[test]
    fn poly_mul_degree_and_linearity() {
        let f = Field::gf256();
        let a = [1u8, 1]; // (1 + x)
        let b = [1u8, 2]; // (1 + 2x)
        let prod = f.poly_mul(&a, &b);
        assert_eq!(prod.len(), 3);
        // roots of the product are roots of either factor
        assert_eq!(f.poly_eval(&prod, 1), 0);
        assert_eq!(f.poly_eval(&prod, f.inv(2)), 0);
    }

    #[test]
    #[should_panic]
    fn non_primitive_poly_rejected() {
        // x^4 + x^3 + x^2 + x + 1 has order 5, not primitive for GF(16).
        let _ = Field::new(4, 0x1F);
    }

    #[test]
    fn log_exp_inverse() {
        let f = Field::gf256();
        for a in 1..=255u8 {
            assert_eq!(f.alpha_pow(f.log(a)), a);
        }
    }

    #[test]
    fn const_tables_match_runtime_construction() {
        // The compile-time tables must agree with Field::new's runtime
        // generation for the same polynomials.
        let runtime = Field::new(8, 0x11D);
        let shipped = Field::gf256();
        assert_eq!(runtime.log, shipped.log);
        assert_eq!(runtime.exp, shipped.exp);
        let runtime = Field::new(4, 0x13);
        let shipped = Field::gf16();
        assert_eq!(runtime.log, shipped.log);
        assert_eq!(runtime.exp, shipped.exp);
    }

    #[test]
    fn const_mul_matches_field_mul() {
        let f = Field::gf256();
        for a in [0u8, 1, 2, 0x53, 0xCA, 0xFF] {
            for b in [0u8, 1, 3, 0x8E, 0xFF] {
                assert_eq!(super::gf256_mul(a, b), f.mul(a, b));
            }
        }
    }

    #[test]
    fn flat_mul_table_matches_field_mul_exhaustively() {
        // Every entry of the 64 KiB hot-path table equals the log/antilog
        // product — the property the Reed–Solomon fast decoder relies on to
        // stay bit-identical to the reference pipeline.
        let f = Field::gf256();
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    super::GF256_MUL[a as usize][b as usize],
                    f.mul(a, b),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }
}
