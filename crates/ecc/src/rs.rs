//! Reed–Solomon codes with error *and* erasure decoding.
//!
//! Chipkill treats each DRAM device as one symbol of a Reed–Solomon code:
//! check symbols locate **and** correct a faulty device. XED turns the same
//! check symbols into pure *erasure* correctors because the catch-word
//! already identifies the faulty device (paper Section II-D3 and IX-A) —
//! which is why XED-on-Chipkill corrects two chip failures with only two
//! check symbols.
//!
//! The decoder implements the classic pipeline: syndromes → Forney
//! syndromes (to fold in known erasures) → Berlekamp–Massey → Chien search
//! → Forney magnitude algorithm, with a final re-syndrome verification.
//! A codeword with `nsym` check symbols decodes successfully whenever
//! `2·errors + erasures ≤ nsym`.

use crate::gf::{gf256_mul, Field, GF256_EXP};
use std::fmt;

/// Builds the RS generator `g(x) = Π_{j=0..L-2} (x + α^j)` over GF(256) at
/// compile time (ascending coefficients, degree `L − 1`).
const fn build_generator<const L: usize>() -> [u8; L] {
    let mut g = [0u8; L];
    g[0] = 1;
    let mut deg = 0usize;
    while deg + 1 < L {
        let root = GF256_EXP[deg]; // α^deg
                                   // Multiply the degree-`deg` polynomial by (root + x), in place from
                                   // the top so each coefficient is read before it is overwritten.
        let mut next = [0u8; L];
        let mut i = 0usize;
        while i <= deg {
            next[i] ^= gf256_mul(g[i], root);
            next[i + 1] ^= g[i];
            i += 1;
        }
        g = next;
        deg += 1;
    }
    g
}

/// Evaluates an ascending-coefficient polynomial over GF(256) at `x`
/// (const-evaluable Horner mirror of [`Field::poly_eval`]).
const fn gf256_poly_eval<const L: usize>(p: &[u8; L], x: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = L;
    while i > 0 {
        i -= 1;
        acc = gf256_mul(acc, x) ^ p[i];
    }
    acc
}

/// Generator of the Chipkill code RS(18,16): 2 check symbols, roots α^0, α^1.
pub(crate) const GEN_2: [u8; 3] = build_generator::<3>();
/// Generator of the Double-Chipkill code RS(36,32): 4 check symbols,
/// roots α^0..α^3.
pub(crate) const GEN_4: [u8; 5] = build_generator::<5>();

// ---------------------------------------------------------------------------
// Compile-time Reed–Solomon generator proof. A generator with `nsym`
// CONSECUTIVE roots α^0..α^(nsym−1) is what gives BCH-bound distance
// `nsym + 1` — i.e. Chipkill's single-symbol correction and XED's
// two-erasure correction. Checked here: both shipped generators are monic
// of the right degree, vanish at exactly the consecutive powers, and do
// NOT vanish at the next power (the roots are exactly α^0..α^(nsym−1)).
// A corrupted GF(256) table or generator coefficient fails `cargo build`.
// ---------------------------------------------------------------------------
const _: () = {
    assert!(
        GEN_2[2] == 1,
        "RS(18,16) generator must be monic of degree 2"
    );
    assert!(
        GEN_4[4] == 1,
        "RS(36,32) generator must be monic of degree 4"
    );
    let mut j = 0usize;
    while j < 2 {
        assert!(
            gf256_poly_eval(&GEN_2, GF256_EXP[j]) == 0,
            "RS(18,16): missing root α^j"
        );
        j += 1;
    }
    assert!(
        gf256_poly_eval(&GEN_2, GF256_EXP[2]) != 0,
        "RS(18,16): spurious root α^2"
    );
    let mut j = 0usize;
    while j < 4 {
        assert!(
            gf256_poly_eval(&GEN_4, GF256_EXP[j]) == 0,
            "RS(36,32): missing root α^j"
        );
        j += 1;
    }
    assert!(
        gf256_poly_eval(&GEN_4, GF256_EXP[4]) != 0,
        "RS(36,32): spurious root α^4"
    );
};

/// Error returned when a received word cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsError {
    /// More errors/erasures than the code can handle; the corruption was
    /// detected but could not be corrected.
    Detected,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::Detected => write!(f, "uncorrectable reed-solomon codeword"),
        }
    }
}

impl std::error::Error for RsError {}

/// Outcome of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The corrected full codeword (data symbols followed by check symbols).
    pub codeword: Vec<u8>,
    /// Indices of the symbols that were corrected (sorted ascending).
    pub corrected: Vec<usize>,
}

impl Decoded {
    /// The corrected data symbols (first *k* symbols of the codeword).
    pub fn data(&self, k: usize) -> &[u8] {
        &self.codeword[..k]
    }
}

/// A systematic Reed–Solomon code RS(n, k) over GF(2^m).
///
/// * `n` — total symbols per codeword (data + check), `n ≤ 2^m − 1`;
/// * `k` — data symbols; `nsym = n − k` check symbols.
///
/// ```
/// use xed_ecc::rs::ReedSolomon;
/// use xed_ecc::gf::Field;
///
/// // The Chipkill geometry: 18 chips = 16 data + 2 check symbols.
/// let rs = ReedSolomon::new(Field::gf256(), 18, 16);
/// let data: Vec<u8> = (0..16).collect();
/// let cw = rs.encode(&data);
/// let mut rx = cw.clone();
/// rx[3] ^= 0xFF; // one chip returns garbage
/// let out = rs.decode(&rx, &[]).unwrap();
/// assert_eq!(out.data(16), &data[..]);
/// assert_eq!(out.corrected, vec![3]);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: Field,
    n: usize,
    k: usize,
    /// Generator polynomial, ascending coefficients, degree `nsym`.
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Builds RS(n, k) over the given field.
    ///
    /// The generator polynomial has roots `α^0 .. α^(n-k-1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n ≤ 2^m − 1`.
    pub fn new(field: Field, n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "need 0 < k < n (got n={n}, k={k})");
        assert!(
            n <= field.order(),
            "n={n} exceeds field order {}",
            field.order()
        );
        let nsym = n - k;
        // g(x) = Π_{j=0..nsym-1} (x + α^j), ascending coefficients. The two
        // paper configurations (Chipkill nsym=2, Double-Chipkill nsym=4 over
        // GF(256)) use the compile-time generators proved correct above.
        let generator = if field.poly() == 0x11D && nsym == 2 {
            GEN_2.to_vec()
        } else if field.poly() == 0x11D && nsym == 4 {
            GEN_4.to_vec()
        } else {
            let mut g = vec![1u8];
            for j in 0..nsym {
                g = field.poly_mul(&g, &[field.alpha_pow(j), 1]);
            }
            g
        };
        Self {
            field,
            n,
            k,
            generator,
        }
    }

    /// Total codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of check symbols.
    pub fn nsym(&self) -> usize {
        self.n - self.k
    }

    /// The underlying field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Encodes `data` (length `k`) into a systematic codeword of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or a symbol exceeds the field size.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "expected {} data symbols", self.k);
        let max = (self.field.size() - 1) as u8;
        assert!(data.iter().all(|&s| s <= max), "symbol exceeds field size");
        let nsym = self.nsym();
        // Synthetic division of data(x)·x^nsym by g(x); codeword index i
        // corresponds to the coefficient of x^(n-1-i).
        let mut out = vec![0u8; self.n];
        out[..self.k].copy_from_slice(data);
        for i in 0..self.k {
            let coef = out[i];
            if coef != 0 {
                for j in 1..=nsym {
                    // generator is ascending; g[nsym] = 1 is the lead term.
                    out[i + j] ^= self.field.mul(self.generator[nsym - j], coef);
                }
            }
        }
        // The division clobbered the data prefix's trailing part? No: it only
        // touches positions > i, and we re-copy data to be explicit.
        out[..self.k].copy_from_slice(data);
        out
    }

    /// Evaluates the received word (codeword index i ↔ coefficient of
    /// x^(n-1-i)) at `x`.
    fn eval_received(&self, received: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in received {
            acc = self.field.mul(acc, x) ^ c;
        }
        acc
    }

    /// Computes the `nsym` syndromes `S_j = r(α^j)`.
    pub fn syndromes(&self, received: &[u8]) -> Vec<u8> {
        (0..self.nsym())
            .map(|j| self.eval_received(received, self.field.alpha_pow(j)))
            .collect()
    }

    /// `true` if `received` is a valid codeword.
    pub fn is_valid(&self, received: &[u8]) -> bool {
        self.syndromes(received).iter().all(|&s| s == 0)
    }

    /// Decodes a received word, correcting up to `nsym` erased symbols (at
    /// the given indices) and unknown errors, provided
    /// `2·errors + erasures ≤ nsym`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::Detected`] when the corruption exceeds the code's
    /// capability (including decoder-detected inconsistencies).
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n` or an erasure index is out of range.
    pub fn decode(&self, received: &[u8], erasures: &[usize]) -> Result<Decoded, RsError> {
        assert_eq!(received.len(), self.n, "expected {} symbols", self.n);
        for &e in erasures {
            assert!(e < self.n, "erasure index {e} out of range");
        }
        let nsym = self.nsym();
        if erasures.len() > nsym {
            return Err(RsError::Detected);
        }

        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok(Decoded {
                codeword: received.to_vec(),
                corrected: Vec::new(),
            });
        }

        let f = &self.field;
        // Erasure locator Γ(x) = Π (1 + X_i·x), X_i = α^(n-1-index).
        let mut gamma = vec![1u8];
        for &idx in erasures {
            let x = f.alpha_pow(self.n - 1 - idx);
            gamma = f.poly_mul(&gamma, &[1, x]);
        }

        // Forney syndromes: coefficients e..nsym-1 of Γ(x)·S(x).
        let e = erasures.len();
        let prod = f.poly_mul(&gamma, &synd);
        let forney: Vec<u8> = (e..nsym)
            .map(|i| prod.get(i).copied().unwrap_or(0))
            .collect();

        // Berlekamp–Massey on the Forney syndromes finds the error locator σ.
        let sigma = berlekamp_massey(f, &forney);
        let errors = sigma.len() - 1;
        if 2 * errors + e > nsym {
            return Err(RsError::Detected);
        }

        // Errata locator Ψ = σ·Γ; Chien search for its roots.
        let psi = f.poly_mul(&sigma, &gamma);
        let mut positions = Vec::new();
        for i in 0..self.n {
            let x_inv = f.alpha_pow(f.order() - ((self.n - 1 - i) % f.order()));
            if f.poly_eval(&psi, x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != psi.len() - 1 {
            return Err(RsError::Detected);
        }

        // Error evaluator Ω = (S·Ψ) mod x^nsym.
        let mut omega = f.poly_mul(&synd, &psi);
        omega.truncate(nsym);

        // Formal derivative Ψ'(x): over GF(2^m) only odd-degree terms survive.
        let mut psi_prime = vec![0u8; psi.len().saturating_sub(1)];
        for (i, slot) in psi_prime.iter_mut().enumerate() {
            if i % 2 == 0 {
                *slot = psi[i + 1];
            }
        }

        // Forney magnitudes: e_k = X_k · Ω(X_k⁻¹) / Ψ'(X_k⁻¹).
        let mut corrected_word = received.to_vec();
        for &i in &positions {
            let xk = f.alpha_pow(self.n - 1 - i);
            let xk_inv = f.inv(xk);
            let denom = f.poly_eval(&psi_prime, xk_inv);
            if denom == 0 {
                return Err(RsError::Detected);
            }
            let num = f.mul(xk, f.poly_eval(&omega, xk_inv));
            corrected_word[i] ^= f.div(num, denom);
        }

        // Verify: the corrected word must be a valid codeword.
        if !self.is_valid(&corrected_word) {
            return Err(RsError::Detected);
        }
        // Report only positions whose value actually changed (an erasure may
        // have held the correct value by luck).
        let corrected: Vec<usize> = positions
            .into_iter()
            .filter(|&i| corrected_word[i] != received[i])
            .collect();
        Ok(Decoded {
            codeword: corrected_word,
            corrected,
        })
    }
}

/// Berlekamp–Massey: smallest LFSR (as locator polynomial σ, ascending,
/// σ(0)=1) generating the syndrome sequence.
fn berlekamp_massey(f: &Field, synd: &[u8]) -> Vec<u8> {
    let mut sigma = vec![1u8];
    let mut prev = vec![1u8];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u8;
    for n in 0..synd.len() {
        let mut delta = synd[n];
        for i in 1..=l.min(sigma.len() - 1) {
            delta ^= f.mul(sigma[i], synd[n - i]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t = sigma.clone();
            let coef = f.div(delta, b);
            sigma = poly_sub_shifted(f, &sigma, &prev, coef, m);
            l = n + 1 - l;
            prev = t;
            b = delta;
            m = 1;
        } else {
            let coef = f.div(delta, b);
            sigma = poly_sub_shifted(f, &sigma, &prev, coef, m);
            m += 1;
        }
    }
    // Trim trailing zeros so sigma.len()-1 == degree.
    while sigma.len() > 1 && sigma[sigma.len() - 1] == 0 {
        sigma.pop();
    }
    sigma
}

/// Returns `a(x) + coef·x^shift·b(x)` (subtraction == addition in GF(2^m)).
fn poly_sub_shifted(f: &Field, a: &[u8], b: &[u8], coef: u8, shift: usize) -> Vec<u8> {
    let mut out = a.to_vec();
    if out.len() < b.len() + shift {
        out.resize(b.len() + shift, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] ^= f.mul(coef, bi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chipkill_rs() -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), 18, 16)
    }

    fn double_chipkill_rs() -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), 36, 32)
    }

    #[test]
    fn const_generators_match_runtime_construction() {
        // The compile-time generators must equal what the general runtime
        // product would build for the same (field, nsym).
        let f = Field::gf256();
        for (nsym, gen) in [(2usize, &super::GEN_2[..]), (4, &super::GEN_4[..])] {
            let mut g = vec![1u8];
            for j in 0..nsym {
                g = f.poly_mul(&g, &[f.alpha_pow(j), 1]);
            }
            assert_eq!(g, gen, "nsym={nsym}");
        }
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = chipkill_rs();
        let data: Vec<u8> = (100..116).collect();
        let cw = rs.encode(&data);
        assert_eq!(&cw[..16], &data[..]);
        assert!(rs.is_valid(&cw));
    }

    #[test]
    fn clean_word_decodes_unchanged() {
        let rs = chipkill_rs();
        let cw = rs.encode(&[7u8; 16]);
        let out = rs.decode(&cw, &[]).unwrap();
        assert_eq!(out.codeword, cw);
        assert!(out.corrected.is_empty());
    }

    #[test]
    fn corrects_every_single_symbol_error() {
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).map(|i| i * 3 + 1).collect();
        let cw = rs.encode(&data);
        for pos in 0..18 {
            for val in [1u8, 0x80, 0xFF] {
                let mut rx = cw.clone();
                rx[pos] ^= val;
                let out = rs.decode(&rx, &[]).unwrap();
                assert_eq!(out.codeword, cw, "pos {pos} val {val:#x}");
                assert_eq!(out.corrected, vec![pos]);
            }
        }
    }

    #[test]
    fn two_errors_exceed_single_correction() {
        // d = 3 code: two symbol errors are beyond its correction radius.
        // They must never be silently "fixed" into the wrong data; either
        // the decoder reports Detected or (rarely) lands on a different
        // valid codeword — with RS(18,16) a 2-error pattern is at distance
        // ≥ 1 from some codeword, so miscorrection to a *wrong* word is
        // possible in principle; assert we never return the original.
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).collect();
        let cw = rs.encode(&data);
        let mut rng = StdRng::seed_from_u64(42);
        let mut detected = 0;
        for _ in 0..200 {
            let mut rx = cw.clone();
            let a = rng.gen_range(0..18);
            let mut b = rng.gen_range(0..18);
            while b == a {
                b = rng.gen_range(0..18);
            }
            rx[a] ^= rng.gen_range(1..=255u8);
            rx[b] ^= rng.gen_range(1..=255u8);
            match rs.decode(&rx, &[]) {
                Err(RsError::Detected) => detected += 1,
                Ok(out) => assert_ne!(out.codeword, cw, "2-error decoded back to original?"),
            }
        }
        // The overwhelming majority must be flagged.
        assert!(
            detected >= 150,
            "only {detected}/200 double errors detected"
        );
    }

    #[test]
    fn corrects_two_erasures_with_two_check_symbols() {
        // The XED-on-Chipkill configuration (paper Section IX-A).
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).map(|i| 0xA0 | i).collect();
        let cw = rs.encode(&data);
        for a in 0..18 {
            for b in (a + 1)..18 {
                let mut rx = cw.clone();
                rx[a] = 0x5A; // catch-word-like garbage
                rx[b] = 0xC3;
                let out = rs.decode(&rx, &[a, b]).unwrap();
                assert_eq!(out.codeword, cw, "erasures ({a},{b})");
            }
        }
    }

    #[test]
    fn double_chipkill_corrects_two_errors() {
        let rs = double_chipkill_rs();
        let data: Vec<u8> = (0..32).map(|i| i ^ 0x55).collect();
        let cw = rs.encode(&data);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let mut rx = cw.clone();
            let a = rng.gen_range(0..36);
            let mut b = rng.gen_range(0..36);
            while b == a {
                b = rng.gen_range(0..36);
            }
            rx[a] ^= rng.gen_range(1..=255u8);
            rx[b] ^= rng.gen_range(1..=255u8);
            let out = rs.decode(&rx, &[]).unwrap();
            assert_eq!(out.codeword, cw);
            let mut exp = vec![a, b];
            exp.sort_unstable();
            assert_eq!(out.corrected, exp);
        }
    }

    #[test]
    fn double_chipkill_mixed_error_and_erasure() {
        // 1 erasure + 1 unknown error: needs nsym ≥ 1 + 2 = 3 ≤ 4. ✓
        let rs = double_chipkill_rs();
        let cw = rs.encode(&[9u8; 32]);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let mut rx = cw.clone();
            let er = rng.gen_range(0..36);
            let mut ep = rng.gen_range(0..36);
            while ep == er {
                ep = rng.gen_range(0..36);
            }
            rx[er] = rng.gen();
            rx[ep] ^= rng.gen_range(1..=255u8);
            let out = rs.decode(&rx, &[er]).unwrap();
            assert_eq!(out.codeword, cw);
        }
    }

    #[test]
    fn three_errors_overwhelm_double_chipkill() {
        let rs = double_chipkill_rs();
        let cw = rs.encode(&[1u8; 32]);
        let mut rng = StdRng::seed_from_u64(13);
        let mut detected = 0;
        for _ in 0..200 {
            let mut rx = cw.clone();
            let mut idx: Vec<usize> = (0..36).collect();
            for _ in 0..3 {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] ^= rng.gen_range(1..=255u8);
            }
            match rs.decode(&rx, &[]) {
                Err(RsError::Detected) => detected += 1,
                Ok(out) => assert_ne!(out.codeword, cw),
            }
        }
        assert!(
            detected >= 150,
            "only {detected}/200 triple errors detected"
        );
    }

    #[test]
    fn gf16_code_roundtrip() {
        // A small x4-symbol code within GF(16): RS(15, 11), d=5.
        let rs = ReedSolomon::new(Field::gf16(), 15, 11);
        let data: Vec<u8> = (0..11).map(|i| i % 16).collect();
        let cw = rs.encode(&data);
        assert!(rs.is_valid(&cw));
        let mut rx = cw.clone();
        rx[2] ^= 0xF;
        rx[9] ^= 0x3;
        let out = rs.decode(&rx, &[]).unwrap();
        assert_eq!(out.codeword, cw);
    }

    #[test]
    fn erasures_beyond_capability_detected() {
        let rs = chipkill_rs();
        let cw = rs.encode(&[3u8; 16]);
        let mut rx = cw.clone();
        rx[0] ^= 1;
        rx[1] ^= 2;
        rx[2] ^= 3;
        assert_eq!(rs.decode(&rx, &[0, 1, 2]), Err(RsError::Detected));
    }

    #[test]
    #[should_panic]
    fn wrong_length_panics() {
        chipkill_rs().decode(&[0u8; 17], &[]).unwrap();
    }

    #[test]
    fn full_random_errata_sweep() {
        // Property: for random data, any (errors, erasures) combination with
        // 2e + f ≤ nsym decodes to the original codeword.
        let rs = double_chipkill_rs(); // nsym = 4
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..300 {
            let data: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let cw = rs.encode(&data);
            let combos: &[(usize, usize)] = &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
            ];
            let (errors, erasures) = combos[trial % combos.len()];
            let mut rx = cw.clone();
            let mut idx: Vec<usize> = (0..36).collect();
            let mut erased = Vec::new();
            for _ in 0..erasures {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] = rng.gen(); // may coincidentally be correct
                erased.push(pos);
            }
            for _ in 0..errors {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] ^= rng.gen_range(1..=255u8);
            }
            let out = rs
                .decode(&rx, &erased)
                .unwrap_or_else(|e| panic!("trial {trial} ({errors}e+{erasures}f): {e}"));
            assert_eq!(out.codeword, cw, "trial {trial}");
        }
    }
}
