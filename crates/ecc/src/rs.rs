//! Reed–Solomon codes with error *and* erasure decoding.
//!
//! Chipkill treats each DRAM device as one symbol of a Reed–Solomon code:
//! check symbols locate **and** correct a faulty device. XED turns the same
//! check symbols into pure *erasure* correctors because the catch-word
//! already identifies the faulty device (paper Section II-D3 and IX-A) —
//! which is why XED-on-Chipkill corrects two chip failures with only two
//! check symbols.
//!
//! The decoder implements the classic pipeline: syndromes → Forney
//! syndromes (to fold in known erasures) → Berlekamp–Massey → Chien search
//! → Forney magnitude algorithm, with a final re-syndrome verification.
//! A codeword with `nsym` check symbols decodes successfully whenever
//! `2·errors + erasures ≤ nsym`.

use crate::gf::{gf256_mul, Field, GF256_EXP, GF256_MUL};
use std::fmt;

/// Builds the RS generator `g(x) = Π_{j=0..L-2} (x + α^j)` over GF(256) at
/// compile time (ascending coefficients, degree `L − 1`).
const fn build_generator<const L: usize>() -> [u8; L] {
    let mut g = [0u8; L];
    g[0] = 1;
    let mut deg = 0usize;
    while deg + 1 < L {
        let root = GF256_EXP[deg]; // α^deg
                                   // Multiply the degree-`deg` polynomial by (root + x), in place from
                                   // the top so each coefficient is read before it is overwritten.
        let mut next = [0u8; L];
        let mut i = 0usize;
        while i <= deg {
            next[i] ^= gf256_mul(g[i], root);
            next[i + 1] ^= g[i];
            i += 1;
        }
        g = next;
        deg += 1;
    }
    g
}

/// Evaluates an ascending-coefficient polynomial over GF(256) at `x`
/// (const-evaluable Horner mirror of [`Field::poly_eval`]).
const fn gf256_poly_eval<const L: usize>(p: &[u8; L], x: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = L;
    while i > 0 {
        i -= 1;
        acc = gf256_mul(acc, x) ^ p[i];
    }
    acc
}

/// Generator of the Chipkill code RS(18,16): 2 check symbols, roots α^0, α^1.
pub(crate) const GEN_2: [u8; 3] = build_generator::<3>();
/// Generator of the Double-Chipkill code RS(36,32): 4 check symbols,
/// roots α^0..α^3.
pub(crate) const GEN_4: [u8; 5] = build_generator::<5>();

// ---------------------------------------------------------------------------
// Compile-time Reed–Solomon generator proof. A generator with `nsym`
// CONSECUTIVE roots α^0..α^(nsym−1) is what gives BCH-bound distance
// `nsym + 1` — i.e. Chipkill's single-symbol correction and XED's
// two-erasure correction. Checked here: both shipped generators are monic
// of the right degree, vanish at exactly the consecutive powers, and do
// NOT vanish at the next power (the roots are exactly α^0..α^(nsym−1)).
// A corrupted GF(256) table or generator coefficient fails `cargo build`.
// ---------------------------------------------------------------------------
const _: () = {
    assert!(
        GEN_2[2] == 1,
        "RS(18,16) generator must be monic of degree 2"
    );
    assert!(
        GEN_4[4] == 1,
        "RS(36,32) generator must be monic of degree 4"
    );
    let mut j = 0usize;
    while j < 2 {
        assert!(
            gf256_poly_eval(&GEN_2, GF256_EXP[j]) == 0,
            "RS(18,16): missing root α^j"
        );
        j += 1;
    }
    assert!(
        gf256_poly_eval(&GEN_2, GF256_EXP[2]) != 0,
        "RS(18,16): spurious root α^2"
    );
    let mut j = 0usize;
    while j < 4 {
        assert!(
            gf256_poly_eval(&GEN_4, GF256_EXP[j]) == 0,
            "RS(36,32): missing root α^j"
        );
        j += 1;
    }
    assert!(
        gf256_poly_eval(&GEN_4, GF256_EXP[4]) != 0,
        "RS(36,32): spurious root α^4"
    );
};

/// Error returned when a received word cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsError {
    /// More errors/erasures than the code can handle; the corruption was
    /// detected but could not be corrected.
    Detected,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::Detected => write!(f, "uncorrectable reed-solomon codeword"),
        }
    }
}

impl std::error::Error for RsError {}

/// Outcome of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The corrected full codeword (data symbols followed by check symbols).
    pub codeword: Vec<u8>,
    /// Indices of the symbols that were corrected (sorted ascending).
    pub corrected: Vec<usize>,
}

impl Decoded {
    /// The corrected data symbols (first *k* symbols of the codeword).
    pub fn data(&self, k: usize) -> &[u8] {
        // indexing: callers pass the code's k < n == codeword length.
        &self.codeword[..k]
    }
}

/// Maximum codeword length (symbols) supported by the allocation-free
/// decoder. RS(36,32) Double-Chipkill is the largest configuration in the
/// repo; every scratch buffer is sized for it at compile time.
pub const MAX_N: usize = 36;
/// Maximum number of check symbols (Double-Chipkill and RS(15,11) use 4).
pub const MAX_NSYM: usize = 4;
/// Capacity of the polynomial work buffers. Berlekamp–Massey keeps σ at
/// length ≤ `nsym + 1` (induction: each update yields
/// `max(len, prev_len + shift) ≤ n + 2`), and the errata locator
/// Ψ = σ·Γ has length ≤ `2·nsym + 1`; one shared capacity covers both.
const POLY_CAP: usize = 2 * MAX_NSYM + 1;

/// A systematic Reed–Solomon code RS(n, k) over GF(2^m).
///
/// * `n` — total symbols per codeword (data + check), `n ≤ 2^m − 1` and
///   `n ≤ MAX_N`;
/// * `k` — data symbols; `nsym = n − k ≤ MAX_NSYM` check symbols.
///
/// Two decode paths exist:
///
/// * [`ReedSolomon::decode_with`] — the allocation-free hot path: all
///   intermediate polynomials live in a caller-owned [`RsScratch`] and the
///   result borrows from it. Used by the memory-controller models to decode
///   whole cache lines with zero heap traffic.
/// * [`ReedSolomon::decode`] (in [`crate::reference`]) — the original
///   `Vec`-returning pipeline, kept verbatim as the differential-testing
///   reference and as a convenience API.
///
/// ```
/// use xed_ecc::rs::{ReedSolomon, RsScratch};
/// use xed_ecc::gf::Field;
///
/// // The Chipkill geometry: 18 chips = 16 data + 2 check symbols.
/// let rs = ReedSolomon::new(Field::gf256(), 18, 16);
/// let data: Vec<u8> = (0..16).collect();
/// let mut cw = [0u8; 18];
/// rs.encode_into(&data, &mut cw);
/// let mut rx = cw;
/// rx[3] ^= 0xFF; // one chip returns garbage
/// let mut scratch = RsScratch::new();
/// let out = rs.decode_with(&rx, &[], &mut scratch).unwrap();
/// assert_eq!(out.data(16), &data[..]);
/// assert_eq!(out.corrected, &[3]);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: Field,
    n: usize,
    k: usize,
    /// Generator polynomial, ascending coefficients; `generator[..=nsym]`
    /// is the live prefix (degree `nsym`).
    generator: [u8; MAX_NSYM + 1],
    /// `true` when the field is the standard GF(256): multiplications then
    /// go through the flat compile-time [`GF256_MUL`] table (one load, no
    /// zero branch) instead of the log/antilog walk.
    fast256: bool,
    /// `synd_const[j][i] = α^(j·(n−1−i))`: the weight of received symbol
    /// `i` in syndrome `S_j`. Lets the syndrome be computed as an XOR fold
    /// of independent products — the products pipeline, instead of
    /// serializing through a Horner dependency chain.
    synd_const: [[u8; MAX_N]; MAX_NSYM],
    /// X_i = α^(n−1−i) per codeword position (erasure and Forney locators).
    x_pow: [u8; MAX_N],
    /// X_i⁻¹ per codeword position (Chien-search evaluation points).
    x_inv_pow: [u8; MAX_N],
}

/// Reusable scratch buffers for [`ReedSolomon::decode_with`].
///
/// Every intermediate of the decode pipeline — syndromes, erasure locator Γ,
/// Forney syndromes, the Berlekamp–Massey σ/work polynomials, the errata
/// locator Ψ, and the corrected codeword itself — lives in these fixed
/// arrays, sized at compile time for the largest code in the repo
/// ([`MAX_N`]/[`MAX_NSYM`]). One scratch decodes any number of words; the
/// controllers hold one per instance and decode whole cache lines without
/// touching the heap.
#[derive(Debug, Clone)]
pub struct RsScratch {
    /// Syndromes S_j = r(α^j).
    synd: [u8; MAX_NSYM],
    /// Erasure locator Γ, ascending coefficients.
    gamma: [u8; MAX_NSYM + 1],
    /// Forney (erasure-adjusted) syndromes.
    forney: [u8; MAX_NSYM],
    /// Berlekamp–Massey σ.
    sigma: [u8; POLY_CAP],
    /// Berlekamp–Massey previous-σ copy (B polynomial).
    prev: [u8; POLY_CAP],
    /// Berlekamp–Massey swap buffer.
    tmp: [u8; POLY_CAP],
    /// Errata locator Ψ = σ·Γ.
    psi: [u8; POLY_CAP],
    /// The corrected codeword (borrowed by [`DecodedRef`]).
    codeword: [u8; MAX_N],
    /// Corrected symbol indices (borrowed by [`DecodedRef`]).
    corrected: [usize; MAX_NSYM],
}

impl RsScratch {
    /// A zeroed scratch, ready for any code with `n ≤ MAX_N`.
    pub fn new() -> Self {
        Self {
            synd: [0; MAX_NSYM],
            gamma: [0; MAX_NSYM + 1],
            forney: [0; MAX_NSYM],
            sigma: [0; POLY_CAP],
            prev: [0; POLY_CAP],
            tmp: [0; POLY_CAP],
            psi: [0; POLY_CAP],
            codeword: [0; MAX_N],
            corrected: [0; MAX_NSYM],
        }
    }
}

impl Default for RsScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a successful [`ReedSolomon::decode_with`], borrowing the
/// corrected codeword from the caller's [`RsScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedRef<'a> {
    /// The corrected full codeword (data symbols followed by check symbols).
    pub codeword: &'a [u8],
    /// Indices of the symbols that were corrected (sorted ascending).
    pub corrected: &'a [usize],
}

impl DecodedRef<'_> {
    /// The corrected data symbols (first *k* symbols of the codeword).
    pub fn data(&self, k: usize) -> &[u8] {
        // indexing: callers pass the code's k < n == codeword length.
        &self.codeword[..k]
    }
}

impl ReedSolomon {
    /// Builds RS(n, k) over the given field.
    ///
    /// The generator polynomial has roots `α^0 .. α^(n-k-1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n ≤ 2^m − 1`, `n ≤ MAX_N`, and
    /// `n − k ≤ MAX_NSYM`.
    pub fn new(field: Field, n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "need 0 < k < n (got n={n}, k={k})");
        assert!(
            n <= field.order(),
            "n={n} exceeds field order {}",
            field.order()
        );
        let nsym = n - k;
        assert!(
            n <= MAX_N && nsym <= MAX_NSYM,
            "RS({n},{k}) exceeds the fixed decoder capacity (MAX_N={MAX_N}, MAX_NSYM={MAX_NSYM})"
        );
        // g(x) = Π_{j=0..nsym-1} (x + α^j), ascending coefficients. The two
        // paper configurations (Chipkill nsym=2, Double-Chipkill nsym=4 over
        // GF(256)) use the compile-time generators proved correct above.
        let mut generator = [0u8; MAX_NSYM + 1];
        if field.poly() == 0x11D && nsym == 2 {
            generator[..3].copy_from_slice(&GEN_2);
        } else if field.poly() == 0x11D && nsym == 4 {
            generator.copy_from_slice(&GEN_4);
        } else {
            generator[0] = 1;
            for j in 0..nsym {
                // Multiply by (root + x), in place from the top so each
                // coefficient is read before it is overwritten:
                // g[i] ← root·g[i] + g[i−1].
                let root = field.alpha_pow(j);
                let mut i = j + 1;
                loop {
                    let low = if i > 0 { generator[i - 1] } else { 0 };
                    generator[i] = field.mul(generator[i], root) ^ low;
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                }
            }
        }
        // Position/root power tables: computing α^j once per code instead
        // of once per decoded word removes the `% order` and bounds walk
        // from the Chien/Forney inner loops.
        let fast256 = field.m() == 8 && field.poly() == 0x11D;
        let mut synd_const = [[0u8; MAX_N]; MAX_NSYM];
        for (j, row) in synd_const.iter_mut().enumerate().take(nsym) {
            for (i, w) in row.iter_mut().enumerate().take(n) {
                *w = field.alpha_pow(j * (n - 1 - i));
            }
        }
        let mut x_pow = [0u8; MAX_N];
        let mut x_inv_pow = [0u8; MAX_N];
        for i in 0..n {
            x_pow[i] = field.alpha_pow(n - 1 - i);
            x_inv_pow[i] = field.alpha_pow(field.order() - ((n - 1 - i) % field.order()));
        }
        Self {
            field,
            n,
            k,
            generator,
            fast256,
            synd_const,
            x_pow,
            x_inv_pow,
        }
    }

    /// Field multiplication on the decode hot path: a single flat-table
    /// load for GF(256), the generic log/antilog product otherwise.
    /// Entry-for-entry identical to [`Field::mul`] (proved by `gf`'s
    /// compile-time assertions and exhaustive unit test).
    #[inline(always)]
    fn fmul(&self, a: u8, b: u8) -> u8 {
        if self.fast256 {
            // indexing: u8 operands into a 256x256 table.
            GF256_MUL[a as usize][b as usize]
        } else {
            self.field.mul(a, b)
        }
    }

    /// Horner evaluation of an ascending-coefficient polynomial through
    /// [`ReedSolomon::fmul`].
    #[inline]
    fn poly_eval_fast(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.fmul(acc, x) ^ c;
        }
        acc
    }

    /// Total codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of check symbols.
    pub fn nsym(&self) -> usize {
        self.n - self.k
    }

    /// The underlying field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Generator polynomial (ascending coefficients, degree `nsym`).
    pub(crate) fn generator(&self) -> &[u8] {
        &self.generator[..=self.nsym()]
    }

    /// Encodes `data` (length `k`) into `out` (length `n`) without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`, `out.len() != n`, or a symbol exceeds
    /// the field size.
    pub fn encode_into(&self, data: &[u8], out: &mut [u8]) {
        assert_eq!(data.len(), self.k, "expected {} data symbols", self.k);
        assert_eq!(out.len(), self.n, "expected {} codeword symbols", self.n);
        let max = (self.field.size() - 1) as u8;
        assert!(data.iter().all(|&s| s <= max), "symbol exceeds field size");
        let nsym = self.nsym();
        // Synthetic division of data(x)·x^nsym by g(x); codeword index i
        // corresponds to the coefficient of x^(n-1-i).
        out[..self.k].copy_from_slice(data);
        out[self.k..].fill(0);
        for i in 0..self.k {
            let coef = out[i];
            if coef != 0 {
                for j in 1..=nsym {
                    // generator is ascending; g[nsym] = 1 is the lead term.
                    out[i + j] ^= self.fmul(self.generator[nsym - j], coef);
                }
            }
        }
        // The division clobbered part of the data prefix; restore it.
        out[..self.k].copy_from_slice(data);
    }

    /// Syndrome `S_j = r(α^j) = Σ_i r[i]·α^(j·(n−1−i))`, computed as an XOR
    /// fold of independent [`GF256_MUL`]-table products against the
    /// precomputed position weights. Evaluates the same field element as
    /// the Horner walk the reference pipeline uses (`Σ` reassociated — GF
    /// addition is XOR, so the result is bit-identical), but the products
    /// carry no loop-carried dependency and pipeline freely. `S_0` is the
    /// plain XOR of all symbols (every weight is α^0 = 1).
    #[inline]
    fn syndrome_j(&self, received: &[u8], j: usize) -> u8 {
        if j == 0 {
            return received.iter().fold(0u8, |acc, &c| acc ^ c);
        }
        // indexing: j < nsym <= MAX_NSYM rows; received.len() == n <= MAX_N.
        let weights = &self.synd_const[j][..received.len()];
        let mut acc = 0u8;
        for (&c, &w) in received.iter().zip(weights) {
            acc ^= self.fmul(c, w);
        }
        acc
    }

    /// `true` if `received` is a valid codeword.
    pub fn is_valid(&self, received: &[u8]) -> bool {
        (0..self.nsym()).all(|j| self.syndrome_j(received, j) == 0)
    }

    /// Decodes a received word into caller-owned scratch, correcting up to
    /// `nsym` erased symbols (at the given indices) and unknown errors,
    /// provided `2·errors + erasures ≤ nsym`. Allocation-free: the result
    /// borrows the corrected codeword from `scratch`.
    ///
    /// Bit-identical to the reference pipeline ([`ReedSolomon::decode`]);
    /// the equivalence is asserted exhaustively by `tests/`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::Detected`] when the corruption exceeds the code's
    /// capability (including decoder-detected inconsistencies and degenerate
    /// field divisions — this path never panics on received data).
    ///
    /// A malformed call (`received.len() != n` or an out-of-range
    /// erasure index) is a caller bug: debug builds assert, release
    /// builds report it as [`RsError::Detected`] so the decode hot path
    /// stays panic-free end to end.
    pub fn decode_with<'s>(
        &self,
        received: &[u8],
        erasures: &[usize],
        scratch: &'s mut RsScratch,
    ) -> Result<DecodedRef<'s>, RsError> {
        debug_assert_eq!(received.len(), self.n, "expected {} symbols", self.n);
        debug_assert!(
            erasures.iter().all(|&e| e < self.n),
            "erasure index out of range"
        );
        if received.len() != self.n || erasures.iter().any(|&e| e >= self.n) {
            return Err(RsError::Detected);
        }
        let nsym = self.nsym();
        if erasures.len() > nsym {
            return Err(RsError::Detected);
        }
        let f = &self.field;
        let s = scratch;

        // Syndromes S_j = r(α^j); all-zero ⟺ already a valid codeword.
        let mut any = 0u8;
        for j in 0..nsym {
            let v = self.syndrome_j(received, j);
            // indexing: j < nsym <= MAX_NSYM == synd.len().
            s.synd[j] = v;
            any |= v;
        }
        // indexing: n <= MAX_N == codeword.len() (checked at build).
        s.codeword[..self.n].copy_from_slice(received);
        if any == 0 {
            return Ok(DecodedRef {
                // indexing: n <= MAX_N; `..0` is the empty prefix.
                codeword: &s.codeword[..self.n],
                corrected: &s.corrected[..0],
            });
        }

        // Erasure locator Γ(x) = Π (1 + X_i·x), X_i = α^(n-1-index), built
        // in place: g[i] ← g[i] + X·g[i−1], top-down.
        let e = erasures.len();
        s.gamma.fill(0);
        s.gamma[0] = 1;
        let mut gamma_len = 1usize;
        for &idx in erasures {
            // indexing: idx < n <= MAX_N (validated at entry).
            let x = self.x_pow[idx];
            let mut i = gamma_len;
            while i >= 1 {
                // indexing: 1 <= i <= gamma_len <= e <= nsym < gamma.len().
                s.gamma[i] ^= self.fmul(x, s.gamma[i - 1]);
                i -= 1;
            }
            gamma_len += 1;
        }

        // Forney syndromes: coefficients e..nsym-1 of Γ(x)·S(x).
        for i in e..nsym {
            let mut v = 0u8;
            // indexing: gamma_len == e + 1 <= nsym + 1 == gamma.len().
            for (g, &gc) in s.gamma[..gamma_len].iter().enumerate() {
                if g <= i && i - g < nsym {
                    // indexing: guarded above, i - g < nsym == synd.len().
                    v ^= self.fmul(gc, s.synd[i - g]);
                }
            }
            // indexing: i - e < nsym - e <= forney.len().
            s.forney[i - e] = v;
        }
        let forney_len = nsym - e;

        // Berlekamp–Massey on the Forney syndromes finds the error locator σ.
        let sigma_len = self
            .berlekamp_massey_into(
                // indexing: forney_len = nsym - e <= MAX_NSYM == forney.len().
                &s.forney[..forney_len],
                &mut s.sigma,
                &mut s.prev,
                &mut s.tmp,
            )
            .ok_or(RsError::Detected)?;
        let errors = sigma_len - 1;
        if 2 * errors + e > nsym {
            return Err(RsError::Detected);
        }

        // Errata locator Ψ = σ·Γ (degree errors + e ≤ nsym after the check
        // above; Ψ(0) = σ(0)·Γ(0) = 1, so Ψ ≠ 0 and has ≤ deg Ψ roots).
        let psi_len = sigma_len + gamma_len - 1;
        // indexing: psi_len <= nsym + 1 <= POLY_CAP == psi.len(), since
        // sigma_len <= errors + 1, gamma_len == e + 1, 2*errors + e <= nsym.
        s.psi[..psi_len].fill(0);
        for i in 0..sigma_len {
            // indexing: i < sigma_len <= sigma.len().
            let si = s.sigma[i];
            if si == 0 {
                continue;
            }
            for j in 0..gamma_len {
                // indexing: i + j <= psi_len - 1; j < gamma_len.
                s.psi[i + j] ^= self.fmul(si, s.gamma[j]);
            }
        }

        // Chien search for Ψ's roots among the codeword positions. Ψ is
        // tiny (degree ≤ nsym), so the common degrees get straight-line
        // evaluations instead of a slice-Horner loop.
        let mut positions = [0usize; MAX_NSYM];
        let mut npos = 0usize;
        for i in 0..self.n {
            // indexing: i < n <= MAX_N == x_inv_pow.len().
            let x_inv = self.x_inv_pow[i];
            let v = match psi_len {
                2 => s.psi[0] ^ self.fmul(s.psi[1], x_inv),
                3 => s.psi[0] ^ self.fmul(s.psi[1] ^ self.fmul(s.psi[2], x_inv), x_inv),
                // indexing: psi_len <= POLY_CAP == psi.len() (above).
                _ => self.poly_eval_fast(&s.psi[..psi_len], x_inv),
            };
            if v == 0 {
                if npos == MAX_NSYM {
                    return Err(RsError::Detected);
                }
                // indexing: npos < MAX_NSYM checked just above.
                positions[npos] = i;
                npos += 1;
            }
        }
        if npos != psi_len - 1 {
            return Err(RsError::Detected);
        }

        // Error evaluator Ω = (S·Ψ) mod x^nsym.
        let mut omega = [0u8; MAX_NSYM];
        for (i, slot) in omega.iter_mut().enumerate().take(nsym) {
            let mut v = 0u8;
            let j_lo = (i + 1).saturating_sub(psi_len);
            for j in j_lo..=i.min(nsym - 1) {
                // indexing: j < nsym == synd.len(); i - j < psi_len.
                v ^= self.fmul(s.synd[j], s.psi[i - j]);
            }
            *slot = v;
        }

        // Formal derivative Ψ'(x): over GF(2^m) only odd-degree terms
        // survive.
        let mut psi_prime = [0u8; POLY_CAP];
        let pp_len = psi_len - 1;
        let mut i = 0usize;
        while i < pp_len {
            // indexing: i + 1 < psi_len <= POLY_CAP == both lengths.
            psi_prime[i] = s.psi[i + 1];
            i += 2;
        }

        // Forney magnitudes: e_k = X_k · Ω(X_k⁻¹) / Ψ'(X_k⁻¹). Degenerate
        // divisions surface as Detected instead of panicking.
        let mut mags = [0u8; MAX_NSYM];
        // indexing: npos <= MAX_NSYM == positions.len() == mags.len().
        for (p, &i) in positions[..npos].iter().enumerate() {
            let xk = self.x_pow[i]; // indexing: i < n <= MAX_N.
            let xk_inv = f.try_inv(xk).ok_or(RsError::Detected)?;
            // indexing: pp_len < POLY_CAP; nsym <= MAX_NSYM == omega.len().
            let denom = self.poly_eval_fast(&psi_prime[..pp_len], xk_inv);
            let num = self.fmul(xk, self.poly_eval_fast(&omega[..nsym], xk_inv));
            let mag = f.try_div(num, denom).ok_or(RsError::Detected)?;
            // indexing: p < npos <= mags.len(); i < n <= codeword.len().
            mags[p] = mag;
            s.codeword[i] ^= mag;
        }

        // Verify: the corrected word must be a valid codeword. By syndrome
        // linearity, S_j(corrected) = S_j(received) ^ S_j(error pattern) =
        // S_j ^ Σ_k mag_k·α^(j·(n−1−pos_k)) — the same field elements the
        // reference computes by re-walking the whole corrected word, at
        // npos·nsym products instead of n·nsym.
        let mut residual = 0u8;
        for j in 0..nsym {
            // indexing: j < nsym == synd.len(); npos <= positions.len().
            let mut v = s.synd[j];
            for (p, &i) in positions[..npos].iter().enumerate() {
                // indexing: p < npos; j < MAX_NSYM rows; i < n <= MAX_N.
                v ^= self.fmul(mags[p], self.synd_const[j][i]);
            }
            residual |= v;
        }
        if residual != 0 {
            return Err(RsError::Detected);
        }
        // Report only positions whose value actually changed (an erasure may
        // have held the correct value by luck).
        let mut ncorr = 0usize;
        // indexing: npos <= MAX_NSYM == corrected.len().
        for &i in &positions[..npos] {
            // indexing: each position i < n bounds codeword and received.
            if s.codeword[i] != received[i] {
                // indexing: ncorr <= npos <= MAX_NSYM; i < n (above).
                s.corrected[ncorr] = i;
                ncorr += 1;
            }
        }
        Ok(DecodedRef {
            // indexing: n <= MAX_N; ncorr <= npos <= corrected.len().
            codeword: &s.codeword[..self.n],
            corrected: &s.corrected[..ncorr],
        })
    }

    /// Allocation-free Berlekamp–Massey: smallest LFSR (as locator
    /// polynomial σ, ascending, σ(0)=1) generating the syndrome sequence.
    /// Writes σ into `sigma` and returns its trimmed length; `prev` and
    /// `tmp` are work buffers. Returns `None` on a degenerate division
    /// (never for in-capability words; the caller maps it to
    /// [`RsError::Detected`]).
    fn berlekamp_massey_into(
        &self,
        synd: &[u8],
        sigma: &mut [u8; POLY_CAP],
        prev: &mut [u8; POLY_CAP],
        tmp: &mut [u8; POLY_CAP],
    ) -> Option<usize> {
        let f = &self.field;
        sigma.fill(0);
        prev.fill(0);
        sigma[0] = 1;
        prev[0] = 1;
        let mut sigma_len = 1usize;
        let mut prev_len = 1usize;
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..synd.len() {
            // indexing: n < synd.len() by the loop bound.
            let mut delta = synd[n];
            for i in 1..=l.min(sigma_len - 1) {
                // indexing: i <= sigma_len - 1; i <= l <= n keeps n - i >= 0.
                delta ^= self.fmul(sigma[i], synd[n - i]);
            }
            if delta == 0 {
                m += 1;
                continue;
            }
            let coef = f.try_div(delta, b)?;
            // σ ← σ + coef·x^m·prev (lengths stay ≤ n + 2 ≤ POLY_CAP).
            let new_len = sigma_len.max(prev_len + m);
            debug_assert!(new_len <= POLY_CAP);
            if 2 * l <= n {
                // indexing: sigma_len <= new_len <= POLY_CAP (asserted).
                tmp[..sigma_len].copy_from_slice(&sigma[..sigma_len]);
                let tmp_len = sigma_len;
                for i in 0..prev_len {
                    // indexing: i + m < prev_len + m <= new_len <= POLY_CAP.
                    sigma[i + m] ^= self.fmul(coef, prev[i]);
                }
                sigma_len = new_len;
                l = n + 1 - l;
                // indexing: tmp_len <= POLY_CAP (copy above).
                prev[..tmp_len].copy_from_slice(&tmp[..tmp_len]);
                prev_len = tmp_len;
                b = delta;
                m = 1;
            } else {
                for i in 0..prev_len {
                    // indexing: i + m < prev_len + m <= new_len <= POLY_CAP.
                    sigma[i + m] ^= self.fmul(coef, prev[i]);
                }
                sigma_len = new_len;
                m += 1;
            }
        }
        // Trim trailing zeros so sigma_len - 1 == degree.
        // indexing: 1 <= sigma_len <= POLY_CAP throughout the trim.
        while sigma_len > 1 && sigma[sigma_len - 1] == 0 {
            sigma_len -= 1;
        }
        Some(sigma_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chipkill_rs() -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), 18, 16)
    }

    fn double_chipkill_rs() -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), 36, 32)
    }

    #[test]
    fn const_generators_match_runtime_construction() {
        // The compile-time generators must equal what the general runtime
        // product would build for the same (field, nsym).
        let f = Field::gf256();
        for (nsym, gen) in [(2usize, &super::GEN_2[..]), (4, &super::GEN_4[..])] {
            let mut g = vec![1u8];
            for j in 0..nsym {
                g = f.poly_mul(&g, &[f.alpha_pow(j), 1]);
            }
            assert_eq!(g, gen, "nsym={nsym}");
        }
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = chipkill_rs();
        let data: Vec<u8> = (100..116).collect();
        let cw = rs.encode(&data);
        assert_eq!(&cw[..16], &data[..]);
        assert!(rs.is_valid(&cw));
    }

    #[test]
    fn clean_word_decodes_unchanged() {
        let rs = chipkill_rs();
        let cw = rs.encode(&[7u8; 16]);
        let out = rs.decode(&cw, &[]).unwrap();
        assert_eq!(out.codeword, cw);
        assert!(out.corrected.is_empty());
    }

    #[test]
    fn corrects_every_single_symbol_error() {
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).map(|i| i * 3 + 1).collect();
        let cw = rs.encode(&data);
        for pos in 0..18 {
            for val in [1u8, 0x80, 0xFF] {
                let mut rx = cw.clone();
                rx[pos] ^= val;
                let out = rs.decode(&rx, &[]).unwrap();
                assert_eq!(out.codeword, cw, "pos {pos} val {val:#x}");
                assert_eq!(out.corrected, vec![pos]);
            }
        }
    }

    #[test]
    fn two_errors_exceed_single_correction() {
        // d = 3 code: two symbol errors are beyond its correction radius.
        // They must never be silently "fixed" into the wrong data; either
        // the decoder reports Detected or (rarely) lands on a different
        // valid codeword — with RS(18,16) a 2-error pattern is at distance
        // ≥ 1 from some codeword, so miscorrection to a *wrong* word is
        // possible in principle; assert we never return the original.
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).collect();
        let cw = rs.encode(&data);
        let mut rng = StdRng::seed_from_u64(42);
        let mut detected = 0;
        for _ in 0..200 {
            let mut rx = cw.clone();
            let a = rng.gen_range(0..18);
            let mut b = rng.gen_range(0..18);
            while b == a {
                b = rng.gen_range(0..18);
            }
            rx[a] ^= rng.gen_range(1..=255u8);
            rx[b] ^= rng.gen_range(1..=255u8);
            match rs.decode(&rx, &[]) {
                Err(RsError::Detected) => detected += 1,
                Ok(out) => assert_ne!(out.codeword, cw, "2-error decoded back to original?"),
            }
        }
        // The overwhelming majority must be flagged.
        assert!(
            detected >= 150,
            "only {detected}/200 double errors detected"
        );
    }

    #[test]
    fn corrects_two_erasures_with_two_check_symbols() {
        // The XED-on-Chipkill configuration (paper Section IX-A).
        let rs = chipkill_rs();
        let data: Vec<u8> = (0..16).map(|i| 0xA0 | i).collect();
        let cw = rs.encode(&data);
        for a in 0..18 {
            for b in (a + 1)..18 {
                let mut rx = cw.clone();
                rx[a] = 0x5A; // catch-word-like garbage
                rx[b] = 0xC3;
                let out = rs.decode(&rx, &[a, b]).unwrap();
                assert_eq!(out.codeword, cw, "erasures ({a},{b})");
            }
        }
    }

    #[test]
    fn double_chipkill_corrects_two_errors() {
        let rs = double_chipkill_rs();
        let data: Vec<u8> = (0..32).map(|i| i ^ 0x55).collect();
        let cw = rs.encode(&data);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let mut rx = cw.clone();
            let a = rng.gen_range(0..36);
            let mut b = rng.gen_range(0..36);
            while b == a {
                b = rng.gen_range(0..36);
            }
            rx[a] ^= rng.gen_range(1..=255u8);
            rx[b] ^= rng.gen_range(1..=255u8);
            let out = rs.decode(&rx, &[]).unwrap();
            assert_eq!(out.codeword, cw);
            let mut exp = vec![a, b];
            exp.sort_unstable();
            assert_eq!(out.corrected, exp);
        }
    }

    #[test]
    fn double_chipkill_mixed_error_and_erasure() {
        // 1 erasure + 1 unknown error: needs nsym ≥ 1 + 2 = 3 ≤ 4. ✓
        let rs = double_chipkill_rs();
        let cw = rs.encode(&[9u8; 32]);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let mut rx = cw.clone();
            let er = rng.gen_range(0..36);
            let mut ep = rng.gen_range(0..36);
            while ep == er {
                ep = rng.gen_range(0..36);
            }
            rx[er] = rng.gen();
            rx[ep] ^= rng.gen_range(1..=255u8);
            let out = rs.decode(&rx, &[er]).unwrap();
            assert_eq!(out.codeword, cw);
        }
    }

    #[test]
    fn three_errors_overwhelm_double_chipkill() {
        let rs = double_chipkill_rs();
        let cw = rs.encode(&[1u8; 32]);
        let mut rng = StdRng::seed_from_u64(13);
        let mut detected = 0;
        for _ in 0..200 {
            let mut rx = cw.clone();
            let mut idx: Vec<usize> = (0..36).collect();
            for _ in 0..3 {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] ^= rng.gen_range(1..=255u8);
            }
            match rs.decode(&rx, &[]) {
                Err(RsError::Detected) => detected += 1,
                Ok(out) => assert_ne!(out.codeword, cw),
            }
        }
        assert!(
            detected >= 150,
            "only {detected}/200 triple errors detected"
        );
    }

    #[test]
    fn gf16_code_roundtrip() {
        // A small x4-symbol code within GF(16): RS(15, 11), d=5.
        let rs = ReedSolomon::new(Field::gf16(), 15, 11);
        let data: Vec<u8> = (0..11).map(|i| i % 16).collect();
        let cw = rs.encode(&data);
        assert!(rs.is_valid(&cw));
        let mut rx = cw.clone();
        rx[2] ^= 0xF;
        rx[9] ^= 0x3;
        let out = rs.decode(&rx, &[]).unwrap();
        assert_eq!(out.codeword, cw);
    }

    #[test]
    fn erasures_beyond_capability_detected() {
        let rs = chipkill_rs();
        let cw = rs.encode(&[3u8; 16]);
        let mut rx = cw.clone();
        rx[0] ^= 1;
        rx[1] ^= 2;
        rx[2] ^= 3;
        assert_eq!(rs.decode(&rx, &[0, 1, 2]), Err(RsError::Detected));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic)]
    fn wrong_length_is_rejected() {
        // Debug builds assert on the malformed call; release builds
        // report it as Detected without panicking.
        let rs = chipkill_rs();
        let mut scratch = RsScratch::new();
        let r = rs.decode_with(&[0u8; 17], &[], &mut scratch).map(|_| ());
        assert_eq!(r, Err(RsError::Detected));
    }

    #[test]
    fn full_random_errata_sweep() {
        // Property: for random data, any (errors, erasures) combination with
        // 2e + f ≤ nsym decodes to the original codeword.
        let rs = double_chipkill_rs(); // nsym = 4
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..300 {
            let data: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let cw = rs.encode(&data);
            let combos: &[(usize, usize)] = &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
            ];
            let (errors, erasures) = combos[trial % combos.len()];
            let mut rx = cw.clone();
            let mut idx: Vec<usize> = (0..36).collect();
            let mut erased = Vec::new();
            for _ in 0..erasures {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] = rng.gen(); // may coincidentally be correct
                erased.push(pos);
            }
            for _ in 0..errors {
                let j = rng.gen_range(0..idx.len());
                let pos = idx.swap_remove(j);
                rx[pos] ^= rng.gen_range(1..=255u8);
            }
            let out = rs
                .decode(&rx, &erased)
                .unwrap_or_else(|e| panic!("trial {trial} ({errors}e+{erasures}f): {e}"));
            assert_eq!(out.codeword, cw, "trial {trial}");
        }
    }
}
