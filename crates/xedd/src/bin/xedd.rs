//! The `xedd` daemon binary.
//!
//! ```text
//! xedd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!      [--shards N] [--selftest]
//! ```
//!
//! `--selftest` boots a daemon on an ephemeral port, drives the full
//! smoke sequence against it (see `xedd::selftest`) and exits non-zero on
//! the first broken contract — this is the mode `scripts/ci.sh` gates on.

use std::process::ExitCode;
use xedd::{selftest, Server, XeddConfig};

const USAGE: &str =
    "usage: xedd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--shards N] [--no-trace] [--selftest]
  --addr HOST:PORT  bind address (default 127.0.0.1:7433; port 0 = ephemeral)
  --workers N       worker threads draining the request queue (default 4)
  --queue N         admission-control queue bound; beyond it requests get 503 (default 64)
  --cache N         memo-cache capacity in responses (default 256)
  --shards N        memo-cache lock stripes (default 8)
  --no-trace        disable request tracing (flight recorder, /debug/flight)
  --selftest        run the end-to-end smoke sequence and exit";

/// Parses the value of a `--flag VALUE` pair.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    value
        .as_deref()
        .and_then(|v| v.parse::<T>().ok())
        .ok_or_else(|| format!("{flag} needs a value (see --help)"))
}

fn parse_config(args: impl Iterator<Item = String>) -> Result<(XeddConfig, bool), String> {
    let mut config = XeddConfig {
        addr: "127.0.0.1:7433".to_string(),
        ..XeddConfig::default()
    };
    let mut run_selftest = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_value(&arg, args.next())?,
            "--workers" => config.workers = parse_value(&arg, args.next())?,
            "--queue" => config.queue_limit = parse_value(&arg, args.next())?,
            "--cache" => config.cache_capacity = parse_value(&arg, args.next())?,
            "--shards" => config.cache_shards = parse_value(&arg, args.next())?,
            "--no-trace" => config.tracing = false,
            "--selftest" => run_selftest = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((config, run_selftest))
}

fn main() -> ExitCode {
    let (config, run_selftest) = match parse_config(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // Flight-recorder dump on any panic: the rings hold the last span
    // events per worker — exactly the context a crash report needs. The
    // hook prints the panic info itself rather than chaining the taken
    // default hook (calling an opaque boxed hook is an unresolvable call
    // for xed-analyze, and the default's message is just `info`).
    std::panic::set_hook(Box::new(|info| {
        eprintln!("{info}");
        xedd::server::dump_flight_to_stderr("panic");
    }));
    if run_selftest {
        return match selftest::run(|line| println!("{line}")) {
            Ok(()) => {
                println!("selftest: all checks passed");
                ExitCode::SUCCESS
            }
            Err(reason) => {
                eprintln!("{reason}");
                ExitCode::FAILURE
            }
        };
    }
    match Server::start(config) {
        Ok(server) => {
            println!("xedd listening on {}", server.addr());
            // Serve until killed: the daemon has no richer lifecycle than
            // its process (ci.sh uses --selftest, which shuts down cleanly).
            loop {
                std::thread::park();
            }
        }
        Err(reason) => {
            eprintln!("xedd: {reason}");
            ExitCode::FAILURE
        }
    }
}
