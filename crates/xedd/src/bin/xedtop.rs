//! `xedtop` — live terminal dashboard for a running `xedd` daemon.
//!
//! ```text
//! xedtop [--addr HOST:PORT] [--interval SECS] [--once]
//! ```
//!
//! Polls `/metrics?format=prometheus` and `/debug/flight`, derives qps /
//! cache-hit / coalesce / shed rates plus per-phase p50/p99 latencies,
//! and repaints the terminal every interval. `--once` prints a single
//! frame and exits (what the docs and scripts use).

use std::process::ExitCode;
use xedd::{http, top};

const USAGE: &str = "usage: xedtop [--addr HOST:PORT] [--interval SECS] [--once]
  --addr HOST:PORT  daemon address to poll (default 127.0.0.1:7433)
  --interval SECS   seconds between polls (default 2)
  --once            render one frame and exit";

struct Args {
    addr: String,
    interval: u64,
    once: bool,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        addr: "127.0.0.1:7433".to_string(),
        interval: 2,
        once: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                parsed.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--interval" => {
                parsed.interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--interval needs a number of seconds")?;
            }
            "--once" => parsed.once = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    parsed.interval = parsed.interval.max(1);
    Ok(parsed)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut prev: Option<Vec<top::Sample>> = None;
    loop {
        let scrape = match http::client_get(&args.addr, "/metrics?format=prometheus") {
            Ok(response) => response.body,
            Err(reason) => {
                eprintln!("xedtop: {reason}");
                return ExitCode::FAILURE;
            }
        };
        // The flight dump is best-effort decoration: keep rendering the
        // counters even if it fails mid-poll.
        let flight = http::client_get(&args.addr, "/debug/flight")
            .map(|response| response.body)
            .unwrap_or_default();
        let cur = top::parse_prometheus(&scrape);
        let r = match &prev {
            Some(prev) => top::rates(prev, &cur, args.interval as f64),
            None => top::rates(&cur, &cur, args.interval as f64),
        };
        let frame = top::render(&cur, &r, &flight);
        if args.once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        // ANSI clear + home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        prev = Some(cur);
        std::thread::sleep(std::time::Duration::from_secs(args.interval));
    }
}
