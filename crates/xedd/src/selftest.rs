//! The in-process end-to-end gate `scripts/ci.sh` runs (`xedd
//! --selftest`): boots a daemon on an ephemeral port and drives the full
//! smoke sequence with real TCP clients — cold query, memoized replay,
//! coalesced concurrent pair, streamed epsilon early stop, `/metrics` —
//! asserting at each step that what the server sends over the wire is
//! **byte-identical** to what the engine computes directly, then shuts
//! the daemon down cleanly.
//!
//! Every check returns a reason string instead of panicking, so a CI
//! failure names exactly which contract broke.

use crate::http::{self, ChunkStream};
use crate::render;
use crate::server::{Server, XeddConfig};
use xed_telemetry::registry::metrics;

/// Asserts `cond`, failing the selftest with `reason`.
fn check(cond: bool, reason: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("selftest: {reason}"))
    }
}

/// The direct-engine rendering of the query a request target encodes —
/// the byte-identity reference for server responses.
fn direct(target: &str) -> Result<render::CachedResponse, String> {
    let query_string = target.split_once('?').map_or("", |(_, q)| q);
    let params: Vec<(String, String)> = http::parse_query_string(query_string)?
        .into_iter()
        .filter(|(name, _)| name != "partials")
        .collect();
    let query = http::query_from_params(&params)?;
    render::evaluate_to_response(&query, |_| {})
}

/// Runs the full smoke sequence; `log` receives one line per completed
/// step (the binary wires it to stdout, tests to a sink).
pub fn run(mut log: impl FnMut(&str)) -> Result<(), String> {
    let server = Server::start(XeddConfig::default())?;
    let addr = server.addr();
    log(&format!("selftest: daemon up on {addr}"));

    // -- health -----------------------------------------------------------
    let health = http::client_get(&addr, "/healthz")?;
    check(health.status == 200, "/healthz did not return 200")?;
    check(
        crate::json::is_valid(&health.body),
        "/healthz body is not JSON",
    )?;
    check(
        crate::json::field(&health.body, "ok") == Some("true"),
        "/healthz ok flag is not true",
    )?;
    check(
        health.body.contains("\"git\":"),
        "/healthz lacks build info (git hash)",
    )?;
    check(
        crate::json::number_field(&health.body, "schemes")
            == Some(xed_faultsim::schemes::Scheme::ALL.len() as f64),
        "/healthz scheme registry size does not match Scheme::ALL",
    )?;
    check(
        crate::json::number_field(&health.body, "uptime_seconds").is_some(),
        "/healthz lacks uptime_seconds",
    )?;
    log("selftest: /healthz ok (build info present)");

    // -- cold query, then memoized replay ---------------------------------
    let target = "/v1/query?scheme=xed&samples=200000&seed=7";
    let reference = direct(target)?;
    let cold = http::client_get(&addr, target)?;
    check(cold.status == 200, "cold query did not return 200")?;
    check(
        cold.header("x-xedd-cache") == Some("miss"),
        "cold query was not a cache miss",
    )?;
    check(
        cold.body == reference.body,
        "cold response is not byte-identical to the direct engine rendering",
    )?;
    log("selftest: cold query matches the engine byte-for-byte");

    let warm = http::client_get(&addr, target)?;
    check(
        warm.header("x-xedd-cache") == Some("hit"),
        "repeat query was not served from the memo cache",
    )?;
    check(
        warm.body == cold.body,
        "memoized replay differs from the cold response",
    )?;

    // A semantically-equal spelling (reordered parameters, alternative
    // scheme name) must hit the same cache slot.
    let respelled = http::client_get(&addr, "/v1/query?seed=7&samples=200000&scheme=XED")?;
    check(
        respelled.header("x-xedd-cache") == Some("hit"),
        "canonically-equal respelling missed the cache",
    )?;
    check(respelled.body == cold.body, "respelled replay differs")?;

    // Memoized streaming framing replays the recorded partials too.
    let mut warm_stream = ChunkStream::open(&addr, &format!("{target}&partials=1"))?;
    check(
        warm_stream.header("x-xedd-cache") == Some("hit"),
        "streamed replay was not served from the memo cache",
    )?;
    let mut expect: Vec<String> = reference.progress_lines.clone();
    expect.push(reference.body.clone());
    check(
        warm_stream.drain()? == expect,
        "streamed replay is not byte-identical to the engine's partials",
    )?;
    log("selftest: memoized replays are byte-identical (plain and streamed)");

    // -- coalesced concurrent pair ----------------------------------------
    // A fresh key evaluated with streamed partials: read the leader's
    // first chunk (the flight is now provably in the table with blocks
    // still to run), attach K followers, then assert exactly one
    // evaluation happened.
    let evals_before = metrics::XEDD_EVALUATIONS.value();
    let coalesced_before = metrics::XEDD_COALESCED.value();
    let slow = "/v1/query?scheme=xed-chipkill&samples=8000000&block=2000000&seed=41&partials=1";
    let slow_reference = direct(slow)?;
    let mut leader = ChunkStream::open(&addr, slow)?;
    check(
        leader.header("x-xedd-cache") == Some("miss"),
        "coalescing leader was not a cache miss",
    )?;
    let first = leader.next_chunk()?;
    check(
        first.is_some(),
        "leader stream ended before its first partial",
    )?;
    const FOLLOWERS: usize = 3;
    // The first follower carries a known trace id, so the coalesce
    // handoff span can be pulled out of the flight recorder afterwards.
    const FOLLOWER_TRACE: &str = "00000000f0110001";
    let mut handles = Vec::new();
    for i in 0..FOLLOWERS {
        let addr = addr.clone();
        let slow = slow.to_string();
        handles.push(std::thread::spawn(move || {
            let stream = if i == 0 {
                ChunkStream::open_with(&addr, &slow, &[("X-Xedd-Trace", FOLLOWER_TRACE)])
            } else {
                ChunkStream::open(&addr, &slow)
            };
            stream.and_then(|mut s| s.drain())
        }));
    }
    let mut leader_chunks = vec![first.ok_or("leader first chunk missing")?];
    leader_chunks.extend(leader.drain()?);
    let mut slow_expect: Vec<String> = slow_reference.progress_lines.clone();
    slow_expect.push(slow_reference.body.clone());
    check(
        leader_chunks == slow_expect,
        "leader stream is not byte-identical to the engine's partials",
    )?;
    for handle in handles {
        let chunks = handle
            .join()
            .map_err(|_| "follower thread panicked".to_string())??;
        // A mid-flight follower replays every already-published line
        // before streaming live ones, so its stream equals the leader's
        // in full — as does a memoized replay.
        check(
            chunks == slow_expect,
            "a follower's stream is not byte-identical to the leader's",
        )?;
    }
    let evaluations = metrics::XEDD_EVALUATIONS.value() - evals_before;
    let coalesced = metrics::XEDD_COALESCED.value() - coalesced_before;
    check(
        evaluations == 1,
        &format!(
            "{} concurrent identical requests ran {evaluations} evaluations, want 1",
            FOLLOWERS + 1
        ),
    )?;
    check(
        coalesced == FOLLOWERS as u64,
        &format!("expected {FOLLOWERS} coalesced attachments, saw {coalesced}"),
    )?;
    log(&format!(
        "selftest: {} concurrent identical requests -> 1 evaluation, {coalesced} coalesced",
        FOLLOWERS + 1
    ));

    // -- trace propagation across the coalescer ---------------------------
    // The leader's assigned trace id is echoed in its response headers;
    // the traced follower's CoalesceFollow span must record it as the
    // handoff edge (`a` attribute).
    let leader_hex = leader
        .header("x-xedd-trace")
        .ok_or("leader response lacks the X-Xedd-Trace echo")?;
    let leader_id = u64::from_str_radix(leader_hex, 16)
        .map_err(|e| format!("selftest: leader trace id {leader_hex:?}: {e}"))?;
    let follower_flight =
        http::client_get(&addr, &format!("/debug/flight?trace={FOLLOWER_TRACE}"))?;
    check(
        follower_flight.status == 200,
        "/debug/flight did not return 200",
    )?;
    check(
        crate::json::is_valid(&follower_flight.body),
        "/debug/flight body is not valid JSON",
    )?;
    check(
        follower_flight
            .body
            .contains("\"name\":\"coalesce_follow\""),
        "the traced follower's flight dump lacks its coalesce_follow span",
    )?;
    check(
        follower_flight.body.contains(&format!("\"a\":{leader_id}")),
        "the coalesce_follow span does not record the leader handoff (a = leader trace id)",
    )?;
    log("selftest: follower's trace records the leader handoff");

    // -- end-to-end traced request ----------------------------------------
    // A fresh traced query must leave every request phase in the flight
    // recorder, exported as filterable xed-trace-spans-v1 JSON.
    const TRACE: &str = "00000000c0ffee42";
    let traced_target = "/v1/query?scheme=ecc-dimm&samples=200000&seed=99";
    let traced = http::client_get_with(&addr, traced_target, &[("X-Xedd-Trace", TRACE)])?;
    check(traced.status == 200, "traced query did not return 200")?;
    check(
        traced.header("x-xedd-trace") == Some(TRACE),
        "traced query response does not echo X-Xedd-Trace",
    )?;
    let flight = http::client_get(&addr, &format!("/debug/flight?trace={TRACE}"))?;
    check(
        crate::json::is_valid(&flight.body),
        "traced flight dump is not valid JSON",
    )?;
    check(
        flight.body.contains("\"schema\":\"xed-trace-spans-v1\""),
        "flight dump does not declare the xed-trace-spans-v1 schema",
    )?;
    for span in [
        "admission",
        "cache_lookup",
        "coalesce_lead",
        "evaluate",
        "scheduler_chunk",
    ] {
        check(
            flight.body.contains(&format!("\"name\":\"{span}\"")),
            &format!("traced request's flight dump lacks the {span} span"),
        )?;
    }
    log("selftest: traced request exports admission/cache/coalesce/evaluate/scheduler spans");

    // -- streamed epsilon early stop --------------------------------------
    let early_before = metrics::XEDD_EARLY_STOPS.value();
    let eps = "/v1/query?scheme=ecc-dimm&samples=5000000&block=20000&epsilon=0.5&seed=11";
    let eps_reference = direct(eps)?;
    let mut stream = ChunkStream::open(&addr, eps)?;
    let chunks = stream.drain()?;
    let mut eps_expect: Vec<String> = eps_reference.progress_lines.clone();
    eps_expect.push(eps_reference.body.clone());
    check(
        chunks == eps_expect,
        "epsilon stream is not byte-identical to the engine's partials",
    )?;
    let body = chunks.last().ok_or("epsilon stream was empty")?;
    check(
        crate::json::field(body, "early_stop") == Some("true"),
        "epsilon query did not stop early",
    )?;
    let trials = crate::json::number_field(body, "trials").unwrap_or(0.0);
    check(
        trials < 5_000_000.0,
        "epsilon query consumed the full budget",
    )?;
    check(
        metrics::XEDD_EARLY_STOPS.value() > early_before,
        "xedd.early_stops did not record the stop",
    )?;
    log(&format!(
        "selftest: epsilon=0.5 stopped after {trials} of 5000000 trials"
    ));

    // -- error paths and /metrics -----------------------------------------
    let bad = http::client_get(&addr, "/v1/query?scheme=warp-drive")?;
    check(bad.status == 400, "unknown scheme did not return 400")?;
    let lost = http::client_get(&addr, "/v1/nope")?;
    check(lost.status == 404, "unknown route did not return 404")?;
    let metrics_resp = http::client_get(&addr, "/metrics")?;
    check(metrics_resp.status == 200, "/metrics did not return 200")?;
    check(
        crate::json::is_valid(&metrics_resp.body),
        "/metrics body is not valid JSON",
    )?;
    for id in [
        "xedd.requests",
        "xedd.cache.hits",
        "xedd.coalesced",
        "xedd.evaluations",
    ] {
        check(
            metrics_resp.body.contains(&format!("\"id\":\"{id}\"")),
            &format!("/metrics export is missing {id}"),
        )?;
    }
    log("selftest: error paths and /metrics ok");

    // -- Prometheus text exposition ---------------------------------------
    let prom = http::client_get(&addr, "/metrics?format=prometheus")?;
    check(
        prom.status == 200,
        "/metrics?format=prometheus did not return 200",
    )?;
    xed_telemetry::export::prometheus_check(&prom.body)
        .map_err(|e| format!("selftest: prometheus exposition failed its self-check: {e}"))?;
    check(
        prom.body.contains("xedd_phase_evaluate_ns_bucket"),
        "prometheus exposition lacks the per-phase histograms",
    )?;
    check(
        prom.body.contains("xedd_endpoint_query_ns_count"),
        "prometheus exposition lacks the per-endpoint histograms",
    )?;
    log("selftest: /metrics prometheus exposition passes the format self-check");

    server.shutdown();
    log("selftest: clean shutdown");
    Ok(())
}

#[cfg(test)]
mod tests {
    /// The full smoke sequence as a unit test (ci.sh additionally runs it
    /// through the `xedd --selftest` binary).
    #[test]
    fn selftest_passes() {
        let mut lines = Vec::new();
        super::run(|l| lines.push(l.to_string())).expect("selftest must pass");
        assert!(lines.iter().any(|l| l.contains("clean shutdown")));
    }
}
