//! Deterministic JSON rendering of engine results.
//!
//! Every byte a query response carries is rendered here, from the
//! deterministic parts of an [`Estimate`] only (wall-clock metadata is
//! deliberately excluded). That makes response bodies a pure function of
//! the canonicalized query, which is what the selftest's
//! server-vs-direct-engine byte-identity gate checks, and what lets the
//! memo cache replay a stored response — including every streamed partial
//! line — byte-for-byte to later clients.

use xed_faultsim::engine::{CanonicalKey, Estimate, Progress, Query, QueryKind};

/// A fully rendered, cacheable response: the terminal JSON body plus the
/// streamed partial-confidence lines that preceded it (empty for tail
/// queries' instant replays). Shared between the in-flight coalescing
/// table and the memo cache behind an `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    /// The canonical key the response was computed under.
    pub key: CanonicalKey,
    /// One rendered JSON line per streamed [`Progress`] snapshot.
    pub progress_lines: Vec<String>,
    /// The terminal JSON object (the non-streaming body; streamed
    /// responses send it as the last chunk).
    pub body: String,
}

/// Appends a JSON number (or `null` for non-finite values, which JSON
/// cannot represent) to `out`. `{:?}` formatting is shortest-roundtrip
/// and deterministic, so equal floats always render to equal bytes.
fn push_num(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_field(out: &mut String, name: &str, x: f64) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
    push_num(out, x);
}

/// Renders one streamed partial-confidence line.
pub fn progress_line(p: &Progress) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"trials\":");
    out.push_str(&p.trials_done.to_string());
    out.push_str(",\"total\":");
    out.push_str(&p.total.to_string());
    out.push(',');
    push_field(&mut out, "p_fail", p.p_fail);
    out.push(',');
    push_field(&mut out, "ci95", p.ci95);
    out.push(',');
    push_field(&mut out, "ci99", p.ci99);
    out.push(',');
    push_field(&mut out, "relative_ci95", p.relative_ci95);
    out.push_str(",\"done\":false}");
    out
}

/// Renders the terminal response body for a completed estimate.
///
/// Deterministic fields only: the canonical key, the query identity and
/// the estimate's counts and probabilities. Wall time and thread counts
/// are reporting metadata and live in `/metrics`, never in a body.
pub fn final_body(query: &Query, key: &CanonicalKey, estimate: &Estimate) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema\":\"xedd-v1\",\"key\":\"");
    out.push_str(&key.to_string());
    out.push_str("\",\"scheme\":\"");
    out.push_str(estimate.scheme().id());
    out.push_str("\",\"kind\":\"");
    out.push_str(match query.kind {
        QueryKind::Lifetime => "lifetime",
        QueryKind::Tail { .. } => "tail",
    });
    out.push_str("\",\"requested_samples\":");
    out.push_str(&query.samples.to_string());
    out.push_str(",\"trials\":");
    out.push_str(&estimate.samples().to_string());
    out.push_str(",\"early_stop\":");
    out.push_str(if estimate.samples() < query.samples {
        "true"
    } else {
        "false"
    });
    out.push(',');
    push_field(&mut out, "p_fail", estimate.p_fail());
    out.push(',');
    push_field(&mut out, "p_due", estimate.p_due());
    out.push(',');
    push_field(&mut out, "p_sdc", estimate.p_sdc());
    out.push(',');
    push_field(&mut out, "ci95", estimate.ci95());
    out.push(',');
    push_field(&mut out, "ci99", estimate.ci99());
    out.push(',');
    push_field(&mut out, "relative_ci95", estimate.relative_ci95());
    match estimate {
        Estimate::Lifetime(report) => {
            out.push_str(",\"due\":");
            out.push_str(&report.result.due.to_string());
            out.push_str(",\"sdc\":");
            out.push_str(&report.result.sdc.to_string());
            out.push_str(",\"curve\":[");
            for (i, p) in report.result.curve().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_num(&mut out, *p);
            }
            out.push(']');
        }
        Estimate::Tail(tail) => {
            out.push_str(",\"mode\":\"");
            out.push_str(tail.mode.label());
            out.push_str("\",\"min_faults\":");
            out.push_str(&tail.min_faults.to_string());
            out.push(',');
            push_field(
                &mut out,
                "conditioning_probability",
                tail.conditioning_probability,
            );
            out.push(',');
            push_field(&mut out, "effective_trials", tail.effective_trials());
        }
    }
    out.push('}');
    out
}

/// Evaluates a query through the engine facade and renders the complete
/// cacheable response, recording each streamed partial. This is the one
/// compute path the daemon runs on a cache miss — and exactly what the
/// selftest calls directly to assert server responses are byte-identical
/// to the engine's.
pub fn evaluate_to_response(
    query: &Query,
    mut on_progress: impl FnMut(&str),
) -> Result<CachedResponse, String> {
    let key = query.canonical_key();
    let mut progress_lines = Vec::new();
    let estimate = xed_faultsim::engine::evaluate_streaming(query, |p| {
        let line = progress_line(p);
        on_progress(&line);
        progress_lines.push(line);
    })?;
    let body = final_body(query, &key, &estimate);
    Ok(CachedResponse {
        key,
        progress_lines,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xed_faultsim::Scheme;

    #[test]
    fn bodies_and_progress_lines_are_valid_json() {
        let mut q = Query::lifetime(Scheme::EccDimm, 10_000, 7);
        q.exec.block = 4_000;
        let resp = evaluate_to_response(&q, |_| {}).expect("valid query");
        assert!(crate::json::is_valid(&resp.body), "body: {}", resp.body);
        assert_eq!(resp.progress_lines.len(), 3);
        for line in &resp.progress_lines {
            assert!(crate::json::is_valid(line), "line: {line}");
        }
        let tail = Query::tail(Scheme::XedChipkill, 5_000, 7);
        let resp = evaluate_to_response(&tail, |_| {}).expect("valid query");
        assert!(
            crate::json::is_valid(&resp.body),
            "tail body: {}",
            resp.body
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let q = Query::lifetime(Scheme::Xed, 10_000, 7);
        let a = evaluate_to_response(&q, |_| {}).expect("valid query");
        let b = evaluate_to_response(&q, |_| {}).expect("valid query");
        assert_eq!(a, b, "same query must render byte-identically");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // A 1-sample run sees no failure, so relative_ci95 is infinite.
        let q = Query::lifetime(Scheme::DoubleChipkill, 1, 7);
        let resp = evaluate_to_response(&q, |_| {}).expect("valid query");
        assert!(
            crate::json::field(&resp.body, "relative_ci95") == Some("null"),
            "infinite relative CI must render as null: {}",
            resp.body
        );
        assert!(crate::json::is_valid(&resp.body));
    }
}
