//! A minimal HTTP/1.1 layer: request parsing, query-string → engine
//! [`Query`] conversion, response/chunked writers and a tiny test client.
//!
//! `xedd` serves exactly three GET routes over plain sockets, so this is
//! deliberately not a general HTTP implementation: one request per
//! connection (`Connection: close` semantics), no bodies on requests, and
//! chunked transfer encoding only on the streaming response path. The
//! parser is strict about what it does accept — malformed request lines
//! and unknown query parameters are errors, never guesses.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use xed_faultsim::engine::{Query, QueryKind};
use xed_faultsim::fault::FaultExtent;
use xed_faultsim::fit::{FitRates, ModeRate};
use xed_faultsim::rareevent::TailMode;
use xed_faultsim::{CodeModel, Scheme};

/// Longest request line / header line accepted, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most header lines accepted per request.
const MAX_HEADERS: usize = 64;

/// A parsed request line: method, decoded path, decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method (uppercased as received; the server only routes
    /// `GET`).
    pub method: String,
    /// The percent-decoded path component (no query string).
    pub path: String,
    /// Query parameters in request order, percent-decoded.
    pub params: Vec<(String, String)>,
    /// A trace id propagated via the `X-Xedd-Trace` header (16 hex
    /// digits), if the client sent a well-formed one. Malformed values
    /// are ignored, never errors — tracing must not fail a request.
    pub trace: Option<u64>,
}

/// Reads one line (CRLF- or LF-terminated) with a length bound.
fn read_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= MAX_LINE {
                    return Err("header line too long".to_string());
                }
                buf.push(byte[0]);
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| "header line is not UTF-8".to_string())
}

/// Parses one request from a buffered stream: request line plus headers
/// up to the blank line. Headers are consumed and discarded, except
/// `X-Xedd-Trace`, whose value (16 hex digits) propagates a caller's
/// trace id into the daemon's span records.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, String> {
    let line = read_line(reader)?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line has no target")?;
    let version = parts.next().ok_or("request line has no version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut trace = None;
    for _ in 0..MAX_HEADERS {
        let Some(header) = read_request_header(reader)? else {
            return Ok(Request {
                method,
                path: percent_decode(raw_path)?,
                params: parse_query_string(raw_query.unwrap_or(""))?,
                trace,
            });
        };
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("x-xedd-trace") {
                trace = parse_trace_id(value.trim());
            }
        }
    }
    Err("too many headers".to_string())
}

/// Parses an `X-Xedd-Trace` header value: exactly 16 lowercase-or-upper
/// hex digits, nonzero. Anything else is `None` (ignored).
pub fn parse_trace_id(value: &str) -> Option<u64> {
    if value.len() != 16 {
        return None;
    }
    match u64::from_str_radix(value, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Reads one header line; `None` marks the end-of-headers blank line.
fn read_request_header(reader: &mut impl BufRead) -> Result<Option<String>, String> {
    let line = read_line(reader)?;
    if line.is_empty() {
        Ok(None)
    } else {
        Ok(Some(line))
    }
}

/// Percent-decodes one path or query component (`+` decodes to space, as
/// form encoding produces).
pub fn percent_decode(text: &str) -> Result<String, String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in {text:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent-decoded {text:?} is not UTF-8"))
}

/// Splits and decodes an `a=1&b=2` query string.
pub fn parse_query_string(query: &str) -> Result<Vec<(String, String)>, String> {
    let mut params = Vec::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(params)
}

fn parse_extent(name: &str) -> Option<FaultExtent> {
    match name.to_ascii_lowercase().as_str() {
        "bit" => Some(FaultExtent::Bit),
        "word" => Some(FaultExtent::Word),
        "column" | "col" => Some(FaultExtent::Column),
        "row" => Some(FaultExtent::Row),
        "bank" => Some(FaultExtent::Bank),
        "chip" => Some(FaultExtent::Chip),
        _ => None,
    }
}

/// Parses a custom FIT table: `extent:transient:permanent` triples joined
/// by commas, e.g. `bit:14.2:18.6,chip:2.0:6.1`.
fn parse_fit(spec: &str) -> Result<FitRates, String> {
    let mut rows: Vec<ModeRate> = Vec::new();
    for entry in spec.split(',') {
        let mut fields = entry.split(':');
        let extent = fields
            .next()
            .and_then(parse_extent)
            .ok_or_else(|| format!("fit entry {entry:?}: unknown extent"))?;
        let transient_fit = fields
            .next()
            .and_then(|f| f.parse::<f64>().ok())
            .ok_or_else(|| format!("fit entry {entry:?}: bad transient FIT"))?;
        let permanent_fit = fields
            .next()
            .and_then(|f| f.parse::<f64>().ok())
            .ok_or_else(|| format!("fit entry {entry:?}: bad permanent FIT"))?;
        if fields.next().is_some() {
            return Err(format!(
                "fit entry {entry:?}: expected extent:transient:permanent"
            ));
        }
        if rows.iter().any(|r| r.extent == extent) {
            return Err(format!("fit entry {entry:?}: duplicate extent"));
        }
        rows.push(ModeRate {
            extent,
            transient_fit,
            permanent_fit,
        });
    }
    if rows.is_empty() {
        return Err("fit table must have at least one row".to_string());
    }
    Ok(FitRates::custom(rows))
}

fn parse_num<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("parameter {name}={value}: not a valid number"))
}

fn parse_bool(name: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" | "yes" => Ok(true),
        "0" | "false" | "no" => Ok(false),
        _ => Err(format!("parameter {name}={value}: expected a boolean")),
    }
}

/// Parses the `code_model` parameter: `known`, `inferred`, or
/// `ambiguous:<unresolved_rows>` (mirroring the `Display` spellings of
/// `CodeModel`).
fn parse_code_model(value: &str) -> Result<CodeModel, String> {
    match value {
        "known" => Ok(CodeModel::Known),
        "inferred" => Ok(CodeModel::InferredExact),
        _ => match value.strip_prefix("ambiguous:") {
            Some(rows) => Ok(CodeModel::InferredAmbiguous {
                unresolved_rows: parse_num("code_model", rows)?,
            }),
            None => Err(format!(
                "unknown code_model {value:?} (known | inferred | ambiguous:<rows>)"
            )),
        },
    }
}

/// Builds an engine [`Query`] from decoded query parameters.
///
/// Recognized parameters: `scheme` (required), `kind` (`lifetime` |
/// `tail`), `samples`, `years`, `seed`, `epsilon`, `block`, `threads`,
/// `force` (`clique` | `count` | `plain`), `fit`
/// (`extent:transient:permanent,...`), `on_die_ecc`, `on_die_miss`,
/// `scaling` (per-bit rate), `intersection`, `code_model` (`known` |
/// `inferred` | `ambiguous:<rows>` — the controller's knowledge of the
/// on-die ECC function, DESIGN.md §17). Anything else is an error — a
/// typo must never silently fall back to a default and alias another
/// query's cache key.
pub fn query_from_params(params: &[(String, String)]) -> Result<Query, String> {
    let mut scheme: Option<Scheme> = None;
    let mut kind = QueryKind::Lifetime;
    let mut force: Option<TailMode> = None;
    let mut samples = 1_000_000u64;
    let mut query = Query::lifetime(Scheme::Xed, samples, 0);
    for (name, value) in params {
        match name.as_str() {
            "scheme" => {
                scheme =
                    Some(Scheme::parse(value).ok_or_else(|| format!("unknown scheme {value:?}"))?);
            }
            "kind" => {
                kind = match value.as_str() {
                    "lifetime" => QueryKind::Lifetime,
                    "tail" => QueryKind::Tail { force: None },
                    _ => return Err(format!("unknown kind {value:?} (lifetime | tail)")),
                };
            }
            "force" => {
                force = Some(match value.as_str() {
                    "clique" => TailMode::CliqueForced,
                    "count" => TailMode::CountConditioned,
                    "plain" => TailMode::PlainMc,
                    _ => return Err(format!("unknown force mode {value:?}")),
                });
            }
            "samples" => samples = parse_num(name, value)?,
            "years" => query.years = parse_num(name, value)?,
            "seed" => query.seed = parse_num(name, value)?,
            "epsilon" => query.epsilon = Some(parse_num(name, value)?),
            "block" => query.exec.block = parse_num(name, value)?,
            "threads" => query.exec.threads = parse_num(name, value)?,
            "fit" => query.rates = parse_fit(value)?,
            "on_die_ecc" => query.params.on_die_ecc = parse_bool(name, value)?,
            "on_die_miss" => query.params.on_die_miss = parse_num(name, value)?,
            "scaling" => query.params.scaling.bit_rate = parse_num(name, value)?,
            "intersection" => query.params.require_line_intersection = parse_bool(name, value)?,
            "code_model" => query.params.code_model = parse_code_model(value)?,
            _ => return Err(format!("unknown parameter {name:?}")),
        }
    }
    query.scheme = scheme.ok_or("missing required parameter scheme")?;
    query.samples = samples;
    query.kind = match kind {
        QueryKind::Lifetime => {
            if force.is_some() {
                return Err("force applies to tail queries only".to_string());
            }
            QueryKind::Lifetime
        }
        QueryKind::Tail { .. } => QueryKind::Tail { force },
    };
    query.validate()?;
    Ok(query)
}

/// The status lines the daemon emits.
fn status_line(status: u16) -> &'static str {
    match status {
        200 => "HTTP/1.1 200 OK",
        400 => "HTTP/1.1 400 Bad Request",
        404 => "HTTP/1.1 404 Not Found",
        503 => "HTTP/1.1 503 Service Unavailable",
        _ => "HTTP/1.1 500 Internal Server Error",
    }
}

/// Writes a complete (non-chunked) response with optional extra headers.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra_headers, body)
}

/// Like [`write_response`] with an explicit `Content-Type` — the
/// Prometheus exposition on `/metrics?format=prometheus` is plain text,
/// not JSON.
pub fn write_response_typed(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = String::with_capacity(256);
    head.push_str(status_line(status));
    head.push_str("\r\nContent-Type: ");
    head.push_str(content_type);
    head.push_str("\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Content-Length: ");
    head.push_str(&body.len().to_string());
    head.push_str("\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes the head of a chunked streaming response.
pub fn write_chunked_head(
    stream: &mut impl Write,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = String::with_capacity(256);
    head.push_str(status_line(200));
    head.push_str(
        "\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one chunk carrying `line` plus a trailing newline (NDJSON
/// framing inside chunked framing: one JSON document per chunk).
pub fn write_chunk(stream: &mut impl Write, line: &str) -> std::io::Result<()> {
    write!(stream, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn write_chunked_end(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A response as the test client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// The full decoded body.
    pub body: String,
    /// For chunked responses: one entry per chunk, in arrival order (the
    /// streamed NDJSON lines, newline stripped). Empty otherwise.
    pub chunks: Vec<String>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An open chunked-response stream: the test client's incremental view
/// of a streaming query, one chunk at a time. Reading chunk-by-chunk is
/// what lets the selftest *hold a flight open* — attach followers after
/// the leader's first partial but before its last.
#[derive(Debug)]
pub struct ChunkStream {
    reader: std::io::BufReader<TcpStream>,
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lowercased names.
    pub headers: Vec<(String, String)>,
}

impl ChunkStream {
    /// Sends a GET and parses the response head. The response must be
    /// chunked (it is an error to open a Content-Length body this way).
    pub fn open(addr: &str, target: &str) -> Result<ChunkStream, String> {
        Self::open_with(addr, target, &[])
    }

    /// Like [`ChunkStream::open`], with extra request headers (e.g.
    /// `("X-Xedd-Trace", "00000000deadbeef")` to propagate a trace id).
    pub fn open_with(
        addr: &str,
        target: &str,
        extra_headers: &[(&str, &str)],
    ) -> Result<ChunkStream, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let mut extra = String::new();
        for (name, value) in extra_headers {
            extra.push_str(&format!("{name}: {value}\r\n"));
        }
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: xedd\r\nConnection: close\r\n{extra}\r\n"
        )
        .map_err(|e| format!("send request: {e}"))?;
        let mut reader = std::io::BufReader::new(stream);
        let status_line = read_line(&mut reader)?;
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut reader)?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| format!("bad header line {line:?}"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if !chunked {
            return Err(format!("response to {target} is not chunked"));
        }
        Ok(ChunkStream {
            reader,
            status,
            headers,
        })
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads the next chunk (newline framing stripped); `None` marks the
    /// terminating zero-length chunk.
    pub fn next_chunk(&mut self) -> Result<Option<String>, String> {
        let size_line = read_line(&mut self.reader)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            let _trailer = read_line(&mut self.reader)?;
            return Ok(None);
        }
        let mut chunk = vec![0u8; size];
        self.reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("chunk read: {e}"))?;
        let _crlf = read_line(&mut self.reader)?;
        let text = String::from_utf8(chunk).map_err(|_| "chunk is not UTF-8".to_string())?;
        Ok(Some(text.trim_end_matches('\n').to_string()))
    }

    /// Drains every remaining chunk.
    pub fn drain(&mut self) -> Result<Vec<String>, String> {
        let mut chunks = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            chunks.push(chunk);
        }
        Ok(chunks)
    }
}

/// A blocking one-shot GET against `addr` (used by the selftest, the
/// integration tests, and `xedtop`; the daemon itself never makes
/// outbound requests).
pub fn client_get(addr: &str, target: &str) -> Result<ClientResponse, String> {
    client_get_with(addr, target, &[])
}

/// Like [`client_get`], with extra request headers (e.g. a propagated
/// `X-Xedd-Trace` id).
pub fn client_get_with(
    addr: &str,
    target: &str,
    extra_headers: &[(&str, &str)],
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut extra = String::new();
    for (name, value) in extra_headers {
        extra.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: xedd\r\nConnection: close\r\n{extra}\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    read_client_response(&mut reader)
}

/// Parses a response (status line, headers, identity or chunked body)
/// from a buffered stream.
pub fn read_client_response(reader: &mut impl BufRead) -> Result<ClientResponse, String> {
    let status_line = read_line(reader)?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if chunked {
        let mut chunks = Vec::new();
        let mut body = String::new();
        loop {
            let size_line = read_line(reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size {size_line:?}"))?;
            if size == 0 {
                let _trailer = read_line(reader)?;
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("chunk read: {e}"))?;
            let _crlf = read_line(reader)?;
            let text = String::from_utf8(chunk).map_err(|_| "chunk is not UTF-8".to_string())?;
            body.push_str(&text);
            chunks.push(text.trim_end_matches('\n').to_string());
        }
        return Ok(ClientResponse {
            status,
            headers,
            body,
            chunks,
        });
    }
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("body read: {e}"))?;
            String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("body read: {e}"))?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
        chunks: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_request_line_with_query() {
        let raw = "GET /v1/query?scheme=xed&samples=1000 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw)).expect("well-formed");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(
            req.params,
            vec![
                ("scheme".to_string(), "xed".to_string()),
                ("samples".to_string(), "1000".to_string()),
            ]
        );
        assert_eq!(req.trace, None, "no trace header, no trace id");
    }

    #[test]
    fn captures_a_propagated_trace_header() {
        let raw = "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Xedd-Trace: 00000000DEADBEEF\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw)).expect("well-formed");
        assert_eq!(req.trace, Some(0xDEAD_BEEF));
        // Malformed values are ignored, never request errors.
        for bad in ["deadbeef", "zz000000deadbeef", "0000000000000000", ""] {
            let raw = format!("GET / HTTP/1.1\r\nx-xedd-trace: {bad}\r\n\r\n");
            let req = read_request(&mut Cursor::new(raw)).expect("well-formed");
            assert_eq!(req.trace, None, "{bad:?} must be ignored");
        }
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
        ] {
            assert!(read_request(&mut Cursor::new(raw)).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%20b+c").expect("valid"), "a b c");
        assert_eq!(percent_decode("%2Fv1%2Fquery").expect("valid"), "/v1/query");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn builds_queries_from_parameters() {
        let q = query_from_params(&params(&[
            ("scheme", "xed-chipkill"),
            ("kind", "tail"),
            ("force", "count"),
            ("samples", "5000"),
            ("seed", "11"),
            ("years", "5"),
        ]))
        .expect("valid");
        assert_eq!(q.scheme, Scheme::XedChipkill);
        assert_eq!(
            q.kind,
            QueryKind::Tail {
                force: Some(TailMode::CountConditioned)
            }
        );
        assert_eq!((q.samples, q.seed, q.years), (5000, 11, 5.0));
    }

    #[test]
    fn code_model_parameter_parses_all_spellings() {
        for (spelling, expected) in [
            ("known", CodeModel::Known),
            ("inferred", CodeModel::InferredExact),
            (
                "ambiguous:2",
                CodeModel::InferredAmbiguous { unresolved_rows: 2 },
            ),
            (
                "ambiguous:0",
                CodeModel::InferredAmbiguous { unresolved_rows: 0 },
            ),
        ] {
            let q = query_from_params(&params(&[("scheme", "xed"), ("code_model", spelling)]))
                .expect("valid");
            assert_eq!(q.params.code_model, expected, "{spelling}");
        }
        // Default: the paper's known-code assumption.
        let q = query_from_params(&params(&[("scheme", "xed")])).expect("valid");
        assert_eq!(q.params.code_model, CodeModel::Known);
        for bad in ["guessable", "ambiguous", "ambiguous:x", "ambiguous:9"] {
            assert!(
                query_from_params(&params(&[("scheme", "xed"), ("code_model", bad)])).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn custom_fit_tables_parse_and_reject_duplicates() {
        let q = query_from_params(&params(&[
            ("scheme", "xed"),
            ("fit", "bit:14.2:18.6,chip:2.0:6.1"),
        ]))
        .expect("valid");
        assert_eq!(q.rates.rows().len(), 2);
        for bad in [
            "bit:1:2,bit:3:4", // duplicate extent
            "galaxy:1:2",      // unknown extent
            "bit:1",           // missing field
            "bit:1:2:3",       // extra field
            "",                // empty table
        ] {
            assert!(
                query_from_params(&params(&[("scheme", "xed"), ("fit", bad)])).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_parameters_are_rejected() {
        assert!(query_from_params(&params(&[("scheme", "xed"), ("samplez", "1")])).is_err());
        assert!(
            query_from_params(&params(&[])).is_err(),
            "scheme is required"
        );
        assert!(
            query_from_params(&params(&[("scheme", "xed"), ("force", "clique")])).is_err(),
            "force without kind=tail"
        );
    }

    #[test]
    fn responses_round_trip_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, &[("X-Xedd-Cache", "hit")], "{\"ok\":true}").expect("write");
        let resp = read_client_response(&mut Cursor::new(wire)).expect("parse");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-xedd-cache"), Some("hit"));
        assert_eq!(resp.body, "{\"ok\":true}");
        assert!(resp.chunks.is_empty());
    }

    #[test]
    fn chunked_responses_round_trip_with_chunk_boundaries() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire, &[("X-Xedd-Cache", "miss")]).expect("head");
        write_chunk(&mut wire, "{\"trials\":1}").expect("chunk");
        write_chunk(&mut wire, "{\"trials\":2}").expect("chunk");
        write_chunked_end(&mut wire).expect("end");
        let resp = read_client_response(&mut Cursor::new(wire)).expect("parse");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.chunks, ["{\"trials\":1}", "{\"trials\":2}"]);
        assert_eq!(resp.body, "{\"trials\":1}\n{\"trials\":2}\n");
    }
}
