//! The ops view behind the `xedtop` binary: parse the daemon's
//! Prometheus exposition and its flight-recorder dump into a live
//! terminal dashboard — qps, cache-hit and coalesce ratios, shed rate,
//! and p50/p99 latency per request phase.
//!
//! Everything here is pure `string → struct → string`, so the dashboard
//! renders identically in unit tests and against a live socket; the
//! binary only adds the poll loop and screen clearing. Parsing the
//! exposition instead of the JSON snapshot is deliberate dogfooding: if
//! `/metrics?format=prometheus` regresses, `xedtop` goes blank.

use xed_telemetry::trace::Phase;

/// One parsed Prometheus sample line (`name{labels} value`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (underscored, as exposed).
    pub name: String,
    /// Label pairs in exposition order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition into samples, skipping comments and
/// blank lines. Malformed lines are dropped, not errors: a dashboard
/// must keep rendering through a partially-garbled scrape.
pub fn parse_prometheus(text: &str) -> Vec<Sample> {
    text.lines().filter_map(parse_sample).collect()
}

fn parse_sample(line: &str) -> Option<Sample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (name_part, value_part) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}')?;
            let labels = &line[open + 1..close];
            let value = line[close + 1..].trim();
            return Some(Sample {
                name: line[..open].to_string(),
                labels: parse_labels(labels)?,
                value: value.parse().ok()?,
            });
        }
        None => {
            let mut parts = line.split_whitespace();
            (parts.next()?, parts.next()?)
        }
    };
    Some(Sample {
        name: name_part.to_string(),
        labels: Vec::new(),
        value: value_part.parse().ok()?,
    })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, value) = pair.split_once('=')?;
        let value = value.strip_prefix('"')?.strip_suffix('"')?;
        labels.push((name.to_string(), value.to_string()));
    }
    Some(labels)
}

/// The value of the first unlabeled sample named `name`, if present.
pub fn value(samples: &[Sample], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

/// A quantile read off a cumulative `<base>_bucket` histogram: the
/// smallest `le` edge whose cumulative count covers rank `⌈q·n⌉`.
/// `None` when the histogram is absent or empty.
pub fn quantile(samples: &[Sample], base: &str, q: f64) -> Option<f64> {
    let bucket = format!("{base}_bucket");
    let mut edges: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == bucket)
        .filter_map(|s| {
            let le = s.labels.iter().find(|(n, _)| n == "le")?;
            let edge = if le.1 == "+Inf" {
                f64::INFINITY
            } else {
                le.1.parse().ok()?
            };
            Some((edge, s.value))
        })
        .collect();
    edges.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = edges.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let rank = (q * total).ceil().max(1.0);
    edges
        .iter()
        .find(|&&(_, cumulative)| cumulative >= rank)
        .map(|&(edge, _)| edge)
}

/// Rate-style figures derived from two consecutive scrapes `dt` seconds
/// apart (deltas) plus the current scrape (ratios over all time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rates {
    /// Requests per second over the last interval.
    pub qps: f64,
    /// 503 sheds per second over the last interval.
    pub shed_per_sec: f64,
    /// Lifetime cache-hit ratio `hits / (hits + misses)`.
    pub hit_ratio: f64,
    /// Lifetime coalesce ratio `coalesced / requests`.
    pub coalesce_ratio: f64,
}

/// Derives [`Rates`] from the previous and current scrapes.
pub fn rates(prev: &[Sample], cur: &[Sample], dt_seconds: f64) -> Rates {
    let dt = dt_seconds.max(1e-9);
    let delta =
        |name: &str| (value(cur, name).unwrap_or(0.0) - value(prev, name).unwrap_or(0.0)).max(0.0);
    let hits = value(cur, "xedd_cache_hits").unwrap_or(0.0);
    let misses = value(cur, "xedd_cache_misses").unwrap_or(0.0);
    let requests = value(cur, "xedd_requests").unwrap_or(0.0);
    let coalesced = value(cur, "xedd_coalesced").unwrap_or(0.0);
    Rates {
        qps: delta("xedd_requests") / dt,
        shed_per_sec: delta("xedd_shed") / dt,
        hit_ratio: if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        },
        coalesce_ratio: if requests > 0.0 {
            coalesced / requests
        } else {
            0.0
        },
    }
}

/// Counts the spans per phase in a `xed-trace-spans-v1` flight dump —
/// the "what just happened" row of the dashboard.
pub fn span_counts(flight_json: &str) -> Vec<(&'static str, usize)> {
    Phase::ALL
        .iter()
        .map(|p| {
            let needle = format!("\"name\":\"{}\"", p.label());
            (p.label(), flight_json.matches(&needle).count())
        })
        .collect()
}

/// Formats nanoseconds as a right-aligned microsecond figure, or `-`
/// when the histogram had no samples.
fn us(ns: Option<f64>) -> String {
    match ns {
        Some(v) if v.is_finite() => format!("{:>9.0}", v / 1_000.0),
        Some(_) => format!("{:>9}", ">max"),
        None => format!("{:>9}", "-"),
    }
}

/// Renders the dashboard from one scrape, its derived [`Rates`], and the
/// latest flight dump. Pure string assembly — unit-tested, and the
/// binary reprints it on every poll.
pub fn render(cur: &[Sample], r: &Rates, flight_json: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("xedtop — xedd live ops view\n\n");
    out.push_str(&format!(
        "  qps {:>10.1}    shed/s {:>8.1}    cache hit {:>5.1} %    coalesced {:>5.1} %\n",
        r.qps,
        r.shed_per_sec,
        r.hit_ratio * 100.0,
        r.coalesce_ratio * 100.0,
    ));
    out.push_str(&format!(
        "  requests {:>9}    evaluations {:>7}    early stops {:>5}    flight dumps {:>3}\n\n",
        value(cur, "xedd_requests").unwrap_or(0.0) as u64,
        value(cur, "xedd_evaluations").unwrap_or(0.0) as u64,
        value(cur, "xedd_early_stops").unwrap_or(0.0) as u64,
        value(cur, "xedd_flight_dumps").unwrap_or(0.0) as u64,
    ));
    out.push_str("  phase            p50 us    p99 us\n");
    for (label, base) in [
        ("admission", "xedd_phase_admission_ns"),
        ("cache", "xedd_phase_cache_ns"),
        ("coalesce", "xedd_phase_coalesce_ns"),
        ("evaluate", "xedd_phase_evaluate_ns"),
        ("stream", "xedd_phase_stream_ns"),
    ] {
        out.push_str(&format!(
            "    {label:<12} {} {}\n",
            us(quantile(cur, base, 0.50)),
            us(quantile(cur, base, 0.99)),
        ));
    }
    out.push_str("\n  flight recorder spans:");
    for (label, count) in span_counts(flight_json) {
        if count > 0 {
            out.push_str(&format!("  {label} {count}"));
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
# HELP xedd_requests HTTP reliability queries accepted by the daemon
# TYPE xedd_requests counter
xedd_requests 40
xedd_cache_hits 30
xedd_cache_misses 10
xedd_coalesced 4
xedd_shed 2
xedd_evaluations 6
# TYPE xedd_phase_evaluate_ns histogram
xedd_phase_evaluate_ns_bucket{le=\"1023\"} 1
xedd_phase_evaluate_ns_bucket{le=\"2047\"} 3
xedd_phase_evaluate_ns_bucket{le=\"+Inf\"} 4
xedd_phase_evaluate_ns_sum 6000
xedd_phase_evaluate_ns_count 4
";

    #[test]
    fn parses_samples_and_labels() {
        let samples = parse_prometheus(SCRAPE);
        assert_eq!(value(&samples, "xedd_requests"), Some(40.0));
        assert_eq!(value(&samples, "xedd_phase_evaluate_ns_count"), Some(4.0));
        let bucket = samples
            .iter()
            .find(|s| s.name == "xedd_phase_evaluate_ns_bucket")
            .expect("bucket sample");
        assert_eq!(bucket.labels, [("le".to_string(), "1023".to_string())]);
        assert_eq!(value(&samples, "xedd_missing"), None);
    }

    #[test]
    fn malformed_lines_are_dropped_not_fatal() {
        let samples = parse_prometheus("garbage\nxedd_ok 1\nxedd_bad notanumber\nx{le=\"1\"\n");
        assert_eq!(samples.len(), 1);
        assert_eq!(value(&samples, "xedd_ok"), Some(1.0));
    }

    #[test]
    fn quantiles_read_cumulative_buckets() {
        let samples = parse_prometheus(SCRAPE);
        // n = 4: p50 rank 2 → first edge covering 2 is le=2047; p99
        // rank 4 → the +Inf bucket.
        assert_eq!(
            quantile(&samples, "xedd_phase_evaluate_ns", 0.50),
            Some(2047.0)
        );
        assert_eq!(
            quantile(&samples, "xedd_phase_evaluate_ns", 0.99),
            Some(f64::INFINITY)
        );
        assert_eq!(quantile(&samples, "xedd_phase_cache_ns", 0.5), None);
    }

    #[test]
    fn rates_use_deltas_for_qps_and_totals_for_ratios() {
        let prev = parse_prometheus("xedd_requests 20\nxedd_shed 2\n");
        let cur = parse_prometheus(SCRAPE);
        let r = rates(&prev, &cur, 2.0);
        assert!((r.qps - 10.0).abs() < 1e-9, "qps {}", r.qps);
        assert!((r.shed_per_sec - 0.0).abs() < 1e-9);
        assert!((r.hit_ratio - 0.75).abs() < 1e-9);
        assert!((r.coalesce_ratio - 0.1).abs() < 1e-9);
    }

    #[test]
    fn span_counts_tally_flight_dump_phases() {
        let json = "{\"traceEvents\":[{\"name\":\"request\"},{\"name\":\"admission\"},{\"name\":\"scheduler_chunk\"},{\"name\":\"scheduler_chunk\"}]}";
        let counts = span_counts(json);
        let get = |label: &str| {
            counts
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0, |&(_, c)| c)
        };
        assert_eq!(get("request"), 1);
        assert_eq!(get("scheduler_chunk"), 2);
        assert_eq!(get("cache_lookup"), 0);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let cur = parse_prometheus(SCRAPE);
        let r = rates(&cur, &cur, 1.0);
        let dash = render(&cur, &r, "{\"traceEvents\":[{\"name\":\"evaluate\"}]}");
        assert!(dash.contains("qps"), "{dash}");
        assert!(dash.contains("cache hit  75.0 %"), "{dash}");
        assert!(dash.contains("evaluate"), "{dash}");
        assert!(
            dash.contains("flight recorder spans:  evaluate 1"),
            "{dash}"
        );
        // Rendering twice from the same inputs is byte-identical.
        assert_eq!(
            dash,
            render(&cur, &r, "{\"traceEvents\":[{\"name\":\"evaluate\"}]}")
        );
    }
}
