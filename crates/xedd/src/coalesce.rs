//! Request coalescing: concurrent identical-key requests share one
//! computation.
//!
//! The first request for a canonical key becomes the *leader*: it runs
//! the engine once, publishing each rendered partial line into a shared
//! [`Flight`] as it completes. Every concurrent request for the same key
//! becomes a *follower*: it attaches to the flight, replays the lines
//! already published, streams new ones as the leader produces them, and
//! receives the identical final response — one evaluation for K clients
//! (`xedd.coalesced` counts the K−1 attachments; the selftest asserts
//! `xedd.evaluations` stayed at 1).
//!
//! Because responses are rendered deterministically (see `render`),
//! leader and followers emit **byte-identical** streams, and a follower
//! that attaches mid-flight observes exactly the prefix a fresh client
//! would have.

use crate::render::CachedResponse;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use xed_faultsim::engine::CanonicalKey;

/// The outcome a flight resolves to: the shared response, or the
/// leader's error message (propagated to every follower).
pub type FlightResult = Result<Arc<CachedResponse>, String>;

/// Shared state of one in-flight evaluation.
#[derive(Debug, Default)]
struct FlightState {
    /// Rendered partial lines published so far.
    lines: Vec<String>,
    /// The terminal outcome, once the leader finished.
    done: Option<FlightResult>,
}

/// One in-flight computation: published partials plus a condition
/// variable followers park on.
#[derive(Debug, Default)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
    /// The leader's trace id (0 until the leader announces it) — what a
    /// follower records as the `a` attribute of its `CoalesceFollow`
    /// span, tying the two traces together.
    leader_trace: AtomicU64,
}

/// Recovers a usable guard from a possibly-poisoned lock. Flight state
/// is plain data and its mutations are single-statement, so a poisoned
/// mutex is still consistent.
fn lock_state(flight: &Flight) -> MutexGuard<'_, FlightState> {
    match flight.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Flight {
    /// Blocks until the flight completes and returns the shared outcome,
    /// replaying every published partial line (those already emitted and
    /// those still arriving) through `on_line` first.
    pub fn follow(&self, mut on_line: impl FnMut(&str)) -> FlightResult {
        let mut seen = 0usize;
        let mut state = lock_state(self);
        loop {
            while seen < state.lines.len() {
                // Clone the pending line out so the callback (which may
                // block on a client socket) runs without the flight lock.
                let line = state.lines[seen].clone();
                seen += 1;
                drop(state);
                on_line(&line);
                state = lock_state(self);
            }
            if let Some(result) = &state.done {
                return result.clone();
            }
            state = match self.cv.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// The leader's trace id, once announced via
    /// [`LeaderGuard::set_trace`] (0 before that, or for untraced
    /// leaders). Release/Acquire: a follower that saw the flight in the
    /// table may read before the leader stores; 0 then is fine — the
    /// handoff span simply lacks the edge.
    pub fn leader_trace(&self) -> u64 {
        self.leader_trace.load(Ordering::Acquire)
    }

    /// Blocks until the flight completes (no partial replay).
    pub fn wait(&self) -> FlightResult {
        let mut state = lock_state(self);
        loop {
            if let Some(result) = &state.done {
                return result.clone();
            }
            state = match self.cv.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// The in-flight table: canonical key → live flight.
#[derive(Debug, Default)]
pub struct Coalescer {
    table: Mutex<HashMap<CanonicalKey, Arc<Flight>>>,
}

/// What joining the table made this request.
#[derive(Debug)]
pub enum Join<'a> {
    /// First in: run the evaluation and publish through the guard.
    Leader(LeaderGuard<'a>),
    /// An identical request is already computing: attach to it.
    Follower(Arc<Flight>),
}

impl Coalescer {
    /// A fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the table under `key`: the first caller per key leads, every
    /// concurrent caller follows. The leader's guard removes the flight
    /// at completion (or on unwind), so later requests start fresh —
    /// normally hitting the memo cache the leader populated.
    pub fn join(&self, key: CanonicalKey) -> Join<'_> {
        let mut table = match self.table.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(flight) = table.get(&key) {
            return Join::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::default());
        table.insert(key, Arc::clone(&flight));
        Join::Leader(LeaderGuard {
            coalescer: self,
            key,
            flight,
            finished: false,
        })
    }

    /// Flights currently in the table.
    pub fn in_flight(&self) -> usize {
        match self.table.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    fn remove(&self, key: &CanonicalKey) {
        let mut table = match self.table.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        table.remove(key);
    }
}

/// The leader's handle on its flight. Publishes partials, resolves the
/// flight on finish — and resolves it with an error if dropped without
/// finishing (e.g. the evaluation panicked), so followers never hang.
#[derive(Debug)]
pub struct LeaderGuard<'a> {
    coalescer: &'a Coalescer,
    key: CanonicalKey,
    flight: Arc<Flight>,
    finished: bool,
}

impl LeaderGuard<'_> {
    /// The key this flight computes.
    pub fn key(&self) -> &CanonicalKey {
        &self.key
    }

    /// Announces the leader's trace id to followers (see
    /// [`Flight::leader_trace`]).
    pub fn set_trace(&self, trace_id: u64) {
        self.flight.leader_trace.store(trace_id, Ordering::Release);
    }

    /// Publishes one rendered partial line to all followers.
    pub fn publish_line(&self, line: &str) {
        let mut state = lock_state(&self.flight);
        state.lines.push(line.to_string());
        drop(state);
        self.flight.cv.notify_all();
    }

    /// Resolves the flight and removes it from the table.
    pub fn finish(mut self, result: FlightResult) {
        self.resolve(result);
    }

    fn resolve(&mut self, result: FlightResult) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut state = lock_state(&self.flight);
        state.done = Some(result);
        drop(state);
        self.flight.cv.notify_all();
        self.coalescer.remove(&self.key);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        self.resolve(Err("evaluation aborted before completing".to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CanonicalKey {
        CanonicalKey { hi: n, lo: n }
    }

    fn response(body: &str) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            key: key(9),
            progress_lines: Vec::new(),
            body: body.to_string(),
        })
    }

    #[test]
    fn second_joiner_becomes_follower() {
        let c = Coalescer::new();
        let leader = match c.join(key(1)) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        assert!(matches!(c.join(key(1)), Join::Follower(_)));
        assert!(
            matches!(c.join(key(2)), Join::Leader(_)),
            "distinct keys lead"
        );
        leader.finish(Ok(response("done")));
        assert!(
            matches!(c.join(key(1)), Join::Leader(_)),
            "finished key restarts"
        );
    }

    #[test]
    fn followers_see_all_lines_and_the_result() {
        let c = Coalescer::new();
        let leader = match c.join(key(1)) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        leader.publish_line("line-0");
        let flight = match c.join(key(1)) {
            Join::Follower(f) => f,
            Join::Leader(_) => panic!("must follow"),
        };
        let handle = std::thread::spawn(move || {
            let mut lines = Vec::new();
            let result = flight.follow(|l| lines.push(l.to_string()));
            (lines, result)
        });
        leader.publish_line("line-1");
        leader.finish(Ok(response("final")));
        let (lines, result) = handle.join().expect("follower thread");
        assert_eq!(lines, ["line-0", "line-1"]);
        assert_eq!(result.expect("ok").body, "final");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn leader_trace_id_reaches_followers() {
        let c = Coalescer::new();
        let leader = match c.join(key(1)) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        let flight = match c.join(key(1)) {
            Join::Follower(f) => f,
            Join::Leader(_) => panic!("must follow"),
        };
        assert_eq!(flight.leader_trace(), 0, "unannounced trace reads as 0");
        leader.set_trace(0xABCD);
        assert_eq!(flight.leader_trace(), 0xABCD);
        leader.finish(Ok(response("done")));
    }

    #[test]
    fn dropped_leader_resolves_followers_with_an_error() {
        let c = Coalescer::new();
        let leader = match c.join(key(1)) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        let flight = match c.join(key(1)) {
            Join::Follower(f) => f,
            Join::Leader(_) => panic!("must follow"),
        };
        drop(leader);
        let result = flight.wait();
        assert!(result.is_err(), "abandoned flight must error, not hang");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn many_concurrent_followers_converge() {
        let c = Arc::new(Coalescer::new());
        let leader = match c.join(key(7)) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || match c.join(key(7)) {
                Join::Follower(f) => f.wait().expect("ok").body.clone(),
                Join::Leader(_) => panic!("leader already exists"),
            }));
        }
        // Let followers attach before resolving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        leader.finish(Ok(response("shared")));
        for h in handles {
            assert_eq!(h.join().expect("follower"), "shared");
        }
    }
}
