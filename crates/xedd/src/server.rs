//! The daemon: a blocking-accept listener feeding a bounded queue drained
//! by a worker thread pool.
//!
//! Request lifecycle (DESIGN.md §15):
//!
//! 1. **Admission.** The acceptor thread pushes the connection onto a
//!    bounded queue. At the limit it sheds load instead: an immediate
//!    `503` (`xedd.shed`) — queueing deeper would only convert overload
//!    into timeouts.
//! 2. **Normalization.** A worker parses the request and builds the
//!    canonical engine [`Query`]; its 128-bit canonical key is the
//!    identity for both memoization and coalescing.
//! 3. **Memoization.** A key hit replays the stored response — including
//!    every streamed partial line — byte-for-byte in O(1).
//! 4. **Coalescing.** On a miss, the first request becomes the flight
//!    leader and evaluates once; concurrent identical requests follow the
//!    flight and stream the leader's bytes as they are produced.
//!
//! Responses carry `X-Xedd-Cache: hit | miss | coalesced` so clients (and
//! the selftest) can observe which path served them without the body
//! differing by a byte.
//!
//! Every request additionally runs under a trace id (honored from an
//! `X-Xedd-Trace` request header or freshly assigned), echoed back in the
//! response headers and threaded through the phase spans of DESIGN.md
//! §16: admission wait, cache lookup, coalesce lead/follow, evaluation,
//! and streaming all land in the per-thread flight-recorder rings,
//! dumpable via `/debug/flight` or on panic / shed bursts.

use crate::cache::MemoCache;
use crate::coalesce::{Coalescer, Join, LeaderGuard};
use crate::http;
use crate::render::{self, CachedResponse};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xed_faultsim::engine::Query;
use xed_faultsim::schemes::Scheme;
use xed_telemetry::registry::{self, metrics};
use xed_telemetry::trace::{self, Phase, SpanCtx, SpanEvent};

/// Per-connection socket read timeout: a stalled client must not pin a
/// worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Consecutive sheds that trigger one flight-recorder dump to stderr: a
/// burst means the daemon is drowning, and the rings hold exactly the
/// last requests' phase history an operator needs.
const SHED_BURST_DUMP: u32 = 8;

/// Build identity reported by `/healthz`; baked in at compile time when
/// the build sets `XEDD_GIT_HASH` (see `scripts/ci.sh`).
const GIT_HASH: &str = match option_env!("XEDD_GIT_HASH") {
    Some(hash) => hash,
    None => "unknown",
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct XeddConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Admission-control bound: accepted-but-unserviced connections
    /// beyond this are shed with `503`.
    pub queue_limit: usize,
    /// Memo-cache capacity in responses.
    pub cache_capacity: usize,
    /// Memo-cache lock stripes.
    pub cache_shards: usize,
    /// Whether request tracing (flight recorder + `/debug/flight`) is
    /// enabled. Span recording is gated on one relaxed atomic load when
    /// off.
    pub tracing: bool,
}

impl Default for XeddConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_limit: 64,
            cache_capacity: 256,
            cache_shards: 8,
            tracing: true,
        }
    }
}

/// State shared by the acceptor and every worker.
#[derive(Debug)]
struct Inner {
    cache: MemoCache,
    coalescer: Coalescer,
    /// Pending connections, each stamped with its enqueue time
    /// (`trace::now_ns`) so the dequeuing worker can reconstruct the
    /// admission-wait span.
    queue: Mutex<VecDeque<(TcpStream, u64)>>,
    queue_cv: Condvar,
    queue_limit: usize,
    shutdown: AtomicBool,
    /// Daemon start time, for the `/healthz` uptime report.
    started: Instant,
}

/// A running daemon. Dropping it shuts the listener and workers down.
#[derive(Debug)]
pub struct Server {
    port: u16,
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor plus worker pool.
    pub fn start(config: XeddConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .port();
        trace::set_trace_enabled(config.tracing);
        let inner = Arc::new(Inner {
            cache: MemoCache::new(config.cache_capacity, config.cache_shards),
            coalescer: Coalescer::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_limit: config.queue_limit.max(1),
            shutdown: AtomicBool::new(false),
            // Reporting-only wall clock (uptime in /healthz).
            started: Instant::now(), // xed-lint: allow(XL005)
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Server {
            port,
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The loopback address clients reach the daemon at.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// Signals shutdown and joins the acceptor and workers. Queued
    /// connections are drained before workers exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        // Release pairs with the Acquire loads in the accept and worker
        // loops (the workspace's boundary ordering discipline, XA102).
        self.inner.shutdown.store(true, Ordering::Release);
        // Unblock the blocking accept with a throwaway connection; the
        // acceptor re-checks the flag before queueing anything.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        self.inner.queue_cv.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Dumps the flight recorder (every slot's retained spans) to stderr as
/// `xed-trace-spans-v1` JSON. Wired to the daemon's panic path and to
/// shed bursts — the moments when the last few requests' phase history
/// is worth keeping.
pub fn dump_flight_to_stderr(why: &str) {
    metrics::XEDD_FLIGHT_DUMPS.incr();
    let spans = xed_telemetry::export::collect_spans(None);
    eprintln!(
        "xedd: flight recorder dump ({why}): {} span(s)\n{}",
        spans.len(),
        xed_telemetry::export::spans_to_chrome_json(&spans)
    );
}

/// Accepts connections and applies admission control.
fn accept_loop(listener: &TcpListener, inner: &Inner) {
    // Consecutive sheds seen; one flight dump per burst (resets on the
    // first successful admission).
    let mut shed_burst = 0u32;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut queue = match inner.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if queue.len() >= inner.queue_limit {
            drop(queue);
            metrics::XEDD_SHED.incr();
            shed_burst += 1;
            if shed_burst == SHED_BURST_DUMP {
                dump_flight_to_stderr("shed burst");
            }
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                &[("Retry-After", "1")],
                "{\"error\":\"overloaded: request queue is full\"}",
            );
            continue;
        }
        shed_burst = 0;
        queue.push_back((stream, trace::now_ns()));
        metrics::XEDD_QUEUE_DEPTH.record(queue.len() as u64);
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Pops queued connections and serves them until shutdown.
fn worker_loop(inner: &Inner) {
    loop {
        let mut queue = match inner.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (stream, enqueued_ns) = loop {
            if let Some(entry) = queue.pop_front() {
                break entry;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = match inner.queue_cv.wait(queue) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        };
        drop(queue);
        handle_connection(inner, stream, enqueued_ns);
    }
}

/// Per-request trace identity: the id (honored from `X-Xedd-Trace` or
/// freshly assigned), the root span id that phase spans parent to, and
/// the id pre-rendered for the response echo header.
struct ReqCtx {
    trace_id: u64,
    root: u32,
    hex: String,
}

impl ReqCtx {
    fn new(request: &http::Request, enqueued_ns: u64, dequeued_ns: u64) -> Self {
        let trace_id = request.trace.unwrap_or_else(trace::next_trace_id);
        let root = trace::next_span_id();
        // The queue wait becomes the admission span only now: the trace
        // id lives in headers that are parsed after dequeue.
        trace::record_span(SpanEvent {
            trace_id,
            span_id: trace::next_span_id(),
            parent: root,
            phase: Phase::Admission,
            a: 0,
            t_start: enqueued_ns,
            t_end: dequeued_ns,
        });
        Self {
            trace_id,
            root,
            hex: format!("{trace_id:016x}"),
        }
    }

    /// The `X-Xedd-Trace` response header echoing this request's id.
    fn echo(&self) -> (&str, &str) {
        ("X-Xedd-Trace", self.hex.as_str())
    }

    /// Records a child-of-root span that started at `t_start` and closes
    /// now.
    fn child(&self, phase: Phase, a: u64, t_start: u64) {
        trace::record_span(SpanEvent {
            trace_id: self.trace_id,
            span_id: trace::next_span_id(),
            parent: self.root,
            phase,
            a,
            t_start,
            t_end: trace::now_ns(),
        });
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(inner: &Inner, stream: TcpStream, enqueued_ns: u64) {
    metrics::XEDD_REQUESTS.incr();
    let dequeued_ns = trace::now_ns();
    metrics::XEDD_PHASE_ADMISSION_NS.record(dequeued_ns.saturating_sub(enqueued_ns));
    // Wall-clock latency telemetry for /metrics; never in a response body.
    let started = Instant::now(); // xed-lint: allow(XL005)
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    match http::read_request(&mut reader) {
        Ok(request) if request.method == "GET" => {
            let ctx = ReqCtx::new(&request, enqueued_ns, dequeued_ns);
            trace::set_current(Some(SpanCtx {
                trace_id: ctx.trace_id,
                span_id: ctx.root,
            }));
            route(inner, &mut stream, &request, started, &ctx);
            trace::set_current(None);
            trace::record_span(SpanEvent {
                trace_id: ctx.trace_id,
                span_id: ctx.root,
                parent: 0,
                phase: Phase::Request,
                a: 0,
                t_start: enqueued_ns,
                t_end: trace::now_ns(),
            });
        }
        Ok(request) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":\"method {} not supported; use GET\"}}",
                request.method
            );
            let _ = http::write_response(&mut stream, 400, &[], &body);
        }
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":{}}}",
                xed_telemetry::export::json_string(&reason)
            );
            let _ = http::write_response(&mut stream, 400, &[], &body);
        }
    }
    metrics::XEDD_REQUEST_NS.record(started.elapsed().as_nanos() as u64);
}

fn route(
    inner: &Inner,
    stream: &mut TcpStream,
    request: &http::Request,
    started: Instant,
    ctx: &ReqCtx,
) {
    match request.path.as_str() {
        "/healthz" => {
            let body = format!(
                "{{\"ok\":true,\"git\":\"{GIT_HASH}\",\"schemes\":{},\"uptime_seconds\":{}}}",
                Scheme::ALL.len(),
                inner.started.elapsed().as_secs()
            );
            let _ = http::write_response(stream, 200, &[ctx.echo()], &body);
            metrics::XEDD_ENDPOINT_HEALTHZ_NS.record(started.elapsed().as_nanos() as u64);
        }
        "/metrics" => {
            let prometheus = request
                .params
                .iter()
                .any(|(name, value)| name == "format" && value == "prometheus");
            if prometheus {
                let _ = http::write_response_typed(
                    stream,
                    200,
                    "text/plain; version=0.0.4",
                    &[ctx.echo()],
                    &registry::snapshot().to_prometheus_text(),
                );
            } else {
                let body = format!(
                    "{{\"schema\":\"xedd-metrics-v1\",\"metrics\":{}}}",
                    registry::snapshot().to_json_array()
                );
                let _ = http::write_response(stream, 200, &[ctx.echo()], &body);
            }
            metrics::XEDD_ENDPOINT_METRICS_NS.record(started.elapsed().as_nanos() as u64);
        }
        "/debug/flight" => {
            metrics::XEDD_FLIGHT_DUMPS.incr();
            let filter = request
                .params
                .iter()
                .find(|(name, _)| name == "trace")
                .and_then(|(_, value)| http::parse_trace_id(value));
            let body = xed_telemetry::export::spans_to_chrome_json(
                &xed_telemetry::export::collect_spans(filter),
            );
            let _ = http::write_response(stream, 200, &[ctx.echo()], &body);
            metrics::XEDD_ENDPOINT_FLIGHT_NS.record(started.elapsed().as_nanos() as u64);
        }
        "/v1/query" => {
            handle_query(inner, stream, &request.params, started, ctx);
            metrics::XEDD_ENDPOINT_QUERY_NS.record(started.elapsed().as_nanos() as u64);
        }
        _ => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let _ = http::write_response(stream, 404, &[], "{\"error\":\"no such route\"}");
        }
    }
}

/// Records time-to-first-content once per request.
#[derive(Debug)]
struct Ttfc {
    started: Instant,
    recorded: bool,
}

impl Ttfc {
    fn new(started: Instant) -> Self {
        Self {
            started,
            recorded: false,
        }
    }

    fn mark(&mut self) {
        if !self.recorded {
            self.recorded = true;
            metrics::XEDD_TTFC_NS.record(self.started.elapsed().as_nanos() as u64);
        }
    }
}

fn handle_query(
    inner: &Inner,
    stream: &mut TcpStream,
    params: &[(String, String)],
    started: Instant,
    ctx: &ReqCtx,
) {
    // `partials` is transport framing, not query identity: strip it
    // before the canonical key is derived.
    let mut partials: Option<bool> = None;
    let mut engine_params = Vec::with_capacity(params.len());
    for (name, value) in params {
        if name == "partials" {
            match value.as_str() {
                "1" | "true" | "yes" => partials = Some(true),
                "0" | "false" | "no" => partials = Some(false),
                _ => {
                    metrics::XEDD_HTTP_ERRORS.incr();
                    let _ = http::write_response(
                        stream,
                        400,
                        &[],
                        "{\"error\":\"parameter partials: expected a boolean\"}",
                    );
                    return;
                }
            }
        } else {
            engine_params.push((name.clone(), value.clone()));
        }
    }
    let query = match http::query_from_params(&engine_params) {
        Ok(query) => query,
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":{}}}",
                xed_telemetry::export::json_string(&reason)
            );
            let _ = http::write_response(stream, 400, &[], &body);
            return;
        }
    };
    // Streamed partial-confidence framing: on by default for early-stop
    // queries (the partials are the point), overridable either way.
    let streaming = partials.unwrap_or(query.epsilon.is_some());
    let mut ttfc = Ttfc::new(started);

    let t_cache = trace::now_ns();
    let key = query.canonical_key();
    let cached = inner.cache.lookup(&key);
    metrics::XEDD_PHASE_CACHE_NS.record(trace::now_ns().saturating_sub(t_cache));
    ctx.child(Phase::CacheLookup, u64::from(cached.is_some()), t_cache);
    if let Some(cached) = cached {
        serve_cached(stream, &cached, streaming, "hit", &mut ttfc, ctx);
        return;
    }
    match inner.coalescer.join(key) {
        Join::Leader(leader) => {
            serve_as_leader(inner, stream, &query, leader, streaming, &mut ttfc, ctx);
        }
        Join::Follower(flight) => {
            metrics::XEDD_COALESCED.incr();
            let t_follow = trace::now_ns();
            if streaming {
                if http::write_chunked_head(stream, &[("X-Xedd-Cache", "coalesced"), ctx.echo()])
                    .is_err()
                {
                    let _ = flight.wait();
                    return;
                }
                let result = flight.follow(|line| {
                    ttfc.mark();
                    metrics::XEDD_STREAM_CHUNKS.incr();
                    let _ = http::write_chunk(stream, line);
                });
                match result {
                    Ok(response) => {
                        ttfc.mark();
                        metrics::XEDD_STREAM_CHUNKS.incr();
                        let _ = http::write_chunk(stream, &response.body);
                    }
                    Err(reason) => {
                        let _ = http::write_chunk(stream, &error_line(&reason));
                    }
                }
                let _ = http::write_chunked_end(stream);
            } else {
                match flight.wait() {
                    Ok(response) => {
                        ttfc.mark();
                        let _ = http::write_response(
                            stream,
                            200,
                            &[("X-Xedd-Cache", "coalesced"), ctx.echo()],
                            &response.body,
                        );
                    }
                    Err(reason) => {
                        metrics::XEDD_HTTP_ERRORS.incr();
                        let body = format!(
                            "{{\"error\":{}}}",
                            xed_telemetry::export::json_string(&reason)
                        );
                        let _ = http::write_response(stream, 500, &[], &body);
                    }
                }
            }
            metrics::XEDD_PHASE_COALESCE_NS.record(trace::now_ns().saturating_sub(t_follow));
            // `a` carries the leader's trace id: the cross-trace handoff
            // edge Perfetto can't draw but the selftest can assert.
            ctx.child(Phase::CoalesceFollow, flight.leader_trace(), t_follow);
        }
    }
}

/// Runs the one real evaluation for a flight, streaming to this client
/// and publishing every line to attached followers.
fn serve_as_leader(
    inner: &Inner,
    stream: &mut TcpStream,
    query: &Query,
    leader: LeaderGuard<'_>,
    streaming: bool,
    ttfc: &mut Ttfc,
    ctx: &ReqCtx,
) {
    metrics::XEDD_EVALUATIONS.incr();
    // Announce our trace id so followers can record the handoff edge.
    leader.set_trace(ctx.trace_id);
    let head_ok = if streaming {
        http::write_chunked_head(stream, &[("X-Xedd-Cache", "miss"), ctx.echo()]).is_ok()
    } else {
        true
    };
    // The evaluation runs under a CoalesceLead span so engine-side spans
    // (Evaluate, SchedulerChunk) nest beneath it, not the root.
    let lead_span = trace::next_span_id();
    trace::set_current(Some(SpanCtx {
        trace_id: ctx.trace_id,
        span_id: lead_span,
    }));
    let t_eval = trace::now_ns();
    let result = render::evaluate_to_response(query, |line| {
        leader.publish_line(line);
        if streaming && head_ok {
            ttfc.mark();
            metrics::XEDD_STREAM_CHUNKS.incr();
            let _ = http::write_chunk(stream, line);
        }
    });
    metrics::XEDD_PHASE_EVALUATE_NS.record(trace::now_ns().saturating_sub(t_eval));
    trace::set_current(Some(SpanCtx {
        trace_id: ctx.trace_id,
        span_id: ctx.root,
    }));
    trace::record_span(SpanEvent {
        trace_id: ctx.trace_id,
        span_id: lead_span,
        parent: ctx.root,
        phase: Phase::CoalesceLead,
        a: 0,
        t_start: t_eval,
        t_end: trace::now_ns(),
    });
    match result {
        Ok(response) => {
            let response = Arc::new(response);
            if crate::json::field(&response.body, "early_stop") == Some("true") {
                metrics::XEDD_EARLY_STOPS.incr();
            }
            inner.cache.insert(*leader.key(), Arc::clone(&response));
            leader.finish(Ok(Arc::clone(&response)));
            if streaming {
                if head_ok {
                    ttfc.mark();
                    metrics::XEDD_STREAM_CHUNKS.incr();
                    let _ = http::write_chunk(stream, &response.body);
                    let _ = http::write_chunked_end(stream);
                }
            } else {
                ttfc.mark();
                let _ = http::write_response(
                    stream,
                    200,
                    &[("X-Xedd-Cache", "miss"), ctx.echo()],
                    &response.body,
                );
            }
        }
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            leader.finish(Err(reason.clone()));
            if streaming {
                if head_ok {
                    let _ = http::write_chunk(stream, &error_line(&reason));
                    let _ = http::write_chunked_end(stream);
                }
            } else {
                let body = format!(
                    "{{\"error\":{}}}",
                    xed_telemetry::export::json_string(&reason)
                );
                let _ = http::write_response(stream, 400, &[], &body);
            }
        }
    }
}

/// Replays a memoized response — the O(1) repeat-query path. Byte-for-byte
/// identical to the cold response in both framings.
fn serve_cached(
    stream: &mut TcpStream,
    cached: &CachedResponse,
    streaming: bool,
    tag: &str,
    ttfc: &mut Ttfc,
    ctx: &ReqCtx,
) {
    if streaming {
        let t_stream = trace::now_ns();
        if http::write_chunked_head(stream, &[("X-Xedd-Cache", tag), ctx.echo()]).is_err() {
            return;
        }
        for line in &cached.progress_lines {
            ttfc.mark();
            metrics::XEDD_STREAM_CHUNKS.incr();
            if http::write_chunk(stream, line).is_err() {
                return;
            }
        }
        ttfc.mark();
        metrics::XEDD_STREAM_CHUNKS.incr();
        let _ = http::write_chunk(stream, &cached.body);
        let _ = http::write_chunked_end(stream);
        metrics::XEDD_PHASE_STREAM_NS.record(trace::now_ns().saturating_sub(t_stream));
        ctx.child(Phase::Stream, cached.progress_lines.len() as u64, t_stream);
    } else {
        ttfc.mark();
        let _ = http::write_response(
            stream,
            200,
            &[("X-Xedd-Cache", tag), ctx.echo()],
            &cached.body,
        );
    }
}

fn error_line(reason: &str) -> String {
    format!(
        "{{\"error\":{},\"done\":true}}",
        xed_telemetry::export::json_string(reason)
    )
}
