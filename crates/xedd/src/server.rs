//! The daemon: a blocking-accept listener feeding a bounded queue drained
//! by a worker thread pool.
//!
//! Request lifecycle (DESIGN.md §15):
//!
//! 1. **Admission.** The acceptor thread pushes the connection onto a
//!    bounded queue. At the limit it sheds load instead: an immediate
//!    `503` (`xedd.shed`) — queueing deeper would only convert overload
//!    into timeouts.
//! 2. **Normalization.** A worker parses the request and builds the
//!    canonical engine [`Query`]; its 128-bit canonical key is the
//!    identity for both memoization and coalescing.
//! 3. **Memoization.** A key hit replays the stored response — including
//!    every streamed partial line — byte-for-byte in O(1).
//! 4. **Coalescing.** On a miss, the first request becomes the flight
//!    leader and evaluates once; concurrent identical requests follow the
//!    flight and stream the leader's bytes as they are produced.
//!
//! Responses carry `X-Xedd-Cache: hit | miss | coalesced` so clients (and
//! the selftest) can observe which path served them without the body
//! differing by a byte.

use crate::cache::MemoCache;
use crate::coalesce::{Coalescer, Join, LeaderGuard};
use crate::http;
use crate::render::{self, CachedResponse};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xed_faultsim::engine::Query;
use xed_telemetry::registry::{self, metrics};

/// Per-connection socket read timeout: a stalled client must not pin a
/// worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct XeddConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Admission-control bound: accepted-but-unserviced connections
    /// beyond this are shed with `503`.
    pub queue_limit: usize,
    /// Memo-cache capacity in responses.
    pub cache_capacity: usize,
    /// Memo-cache lock stripes.
    pub cache_shards: usize,
}

impl Default for XeddConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_limit: 64,
            cache_capacity: 256,
            cache_shards: 8,
        }
    }
}

/// State shared by the acceptor and every worker.
#[derive(Debug)]
struct Inner {
    cache: MemoCache,
    coalescer: Coalescer,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_limit: usize,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping it shuts the listener and workers down.
#[derive(Debug)]
pub struct Server {
    port: u16,
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor plus worker pool.
    pub fn start(config: XeddConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .port();
        let inner = Arc::new(Inner {
            cache: MemoCache::new(config.cache_capacity, config.cache_shards),
            coalescer: Coalescer::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_limit: config.queue_limit.max(1),
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Server {
            port,
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The loopback address clients reach the daemon at.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// Signals shutdown and joins the acceptor and workers. Queued
    /// connections are drained before workers exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        // Release pairs with the Acquire loads in the accept and worker
        // loops (the workspace's boundary ordering discipline, XA102).
        self.inner.shutdown.store(true, Ordering::Release);
        // Unblock the blocking accept with a throwaway connection; the
        // acceptor re-checks the flag before queueing anything.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        self.inner.queue_cv.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections and applies admission control.
fn accept_loop(listener: &TcpListener, inner: &Inner) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut queue = match inner.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if queue.len() >= inner.queue_limit {
            drop(queue);
            metrics::XEDD_SHED.incr();
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                &[("Retry-After", "1")],
                "{\"error\":\"overloaded: request queue is full\"}",
            );
            continue;
        }
        queue.push_back(stream);
        metrics::XEDD_QUEUE_DEPTH.record(queue.len() as u64);
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Pops queued connections and serves them until shutdown.
fn worker_loop(inner: &Inner) {
    loop {
        let mut queue = match inner.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let stream = loop {
            if let Some(stream) = queue.pop_front() {
                break stream;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = match inner.queue_cv.wait(queue) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        };
        drop(queue);
        handle_connection(inner, stream);
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(inner: &Inner, stream: TcpStream) {
    metrics::XEDD_REQUESTS.incr();
    // Wall-clock latency telemetry for /metrics; never in a response body.
    let started = Instant::now(); // xed-lint: allow(XL005)
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    match http::read_request(&mut reader) {
        Ok(request) if request.method == "GET" => route(inner, &mut stream, &request, started),
        Ok(request) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":\"method {} not supported; use GET\"}}",
                request.method
            );
            let _ = http::write_response(&mut stream, 400, &[], &body);
        }
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":{}}}",
                xed_telemetry::export::json_string(&reason)
            );
            let _ = http::write_response(&mut stream, 400, &[], &body);
        }
    }
    metrics::XEDD_REQUEST_NS.record(started.elapsed().as_nanos() as u64);
}

fn route(inner: &Inner, stream: &mut TcpStream, request: &http::Request, started: Instant) {
    match request.path.as_str() {
        "/healthz" => {
            let _ = http::write_response(stream, 200, &[], "{\"ok\":true}");
        }
        "/metrics" => {
            let body = format!(
                "{{\"schema\":\"xedd-metrics-v1\",\"metrics\":{}}}",
                registry::snapshot().to_json_array()
            );
            let _ = http::write_response(stream, 200, &[], &body);
        }
        "/v1/query" => handle_query(inner, stream, &request.params, started),
        _ => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let _ = http::write_response(stream, 404, &[], "{\"error\":\"no such route\"}");
        }
    }
}

/// Records time-to-first-content once per request.
#[derive(Debug)]
struct Ttfc {
    started: Instant,
    recorded: bool,
}

impl Ttfc {
    fn new(started: Instant) -> Self {
        Self {
            started,
            recorded: false,
        }
    }

    fn mark(&mut self) {
        if !self.recorded {
            self.recorded = true;
            metrics::XEDD_TTFC_NS.record(self.started.elapsed().as_nanos() as u64);
        }
    }
}

fn handle_query(
    inner: &Inner,
    stream: &mut TcpStream,
    params: &[(String, String)],
    started: Instant,
) {
    // `partials` is transport framing, not query identity: strip it
    // before the canonical key is derived.
    let mut partials: Option<bool> = None;
    let mut engine_params = Vec::with_capacity(params.len());
    for (name, value) in params {
        if name == "partials" {
            match value.as_str() {
                "1" | "true" | "yes" => partials = Some(true),
                "0" | "false" | "no" => partials = Some(false),
                _ => {
                    metrics::XEDD_HTTP_ERRORS.incr();
                    let _ = http::write_response(
                        stream,
                        400,
                        &[],
                        "{\"error\":\"parameter partials: expected a boolean\"}",
                    );
                    return;
                }
            }
        } else {
            engine_params.push((name.clone(), value.clone()));
        }
    }
    let query = match http::query_from_params(&engine_params) {
        Ok(query) => query,
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            let body = format!(
                "{{\"error\":{}}}",
                xed_telemetry::export::json_string(&reason)
            );
            let _ = http::write_response(stream, 400, &[], &body);
            return;
        }
    };
    // Streamed partial-confidence framing: on by default for early-stop
    // queries (the partials are the point), overridable either way.
    let streaming = partials.unwrap_or(query.epsilon.is_some());
    let mut ttfc = Ttfc::new(started);

    let key = query.canonical_key();
    if let Some(cached) = inner.cache.lookup(&key) {
        serve_cached(stream, &cached, streaming, "hit", &mut ttfc);
        return;
    }
    match inner.coalescer.join(key) {
        Join::Leader(leader) => {
            serve_as_leader(inner, stream, &query, leader, streaming, &mut ttfc);
        }
        Join::Follower(flight) => {
            metrics::XEDD_COALESCED.incr();
            if streaming {
                if http::write_chunked_head(stream, &[("X-Xedd-Cache", "coalesced")]).is_err() {
                    let _ = flight.wait();
                    return;
                }
                let result = flight.follow(|line| {
                    ttfc.mark();
                    metrics::XEDD_STREAM_CHUNKS.incr();
                    let _ = http::write_chunk(stream, line);
                });
                match result {
                    Ok(response) => {
                        ttfc.mark();
                        metrics::XEDD_STREAM_CHUNKS.incr();
                        let _ = http::write_chunk(stream, &response.body);
                    }
                    Err(reason) => {
                        let _ = http::write_chunk(stream, &error_line(&reason));
                    }
                }
                let _ = http::write_chunked_end(stream);
            } else {
                match flight.wait() {
                    Ok(response) => {
                        ttfc.mark();
                        let _ = http::write_response(
                            stream,
                            200,
                            &[("X-Xedd-Cache", "coalesced")],
                            &response.body,
                        );
                    }
                    Err(reason) => {
                        metrics::XEDD_HTTP_ERRORS.incr();
                        let body = format!(
                            "{{\"error\":{}}}",
                            xed_telemetry::export::json_string(&reason)
                        );
                        let _ = http::write_response(stream, 500, &[], &body);
                    }
                }
            }
        }
    }
}

/// Runs the one real evaluation for a flight, streaming to this client
/// and publishing every line to attached followers.
fn serve_as_leader(
    inner: &Inner,
    stream: &mut TcpStream,
    query: &Query,
    leader: LeaderGuard<'_>,
    streaming: bool,
    ttfc: &mut Ttfc,
) {
    metrics::XEDD_EVALUATIONS.incr();
    let head_ok = if streaming {
        http::write_chunked_head(stream, &[("X-Xedd-Cache", "miss")]).is_ok()
    } else {
        true
    };
    let result = render::evaluate_to_response(query, |line| {
        leader.publish_line(line);
        if streaming && head_ok {
            ttfc.mark();
            metrics::XEDD_STREAM_CHUNKS.incr();
            let _ = http::write_chunk(stream, line);
        }
    });
    match result {
        Ok(response) => {
            let response = Arc::new(response);
            if crate::json::field(&response.body, "early_stop") == Some("true") {
                metrics::XEDD_EARLY_STOPS.incr();
            }
            inner.cache.insert(*leader.key(), Arc::clone(&response));
            leader.finish(Ok(Arc::clone(&response)));
            if streaming {
                if head_ok {
                    ttfc.mark();
                    metrics::XEDD_STREAM_CHUNKS.incr();
                    let _ = http::write_chunk(stream, &response.body);
                    let _ = http::write_chunked_end(stream);
                }
            } else {
                ttfc.mark();
                let _ =
                    http::write_response(stream, 200, &[("X-Xedd-Cache", "miss")], &response.body);
            }
        }
        Err(reason) => {
            metrics::XEDD_HTTP_ERRORS.incr();
            leader.finish(Err(reason.clone()));
            if streaming {
                if head_ok {
                    let _ = http::write_chunk(stream, &error_line(&reason));
                    let _ = http::write_chunked_end(stream);
                }
            } else {
                let body = format!(
                    "{{\"error\":{}}}",
                    xed_telemetry::export::json_string(&reason)
                );
                let _ = http::write_response(stream, 400, &[], &body);
            }
        }
    }
}

/// Replays a memoized response — the O(1) repeat-query path. Byte-for-byte
/// identical to the cold response in both framings.
fn serve_cached(
    stream: &mut TcpStream,
    cached: &CachedResponse,
    streaming: bool,
    tag: &str,
    ttfc: &mut Ttfc,
) {
    if streaming {
        if http::write_chunked_head(stream, &[("X-Xedd-Cache", tag)]).is_err() {
            return;
        }
        for line in &cached.progress_lines {
            ttfc.mark();
            metrics::XEDD_STREAM_CHUNKS.incr();
            if http::write_chunk(stream, line).is_err() {
                return;
            }
        }
        ttfc.mark();
        metrics::XEDD_STREAM_CHUNKS.incr();
        let _ = http::write_chunk(stream, &cached.body);
        let _ = http::write_chunked_end(stream);
    } else {
        ttfc.mark();
        let _ = http::write_response(stream, 200, &[("X-Xedd-Cache", tag)], &cached.body);
    }
}

fn error_line(reason: &str) -> String {
    format!(
        "{{\"error\":{},\"done\":true}}",
        xed_telemetry::export::json_string(reason)
    )
}
