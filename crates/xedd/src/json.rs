//! A minimal, zero-dependency JSON syntax validator and value extractor.
//!
//! `xedd` renders all JSON by hand (workspace convention: no
//! serialization dependency), so the selftest and integration tests need
//! an independent check that what the daemon emits — response bodies,
//! streamed chunk lines, the `/metrics` export — is well-formed. This is
//! a strict recursive-descent parser over the RFC 8259 grammar; it
//! validates syntax and offers flat field extraction, nothing more.

/// `true` if `text` is exactly one well-formed JSON value (with optional
/// surrounding whitespace).
pub fn is_valid(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !parse_value(bytes, &mut pos, 0) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

/// Extracts the raw text of a top-level `"field": value` pair from a JSON
/// object rendered on one line. Flat lookup only (no path traversal): the
/// first occurrence of the quoted field name at any nesting level wins,
/// which is exact for the flat objects the daemon emits.
pub fn field<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let bytes = rest.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value_start = pos;
    if !parse_value(bytes, &mut pos, 0) {
        return None;
    }
    rest.get(value_start..pos)
}

/// Extracts a numeric field as `f64` (`null` and non-numbers give
/// `None`).
pub fn number_field(text: &str, name: &str) -> Option<f64> {
    field(text, name)?.parse::<f64>().ok()
}

/// Recursion guard: deeper nesting than this is rejected (the daemon
/// never emits more than a few levels).
const MAX_DEPTH: usize = 32;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH {
        return false;
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(_) => parse_number(bytes, pos),
        None => false,
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') || !parse_string(bytes, pos) {
            return false;
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        skip_ws(bytes, pos);
        if !parse_value(bytes, pos, depth + 1) {
            return false;
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(bytes, pos);
        if !parse_value(bytes, pos, depth + 1) {
            return false;
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume opening quote
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes.get(*pos + 2..*pos + 6);
                    match hex {
                        Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                        _ => return false,
                    }
                }
                _ => return false,
            },
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one leading zero, or a nonzero digit run.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_json() {
        for text in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-9",
            "\"a \\\"quoted\\\" string\"",
            r#"{"a":1,"b":[1,2,{"c":null}],"d":"x"}"#,
            r#"  {"trials":1000,"p_fail":0.00125,"done":false}  "#,
            r#"{"u":"é"}"#,
        ] {
            assert!(is_valid(text), "{text} should parse");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for text in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,]",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "{\"a\":1}{\"b\":2}",
            "\"bad\\q\"",
        ] {
            assert!(!is_valid(text), "{text} should be rejected");
        }
    }

    #[test]
    fn extracts_fields() {
        let text = r#"{"trials":1000,"p_fail":1.25e-3,"nested":{"x":2},"s":"v","n":null}"#;
        assert_eq!(field(text, "trials"), Some("1000"));
        assert_eq!(number_field(text, "p_fail"), Some(1.25e-3));
        assert_eq!(field(text, "nested"), Some("{\"x\":2}"));
        assert_eq!(field(text, "s"), Some("\"v\""));
        assert_eq!(field(text, "n"), Some("null"));
        assert_eq!(field(text, "missing"), None);
        assert_eq!(number_field(text, "n"), None);
    }
}
