//! `xedd` — reliability-as-a-service over the `xed-faultsim` engine.
//!
//! A zero-dependency daemon (blocking accept, worker thread pool, minimal
//! HTTP/1.1) that answers the engine's reliability queries with three
//! properties the raw engine cannot offer callers (DESIGN.md §15):
//!
//! * **Memoization** ([`cache`]): completed responses are keyed by the
//!   query's 128-bit canonical hash — sorted FIT rows, canonical scheme
//!   encoding — in a sharded, lock-striped exact-LRU cache, so a repeat
//!   query (however it is spelled) is answered in O(1), byte-identical
//!   to the cold computation.
//! * **Coalescing** ([`coalesce`]): concurrent identical-key requests
//!   attach to the one in-flight computation and replay its byte stream —
//!   K clients, one evaluation.
//! * **Streaming partial confidence** ([`render`], [`server`]): lifetime
//!   queries can stream one NDJSON line per trial block with tightening
//!   95 %/99 % CIs, honoring an `epsilon` early-stop target, and every
//!   partial is bit-identical to a batch run of that many trials (the
//!   engine's counter-based RNG-stream contract).
//!
//! Admission control backs the whole thing: a bounded accept queue that
//! sheds load with `503` instead of queueing into timeout, with the full
//! `xedd.*` metric catalogue exported at `/metrics` (JSON and Prometheus
//! text exposition). Every request runs under a trace id whose phase
//! spans land in the flight-recorder rings (DESIGN.md §16), dumpable at
//! `/debug/flight` and watchable live with the `xedtop` binary ([`top`]).
//!
//! The [`selftest`] module is the end-to-end gate `scripts/ci.sh` runs
//! against a real socket.

pub mod cache;
pub mod coalesce;
pub mod http;
pub mod json;
pub mod render;
pub mod selftest;
pub mod server;
pub mod top;

pub use cache::MemoCache;
pub use coalesce::Coalescer;
pub use render::CachedResponse;
pub use server::{Server, XeddConfig};
