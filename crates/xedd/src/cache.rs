//! The sharded, lock-striped, exact-LRU memo cache.
//!
//! Completed responses are keyed by their query's 128-bit canonical key
//! (DESIGN.md §15). The key space is striped across independently-locked
//! shards — concurrent lookups of different keys contend only when they
//! land on the same stripe — and each shard holds a small fixed-capacity
//! slab with an access clock for exact LRU eviction.
//!
//! The hit path ([`MemoCache::lookup`]) is a registered `xedd-request`
//! hot entry (xed-analyze XA100/XA101): it takes one stripe lock, scans
//! at most `capacity / shards` 16-byte keys linearly (cache-friendlier
//! than hashing at slab sizes, and trivially panic- and allocation-free)
//! and clones an `Arc`. Insertion — off the repeat-query path — may
//! allocate and evict.

use crate::render::CachedResponse;
use std::sync::{Arc, Mutex};
use xed_faultsim::engine::CanonicalKey;
use xed_telemetry::registry::metrics;

/// One cached entry: key, response, last-access tick.
#[derive(Debug)]
struct Slot {
    key: CanonicalKey,
    value: Arc<CachedResponse>,
    tick: u64,
}

/// One lock stripe: a bounded slab plus its monotone access clock.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Slot>,
    clock: u64,
}

/// The sharded memo cache.
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl MemoCache {
    /// A cache holding at most `capacity` responses across `shards`
    /// stripes (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        MemoCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
        }
    }

    /// Total responses the cache can hold.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Looks up a canonical key, refreshing its LRU position. Records the
    /// `xedd.cache.{hits,misses}` outcome.
    ///
    /// This is the daemon's O(1) repeat-query path: one stripe lock, a
    /// bounded scan, an `Arc` clone — no allocation, no panic path (a
    /// poisoned stripe is recovered, see below).
    pub fn lookup(&self, key: &CanonicalKey) -> Option<Arc<CachedResponse>> {
        let idx = key.shard(self.shards.len());
        // indexing: CanonicalKey::shard reduces modulo the shard count,
        // so idx < self.shards.len() always.
        let mut shard = match self.shards[idx].lock() {
            Ok(guard) => guard,
            // Shard state is plain data and the mutations below cannot
            // panic mid-update, so a poisoned stripe (a panicking thread
            // elsewhere while holding the lock) is still consistent —
            // recover it instead of propagating the poison.
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.clock += 1;
        let now = shard.clock;
        for slot in &mut shard.slots {
            if slot.key == *key {
                slot.tick = now;
                metrics::XEDD_CACHE_HITS.incr();
                return Some(Arc::clone(&slot.value));
            }
        }
        metrics::XEDD_CACHE_MISSES.incr();
        None
    }

    /// Inserts (or refreshes) a response, evicting the stripe's
    /// least-recently-used entry when it is full.
    pub fn insert(&self, key: CanonicalKey, value: Arc<CachedResponse>) {
        let idx = key.shard(self.shards.len());
        // indexing: idx < self.shards.len(), as in lookup.
        let mut shard = match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.clock += 1;
        let now = shard.clock;
        if let Some(slot) = shard.slots.iter_mut().find(|s| s.key == key) {
            slot.value = value;
            slot.tick = now;
            return;
        }
        if shard.slots.len() >= self.per_shard {
            // Exact LRU: the slab's ticks are distinct (one monotone
            // clock per stripe), so the minimum is unique.
            if let Some(lru) = shard
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.tick)
                .map(|(i, _)| i)
            {
                shard.slots.swap_remove(lru);
                metrics::XEDD_CACHE_EVICTIONS.incr();
            }
        }
        shard.slots.push(Slot {
            key,
            value,
            tick: now,
        });
    }

    /// Responses currently cached (sums stripe occupancy).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.slots.len(),
                Err(poisoned) => poisoned.into_inner().slots.len(),
            })
            .sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CanonicalKey {
        CanonicalKey { hi: n, lo: !n }
    }

    fn response(n: u64) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            key: key(n),
            progress_lines: Vec::new(),
            body: format!("{{\"n\":{n}}}"),
        })
    }

    #[test]
    fn lookup_returns_inserted_value() {
        let cache = MemoCache::new(16, 4);
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), response(1));
        let hit = cache.lookup(&key(1)).expect("cached");
        assert_eq!(hit.body, "{\"n\":1}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let cache = MemoCache::new(16, 4);
        cache.insert(key(1), response(1));
        cache.insert(key(1), response(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(1)).expect("cached").body, "{\"n\":2}");
    }

    #[test]
    fn lru_eviction_is_exact_per_stripe() {
        // One stripe, capacity 2: touching the older entry must flip
        // which one a subsequent insert evicts.
        let cache = MemoCache::new(2, 1);
        cache.insert(key(1), response(1));
        cache.insert(key(2), response(2));
        assert!(cache.lookup(&key(1)).is_some(), "refresh key 1");
        cache.insert(key(3), response(3));
        assert!(cache.lookup(&key(2)).is_none(), "LRU key 2 evicted");
        assert!(cache.lookup(&key(1)).is_some(), "refreshed key 1 kept");
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_is_clamped_and_sharded() {
        let cache = MemoCache::new(0, 0);
        assert_eq!(cache.capacity(), 1);
        let cache = MemoCache::new(64, 16);
        assert_eq!(cache.capacity(), 64);
        for n in 0..200 {
            cache.insert(key(n), response(n));
        }
        assert!(cache.len() <= 64, "bounded at capacity");
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_hits_and_inserts_stay_consistent() {
        let cache = Arc::new(MemoCache::new(32, 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let n = (t * 500 + i) % 48;
                        cache.insert(key(n), response(n));
                        if let Some(hit) = cache.lookup(&key(n)) {
                            assert_eq!(hit.body, format!("{{\"n\":{n}}}"));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 32);
    }
}
