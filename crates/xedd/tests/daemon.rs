//! Integration tests: a real daemon on an ephemeral port, driven over
//! TCP. The full smoke sequence lives in `xedd::selftest` (run both as a
//! unit test and by `scripts/ci.sh` through `xedd --selftest`); these
//! cover the daemon behaviors the smoke sequence leaves out — admission
//! control, method filtering, cache behavior across distinct queries.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use xedd::http;
use xedd::{Server, XeddConfig};

fn start(workers: usize, queue_limit: usize) -> Server {
    Server::start(XeddConfig {
        workers,
        queue_limit,
        ..XeddConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn distinct_queries_get_distinct_cached_answers() {
    let server = start(2, 16);
    let addr = server.addr();
    let a = "/v1/query?scheme=xed&samples=50000&seed=1";
    let b = "/v1/query?scheme=ecc-dimm&samples=50000&seed=1";
    let cold_a = http::client_get(&addr, a).expect("query a");
    let cold_b = http::client_get(&addr, b).expect("query b");
    assert_eq!(cold_a.header("x-xedd-cache"), Some("miss"));
    assert_eq!(cold_b.header("x-xedd-cache"), Some("miss"));
    assert_ne!(
        cold_a.body, cold_b.body,
        "different schemes, different answers"
    );
    let warm_a = http::client_get(&addr, a).expect("repeat a");
    let warm_b = http::client_get(&addr, b).expect("repeat b");
    assert_eq!(warm_a.header("x-xedd-cache"), Some("hit"));
    assert_eq!(warm_b.header("x-xedd-cache"), Some("hit"));
    assert_eq!(warm_a.body, cold_a.body);
    assert_eq!(warm_b.body, cold_b.body);
    server.shutdown();
}

#[test]
fn non_get_methods_are_rejected() {
    let server = start(1, 4);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "POST /v1/query HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
    let mut reader = std::io::BufReader::new(stream);
    let resp = http::read_client_response(&mut reader).expect("response");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("GET"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_503() {
    // One worker, queue bound 1. Pin the worker with a connection that
    // never sends its request, let a second occupy the queue slot, and a
    // third must be shed immediately with 503 by the acceptor.
    let server = start(1, 1);
    let addr = server.addr();
    let pin = TcpStream::connect(&addr).expect("pin connection");
    std::thread::sleep(Duration::from_millis(150)); // worker pops `pin`, blocks reading
    let queued = TcpStream::connect(&addr).expect("queued connection");
    std::thread::sleep(Duration::from_millis(150)); // acceptor queues it (depth = bound)
    let shed = http::client_get(&addr, "/healthz").expect("shed response");
    assert_eq!(shed.status, 503, "over-bound request must be shed");
    assert!(shed.body.contains("overloaded"), "{}", shed.body);
    // Unblock the worker before shutdown: closing both sockets fails
    // their reads instantly instead of waiting out the read timeout.
    drop(pin);
    drop(queued);
    server.shutdown();
}

#[test]
fn ephemeral_servers_bind_distinct_ports() {
    let a = start(1, 4);
    let b = start(1, 4);
    assert_ne!(a.port(), b.port());
    assert_eq!(
        http::client_get(&a.addr(), "/healthz")
            .expect("a healthy")
            .status,
        200
    );
    assert_eq!(
        http::client_get(&b.addr(), "/healthz")
            .expect("b healthy")
            .status,
        200
    );
    a.shutdown();
    b.shutdown();
}
