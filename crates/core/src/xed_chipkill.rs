//! XED on top of Single-Chipkill hardware (paper Section IX): a
//! functional model of the 18-x4-chip configuration that reaches
//! **Double-Chipkill-level reliability** by driving the two Reed–Solomon
//! check-symbol chips in *erasure* mode.
//!
//! Each x4 device supplies a 32-bit word per cache-line access, protected
//! internally by a (40,32) CRC8-ATM on-die code
//! ([`xed_ecc::secded32::Crc8Atm32`]). Sixteen data chips carry the 64-byte
//! line; two check chips carry RS(18,16) check symbols computed per byte
//! plane over GF(2^8). When a chip's on-die ECC detects or corrects an
//! error, the chip transmits its 32-bit catch-word (Section IX-A notes the
//! narrower catch-word and its faster — but still harmless — collisions).
//! The controller erases the identified chips and lets the two check
//! symbols correct **up to two** chip failures; with no catch-word but a
//! check mismatch (an on-die miss) it falls back to blind single-symbol
//! correction.

use crate::chip::{ChipGeometry, WordAddr};
use crate::controller::{event_addr, XedStats};
use crate::error::XedError;
use crate::fault::{FaultKind, InjectedFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use xed_ecc::gf::Field;
use xed_ecc::rs::{ReedSolomon, RsScratch};
use xed_ecc::secded32::{CodeWord40, Crc8Atm32};
use xed_telemetry::registry::metrics;
use xed_telemetry::{EventKind, Ring};

/// Data chips per access.
pub const DATA_CHIPS: usize = 16;
/// Reed–Solomon check-symbol chips.
pub const CHECK_CHIPS: usize = 2;
/// Total x4 devices per access.
pub const TOTAL_CHIPS: usize = DATA_CHIPS + CHECK_CHIPS;
/// Byte planes per 32-bit word.
const PLANES: usize = 4;

/// A functional x4 DRAM device with (40,32) on-die ECC and a DC-Mux.
#[derive(Debug, Clone)]
struct X4Chip {
    geometry: ChipGeometry,
    code: Crc8Atm32,
    store: HashMap<WordAddr, CodeWord40>,
    faults: Vec<(InjectedFault, HashMap<WordAddr, bool>)>,
    xed_enable: bool,
    catch_word: u32,
    zero: CodeWord40,
}

impl X4Chip {
    fn new(geometry: ChipGeometry, catch_word: u32) -> Self {
        let code = Crc8Atm32::new();
        let zero = code.encode(0);
        Self {
            geometry,
            code,
            store: HashMap::new(),
            faults: Vec::new(),
            xed_enable: true,
            catch_word,
            zero,
        }
    }

    fn write(&mut self, addr: WordAddr, data: u32) {
        assert!(self.geometry.contains(addr));
        self.store.insert(addr, self.code.encode(data));
        for (fault, healed) in &mut self.faults {
            if fault.kind == FaultKind::Transient && fault.region.covers(addr) {
                healed.insert(addr, true);
            }
        }
    }

    fn raw(&self, addr: WordAddr) -> CodeWord40 {
        let mut w = *self.store.get(&addr).unwrap_or(&self.zero);
        for (fault, healed) in &self.faults {
            if fault.kind == FaultKind::Transient && healed.get(&addr).copied().unwrap_or(false) {
                continue;
            }
            let (dx, cx) = fault.corruption40(addr);
            w = CodeWord40::new(w.data() ^ dx, w.check() ^ cx);
        }
        w
    }

    /// DC-Mux read: data, or the catch-word on any on-die event.
    fn read(&self, addr: WordAddr) -> u32 {
        use xed_ecc::secded32::Decode32;
        let received = self.raw(addr);
        match self.code.decode(received) {
            Decode32::Clean { data } => data,
            outcome if self.xed_enable => {
                let _ = outcome;
                self.catch_word
            }
            Decode32::Corrected { data, .. } => data,
            Decode32::Detected => received.data(),
        }
    }
}

/// The corrected payload of one cache-line read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct X4LineReadout {
    /// The sixteen 32-bit data words.
    pub data: [u32; DATA_CHIPS],
    /// Chips whose symbols were repaired, if any (sorted).
    pub corrected_chips: [Option<usize>; 2],
    /// `true` if a catch-word collision was detected and re-keyed.
    pub collision: bool,
}

/// The XED-on-Chipkill memory system: 18 x4 chips + erasure controller.
///
/// ```
/// use xed_core::xed_chipkill::XedChipkillSystem;
/// use xed_core::fault::{InjectedFault, FaultKind};
///
/// let mut sys = XedChipkillSystem::new(7);
/// let line = [0xAB00_0001u32; 16];
/// sys.write_line(0, &line);
/// // TWO whole chips die — beyond ordinary Chipkill, but XED's erasures
/// // reach Double-Chipkill-level correction:
/// sys.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
/// sys.inject_fault(11, InjectedFault::chip(FaultKind::Permanent));
/// assert_eq!(sys.read_line(0).unwrap().data, line);
/// ```
#[derive(Debug)]
pub struct XedChipkillSystem {
    chips: Vec<X4Chip>,
    catch_words: Vec<u32>,
    rs: ReedSolomon,
    /// Reusable Reed–Solomon decoder scratch: the whole read path decodes
    /// all four byte planes with zero heap traffic.
    scratch: RsScratch,
    geometry: ChipGeometry,
    stats: XedStats,
    ring: Ring,
    rng: StdRng,
}

impl XedChipkillSystem {
    /// Boots the system: unique random 32-bit catch-words per chip.
    pub fn new(seed: u64) -> Self {
        Self::with_geometry(ChipGeometry::small(), seed)
    }

    /// Boots with an explicit chip geometry.
    pub fn with_geometry(geometry: ChipGeometry, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catch_words: Vec<u32> = Vec::with_capacity(TOTAL_CHIPS);
        while catch_words.len() < TOTAL_CHIPS {
            let cw = rng.gen();
            if !catch_words.contains(&cw) {
                catch_words.push(cw);
            }
        }
        let chips = catch_words
            .iter()
            .map(|&cw| X4Chip::new(geometry, cw))
            .collect();
        Self {
            chips,
            catch_words,
            rs: ReedSolomon::new(Field::gf256(), TOTAL_CHIPS, DATA_CHIPS),
            scratch: RsScratch::new(),
            geometry,
            stats: XedStats::default(),
            ring: Ring::new(),
            rng,
        }
    }

    /// Controller statistics.
    pub fn stats(&self) -> XedStats {
        self.stats
    }

    /// The most recent controller events (catch-words, reconstructions,
    /// serial modes, collisions, DUEs, injected faults), oldest first.
    pub fn events(&self) -> &Ring {
        &self.ring
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// The catch-word programmed into a chip.
    pub fn catch_word(&self, chip: usize) -> u32 {
        self.catch_words[chip]
    }

    /// Injects a fault into chip `chip` (0–15 data, 16–17 check).
    ///
    /// # Panics
    ///
    /// Panics if `chip >= 18`.
    pub fn inject_fault(&mut self, chip: usize, fault: InjectedFault) {
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::FaultInjected, chip as u64, 0);
        }
        self.chips[chip].inject_fault_checked(fault);
    }

    /// Writes a cache line (sixteen 32-bit words) plus its RS check
    /// symbols.
    pub fn write_line(&mut self, line: u64, data: &[u32; DATA_CHIPS]) {
        let addr = self.geometry.addr(line);
        self.write_line_at(addr, data);
    }

    /// Writes at an explicit address.
    pub fn write_line_at(&mut self, addr: WordAddr, data: &[u32; DATA_CHIPS]) {
        self.stats.writes += 1;
        xed_telemetry::tick(&metrics::CORE_XED_WRITES);
        self.store_line(addr, data);
    }

    fn store_line(&mut self, addr: WordAddr, data: &[u32; DATA_CHIPS]) {
        let mut check_words = [[0u8; PLANES]; CHECK_CHIPS];
        let mut cw = [0u8; TOTAL_CHIPS];
        for p in 0..PLANES {
            let mut symbols = [0u8; DATA_CHIPS];
            for (i, &w) in data.iter().enumerate() {
                symbols[i] = w.to_be_bytes()[p];
            }
            self.rs.encode_into(&symbols, &mut cw);
            for (j, check_word) in check_words.iter_mut().enumerate() {
                check_word[p] = cw[DATA_CHIPS + j];
            }
        }
        for (i, &w) in data.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        for (j, &word) in check_words.iter().enumerate() {
            self.chips[DATA_CHIPS + j].write(addr, u32::from_be_bytes(word));
        }
    }

    /// Reads a cache line with XED erasure correction.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when more than two chips are concurrently
    /// faulty (or a missed error defeats blind correction).
    pub fn read_line(&mut self, line: u64) -> Result<X4LineReadout, XedError> {
        let addr = self.geometry.addr(line);
        self.read_line_at(addr)
    }

    /// Reads at an explicit address.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when the corruption exceeds two erasures.
    pub fn read_line_at(&mut self, addr: WordAddr) -> Result<X4LineReadout, XedError> {
        self.stats.reads += 1;
        xed_telemetry::tick(&metrics::CORE_XED_READS);
        let words = self.bus_read(addr);
        let mut catcher_buf = [0usize; TOTAL_CHIPS];
        let mut ncatch = 0usize;
        for (i, &w) in words.iter().enumerate() {
            if w == self.catch_words[i] {
                catcher_buf[ncatch] = i;
                ncatch += 1;
            }
        }
        let catchers = &catcher_buf[..ncatch];
        self.stats.catch_words_observed += ncatch as u64;
        if ncatch > 0 && xed_telemetry::enabled() {
            metrics::CORE_XED_CATCH_WORDS.add(ncatch as u64);
            self.ring
                .record(EventKind::CatchWord, catchers[0] as u64, event_addr(addr));
        }

        match ncatch {
            0..=2 => match self.decode_line(addr, &words, catchers) {
                Ok(out) => Ok(out),
                // A chip beyond the erasure set is silently corrupting
                // (an on-die miss): identify it by diagnosis, then retry
                // with the enlarged erasure set (paper Section VI applied
                // to the x4 configuration).
                Err(_) => self.diagnose_and_retry(addr, &words, catchers),
            },
            n => {
                // Serial mode: let on-die ECC correct what it can.
                self.stats.serial_modes += 1;
                xed_telemetry::tick(&metrics::CORE_XED_SERIAL_MODES);
                if xed_telemetry::enabled() {
                    self.ring
                        .record(EventKind::SerialMode, ncatch as u64, event_addr(addr));
                }
                for chip in &mut self.chips {
                    chip.xed_enable = false;
                }
                let raw = self.bus_read(addr);
                for chip in &mut self.chips {
                    chip.xed_enable = true;
                }
                match self.decode_line(addr, &raw, &[]) {
                    Ok(out) => Ok(out),
                    Err(_) => match self.diagnose_and_retry(addr, &raw, &[]) {
                        Ok(out) => Ok(out),
                        Err(_) => Err(XedError::MultipleFaultyChips {
                            catch_words: n as u32,
                        }),
                    },
                }
            }
        }
    }

    fn bus_read(&self, addr: WordAddr) -> [u32; TOTAL_CHIPS] {
        let mut words = [0u32; TOTAL_CHIPS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.chips[i].read(addr);
        }
        words
    }

    /// Decodes the four byte-plane RS codewords, treating `erasures` as
    /// known-bad chips, and scrubs the corrected line back.
    fn decode_line(
        &mut self,
        addr: WordAddr,
        words: &[u32; TOTAL_CHIPS],
        erasures: &[usize],
    ) -> Result<X4LineReadout, XedError> {
        let mut corrected_words = *words;
        let mut touched = [false; TOTAL_CHIPS];
        // Consumer-side attribution of the telemetry-free RS kernel: symbol
        // repairs at caller-declared erasure positions vs. blind corrections.
        let mut rs_erasure_symbols = 0u64;
        let mut rs_error_symbols = 0u64;
        for p in 0..PLANES {
            let mut symbols = [0u8; TOTAL_CHIPS];
            for (i, &w) in words.iter().enumerate() {
                symbols[i] = w.to_be_bytes()[p];
            }
            match self.rs.decode_with(&symbols, erasures, &mut self.scratch) {
                Ok(decoded) => {
                    for &chip in decoded.corrected {
                        let mut bytes = corrected_words[chip].to_be_bytes();
                        bytes[p] = decoded.codeword[chip];
                        corrected_words[chip] = u32::from_be_bytes(bytes);
                        touched[chip] = true;
                        if erasures.contains(&chip) {
                            rs_erasure_symbols += 1;
                        } else {
                            rs_error_symbols += 1;
                        }
                    }
                }
                Err(_) => {
                    return Err(XedError::DetectedUncorrectable {
                        suspects: erasures.len() as u32,
                    });
                }
            }
        }
        xed_telemetry::count(&metrics::ECC_RS_CORRECTIONS, rs_error_symbols);
        xed_telemetry::count(&metrics::ECC_RS_ERASURES, rs_erasure_symbols);
        let ntouched = touched.iter().filter(|&&t| t).count();
        if ntouched > 2 {
            return Err(XedError::DetectedUncorrectable {
                suspects: ntouched as u32,
            });
        }

        // Collision check: a reconstructed chip whose value equals its
        // catch-word means the stored data *was* the catch-word; re-key.
        let mut collision = false;
        for &chip in erasures {
            if corrected_words[chip] == self.catch_words[chip] {
                collision = true;
                self.stats.collisions += 1;
                xed_telemetry::tick(&metrics::CORE_XED_CATCHWORD_COLLISIONS);
                if xed_telemetry::enabled() {
                    self.ring
                        .record(EventKind::Collision, chip as u64, event_addr(addr));
                }
                self.rekey(chip);
            }
        }

        let mut data = [0u32; DATA_CHIPS];
        data.copy_from_slice(&corrected_words[..DATA_CHIPS]);
        if ntouched > 0 || !erasures.is_empty() {
            self.stats.reconstructions += 1;
            self.stats.scrub_writes += 1;
            xed_telemetry::tick(&metrics::CORE_XED_RECONSTRUCTIONS);
            xed_telemetry::tick(&metrics::CORE_XED_SCRUB_WRITES);
            if xed_telemetry::enabled() {
                let first = erasures
                    .first()
                    .copied()
                    .unwrap_or(touched.iter().position(|&t| t).unwrap_or(TOTAL_CHIPS));
                self.ring.record(
                    EventKind::ErasureReconstructed,
                    first as u64,
                    event_addr(addr),
                );
            }
            self.store_line(addr, &data);
        }
        // Involved chips = erasures ∪ touched; walking the mask in index
        // order yields them already sorted.
        let mut involved = touched;
        for &e in erasures {
            involved[e] = true;
        }
        let mut chips = involved
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v)
            .map(|(i, _)| i);
        let mut corrected_chips = [None, None];
        for slot in corrected_chips.iter_mut() {
            *slot = chips.next();
        }
        Ok(X4LineReadout {
            data,
            corrected_chips,
            collision,
        })
    }

    /// Inter-Line (row streaming) then Intra-Line (pattern test) diagnosis
    /// when the known erasure set cannot explain a check mismatch, followed
    /// by a retry with the enlarged erasure set (paper Section VI adapted
    /// to the x4 configuration).
    fn diagnose_and_retry(
        &mut self,
        addr: WordAddr,
        words: &[u32; TOTAL_CHIPS],
        catchers: &[usize],
    ) -> Result<X4LineReadout, XedError> {
        // Inter-line: stream the row buffer with XED enabled; a chip with a
        // multi-line fault screams catch-words on its neighbors.
        self.stats.inter_line_runs += 1;
        xed_telemetry::tick(&metrics::CORE_XED_DIAGNOSIS_RUNS);
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::Diagnosis, 0, event_addr(addr));
        }
        let cols = self.geometry.cols;
        let threshold = (cols * 10).div_ceil(100).max(1);
        let mut counts = [0u32; TOTAL_CHIPS];
        for col in 0..cols {
            let a = WordAddr { col, ..addr };
            let w = self.bus_read(a);
            for (i, c) in counts.iter_mut().enumerate() {
                if w[i] == self.catch_words[i] {
                    *c += 1;
                }
            }
        }
        let mut suspect_buf = [0usize; TOTAL_CHIPS];
        let mut nsus = catchers.len();
        suspect_buf[..nsus].copy_from_slice(catchers);
        for (i, &c) in counts.iter().enumerate() {
            if c >= threshold && !suspect_buf[..nsus].contains(&i) {
                suspect_buf[nsus] = i;
                nsus += 1;
            }
        }
        suspect_buf[..nsus].sort_unstable();
        if nsus <= CHECK_CHIPS {
            if let Ok(out) = self.decode_line(addr, words, &suspect_buf[..nsus]) {
                return Ok(out);
            }
        }

        // Intra-line: all-zeros / all-ones pattern test finds permanent
        // faults confined to this line.
        self.stats.intra_line_runs += 1;
        xed_telemetry::tick(&metrics::CORE_XED_DIAGNOSIS_RUNS);
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::Diagnosis, 1, event_addr(addr));
        }
        let flagged = self.pattern_test(addr, words);
        for (i, &bad) in flagged.iter().enumerate() {
            if bad && !suspect_buf[..nsus].contains(&i) {
                suspect_buf[nsus] = i;
                nsus += 1;
            }
        }
        suspect_buf[..nsus].sort_unstable();
        if nsus <= CHECK_CHIPS {
            if let Ok(out) = self.decode_line(addr, words, &suspect_buf[..nsus]) {
                return Ok(out);
            }
        }
        self.stats.due_events += 1;
        xed_telemetry::tick(&metrics::CORE_XED_DUE);
        if xed_telemetry::enabled() {
            self.ring
                .record(EventKind::Due, nsus as u64, event_addr(addr));
        }
        Err(XedError::DetectedUncorrectable {
            suspects: nsus as u32,
        })
    }

    /// Writes all-zeros / all-ones and reads back raw (XED off); chips
    /// whose readback mismatches have permanent broken cells. The original
    /// words are restored verbatim.
    fn pattern_test(
        &mut self,
        addr: WordAddr,
        original: &[u32; TOTAL_CHIPS],
    ) -> [bool; TOTAL_CHIPS] {
        let mut suspect = [false; TOTAL_CHIPS];
        for pattern in [0u32, u32::MAX] {
            for chip in &mut self.chips {
                chip.write(addr, pattern);
                chip.xed_enable = false;
            }
            for (i, flagged) in suspect.iter_mut().enumerate() {
                if self.chips[i].read(addr) != pattern {
                    *flagged = true;
                }
            }
            for chip in &mut self.chips {
                chip.xed_enable = true;
            }
        }
        for (i, &w) in original.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        suspect
    }

    fn rekey(&mut self, chip: usize) {
        loop {
            let cw: u32 = self.rng.gen();
            if !self.catch_words.contains(&cw) {
                self.catch_words[chip] = cw;
                self.chips[chip].catch_word = cw;
                self.stats.catch_word_updates += 1;
                return;
            }
        }
    }
}

impl X4Chip {
    fn inject_fault_checked(&mut self, fault: InjectedFault) {
        if let crate::fault::FaultRegion::Bit { bit, .. } = fault.region {
            assert!(bit < 40, "x4 devices have 40-bit codewords (bit {bit})");
        }
        self.faults.push((fault, HashMap::new()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: [u32; 16] = [
        0x0101_0101,
        0x0202_0202,
        0x0303_0303,
        0x0404_0404,
        0x0505_0505,
        0x0606_0606,
        0x0707_0707,
        0x0808_0808,
        0x0909_0909,
        0x0A0A_0A0A,
        0x0B0B_0B0B,
        0x0C0C_0C0C,
        0x0D0D_0D0D,
        0x0E0E_0E0E,
        0x0F0F_0F0F,
        0x1010_1010,
    ];

    fn loaded() -> XedChipkillSystem {
        let mut sys = XedChipkillSystem::new(42);
        for l in 0..8 {
            sys.write_line(l, &LINE);
        }
        sys
    }

    #[test]
    fn clean_roundtrip() {
        let mut sys = loaded();
        let out = sys.read_line(0).unwrap();
        assert_eq!(out.data, LINE);
        assert_eq!(out.corrected_chips, [None, None]);
    }

    #[test]
    fn single_chip_failure_corrected() {
        for chip in [0usize, 7, 15, 16, 17] {
            let mut sys = loaded();
            sys.inject_fault(chip, InjectedFault::chip(FaultKind::Permanent));
            let out = sys.read_line(3).unwrap();
            assert_eq!(out.data, LINE, "chip {chip}");
        }
    }

    #[test]
    fn two_chip_failures_corrected() {
        // The Double-Chipkill-level claim of Section IX.
        let pairs = [(0usize, 9usize), (3, 16), (16, 17), (5, 12)];
        for (a, b) in pairs {
            let mut sys = loaded();
            sys.inject_fault(a, InjectedFault::chip(FaultKind::Permanent));
            sys.inject_fault(b, InjectedFault::chip(FaultKind::Permanent));
            let out = sys.read_line(1).unwrap();
            assert_eq!(out.data, LINE, "chips ({a},{b})");
            assert!(sys.stats().reconstructions >= 1);
        }
    }

    #[test]
    fn three_chip_failures_detected_uncorrectable() {
        let mut sys = loaded();
        for chip in [2usize, 8, 14] {
            sys.inject_fault(chip, InjectedFault::chip(FaultKind::Permanent));
        }
        let err = sys.read_line(0).unwrap_err();
        assert!(
            matches!(
                err,
                XedError::MultipleFaultyChips { .. } | XedError::DetectedUncorrectable { .. }
            ),
            "{err:?}"
        );
        assert!(sys.stats().due_events >= 1);
    }

    #[test]
    fn scaling_bit_faults_in_two_chips_plus_row_failure() {
        // Bit faults are corrected on-die (but signal catch-words); the
        // row failure is one erasure; ≤ 2 erasures total per access.
        let mut sys = loaded();
        let addr = sys.geometry().addr(2);
        sys.inject_fault(4, InjectedFault::bit(addr, 7, FaultKind::Permanent));
        sys.inject_fault(
            9,
            InjectedFault::row(addr.bank, addr.row, FaultKind::Permanent),
        );
        let out = sys.read_line(2).unwrap();
        assert_eq!(out.data, LINE);
    }

    #[test]
    fn transient_faults_healed_by_scrub() {
        let mut sys = loaded();
        let addr = sys.geometry().addr(5);
        sys.inject_fault(6, InjectedFault::word(addr, FaultKind::Transient));
        assert_eq!(sys.read_line(5).unwrap().data, LINE);
        let recon = sys.stats().reconstructions;
        assert_eq!(sys.read_line(5).unwrap().data, LINE);
        assert_eq!(sys.stats().reconstructions, recon, "second read is clean");
    }

    #[test]
    fn collision_on_32bit_catch_word_rekeys() {
        let mut sys = XedChipkillSystem::new(7);
        let mut line = LINE;
        line[3] = sys.catch_word(3);
        sys.write_line(0, &line);
        let out = sys.read_line(0).unwrap();
        assert_eq!(out.data, line);
        assert!(out.collision);
        assert!(sys.stats().catch_word_updates >= 1);
        assert_ne!(sys.catch_word(3), line[3]);
        // And the line still reads fine afterwards.
        assert_eq!(sys.read_line(0).unwrap().data, line);
    }

    #[test]
    fn on_die_miss_single_chip_recovered_blind() {
        // A valid-but-wrong codeword in one chip (the on-die miss): no
        // catch-word, but RS(18,16) blind-corrects one unknown symbol.
        let mut sys = loaded();
        let addr = sys.geometry().addr(4);
        sys.chips[8].write(addr, 0xBAD0_BAD0); // desync: re-encoded wrong data
        let out = sys.read_line(4).unwrap();
        assert_eq!(out.data, LINE);
        assert_eq!(out.corrected_chips[0], Some(8));
    }

    #[test]
    fn two_dead_chips_with_on_die_miss_recovered_by_diagnosis() {
        // Regression (found by proptest): chip faults produce dense random
        // corruption that aliases to a valid codeword at ~1/256 of
        // addresses. With two dead chips, an alias leaves only one
        // catch-word; the controller must diagnose the silent second chip
        // (Inter-Line streaming) and retry with both erased.
        let line: [u32; 16] = [
            3738085988, 343939284, 2766257750, 161660915, 2660809055, 4200930680, 1008387954,
            247567069, 400084481, 3410788242, 1327140031, 406293656, 3068243978, 2084086773,
            4078330029, 1457796438,
        ];
        let mut sys = XedChipkillSystem::new(442058225650391503 % (1 << 32));
        sys.write_line(0, &line);
        sys.inject_fault(10, InjectedFault::chip(FaultKind::Permanent));
        sys.inject_fault(11, InjectedFault::chip(FaultKind::Permanent));
        // Read every line of the row: some will hit the alias path.
        for l in 0..64 {
            sys.write_line(l, &line);
        }
        for l in 0..64 {
            let out = sys.read_line(l).unwrap_or_else(|e| panic!("line {l}: {e}"));
            assert_eq!(out.data, line, "line {l}");
        }
    }

    #[test]
    #[should_panic]
    fn bit_fault_beyond_40_rejected() {
        let mut sys = XedChipkillSystem::new(1);
        let addr = sys.geometry().addr(0);
        sys.inject_fault(0, InjectedFault::bit(addr, 50, FaultKind::Permanent));
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut sys = loaded();
        let _ = sys.read_line(0);
        assert_eq!(sys.stats().reads, 1);
        assert_eq!(sys.stats().writes, 8);
    }
}
