//! The XED memory controller.
//!
//! Implements the full read/write algorithm of paper Sections V–VII:
//!
//! 1. **Write**: encode each chip's 64-bit word, compute the RAID-3 parity
//!    word and store it in the 9th chip (Equation 1).
//! 2. **Read**: compare each chip's word against its catch-word.
//!    * no catch-word + parity holds → clean data;
//!    * one catch-word → erasure-reconstruct that chip from parity
//!      (Equation 3), checking for catch-word *collisions* (Section V-D);
//!    * multiple catch-words → **serial mode**: disable XED, re-read the
//!      (on-die-corrected) raw values, re-verify parity (Section VII-B);
//!    * no catch-word but parity mismatch (on-die detection miss) →
//!      **Inter-Line** then **Intra-Line fault diagnosis** (Section VI).
//! 3. Every successful correction is scrubbed (written back), healing
//!    transient corruption, and diagnosis verdicts are cached in the
//!    [FCT](crate::fct).

use crate::catch_word::CatchWordTable;
use crate::chip::{ChipGeometry, DramChip, OnDieCode, WordAddr};
use crate::error::XedError;
use crate::fault::InjectedFault;
use crate::fct::{FaultyRowChipTracker, FctOutcome, RowAddr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xed_ecc::parity;
use xed_telemetry::registry::metrics;
use xed_telemetry::{EventKind, Ring};

/// Number of data chips on the DIMM.
pub const DATA_CHIPS: usize = 8;
/// Index of the parity (9th) chip.
pub const PARITY_CHIP: usize = 8;
/// Total chips on the ECC-DIMM.
pub const TOTAL_CHIPS: usize = 9;

/// Counters describing everything the controller has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XedStats {
    /// Cache-line reads served.
    pub reads: u64,
    /// Cache-line writes performed (excluding scrubs and diagnosis).
    pub writes: u64,
    /// Catch-words observed on the bus.
    pub catch_words_observed: u64,
    /// Lines whose data was reconstructed from parity.
    pub reconstructions: u64,
    /// Serial-mode episodes (multiple catch-words).
    pub serial_modes: u64,
    /// Inter-Line diagnosis runs.
    pub inter_line_runs: u64,
    /// Intra-Line diagnosis runs.
    pub intra_line_runs: u64,
    /// Catch-word collisions detected (reconstruction equaled the
    /// catch-word).
    pub collisions: u64,
    /// Catch-word registers re-programmed after collisions.
    pub catch_word_updates: u64,
    /// Detected uncorrectable errors reported.
    pub due_events: u64,
    /// Reads short-circuited by an FCT hit or a condemned chip.
    pub fct_hits: u64,
    /// Scrub write-backs issued after corrections.
    pub scrub_writes: u64,
}

/// Result of a successful cache-line read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineReadout {
    /// The eight 64-bit data words of the cache line.
    pub data: [u64; DATA_CHIPS],
    /// Chip whose word was reconstructed from parity, if any.
    pub reconstructed_chip: Option<usize>,
    /// `true` if Inter-Line or Intra-Line diagnosis ran for this read.
    pub used_diagnosis: bool,
    /// `true` if a catch-word collision was detected (and the catch-word
    /// regenerated).
    pub collision: bool,
}

/// The XED memory controller plus the 9-chip DIMM it drives.
#[derive(Debug)]
pub struct XedController {
    pub(crate) chips: Vec<DramChip>,
    pub(crate) catch_words: CatchWordTable,
    pub(crate) fct: FaultyRowChipTracker,
    pub(crate) condemned_chip: Option<usize>,
    pub(crate) stats: XedStats,
    pub(crate) ring: Ring,
    pub(crate) rng: StdRng,
    pub(crate) inter_line_threshold_percent: u32,
    geometry: ChipGeometry,
}

/// Packs a word address into a single ring-event operand
/// (bank : 12 | row : 32 | col : 20 — ample for every modeled geometry).
pub(crate) fn event_addr(addr: WordAddr) -> u64 {
    ((addr.bank as u64) << 52) | ((addr.row as u64) << 20) | addr.col as u64
}

impl XedController {
    /// Boots a XED system: builds the chips, generates per-chip catch-words,
    /// programs the CWRs and sets XED-Enable (paper Section V-A).
    pub fn new(
        geometry: ChipGeometry,
        code: OnDieCode,
        seed: u64,
        fct_capacity: usize,
        inter_line_threshold_percent: u32,
    ) -> Self {
        assert!(
            (1..=100).contains(&inter_line_threshold_percent),
            "threshold must be a percentage"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let catch_words = CatchWordTable::generate(&mut rng, TOTAL_CHIPS);
        let mut chips: Vec<DramChip> = (0..TOTAL_CHIPS)
            .map(|_| DramChip::new(geometry, code))
            .collect();
        for (i, chip) in chips.iter_mut().enumerate() {
            chip.set_catch_word(catch_words.word(i));
            chip.set_xed_enable(true);
        }
        Self {
            chips,
            catch_words,
            fct: FaultyRowChipTracker::new(fct_capacity),
            condemned_chip: None,
            stats: XedStats::default(),
            ring: Ring::new(),
            rng,
            inter_line_threshold_percent,
            geometry,
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// Controller statistics so far.
    pub fn stats(&self) -> XedStats {
        self.stats
    }

    /// The chip the FCT has condemned as permanently faulty, if any.
    pub fn condemned_chip(&self) -> Option<usize> {
        self.condemned_chip
    }

    /// The most recent controller events (catch-words, reconstructions,
    /// serial modes, collisions, DUEs, injected faults), oldest first.
    pub fn events(&self) -> &Ring {
        &self.ring
    }

    /// Injects a fault into chip `chip_index` (0–7 data, 8 parity).
    ///
    /// # Panics
    ///
    /// Panics if `chip_index >= 9`.
    pub fn inject_fault(&mut self, chip_index: usize, fault: InjectedFault) {
        if xed_telemetry::enabled() {
            self.ring
                .record(EventKind::FaultInjected, chip_index as u64, 0);
        }
        self.chips[chip_index].inject_fault(fault);
    }

    /// Read-only access to a chip (instrumentation/tests).
    pub fn chip(&self, chip_index: usize) -> &DramChip {
        &self.chips[chip_index]
    }

    /// The catch-word currently programmed into chip `chip_index`
    /// (the controller's retained CWR copy, paper Section V-A).
    pub fn catch_word(&self, chip_index: usize) -> crate::catch_word::CatchWord {
        self.catch_words.word(chip_index)
    }

    /// Writes a cache line: the eight data words go to the data chips and
    /// their XOR to the parity chip (Equation 1).
    pub fn write_line(&mut self, addr: WordAddr, data: &[u64; DATA_CHIPS]) {
        self.stats.writes += 1;
        xed_telemetry::tick(&metrics::CORE_XED_WRITES);
        self.store_line(addr, data);
    }

    fn store_line(&mut self, addr: WordAddr, data: &[u64; DATA_CHIPS]) {
        for (i, &w) in data.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        self.chips[PARITY_CHIP].write(addr, parity::compute(data));
    }

    /// Reads a cache line, performing XED detection/correction as needed.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when more chips are faulty than one parity chip
    /// can reconstruct, or when diagnosis cannot identify the faulty chip.
    pub fn read_line(&mut self, addr: WordAddr) -> Result<LineReadout, XedError> {
        self.stats.reads += 1;
        xed_telemetry::tick(&metrics::CORE_XED_READS);

        if let Some(dead) = self.condemned_chip {
            return self.read_with_condemned_chip(addr, dead);
        }

        let words = self.bus_read(addr);
        let catchers = self.catching_chips(&words);
        self.stats.catch_words_observed += catchers.len() as u64;
        if !catchers.is_empty() && xed_telemetry::enabled() {
            metrics::CORE_XED_CATCH_WORDS.add(catchers.len() as u64);
            self.ring
                .record(EventKind::CatchWord, catchers[0] as u64, event_addr(addr));
        }

        match catchers.len() {
            0 => {
                if parity_holds(&words) {
                    return Ok(clean_readout(&words));
                }
                // Parity mismatch with no catch-word: the on-die ECC missed
                // a multi-bit error somewhere (Section VI).
                self.diagnose_and_correct(addr, words)
            }
            1 => {
                let chip = catchers[0];
                let readout = self.reconstruct(addr, &words, chip)?;
                Ok(readout)
            }
            _ => self.serial_mode(addr, catchers.len() as u32),
        }
    }

    /// Reads all nine chips and returns their bus words.
    pub(crate) fn bus_read(&self, addr: WordAddr) -> [u64; TOTAL_CHIPS] {
        let mut words = [0u64; TOTAL_CHIPS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.chips[i].read(addr).value;
        }
        words
    }

    /// Which chips transmitted their catch-word.
    pub(crate) fn catching_chips(&self, words: &[u64; TOTAL_CHIPS]) -> Vec<usize> {
        (0..TOTAL_CHIPS)
            .filter(|&i| self.catch_words.identify(i, words[i]))
            .collect()
    }

    /// Erasure-reconstructs `chip`'s word from the other eight (Equation 3),
    /// checks for a collision, scrubs, and returns the corrected line.
    ///
    /// Residual vulnerability (paper Section VIII): if a *second* chip is
    /// silently corrupting the same line (a concurrent on-die detection
    /// miss), the reconstruction consumes the parity and produces wrong
    /// data undetectably. This double-fault-plus-miss window is part of
    /// the multi-chip-failure term of Table IV and is orders of magnitude
    /// below the DUE budget; the 18-chip configuration
    /// ([`crate::xed_chipkill`]) closes it with its spare check symbol.
    fn reconstruct(
        &mut self,
        addr: WordAddr,
        words: &[u64; TOTAL_CHIPS],
        chip: usize,
    ) -> Result<LineReadout, XedError> {
        let mut data = [0u64; DATA_CHIPS];
        data.copy_from_slice(&words[..DATA_CHIPS]);
        // Reconstructing the parity chip itself is just the XOR of the data
        // words; a data chip comes back via Equation 3.
        let reconstructed_value = if chip == PARITY_CHIP {
            parity::compute(&data)
        } else {
            let recovered = parity::reconstruct(&data, words[PARITY_CHIP], chip);
            data[chip] = recovered;
            recovered
        };

        // Collision check (Section V-D1): the reconstructed value matching
        // the catch-word means the stored data *is* the catch-word.
        let collision = self.catch_words.identify(chip, reconstructed_value);
        if collision {
            self.stats.collisions += 1;
            xed_telemetry::tick(&metrics::CORE_XED_CATCHWORD_COLLISIONS);
            if xed_telemetry::enabled() {
                self.ring
                    .record(EventKind::Collision, chip as u64, event_addr(addr));
            }
            self.update_catch_word(chip);
        }

        self.stats.reconstructions += 1;
        xed_telemetry::tick(&metrics::CORE_XED_RECONSTRUCTIONS);
        if xed_telemetry::enabled() {
            self.ring.record(
                EventKind::ErasureReconstructed,
                chip as u64,
                event_addr(addr),
            );
        }
        // Scrub: write the corrected line back, healing transient faults.
        self.scrub(addr, &data);
        Ok(LineReadout {
            data,
            reconstructed_chip: Some(chip),
            used_diagnosis: false,
            collision,
        })
    }

    /// Serial mode (Section VII-B): multiple catch-words, so let each chip's
    /// on-die ECC *correct* what it can — disable XED, re-read, re-enable —
    /// then verify with parity.
    fn serial_mode(&mut self, addr: WordAddr, catch_words: u32) -> Result<LineReadout, XedError> {
        self.stats.serial_modes += 1;
        xed_telemetry::tick(&metrics::CORE_XED_SERIAL_MODES);
        if xed_telemetry::enabled() {
            self.ring
                .record(EventKind::SerialMode, catch_words as u64, event_addr(addr));
        }
        for chip in &mut self.chips {
            chip.set_xed_enable(false);
        }
        let words = self.bus_read(addr);
        for chip in &mut self.chips {
            chip.set_xed_enable(true);
        }
        if parity_holds(&words) {
            // All the catch-words were correctable (scaling) errors.
            let mut data = [0u64; DATA_CHIPS];
            data.copy_from_slice(&words[..DATA_CHIPS]);
            self.scrub(addr, &data);
            return Ok(LineReadout {
                data,
                reconstructed_chip: None,
                used_diagnosis: false,
                collision: false,
            });
        }
        // A runtime failure hides among the catch-words (Section VII-C):
        // identify the broken chip by diagnosis.
        match self.diagnose_and_correct(addr, words) {
            Ok(r) => Ok(r),
            // diagnose_and_correct already counted the DUE event.
            Err(XedError::DetectedUncorrectable { suspects }) if suspects >= 2 => {
                Err(XedError::MultipleFaultyChips { catch_words })
            }
            Err(e) => Err(e),
        }
    }

    /// Reads when a chip is condemned: it is treated as a standing erasure.
    fn read_with_condemned_chip(
        &mut self,
        addr: WordAddr,
        dead: usize,
    ) -> Result<LineReadout, XedError> {
        self.stats.fct_hits += 1;
        let words = self.bus_read(addr);
        // Any *other* chip presenting its catch-word means two concurrent
        // erasures: uncorrectable.
        let others: Vec<usize> = self
            .catching_chips(&words)
            .into_iter()
            .filter(|&c| c != dead)
            .collect();
        if !others.is_empty() {
            self.stats.due_events += 1;
            xed_telemetry::tick(&metrics::CORE_XED_DUE);
            if xed_telemetry::enabled() {
                self.ring
                    .record(EventKind::Due, others.len() as u64 + 1, event_addr(addr));
            }
            return Err(XedError::MultipleFaultyChips {
                catch_words: others.len() as u32 + 1,
            });
        }
        self.reconstruct(addr, &words, dead)
    }

    /// Patrol scrub: walks every cache line of the DIMM once, letting the
    /// normal read path detect, correct and write back whatever it finds.
    /// Returns `(lines_corrected, lines_uncorrectable)`.
    ///
    /// Patrol scrubbing bounds how long transient corruption can linger
    /// without a demand read (cf. the `ablation_scrubbing` study, which
    /// quantifies the reliability effect of that exposure window).
    pub fn patrol_scrub(&mut self) -> (u64, u64) {
        let mut corrected = 0u64;
        let mut uncorrectable = 0u64;
        for line in 0..self.geometry.words() {
            let addr = self.geometry.addr(line);
            match self.read_line(addr) {
                Ok(readout) if readout.reconstructed_chip.is_some() => corrected += 1,
                Ok(_) => {}
                Err(_) => uncorrectable += 1,
            }
        }
        (corrected, uncorrectable)
    }

    /// Re-programs a chip's catch-word after a collision (Section V-D3).
    pub(crate) fn update_catch_word(&mut self, chip: usize) {
        let cw = self.catch_words.regenerate(&mut self.rng, chip);
        self.chips[chip].set_catch_word(cw);
        self.stats.catch_word_updates += 1;
    }

    /// Writes a corrected line back (scrub-on-correct).
    pub(crate) fn scrub(&mut self, addr: WordAddr, data: &[u64; DATA_CHIPS]) {
        self.stats.scrub_writes += 1;
        xed_telemetry::tick(&metrics::CORE_XED_SCRUB_WRITES);
        self.store_line(addr, data);
    }

    /// Records a diagnosis verdict in the FCT, condemning the chip if the
    /// tracker saturates on it.
    pub(crate) fn record_diagnosis(&mut self, addr: WordAddr, chip: usize) {
        let row = RowAddr {
            bank: addr.bank,
            row: addr.row,
        };
        if let FctOutcome::ChipCondemned { chip } = self.fct.record(row, chip) {
            self.condemned_chip = Some(chip);
        }
    }
}

/// Equation 1: XOR of the eight data words equals the parity word.
pub(crate) fn parity_holds(words: &[u64; TOTAL_CHIPS]) -> bool {
    parity::holds(&words[..DATA_CHIPS], words[PARITY_CHIP])
}

pub(crate) fn clean_readout(words: &[u64; TOTAL_CHIPS]) -> LineReadout {
    let mut data = [0u64; DATA_CHIPS];
    data.copy_from_slice(&words[..DATA_CHIPS]);
    LineReadout {
        data,
        reconstructed_chip: None,
        used_diagnosis: false,
        collision: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, InjectedFault};

    fn controller() -> XedController {
        XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, 42, 8, 10)
    }

    fn addr(bank: u32, row: u32, col: u32) -> WordAddr {
        WordAddr { bank, row, col }
    }

    const LINE: [u64; 8] = [11, 22, 33, 44, 55, 66, 77, 88];

    #[test]
    fn clean_write_read_roundtrip() {
        let mut c = controller();
        let a = addr(0, 0, 0);
        c.write_line(a, &LINE);
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert_eq!(r.reconstructed_chip, None);
        assert!(!r.used_diagnosis);
        assert_eq!(c.stats().reconstructions, 0);
    }

    #[test]
    fn unwritten_line_reads_zeros() {
        let mut c = controller();
        let r = c.read_line(addr(1, 2, 3)).unwrap();
        assert_eq!(r.data, [0u64; 8]);
    }

    #[test]
    fn chip_failure_reconstructed() {
        let mut c = controller();
        let a = addr(0, 3, 7);
        c.write_line(a, &LINE);
        c.inject_fault(4, InjectedFault::chip(FaultKind::Permanent));
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert_eq!(r.reconstructed_chip, Some(4));
        assert!(c.stats().reconstructions >= 1);
        assert!(c.stats().catch_words_observed >= 1);
    }

    #[test]
    fn parity_chip_failure_harmless_for_data() {
        let mut c = controller();
        let a = addr(0, 0, 1);
        c.write_line(a, &LINE);
        c.inject_fault(PARITY_CHIP, InjectedFault::chip(FaultKind::Permanent));
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert_eq!(r.reconstructed_chip, Some(PARITY_CHIP));
    }

    #[test]
    fn every_data_chip_position_recoverable() {
        for chip in 0..8usize {
            let mut c = controller();
            let a = addr(1, 1, 1);
            c.write_line(a, &LINE);
            c.inject_fault(chip, InjectedFault::row(1, 1, FaultKind::Permanent));
            let r = c.read_line(a).unwrap();
            assert_eq!(r.data, LINE, "chip {chip}");
            assert_eq!(r.reconstructed_chip, Some(chip));
        }
    }

    #[test]
    fn two_broken_chips_in_one_line_due() {
        let mut c = controller();
        let a = addr(0, 2, 2);
        c.write_line(a, &LINE);
        c.inject_fault(1, InjectedFault::row(0, 2, FaultKind::Permanent));
        c.inject_fault(5, InjectedFault::row(0, 2, FaultKind::Permanent));
        let e = c.read_line(a).unwrap_err();
        assert!(matches!(e, XedError::MultipleFaultyChips { .. }), "{e:?}");
        assert!(c.stats().due_events >= 1);
    }

    #[test]
    fn transient_fault_scrubbed_after_correction() {
        let mut c = controller();
        let a = addr(0, 4, 4);
        c.write_line(a, &LINE);
        c.inject_fault(2, InjectedFault::word(a, FaultKind::Transient));
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        // Second read: scrub healed the corruption; clean path.
        let before = c.stats().reconstructions;
        let r2 = c.read_line(a).unwrap();
        assert_eq!(r2.data, LINE);
        assert_eq!(r2.reconstructed_chip, None);
        assert_eq!(c.stats().reconstructions, before);
    }

    #[test]
    fn scaling_faults_in_two_chips_serial_mode() {
        // Two chips each with a single-bit (correctable) fault: both send
        // catch-words; serial mode re-reads corrected data (Section VII-B).
        let mut c = controller();
        let a = addr(0, 6, 6);
        c.write_line(a, &LINE);
        c.inject_fault(0, InjectedFault::bit(a, 5, FaultKind::Permanent));
        c.inject_fault(3, InjectedFault::bit(a, 40, FaultKind::Permanent));
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert_eq!(c.stats().serial_modes, 1);
    }

    #[test]
    fn chip_failure_plus_scaling_fault_corrected() {
        // Section VII-C: runtime failure in one chip concurrent with a
        // correctable scaling fault in another.
        let mut c = controller();
        let a = addr(2, 8, 9);
        c.write_line(a, &LINE);
        c.inject_fault(1, InjectedFault::bit(a, 10, FaultKind::Permanent));
        c.inject_fault(6, InjectedFault::row(2, 8, FaultKind::Permanent));
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert!(c.stats().serial_modes >= 1);
        assert!(r.used_diagnosis || r.reconstructed_chip.is_some());
    }

    #[test]
    fn collision_detected_and_catch_word_updated() {
        let mut c = controller();
        let a = addr(0, 9, 9);
        // Store the catch-word of chip 2 *as data* in chip 2.
        let cw = c.catch_words.word(2).value();
        let mut line = LINE;
        line[2] = cw;
        c.write_line(a, &line);
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, line, "data delivered correctly despite collision");
        assert!(r.collision);
        assert_eq!(c.stats().collisions, 1);
        assert_eq!(c.stats().catch_word_updates, 1);
        assert_ne!(c.catch_words.word(2).value(), cw, "catch-word regenerated");
        // Subsequent reads are clean (no more collision).
        let r2 = c.read_line(a).unwrap();
        assert!(!r2.collision);
        assert_eq!(r2.data, line);
    }

    #[test]
    fn patrol_scrub_heals_transient_row_without_demand_reads() {
        let mut c = controller();
        for col in 0..128 {
            c.write_line(addr(1, 7, col), &LINE);
        }
        c.inject_fault(3, InjectedFault::row(1, 7, FaultKind::Transient));
        let (corrected, uncorrectable) = c.patrol_scrub();
        assert!(
            corrected >= 120,
            "most of the row scrubbed, got {corrected}"
        );
        assert_eq!(uncorrectable, 0);
        // Second pass: nothing left to fix.
        let (corrected2, _) = c.patrol_scrub();
        assert_eq!(corrected2, 0);
    }

    #[test]
    fn stats_count_reads_writes() {
        let mut c = controller();
        let a = addr(0, 0, 0);
        c.write_line(a, &LINE);
        c.read_line(a).unwrap();
        c.read_line(a).unwrap();
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().writes, 1);
    }
}
