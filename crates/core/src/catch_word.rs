//! Catch-words: the error-signaling data values at the heart of XED.
//!
//! A catch-word is a randomly selected data value agreed upon by the memory
//! controller and a DRAM chip at boot (stored in the chip's Catch-Word
//! Register via the MRS interface, paper Section V-A). When the chip's
//! on-die ECC detects or corrects an error, the chip transmits the
//! catch-word *instead of data* — conveying "this chip is faulty" without
//! extra pins, bursts or protocol changes.

use rand::Rng;
use std::fmt;

/// A 64-bit catch-word value (x8 devices; x4 devices use 32 significant
/// bits — see [`CatchWord::random_x4`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CatchWord(u64);

impl CatchWord {
    /// Draws a fresh random catch-word, as the memory controller does at
    /// boot and after a collision (paper Section V-D3).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.gen())
    }

    /// Draws a 32-bit catch-word for x4 devices (paper Section IX-A: with
    /// x4 parts a transfer carries 32 bits, so collisions are ~2³² times
    /// likelier and the expected time to collision is only hours).
    pub fn random_x4<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.gen::<u32>() as u64)
    }

    /// Constructs a catch-word from a fixed value (tests, reproducibility).
    pub fn from_value(value: u64) -> Self {
        Self(value)
    }

    /// The raw catch-word value the chip transmits.
    pub fn value(self) -> u64 {
        self.0
    }

    /// `true` if a word received from a chip equals this catch-word —
    /// the memory controller's detection criterion.
    pub fn matches(self, word: u64) -> bool {
        self.0 == word
    }
}

impl fmt::Display for CatchWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// The per-chip catch-word state the memory controller retains (its copy of
/// each chip's Catch-Word Register).
#[derive(Debug, Clone)]
pub struct CatchWordTable {
    words: Vec<CatchWord>,
}

impl CatchWordTable {
    /// Generates a unique random catch-word for each of `chips` chips.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, chips: usize) -> Self {
        let mut words = Vec::with_capacity(chips);
        while words.len() < chips {
            let cw = CatchWord::random(rng);
            // "unique random Catch-Word ... in each chip" (Section V-A).
            if !words.contains(&cw) {
                words.push(cw);
            }
        }
        Self { words }
    }

    /// Number of chips covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the table covers no chips.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The catch-word of chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> CatchWord {
        self.words[i]
    }

    /// Replaces chip `i`'s catch-word after a collision, returning the new
    /// word (guaranteed different from every current word).
    pub fn regenerate<R: Rng + ?Sized>(&mut self, rng: &mut R, i: usize) -> CatchWord {
        loop {
            let cw = CatchWord::random(rng);
            if !self.words.contains(&cw) {
                self.words[i] = cw;
                return cw;
            }
        }
    }

    /// Which chip (if any) a received word identifies as faulty.
    pub fn identify(&self, chip: usize, word: u64) -> bool {
        self.words[chip].matches(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_only_its_value() {
        let cw = CatchWord::from_value(0x1234);
        assert!(cw.matches(0x1234));
        assert!(!cw.matches(0x1235));
        assert_eq!(cw.value(), 0x1234);
    }

    #[test]
    fn x4_catch_word_fits_32_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(CatchWord::random_x4(&mut rng).value() <= u32::MAX as u64);
        }
    }

    #[test]
    fn table_generates_unique_words() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = CatchWordTable::generate(&mut rng, 9);
        assert_eq!(t.len(), 9);
        for i in 0..9 {
            for j in (i + 1)..9 {
                assert_ne!(t.word(i), t.word(j));
            }
        }
    }

    #[test]
    fn regenerate_changes_word_and_stays_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = CatchWordTable::generate(&mut rng, 9);
        let old = t.word(4);
        let new = t.regenerate(&mut rng, 4);
        assert_ne!(old, new);
        assert_eq!(t.word(4), new);
        for i in 0..9 {
            if i != 4 {
                assert_ne!(t.word(i), new);
            }
        }
    }

    #[test]
    fn identify_is_per_chip() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = CatchWordTable::generate(&mut rng, 3);
        assert!(t.identify(0, t.word(0).value()));
        assert!(!t.identify(0, t.word(1).value()));
    }

    #[test]
    fn display_hex() {
        assert_eq!(
            CatchWord::from_value(0xAB).to_string(),
            "0x00000000000000ab"
        );
    }
}
