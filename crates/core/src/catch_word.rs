//! Catch-words: the error-signaling data values at the heart of XED.
//!
//! A catch-word is a randomly selected data value agreed upon by the memory
//! controller and a DRAM chip at boot (stored in the chip's Catch-Word
//! Register via the MRS interface, paper Section V-A). When the chip's
//! on-die ECC detects or corrects an error, the chip transmits the
//! catch-word *instead of data* — conveying "this chip is faulty" without
//! extra pins, bursts or protocol changes.

use rand::Rng;
use std::fmt;

/// A 64-bit catch-word value (x8 devices; x4 devices use 32 significant
/// bits — see [`CatchWord::random_x4`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CatchWord(u64);

impl CatchWord {
    /// Draws a fresh random catch-word, as the memory controller does at
    /// boot and after a collision (paper Section V-D3).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.gen())
    }

    /// Draws a 32-bit catch-word for x4 devices (paper Section IX-A: with
    /// x4 parts a transfer carries 32 bits, so collisions are ~2³² times
    /// likelier and the expected time to collision is only hours).
    pub fn random_x4<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.gen::<u32>() as u64)
    }

    /// Constructs a catch-word from a fixed value (tests, reproducibility).
    pub fn from_value(value: u64) -> Self {
        Self(value)
    }

    /// The raw catch-word value the chip transmits.
    pub fn value(self) -> u64 {
        self.0
    }

    /// `true` if a word received from a chip equals this catch-word —
    /// the memory controller's detection criterion.
    pub fn matches(self, word: u64) -> bool {
        self.0 == word
    }
}

impl fmt::Display for CatchWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// The per-chip catch-word state the memory controller retains (its copy of
/// each chip's Catch-Word Register).
#[derive(Debug, Clone)]
pub struct CatchWordTable {
    words: Vec<CatchWord>,
}

impl CatchWordTable {
    /// Generates a unique random catch-word for each of `chips` chips.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, chips: usize) -> Self {
        let mut words = Vec::with_capacity(chips);
        while words.len() < chips {
            let cw = CatchWord::random(rng);
            // "unique random Catch-Word ... in each chip" (Section V-A).
            if !words.contains(&cw) {
                words.push(cw);
            }
        }
        Self { words }
    }

    /// Number of chips covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the table covers no chips.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The catch-word of chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> CatchWord {
        self.words[i]
    }

    /// Replaces chip `i`'s catch-word after a collision, returning the new
    /// word (guaranteed different from every current word).
    pub fn regenerate<R: Rng + ?Sized>(&mut self, rng: &mut R, i: usize) -> CatchWord {
        loop {
            let cw = CatchWord::random(rng);
            if !self.words.contains(&cw) {
                self.words[i] = cw;
                return cw;
            }
        }
    }

    /// Which chip (if any) a received word identifies as faulty.
    pub fn identify(&self, chip: usize, word: u64) -> bool {
        self.words[chip].matches(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_only_its_value() {
        let cw = CatchWord::from_value(0x1234);
        assert!(cw.matches(0x1234));
        assert!(!cw.matches(0x1235));
        assert_eq!(cw.value(), 0x1234);
    }

    #[test]
    fn x4_catch_word_fits_32_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(CatchWord::random_x4(&mut rng).value() <= u32::MAX as u64);
        }
    }

    #[test]
    fn table_generates_unique_words() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = CatchWordTable::generate(&mut rng, 9);
        assert_eq!(t.len(), 9);
        for i in 0..9 {
            for j in (i + 1)..9 {
                assert_ne!(t.word(i), t.word(j));
            }
        }
    }

    #[test]
    fn regenerate_changes_word_and_stays_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = CatchWordTable::generate(&mut rng, 9);
        let old = t.word(4);
        let new = t.regenerate(&mut rng, 4);
        assert_ne!(old, new);
        assert_eq!(t.word(4), new);
        for i in 0..9 {
            if i != 4 {
                assert_ne!(t.word(i), new);
            }
        }
    }

    #[test]
    fn identify_is_per_chip() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = CatchWordTable::generate(&mut rng, 3);
        assert!(t.identify(0, t.word(0).value()));
        assert!(!t.identify(0, t.word(1).value()));
    }

    #[test]
    fn display_hex() {
        assert_eq!(
            CatchWord::from_value(0xAB).to_string(),
            "0x00000000000000ab"
        );
    }

    // ---- collision behavior (paper Section IV / V-D3) ----------------

    /// An RNG that replays a script of values — lets the tests steer the
    /// uniqueness/re-key loops into their collision branches.
    struct ScriptedRng {
        script: Vec<u64>,
        at: usize,
    }

    impl rand::RngCore for ScriptedRng {
        fn next_u64(&mut self) -> u64 {
            let v = self.script[self.at % self.script.len()];
            self.at += 1;
            v
        }
    }

    #[test]
    fn data_matching_a_catch_word_is_a_collision_until_rekeyed() {
        // Section IV: a *data* value that happens to equal a chip's
        // catch-word is indistinguishable from an error signal — the
        // false identification IS the collision. Re-keying (V-D3)
        // resolves it: the stale value stops signaling.
        let mut rng = StdRng::seed_from_u64(40);
        let mut t = CatchWordTable::generate(&mut rng, 9);
        let colliding_data = t.word(2).value();
        assert!(t.identify(2, colliding_data), "collision not flagged");

        let fresh = t.regenerate(&mut rng, 2);
        assert!(!t.identify(2, colliding_data), "stale word still signals");
        assert!(t.identify(2, fresh.value()));
    }

    #[test]
    fn generate_discards_duplicate_draws() {
        // Feed the generator the same value twice before each fresh one:
        // the uniqueness filter (Section V-A) must reject the replays and
        // still hand every chip a distinct word.
        let mut rng = ScriptedRng {
            script: vec![7, 7, 7, 11, 11, 13, 13, 17, 17],
            at: 0,
        };
        let t = CatchWordTable::generate(&mut rng, 4);
        let mut values: Vec<u64> = (0..4).map(|i| t.word(i).value()).collect();
        values.sort_unstable();
        assert_eq!(values, vec![7, 11, 13, 17]);
    }

    #[test]
    fn regenerate_never_adopts_another_chips_word() {
        // The re-key draw may itself collide with a *different* chip's
        // catch-word; the loop must skip it or one physical value would
        // signal two chips.
        let mut rng = StdRng::seed_from_u64(41);
        let mut t = CatchWordTable::generate(&mut rng, 3);
        let other = t.word(0).value();
        let mut scripted = ScriptedRng {
            script: vec![other, other, 0xDEAD_BEEF],
            at: 0,
        };
        let fresh = t.regenerate(&mut scripted, 1);
        assert_eq!(fresh.value(), 0xDEAD_BEEF);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_ne!(t.word(i), t.word(j));
            }
        }
    }

    #[test]
    fn x4_collision_criterion_is_the_full_transfer_value() {
        // x4 catch-words occupy 32 significant bits (Section IX-A); the
        // controller still compares the whole received word, so a value
        // agreeing only in the low half is NOT a collision.
        let mut rng = StdRng::seed_from_u64(42);
        let cw = CatchWord::random_x4(&mut rng);
        assert!(cw.matches(cw.value()));
        assert!(!cw.matches(cw.value() | (1 << 32)));
    }

    #[test]
    fn x4_collisions_are_detected_and_rekeyed_end_to_end() {
        // The functional x4 system: write a line that deliberately
        // contains a chip's own catch-word; the read must flag the
        // collision, re-key the chip, and return correct data
        // (Section IX-A's "collisions are harmless" argument).
        use crate::xed_chipkill::XedChipkillSystem;
        let mut sys = XedChipkillSystem::new(0xC0111);
        let mut line = [0x5A5A_5A5Au32; 16];
        line[3] = sys.catch_word(3);
        let before = sys.catch_word(3);
        sys.write_line(1, &line);
        let out = sys.read_line(1).expect("a collision is not a fault");
        assert_eq!(out.data, line);
        assert!(out.collision, "collision not reported");
        assert_ne!(sys.catch_word(3), before, "chip 3 not re-keyed");
    }
}
