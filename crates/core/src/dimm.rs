//! A friendly facade over the XED controller + 9-chip DIMM.

use crate::chip::{ChipGeometry, OnDieCode, WordAddr};
use crate::controller::{LineReadout, XedController, XedStats, DATA_CHIPS};
use crate::error::XedError;
use crate::fault::InjectedFault;

/// Configuration for a [`XedDimm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XedConfig {
    /// Per-chip geometry (functional model size).
    pub geometry: ChipGeometry,
    /// On-die SECDED code (the paper recommends CRC8-ATM).
    pub code: OnDieCode,
    /// Seed for catch-word generation.
    pub seed: u64,
    /// Faulty-row Chip Tracker capacity (paper: 4–8).
    pub fct_capacity: usize,
    /// Inter-Line diagnosis threshold, percent of faulty lines in a row
    /// (paper: 10%).
    pub inter_line_threshold_percent: u32,
}

impl Default for XedConfig {
    fn default() -> Self {
        Self {
            geometry: ChipGeometry::small(),
            code: OnDieCode::Crc8Atm,
            seed: 0xCA7C,
            fct_capacity: 8,
            inter_line_threshold_percent: 10,
        }
    }
}

/// A complete functional XED memory system for one ECC-DIMM: nine
/// on-die-ECC DRAM chips plus the XED memory controller.
///
/// Cache lines are addressed either linearly (`u64` index, row-major) or by
/// explicit [`WordAddr`].
///
/// ```
/// use xed_core::{XedDimm, XedConfig};
///
/// let mut dimm = XedDimm::new(XedConfig::default());
/// dimm.write_line(7, &[1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(dimm.read_line(7).unwrap().data, [1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Debug)]
pub struct XedDimm {
    controller: XedController,
}

impl XedDimm {
    /// Boots the DIMM and controller.
    pub fn new(config: XedConfig) -> Self {
        Self {
            controller: XedController::new(
                config.geometry,
                config.code,
                config.seed,
                config.fct_capacity,
                config.inter_line_threshold_percent,
            ),
        }
    }

    /// The configured chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.controller.geometry()
    }

    /// Translates a linear line index into a word address.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range for the geometry.
    pub fn line_addr(&self, line: u64) -> WordAddr {
        self.controller.geometry().addr(line)
    }

    /// Writes a cache line at a linear index.
    pub fn write_line(&mut self, line: u64, data: &[u64; DATA_CHIPS]) {
        let addr = self.line_addr(line);
        self.controller.write_line(addr, data);
    }

    /// Writes a cache line at an explicit address.
    pub fn write_line_at(&mut self, addr: WordAddr, data: &[u64; DATA_CHIPS]) {
        self.controller.write_line(addr, data);
    }

    /// Reads a cache line at a linear index.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when the corruption exceeds XED's correction
    /// capability (see [`XedController::read_line`]).
    pub fn read_line(&mut self, line: u64) -> Result<LineReadout, XedError> {
        let addr = self.line_addr(line);
        self.controller.read_line(addr)
    }

    /// Reads a cache line at an explicit address.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when the corruption exceeds XED's correction
    /// capability.
    pub fn read_line_at(&mut self, addr: WordAddr) -> Result<LineReadout, XedError> {
        self.controller.read_line(addr)
    }

    /// Injects a fault into one chip (0–7 data, 8 parity).
    pub fn inject_fault(&mut self, chip: usize, fault: InjectedFault) {
        self.controller.inject_fault(chip, fault);
    }

    /// Controller statistics.
    pub fn stats(&self) -> XedStats {
        self.controller.stats()
    }

    /// Access to the underlying controller (advanced use).
    pub fn controller(&self) -> &XedController {
        &self.controller
    }

    /// Mutable access to the underlying controller (advanced use).
    pub fn controller_mut(&mut self) -> &mut XedController {
        &mut self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    #[test]
    fn linear_addressing_distinct_lines() {
        let mut d = XedDimm::new(XedConfig::default());
        d.write_line(0, &[9; 8]);
        d.write_line(1, &[5; 8]);
        assert_eq!(d.read_line(0).unwrap().data, [9; 8]);
        assert_eq!(d.read_line(1).unwrap().data, [5; 8]);
    }

    #[test]
    fn facade_matches_doc_example() {
        let mut dimm = XedDimm::new(XedConfig::default());
        let line = [0xDEAD_BEEF_0000_0001u64; 8];
        dimm.write_line(0, &line);
        dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
        let out = dimm.read_line(0).unwrap();
        assert_eq!(out.data, line);
        assert!(dimm.stats().reconstructions > 0);
    }

    #[test]
    fn explicit_addressing_equivalent() {
        let mut d = XedDimm::new(XedConfig::default());
        let a = d.line_addr(130);
        d.write_line_at(a, &[3; 8]);
        assert_eq!(d.read_line(130).unwrap().data, [3; 8]);
        assert_eq!(d.read_line_at(a).unwrap().data, [3; 8]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_line_panics() {
        let mut d = XedDimm::new(XedConfig::default());
        let words = d.geometry().words();
        let _ = d.read_line(words);
    }

    #[test]
    fn hamming_on_die_variant_boots() {
        let cfg = XedConfig {
            code: OnDieCode::Hamming,
            ..XedConfig::default()
        };
        let mut d = XedDimm::new(cfg);
        d.write_line(0, &[1; 8]);
        assert_eq!(d.read_line(0).unwrap().data, [1; 8]);
    }
}
