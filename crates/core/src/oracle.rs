//! Data-path entry points for the verification oracles (`xed-testkit`).
//!
//! The Monte-Carlo response model in `xed-faultsim` abstracts each fault
//! arrival into a verdict (Corrected / DUE / SDC). The functions here
//! realize those abstract outcomes *concretely*: they build a functional
//! memory system, inject a real corruption pattern, perform a real read
//! through the real decoders, and classify what came out. The exhaustive
//! small-geometry oracle (DESIGN.md §12) uses them as the independent
//! side of its differential comparison.
//!
//! Two helpers pin the micro-architectural assumption a model draw
//! encodes: [`with_miss_at`] crafts a fault whose corruption at a chosen
//! address is a *codeword* of the on-die CRC8-ATM code — the chip decodes
//! it as clean and transmits wrong data (the paper's 0.8 % "on-die
//! detection miss", Section VI) — while [`with_event_at`] guarantees the
//! opposite. Both verify the constructed pattern against the bit-serial
//! *reference* decoder in `xed_ecc::reference`, not the production
//! mask–popcount kernels, so the oracle does not inherit a kernel bug.

use crate::chip::{ChipGeometry, WordAddr};
use crate::dimm::{XedConfig, XedDimm};
use crate::fault::InjectedFault;
use crate::secded_dimm::{SecdedDimm, SecdedReadout};
use crate::xed_chipkill::XedChipkillSystem;
use xed_ecc::reference::{crc8_u32_bitserial, crc8_u64_bitserial};

/// Three-way classification of one realized line read.
///
/// `Corrected` covers both "clean" and "corrected": the oracle compares
/// against the Monte-Carlo verdict with `Benign` folded into `Corrected`
/// (both mean the access returned the right data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathOutcome {
    /// The read returned the written data.
    Corrected,
    /// The read reported a detected uncorrectable error.
    Due,
    /// The read silently returned wrong data.
    Sdc,
}

/// The line pattern every oracle read/write uses (distinct per chip so a
/// mis-correction that swaps chips cannot alias back to "correct").
const LINE_X8: [u64; 8] = [
    0x0102_0304_0506_0708,
    0x1112_1314_1516_1718,
    0x2122_2324_2526_2728,
    0x3132_3334_3536_3738,
    0x4142_4344_4546_4748,
    0x5152_5354_5556_5758,
    0x6162_6364_6566_6768,
    0x7172_7374_7576_7778,
];

/// Cap on the deterministic corruption-seed searches. The searched
/// property holds per seed with probability ≈ 1/256 ([`with_miss_at`]) or
/// ≈ 255/256 ([`with_event_at`]), so 2¹⁷ candidates put the failure
/// probability below 2⁻⁷⁰⁰.
const SEARCH_CAP: u64 = 1 << 17;

/// Replaces `fault`'s corruption seed so that its (72,64) corruption at
/// `addr` is a nonzero *codeword* of the on-die CRC8-ATM code: the chip's
/// on-die decode sees a clean word and transmits wrong data — a concrete
/// on-die detection miss at that address.
///
/// Deterministic: scans candidate seeds from a fixed base. Verified
/// against the bit-serial reference CRC.
pub fn with_miss_at(fault: InjectedFault, addr: WordAddr) -> InjectedFault {
    for seed in 0..SEARCH_CAP {
        let candidate = fault.with_seed(0xD15E_A5E0u64.wrapping_add(seed));
        let (dx, cx) = candidate.corruption(addr);
        if cx == crc8_u64_bitserial(dx) {
            return candidate;
        }
    }
    // invariant: a 1/256-per-candidate search over 2^17 dense splitmix64
    // corruption patterns cannot exhaust without finding a codeword.
    unreachable_search()
}

/// Replaces `fault`'s corruption seed so that its corruption at `addr` is
/// *not* a codeword: the on-die decode flags an event (detection or
/// correction), which is what the DC-Mux turns into a catch-word.
pub fn with_event_at(fault: InjectedFault, addr: WordAddr) -> InjectedFault {
    for seed in 0..SEARCH_CAP {
        let candidate = fault.with_seed(0xE4E2_7000u64.wrapping_add(seed));
        let (dx, cx) = candidate.corruption(addr);
        if cx != crc8_u64_bitserial(dx) {
            return candidate;
        }
    }
    unreachable_search()
}

/// x4 variant of [`with_miss_at`]: the (40,32) corruption at `addr` is a
/// codeword of the 32-bit CRC8-ATM on-die code.
pub fn with_miss_at_x4(fault: InjectedFault, addr: WordAddr) -> InjectedFault {
    for seed in 0..SEARCH_CAP {
        let candidate = fault.with_seed(0x4D15_5E40u64.wrapping_add(seed));
        let (dx, cx) = candidate.corruption40(addr);
        if cx == crc8_u32_bitserial(dx) {
            return candidate;
        }
    }
    unreachable_search()
}

/// Search-exhaustion sink, kept out of line so the search loops stay
/// branch-light. Never reached (see [`SEARCH_CAP`]).
#[cold]
fn unreachable_search() -> InjectedFault {
    // invariant: callers searched 2^17 independent ≈1/256 (or ≈255/256)
    // candidates, so exhaustion is statistically impossible.
    unreachable!("corruption-seed search exhausted {SEARCH_CAP} candidates") // xed-lint: allow(XL003)
}

/// Realizes one line read through the conventional 9-chip SECDED DIMM
/// with the given faults injected (chip index, fault).
pub fn secded_read(faults: &[(usize, InjectedFault)], line: u64) -> PathOutcome {
    let mut dimm = SecdedDimm::new(ChipGeometry::small());
    dimm.write_line(line, &LINE_X8);
    for &(chip, fault) in faults {
        dimm.inject_fault(chip, fault);
    }
    match dimm.read_line(line) {
        SecdedReadout::Due { .. } => PathOutcome::Due,
        SecdedReadout::Ok { data, .. } => {
            if data == LINE_X8 {
                PathOutcome::Corrected
            } else {
                PathOutcome::Sdc
            }
        }
    }
}

/// Realizes one line read through the 9-chip XED DIMM (catch-words,
/// RAID-3 parity, serial mode, Inter-/Intra-Line diagnosis) with the
/// given faults injected.
pub fn xed_read(faults: &[(usize, InjectedFault)], line: u64) -> PathOutcome {
    let mut dimm = XedDimm::new(XedConfig::default());
    dimm.write_line(line, &LINE_X8);
    for &(chip, fault) in faults {
        dimm.inject_fault(chip, fault);
    }
    match dimm.read_line(line) {
        Err(_) => PathOutcome::Due,
        Ok(readout) => {
            if readout.data == LINE_X8 {
                PathOutcome::Corrected
            } else {
                PathOutcome::Sdc
            }
        }
    }
}

/// Realizes one line read through the 18-chip x4 XED + Chipkill system
/// (catch-word erasures into RS(18,16)) with the given faults injected.
pub fn xed_chipkill_read(faults: &[(usize, InjectedFault)], line: u64, seed: u64) -> PathOutcome {
    let mut sys = XedChipkillSystem::new(seed);
    let data: [u32; 16] = core::array::from_fn(|i| 0x0101_0101u32.wrapping_mul(i as u32 + 1));
    sys.write_line(line, &data);
    for &(chip, fault) in faults {
        sys.inject_fault(chip, fault);
    }
    match sys.read_line(line) {
        Err(_) => PathOutcome::Due,
        Ok(readout) => {
            if readout.data == data {
                PathOutcome::Corrected
            } else {
                PathOutcome::Sdc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{DramChip, OnDieCode};
    use crate::fault::FaultKind;

    fn addr() -> WordAddr {
        WordAddr {
            bank: 0,
            row: 1,
            col: 2,
        }
    }

    #[test]
    fn miss_pattern_is_invisible_to_the_on_die_decoder() {
        let fault = with_miss_at(InjectedFault::word(addr(), FaultKind::Permanent), addr());
        let mut chip = DramChip::new(ChipGeometry::small(), OnDieCode::Crc8Atm);
        chip.write(addr(), 0xABCD);
        chip.inject_fault(fault);
        let bus = chip.read(addr());
        assert!(!bus.on_die_event, "a codeword-xor corruption decodes clean");
        assert_ne!(bus.value, 0xABCD, "and the transmitted data is wrong");
    }

    #[test]
    fn event_pattern_is_always_flagged() {
        let fault = with_event_at(InjectedFault::word(addr(), FaultKind::Permanent), addr());
        let mut chip = DramChip::new(ChipGeometry::small(), OnDieCode::Crc8Atm);
        chip.write(addr(), 0xABCD);
        chip.inject_fault(fault);
        assert!(chip.read(addr()).on_die_event);
    }

    #[test]
    fn secded_read_classifies_clean_and_chip_fault() {
        assert_eq!(secded_read(&[], 0), PathOutcome::Corrected);
        // A dead chip defeats DIMM SECDED one way or the other.
        let out = secded_read(&[(3, InjectedFault::chip(FaultKind::Permanent))], 0);
        assert_ne!(out, PathOutcome::Corrected);
    }

    #[test]
    fn xed_read_reconstructs_single_chip_fault() {
        let out = xed_read(&[(3, InjectedFault::chip(FaultKind::Permanent))], 0);
        assert_eq!(out, PathOutcome::Corrected);
    }

    #[test]
    fn xed_chipkill_read_survives_two_chip_faults() {
        let faults = [
            (2, InjectedFault::chip(FaultKind::Permanent)),
            (9, InjectedFault::chip(FaultKind::Permanent)),
        ];
        assert_eq!(
            xed_chipkill_read(&faults, 0, 0xCA7C),
            PathOutcome::Corrected
        );
    }
}
