//! Inter-Line and Intra-Line Fault Diagnosis (paper Section VI).
//!
//! These run when the DIMM-level parity mismatches but no (single) chip
//! identified itself with a catch-word — i.e. the on-die ECC *missed* a
//! multi-bit error (≈0.8% of multi-bit patterns), or multiple catch-words
//! left the faulty chip ambiguous.
//!
//! * **Inter-Line** (VI-A): large faults (column/row/bank/chip) corrupt
//!   neighboring lines too. Stream the whole row buffer (128 lines) and
//!   count catch-words per chip; the chip with ≥10% faulty lines is the
//!   culprit. Verdicts are cached in the [FCT](crate::fct), and an FCT
//!   saturated by one chip condemns that chip outright.
//! * **Intra-Line** (VI-B): a fault confined to the requested line leaves
//!   neighbors clean. Buffer the line, write all-zeros and all-ones test
//!   patterns, and read them back: a chip with *permanent* broken cells
//!   fails the pattern comparison. Transient word faults are not
//!   reproducible this way and end in a DUE — the dominant term of the
//!   paper's Table IV DUE budget.

use crate::chip::WordAddr;
use crate::controller::{
    event_addr, LineReadout, XedController, DATA_CHIPS, PARITY_CHIP, TOTAL_CHIPS,
};
use crate::error::XedError;
use crate::fct::RowAddr;
use xed_ecc::parity;
use xed_telemetry::registry::metrics;
use xed_telemetry::EventKind;

impl XedController {
    /// Entry point for the parity-mismatch path: FCT lookup, then
    /// Inter-Line, then Intra-Line diagnosis; reconstructs the identified
    /// chip or reports a DUE.
    pub(crate) fn diagnose_and_correct(
        &mut self,
        addr: WordAddr,
        words: [u64; TOTAL_CHIPS],
    ) -> Result<LineReadout, XedError> {
        // 1. A previous diagnosis may already have blamed this row.
        if let Some(chip) = self.fct.lookup(RowAddr {
            bank: addr.bank,
            row: addr.row,
        }) {
            self.stats.fct_hits += 1;
            return self.finish_diagnosed(addr, &words, chip);
        }

        // 2. Inter-Line: stream the row buffer.
        self.stats.inter_line_runs += 1;
        xed_telemetry::tick(&metrics::CORE_XED_DIAGNOSIS_RUNS);
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::Diagnosis, 0, event_addr(addr));
        }
        if let Some(chip) = self.inter_line_diagnosis(addr) {
            self.record_diagnosis(addr, chip);
            return self.finish_diagnosed(addr, &words, chip);
        }

        // 3. Intra-Line: pattern test the single line.
        self.stats.intra_line_runs += 1;
        xed_telemetry::tick(&metrics::CORE_XED_DIAGNOSIS_RUNS);
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::Diagnosis, 1, event_addr(addr));
        }
        let suspects = self.intra_line_diagnosis(addr, &words);
        match suspects.len() {
            1 => self.finish_diagnosed(addr, &words, suspects[0]),
            n => {
                self.stats.due_events += 1;
                xed_telemetry::tick(&metrics::CORE_XED_DUE);
                if xed_telemetry::enabled() {
                    self.ring.record(EventKind::Due, n as u64, event_addr(addr));
                }
                Err(XedError::DetectedUncorrectable { suspects: n as u32 })
            }
        }
    }

    /// Inter-Line Fault Diagnosis: reads every column of `addr`'s row with
    /// XED enabled and counts catch-words per chip. Returns the chip whose
    /// faulty-line count uniquely exceeds the threshold.
    pub(crate) fn inter_line_diagnosis(&mut self, addr: WordAddr) -> Option<usize> {
        let cols = self.geometry().cols;
        let threshold = (cols * self.inter_line_threshold_percent)
            .div_ceil(100)
            .max(1);
        let mut counts = [0u32; TOTAL_CHIPS];
        for col in 0..cols {
            let line = WordAddr {
                bank: addr.bank,
                row: addr.row,
                col,
            };
            let words = self.bus_read(line);
            for chip in self.catching_chips(&words) {
                counts[chip] += 1;
            }
        }
        // The verdict must be unambiguous: exactly one chip above the
        // threshold. Two chips both screaming catch-words (a double chip
        // failure) must fall through to a DUE, not a blind reconstruction.
        let mut over: Vec<usize> = (0..TOTAL_CHIPS)
            .filter(|&i| counts[i] >= threshold)
            .collect();
        match (over.len(), over.pop()) {
            (1, Some(chip)) => Some(chip),
            _ => None,
        }
    }

    /// Intra-Line Fault Diagnosis: writes all-zeros then all-ones to the
    /// line and reads them back raw (XED disabled); chips whose readback
    /// mismatches the pattern have permanent broken cells.
    ///
    /// The original bus words are restored afterwards (corrected if the
    /// diagnosis identified a single chip — done by the caller via
    /// [`Self::finish_diagnosed`] — or verbatim otherwise).
    pub(crate) fn intra_line_diagnosis(
        &mut self,
        addr: WordAddr,
        original: &[u64; TOTAL_CHIPS],
    ) -> Vec<usize> {
        let mut suspect = [false; TOTAL_CHIPS];
        for pattern in [0u64, u64::MAX] {
            for chip in &mut self.chips {
                chip.write(addr, pattern);
            }
            for chip in &mut self.chips {
                chip.set_xed_enable(false);
            }
            for (i, flagged) in suspect.iter_mut().enumerate() {
                if self.chips[i].read(addr).value != pattern {
                    *flagged = true;
                }
            }
            for chip in &mut self.chips {
                chip.set_xed_enable(true);
            }
        }
        // Restore the (possibly corrupted) original words verbatim; the
        // caller rewrites the corrected line if reconstruction succeeds.
        for (i, &w) in original.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        (0..TOTAL_CHIPS).filter(|&i| suspect[i]).collect()
    }

    /// Reconstructs `chip` from parity out of the buffered `words`, scrubs,
    /// and returns the corrected readout flagged as diagnosis-assisted.
    fn finish_diagnosed(
        &mut self,
        addr: WordAddr,
        words: &[u64; TOTAL_CHIPS],
        chip: usize,
    ) -> Result<LineReadout, XedError> {
        let mut data = [0u64; DATA_CHIPS];
        data.copy_from_slice(&words[..DATA_CHIPS]);
        if chip != PARITY_CHIP {
            data[chip] = parity::reconstruct(&data, words[PARITY_CHIP], chip);
        }
        self.stats.reconstructions += 1;
        xed_telemetry::tick(&metrics::CORE_XED_RECONSTRUCTIONS);
        if xed_telemetry::enabled() {
            self.ring.record(
                EventKind::ErasureReconstructed,
                chip as u64,
                event_addr(addr),
            );
        }
        self.scrub(addr, &data);
        Ok(LineReadout {
            data,
            reconstructed_chip: Some(chip),
            used_diagnosis: true,
            collision: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::chip::{ChipGeometry, OnDieCode, WordAddr};
    use crate::controller::XedController;
    use crate::error::XedError;
    use crate::fault::{FaultKind, InjectedFault};

    fn controller() -> XedController {
        XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, 7, 4, 10)
    }

    fn addr(bank: u32, row: u32, col: u32) -> WordAddr {
        WordAddr { bank, row, col }
    }

    const LINE: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

    /// Fabricates the on-die-miss condition: a fault whose corruption the
    /// on-die code cannot see, by directly storing a *valid* codeword with
    /// wrong data. We emulate it with a fault seed chosen so the pattern is
    /// dense, then disabling the chip's event by... injecting into the
    /// parity relationship instead: write different data to one chip after
    /// the line write.
    fn desync_chip(c: &mut XedController, chip: usize, a: WordAddr, bogus: u64) {
        // Writing directly through the chip interface re-encodes: the chip
        // sees a perfectly valid codeword (no on-die event), but the DIMM
        // parity no longer holds — exactly the "on-die ECC missed it"
        // scenario of Section VI.
        let chips = &mut c.chips;
        chips[chip].write(a, bogus);
    }

    #[test]
    fn inter_line_identifies_row_failure_on_miss() {
        let mut c = controller();
        let a = addr(1, 5, 20);
        for col in 0..128 {
            c.write_line(addr(1, 5, col), &LINE);
        }
        // Chip 3 has a row failure *and* its word at the accessed line
        // happens to decode clean (simulated by desync); neighboring lines
        // still scream catch-words.
        c.inject_fault(3, InjectedFault::row(1, 5, FaultKind::Permanent));
        // Overwrite the accessed line's chip-3 word with a valid-but-wrong
        // codeword on top of which the fault pattern is *not* applied:
        // clear and re-add the fault so only other columns are corrupted.
        c.chips[3].clear_faults();
        desync_chip(&mut c, 3, a, 0xBAD);
        for col in 0..128 {
            if col != 20 {
                // fault everywhere else in the row
                c.inject_fault(
                    3,
                    InjectedFault::word(addr(1, 5, col), FaultKind::Permanent)
                        .with_seed(col as u64),
                );
            }
        }
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert!(r.used_diagnosis);
        assert_eq!(r.reconstructed_chip, Some(3));
        assert_eq!(c.stats().inter_line_runs, 1);
    }

    #[test]
    fn fct_caches_inter_line_verdict() {
        let mut c = controller();
        for col in 0..128 {
            c.write_line(addr(0, 9, col), &LINE);
        }
        // Row fault on chip 2, but desync two different lines so the
        // catch-word never fires there.
        c.inject_fault(2, InjectedFault::row(0, 9, FaultKind::Permanent));
        c.chips[2].clear_faults();
        for col in 0..128u32 {
            if col != 30 && col != 31 {
                c.inject_fault(
                    2,
                    InjectedFault::word(addr(0, 9, col), FaultKind::Permanent)
                        .with_seed(900 + col as u64),
                );
            }
        }
        desync_chip(&mut c, 2, addr(0, 9, 30), 0xB0);
        desync_chip(&mut c, 2, addr(0, 9, 31), 0xB1);
        let r1 = c.read_line(addr(0, 9, 30)).unwrap();
        assert_eq!(r1.data, LINE);
        assert_eq!(c.stats().inter_line_runs, 1);
        let r2 = c.read_line(addr(0, 9, 31)).unwrap();
        assert_eq!(r2.data, LINE);
        assert_eq!(c.stats().inter_line_runs, 1, "second miss served from FCT");
        assert!(c.stats().fct_hits >= 1);
    }

    #[test]
    fn intra_line_identifies_permanent_word_fault_on_miss() {
        let mut c = controller();
        let a = addr(2, 2, 2);
        c.write_line(a, &LINE);
        // Permanent single-word fault on chip 6 whose pattern the on-die
        // code misses: emulate the miss by injecting a fault that maps the
        // stored word to another valid codeword. We approximate by
        // scanning seeds until the chip reports no event for this address.
        let mut seed = 0u64;
        let found = loop {
            let f = InjectedFault::word(a, FaultKind::Permanent).with_seed(seed);
            c.chips[6].inject_fault(f);
            let raw = c.chips[6].read(a);
            let missed = raw.value != LINE[6] && !raw.on_die_event;
            if missed {
                break true;
            }
            c.chips[6].clear_faults();
            seed += 1;
            if seed > 5000 {
                break false;
            }
        };
        assert!(found, "no miss-pattern seed found (p≈0.4% per seed)");
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert!(r.used_diagnosis);
        assert_eq!(r.reconstructed_chip, Some(6));
        assert_eq!(c.stats().intra_line_runs, 1);
    }

    #[test]
    fn transient_word_miss_is_due() {
        let mut c = controller();
        let a = addr(0, 1, 1);
        c.write_line(a, &LINE);
        // The on-die-missed *transient* corruption: emulate by desyncing a
        // chip (valid codeword, wrong data, no reproducible broken cells).
        desync_chip(&mut c, 4, a, 0xDEAD);
        let e = c.read_line(a).unwrap_err();
        assert!(
            matches!(e, XedError::DetectedUncorrectable { suspects: 0 }),
            "expected DUE with no suspects, got {e:?}"
        );
        assert_eq!(c.stats().due_events, 1);
        assert_eq!(c.stats().inter_line_runs, 1);
        assert_eq!(c.stats().intra_line_runs, 1);
    }

    #[test]
    fn intra_line_restores_line_contents() {
        let mut c = controller();
        let a = addr(0, 3, 3);
        c.write_line(a, &LINE);
        desync_chip(&mut c, 4, a, 0xDEAD);
        let _ = c.read_line(a); // DUE path; patterns written and restored
                                // The line still holds the (desynced) words rather than a pattern.
        let words = c.bus_read(a);
        assert_eq!(words[0], LINE[0]);
        assert_eq!(words[4], 0xDEAD);
        assert_ne!(words[1], u64::MAX);
    }

    #[test]
    fn condemned_chip_after_fct_saturation() {
        let mut c = controller(); // fct capacity 4
                                  // Column-failure-like pattern: four different rows blamed on chip 5.
        for row in 0..4 {
            for col in 0..128 {
                c.write_line(addr(0, 10 + row, col), &LINE);
            }
        }
        for row in 0..4u32 {
            // Fault chip 5 across the row, desync the accessed column.
            for col in 0..128u32 {
                if col != 0 {
                    c.inject_fault(
                        5,
                        InjectedFault::word(addr(0, 10 + row, col), FaultKind::Permanent)
                            .with_seed((row * 1000 + col) as u64),
                    );
                }
            }
            desync_chip(&mut c, 5, addr(0, 10 + row, 0), 0x5A + row as u64);
            let r = c.read_line(addr(0, 10 + row, 0)).unwrap();
            assert_eq!(r.data, LINE, "row {row}");
        }
        assert_eq!(c.condemned_chip(), Some(5));
        // Subsequent reads anywhere treat chip 5 as a standing erasure.
        let a = addr(3, 0, 0);
        c.write_line(a, &LINE);
        let r = c.read_line(a).unwrap();
        assert_eq!(r.data, LINE);
        assert_eq!(r.reconstructed_chip, Some(5));
        assert!(c.stats().fct_hits >= 1);
    }
}
