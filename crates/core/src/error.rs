//! Error types of the XED memory system.

use std::fmt;

/// Failure modes a XED memory controller can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XedError {
    /// Detected uncorrectable error: the DIMM-level parity mismatched and
    /// neither Inter-Line nor Intra-Line diagnosis could pin down a single
    /// faulty chip (paper Section VIII). The system should restart or
    /// restore a checkpoint.
    DetectedUncorrectable {
        /// Number of chips the diagnosis suspected (0 = none, ≥2 = too
        /// many for single-parity reconstruction).
        suspects: u32,
    },
    /// More than one chip transmitted a catch-word *and* serial-mode
    /// re-read still mismatched parity with multiple unresolved chips.
    MultipleFaultyChips {
        /// How many chips presented catch-words.
        catch_words: u32,
    },
}

impl fmt::Display for XedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XedError::DetectedUncorrectable { suspects } => {
                write!(
                    f,
                    "detected uncorrectable error (diagnosis found {suspects} suspects)"
                )
            }
            XedError::MultipleFaultyChips { catch_words } => {
                write!(
                    f,
                    "multiple concurrently faulty chips ({catch_words} catch-words)"
                )
            }
        }
    }
}

impl std::error::Error for XedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XedError::DetectedUncorrectable { suspects: 2 };
        assert!(e.to_string().contains("uncorrectable"));
        let e = XedError::MultipleFaultyChips { catch_words: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<XedError>();
    }
}
