//! A *conventional* 9-chip ECC-DIMM running DIMM-level (72,64) SECDED —
//! the baseline XED replaces.
//!
//! Each memory beat carries 8 bits from every chip: 64 data bits from the
//! eight data chips plus 8 check bits from the ninth. The memory
//! controller decodes each of the eight beats with a (72,64) SECDED code.
//! This is exactly the organization of Figure 2(a), and making it runnable
//! shows *why* the paper calls the 9th chip "superfluous" once chips have
//! on-die ECC:
//!
//! * single-bit faults — already absorbed by the on-die ECC, so the
//!   DIMM-level code has nothing to do;
//! * multi-bit chip faults — inject an 8-bit burst into every beat, which
//!   a SECDED code cannot correct, and (per Table II) may even silently
//!   *mis-correct*.

use crate::chip::{ChipGeometry, DramChip, OnDieCode};
use crate::fault::InjectedFault;
use xed_ecc::secded::{SecDed, BEATS_PER_LINE};
use xed_ecc::{CodeWord72, Hamming7264};
use xed_telemetry::registry::metrics;

const DATA_CHIPS: usize = 8;
const TOTAL_CHIPS: usize = 9;
const BEATS: usize = BEATS_PER_LINE;

/// Outcome of reading one cache line through DIMM-level SECDED.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedReadout {
    /// All beats decoded cleanly or with single-bit corrections.
    Ok {
        /// The (possibly corrected) cache line.
        data: [u64; DATA_CHIPS],
        /// Beats that needed a single-bit correction.
        corrected_beats: u32,
    },
    /// At least one beat had a detected-uncorrectable (double-bit or
    /// worse) error.
    Due {
        /// Number of uncorrectable beats.
        bad_beats: u32,
    },
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SecdedStats {
    /// Lines read.
    pub reads: u64,
    /// Single-bit beat corrections performed.
    pub corrections: u64,
    /// Detected uncorrectable lines.
    pub due_events: u64,
}

/// The conventional ECC-DIMM: nine chips + per-beat (72,64) SECDED.
#[derive(Debug)]
pub struct SecdedDimm {
    chips: Vec<DramChip>,
    code: Hamming7264,
    geometry: ChipGeometry,
    stats: SecdedStats,
}

impl SecdedDimm {
    /// Builds the DIMM (chips carry on-die ECC, the paper's Figure 1
    /// world).
    pub fn new(geometry: ChipGeometry) -> Self {
        let chips = (0..TOTAL_CHIPS)
            .map(|_| DramChip::new(geometry, OnDieCode::Crc8Atm))
            .collect();
        Self {
            chips,
            code: Hamming7264::new(),
            geometry,
            stats: SecdedStats::default(),
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// Controller statistics.
    pub fn stats(&self) -> SecdedStats {
        self.stats
    }

    /// Injects a fault into chip `chip` (0–7 data, 8 ECC).
    pub fn inject_fault(&mut self, chip: usize, fault: InjectedFault) {
        self.chips[chip].inject_fault(fault);
    }

    /// Writes a cache line: data to the eight chips, per-beat SECDED check
    /// bytes to the ninth.
    pub fn write_line(&mut self, line: u64, data: &[u64; DATA_CHIPS]) {
        let addr = self.geometry.addr(line);
        for (i, &w) in data.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        // Beat b carries byte b of every chip's 64-bit word.
        let mut check_word = [0u8; BEATS];
        for (b, slot) in check_word.iter_mut().enumerate() {
            let beat = gather_beat(data, b);
            *slot = self.code.encode(beat).check();
        }
        self.chips[DATA_CHIPS].write(addr, u64::from_be_bytes(check_word));
    }

    /// Reads a cache line, decoding each beat with the (72,64) SECDED code.
    pub fn read_line(&mut self, line: u64) -> SecdedReadout {
        self.stats.reads += 1;
        xed_telemetry::tick(&metrics::CORE_SECDED_READS);
        let addr = self.geometry.addr(line);
        let mut words = [0u64; TOTAL_CHIPS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.chips[i].read(addr).value;
        }
        let check_bytes = words[DATA_CHIPS].to_be_bytes();

        let mut data = [0u64; DATA_CHIPS];
        data.copy_from_slice(&words[..DATA_CHIPS]);
        // Assemble all eight received beats, then decode the whole line in
        // one batched call — this is the controller's access-path kernel.
        let mut beats = [CodeWord72::default(); BEATS];
        for (b, w) in beats.iter_mut().enumerate() {
            *w = CodeWord72::new(gather_beat(&data, b), check_bytes[b]);
        }
        let out = self.code.decode_line(&beats);
        self.stats.corrections += u64::from(out.corrected_count());
        xed_telemetry::count(
            &metrics::CORE_SECDED_CORRECTIONS,
            u64::from(out.corrected_count()),
        );
        if out.is_due() {
            self.stats.due_events += 1;
            xed_telemetry::tick(&metrics::CORE_SECDED_DUE);
            SecdedReadout::Due {
                bad_beats: out.bad_beats.count_ones(),
            }
        } else {
            for b in xed_ecc::bits::set_bits64(out.corrected_beats as u64) {
                scatter_beat(&mut data, b as usize, out.data[b as usize]);
            }
            SecdedReadout::Ok {
                data,
                corrected_beats: out.corrected_count(),
            }
        }
    }
}

/// Byte `b` of each data chip's word, assembled MSB-first into the beat's
/// 64 data bits (chip 0 in the high byte).
fn gather_beat(data: &[u64; DATA_CHIPS], b: usize) -> u64 {
    let mut beat = 0u64;
    for &w in data.iter() {
        beat = (beat << 8) | w.to_be_bytes()[b] as u64;
    }
    beat
}

/// Inverse of [`gather_beat`].
fn scatter_beat(data: &mut [u64; DATA_CHIPS], b: usize, beat: u64) {
    let bytes = beat.to_be_bytes();
    for (chip, &byte) in bytes.iter().enumerate() {
        let mut w = data[chip].to_be_bytes();
        w[b] = byte;
        data[chip] = u64::from_be_bytes(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    const LINE: [u64; 8] = [0x0102_0304_0506_0708, 2, 3, 4, 5, 6, 7, 8];

    fn dimm() -> SecdedDimm {
        let mut d = SecdedDimm::new(ChipGeometry::small());
        for l in 0..8 {
            d.write_line(l, &LINE);
        }
        d
    }

    #[test]
    fn beat_gather_scatter_roundtrip() {
        let data = LINE;
        for b in 0..8 {
            let beat = gather_beat(&data, b);
            let mut copy = data;
            scatter_beat(&mut copy, b, beat);
            assert_eq!(copy, data);
        }
        // Chip 0's byte lands in the beat's most significant byte.
        assert_eq!(gather_beat(&LINE, 0) >> 56, 0x01);
        assert_eq!(gather_beat(&LINE, 7) >> 56, 0x08);
    }

    #[test]
    fn clean_roundtrip() {
        let mut d = dimm();
        match d.read_line(0) {
            SecdedReadout::Ok {
                data,
                corrected_beats,
            } => {
                assert_eq!(data, LINE);
                assert_eq!(corrected_beats, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chip_failure_defeats_dimm_secded() {
        // The Figure 1 story: an 8-bit-per-beat burst is beyond SECDED.
        let mut d = dimm();
        d.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
        let mut fine = 0;
        let mut due = 0;
        for l in 0..8 {
            match d.read_line(l) {
                SecdedReadout::Due { .. } => due += 1,
                SecdedReadout::Ok { data, .. } => {
                    // A silently "Ok" line here is a *mis-correction* —
                    // allowed by Hamming's weak burst detection, but the
                    // data must then be wrong (we never get lucky-right).
                    if data == LINE {
                        fine += 1;
                    }
                }
            }
        }
        assert_eq!(fine, 0, "no line can read back correct through a dead chip");
        assert!(due >= 4, "most lines are detected uncorrectable, got {due}");
    }

    #[test]
    fn ecc_chip_failure_also_fatal() {
        let mut d = dimm();
        d.inject_fault(8, InjectedFault::chip(FaultKind::Permanent));
        // Check-byte garbage: beats decode as single-bit-in-check
        // (harmless) or uncorrectable; data itself is intact either way
        // when beats say Ok.
        let mut due = 0;
        for l in 0..8 {
            if let SecdedReadout::Due { .. } = d.read_line(l) {
                due += 1;
            }
        }
        assert!(due >= 1);
    }

    #[test]
    fn bit_faults_invisible_with_on_die_ecc() {
        // The "superfluous 9th chip" premise: on-die ECC already absorbs
        // the single-bit faults that DIMM SECDED was built for.
        let mut d = dimm();
        let addr = d.geometry().addr(1);
        d.inject_fault(5, InjectedFault::bit(addr, 20, FaultKind::Permanent));
        match d.read_line(1) {
            SecdedReadout::Ok {
                data,
                corrected_beats,
            } => {
                assert_eq!(data, LINE);
                assert_eq!(corrected_beats, 0, "on-die ECC fixed it first");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dimm();
        let _ = d.read_line(0);
        d.inject_fault(2, InjectedFault::chip(FaultKind::Permanent));
        let _ = d.read_line(1);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert!(s.due_events >= 1 || s.corrections >= 1);
    }
}
