//! Fault injection for the functional DRAM model.
//!
//! Unlike the statistical fault model of `xed-faultsim`, these faults
//! *actually corrupt stored bits*: a fault covers a region of the chip and
//! XORs a deterministic pseudo-random error pattern into every covered
//! word. Permanent faults corrupt data on every read (broken cells);
//! transient faults corrupt the stored value once and are healed when the
//! word is rewritten (e.g. by the controller's scrub-on-correct).

use crate::chip::WordAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter so every constructed fault gets a distinct default
/// corruption pattern (two faults of the same kind must not XOR-cancel
/// through the DIMM parity). Use [`InjectedFault::with_seed`] when a test
/// needs a reproducible pattern.
static NEXT_SEED: AtomicU64 = AtomicU64::new(0x51ED);

fn fresh_seed(tag: u64) -> u64 {
    NEXT_SEED.fetch_add(0x9E37_79B9, Ordering::Relaxed) ^ (tag << 32)
}

/// Persistence of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One-shot corruption, healed by a subsequent write.
    Transient,
    /// Broken cells: corruption reappears on every read, even after writes.
    Permanent,
}

/// The chip region a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultRegion {
    /// A single bit (0–71, data and check bits alike) of one word.
    Bit {
        /// Word containing the bit.
        addr: WordAddr,
        /// Physical bit index within the 72-bit on-die codeword.
        bit: u32,
    },
    /// One full on-die ECC word.
    Word {
        /// The affected word.
        addr: WordAddr,
    },
    /// A column: the same column index of every row of one bank.
    Column {
        /// Affected bank.
        bank: u32,
        /// Affected column.
        col: u32,
    },
    /// One full row of a bank.
    Row {
        /// Affected bank.
        bank: u32,
        /// Affected row.
        row: u32,
    },
    /// One full bank.
    Bank {
        /// Affected bank.
        bank: u32,
    },
    /// The entire chip.
    Chip,
}

impl FaultRegion {
    /// `true` if the region covers the given word address.
    pub fn covers(&self, a: WordAddr) -> bool {
        match *self {
            FaultRegion::Bit { addr, .. } | FaultRegion::Word { addr } => addr == a,
            FaultRegion::Column { bank, col } => a.bank == bank && a.col == col,
            FaultRegion::Row { bank, row } => a.bank == bank && a.row == row,
            FaultRegion::Bank { bank } => a.bank == bank,
            FaultRegion::Chip => true,
        }
    }

    /// `true` if the region spans more than one cache line, making it
    /// discoverable by Inter-Line Fault Diagnosis.
    pub fn spans_lines(&self) -> bool {
        matches!(
            self,
            FaultRegion::Column { .. }
                | FaultRegion::Row { .. }
                | FaultRegion::Bank { .. }
                | FaultRegion::Chip
        )
    }
}

/// A fault injected into one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectedFault {
    /// Corrupted region.
    pub region: FaultRegion,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// Seed that determines the (deterministic) corruption pattern.
    pub seed: u64,
}

impl InjectedFault {
    /// A whole-chip fault.
    pub fn chip(kind: FaultKind) -> Self {
        Self {
            region: FaultRegion::Chip,
            kind,
            seed: fresh_seed(0xC41B),
        }
    }

    /// A single-bank fault.
    pub fn bank(bank: u32, kind: FaultKind) -> Self {
        Self {
            region: FaultRegion::Bank { bank },
            kind,
            seed: fresh_seed(0xBA2C),
        }
    }

    /// A single-row fault.
    pub fn row(bank: u32, row: u32, kind: FaultKind) -> Self {
        Self {
            region: FaultRegion::Row { bank, row },
            kind,
            seed: fresh_seed(0x4019),
        }
    }

    /// A single-column fault.
    pub fn column(bank: u32, col: u32, kind: FaultKind) -> Self {
        Self {
            region: FaultRegion::Column { bank, col },
            kind,
            seed: fresh_seed(0xC071),
        }
    }

    /// A single-word fault.
    pub fn word(addr: WordAddr, kind: FaultKind) -> Self {
        Self {
            region: FaultRegion::Word { addr },
            kind,
            seed: fresh_seed(0x3040),
        }
    }

    /// A single-bit fault (bit 0–71 of the on-die codeword).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    pub fn bit(addr: WordAddr, bit: u32, kind: FaultKind) -> Self {
        assert!(bit < 72, "bit index {bit} out of range");
        Self {
            region: FaultRegion::Bit { addr, bit },
            kind,
            seed: fresh_seed(0xB17),
        }
    }

    /// Overrides the corruption-pattern seed (patterns are a pure function
    /// of `(seed, address)`).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deterministic 72-bit corruption pattern of this fault at `addr`,
    /// as `(data_xor, check_xor)`. Zero if the fault does not cover `addr`.
    ///
    /// Multi-bit regions corrupt each covered word with a dense
    /// pseudo-random pattern (roughly half the bits), matching the
    /// "garbage data" behavior of real large-granularity faults.
    pub fn corruption(&self, addr: WordAddr) -> (u64, u8) {
        if !self.region.covers(addr) {
            return (0, 0);
        }
        if let FaultRegion::Bit { bit, .. } = self.region {
            return if bit < 64 {
                (1u64 << (63 - bit), 0)
            } else {
                (0, 1u8 << (71 - bit))
            };
        }
        // splitmix64 over (seed, addr) for a dense, reproducible pattern.
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(addr.key());
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let data = {
            let mut d = next();
            if d == 0 {
                d = 1; // never a silent no-op corruption
            }
            d
        };
        let check = (next() & 0xFF) as u8;
        (data, check)
    }

    /// The corruption pattern projected onto a 40-bit (x4-device)
    /// codeword, as `(data_xor, check_xor)`. For [`FaultRegion::Bit`] the
    /// bit index must be `< 40`.
    ///
    /// # Panics
    ///
    /// Panics for a `Bit` region with `bit >= 40`.
    pub fn corruption40(&self, addr: WordAddr) -> (u32, u8) {
        if !self.region.covers(addr) {
            return (0, 0);
        }
        if let FaultRegion::Bit { bit, .. } = self.region {
            assert!(
                bit < 40,
                "bit index {bit} out of range for a 40-bit codeword"
            );
            return if bit < 32 {
                (1u32 << (31 - bit), 0)
            } else {
                (0, 1u8 << (39 - bit))
            };
        }
        let (d64, check) = self.corruption(addr);
        let mut data = (d64 & 0xFFFF_FFFF) as u32;
        if data == 0 {
            data = (d64 >> 32) as u32 | 1;
        }
        (data, check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(bank: u32, row: u32, col: u32) -> WordAddr {
        WordAddr { bank, row, col }
    }

    #[test]
    fn coverage_by_region() {
        let chip = FaultRegion::Chip;
        assert!(chip.covers(a(3, 7, 9)));
        let bank = FaultRegion::Bank { bank: 2 };
        assert!(bank.covers(a(2, 0, 0)));
        assert!(!bank.covers(a(1, 0, 0)));
        let row = FaultRegion::Row { bank: 1, row: 5 };
        assert!(row.covers(a(1, 5, 99)));
        assert!(!row.covers(a(1, 6, 99)));
        let col = FaultRegion::Column { bank: 0, col: 8 };
        assert!(col.covers(a(0, 55, 8)));
        assert!(!col.covers(a(0, 55, 9)));
        let word = FaultRegion::Word { addr: a(0, 1, 2) };
        assert!(word.covers(a(0, 1, 2)));
        assert!(!word.covers(a(0, 1, 3)));
    }

    #[test]
    fn spans_lines_predicate() {
        assert!(FaultRegion::Chip.spans_lines());
        assert!(FaultRegion::Row { bank: 0, row: 0 }.spans_lines());
        assert!(!FaultRegion::Word { addr: a(0, 0, 0) }.spans_lines());
        assert!(!FaultRegion::Bit {
            addr: a(0, 0, 0),
            bit: 3
        }
        .spans_lines());
    }

    #[test]
    fn corruption_deterministic_and_dense() {
        let f = InjectedFault::chip(FaultKind::Permanent);
        let (d1, c1) = f.corruption(a(0, 1, 2));
        let (d2, c2) = f.corruption(a(0, 1, 2));
        assert_eq!((d1, c1), (d2, c2));
        assert_ne!(d1, 0, "large-fault corruption must touch data bits");
        // Different addresses corrupt differently.
        let (d3, _) = f.corruption(a(0, 1, 3));
        assert_ne!(d1, d3);
    }

    #[test]
    fn corruption_outside_region_is_zero() {
        let f = InjectedFault::row(0, 4, FaultKind::Permanent);
        assert_eq!(f.corruption(a(0, 5, 0)), (0, 0));
        assert_ne!(f.corruption(a(0, 4, 0)), (0, 0));
    }

    #[test]
    fn bit_fault_flips_exactly_one_bit() {
        let addr = a(1, 2, 3);
        let f = InjectedFault::bit(addr, 5, FaultKind::Transient);
        let (d, c) = f.corruption(addr);
        assert_eq!(d.count_ones() + c.count_ones(), 1);
        // check-bit fault
        let f = InjectedFault::bit(addr, 70, FaultKind::Transient);
        let (d, c) = f.corruption(addr);
        assert_eq!(d, 0);
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        InjectedFault::bit(a(0, 0, 0), 72, FaultKind::Transient);
    }

    #[test]
    fn with_seed_changes_pattern() {
        let addr = a(0, 0, 0);
        let f1 = InjectedFault::chip(FaultKind::Permanent);
        let f2 = f1.with_seed(12345);
        assert_ne!(f1.corruption(addr), f2.corruption(addr));
    }
}
