//! The Faulty-row Chip Tracker (FCT).
//!
//! Inter-Line Fault Diagnosis costs 128 reads, so its verdicts are cached
//! (paper Section VI-A): each FCT entry maps a faulty row to the chip the
//! diagnosis blamed. The structure is deliberately tiny (4–8 entries):
//! a single row failure uses one entry, while a column or bank failure
//! quickly fills every entry with the *same* chip — the signal to mark that
//! chip permanently faulty and reconstruct it on every access.

/// A row address (bank, row) within the DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowAddr {
    /// Bank index.
    pub bank: u32,
    /// Row index.
    pub row: u32,
}

/// Result of recording a diagnosis in the FCT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FctOutcome {
    /// New entry stored.
    Recorded,
    /// The row was already tracked (same chip).
    AlreadyKnown,
    /// The tracker is full and every entry blames the same chip: that chip
    /// should be marked permanently faulty.
    ChipCondemned {
        /// The chip every entry points to.
        chip: usize,
    },
    /// The tracker is full with mixed chips; the oldest entry was evicted
    /// to make room.
    EvictedOldest,
}

/// The Faulty-row Chip Tracker.
#[derive(Debug, Clone)]
pub struct FaultyRowChipTracker {
    capacity: usize,
    entries: Vec<(RowAddr, usize)>,
}

impl FaultyRowChipTracker {
    /// Creates a tracker with the given capacity (paper: 4–8 entries).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FCT needs at least one entry");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The chip previously blamed for `row`, if tracked.
    pub fn lookup(&self, row: RowAddr) -> Option<usize> {
        self.entries
            .iter()
            .find(|(r, _)| *r == row)
            .map(|&(_, c)| c)
    }

    /// Records a diagnosis verdict.
    pub fn record(&mut self, row: RowAddr, chip: usize) -> FctOutcome {
        if let Some(existing) = self.lookup(row) {
            if existing == chip {
                return FctOutcome::AlreadyKnown;
            }
            // Re-diagnosed to a different chip: update in place.
            if let Some(e) = self.entries.iter_mut().find(|(r, _)| *r == row) {
                e.1 = chip;
            }
            return FctOutcome::Recorded;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((row, chip));
            if self.entries.len() == self.capacity && self.entries.iter().all(|&(_, c)| c == chip) {
                return FctOutcome::ChipCondemned { chip };
            }
            return FctOutcome::Recorded;
        }
        // Full.
        if self.entries.iter().all(|&(_, c)| c == chip) {
            return FctOutcome::ChipCondemned { chip };
        }
        self.entries.remove(0);
        self.entries.push((row, chip));
        FctOutcome::EvictedOldest
    }

    /// Clears the tracker (e.g. after the condemned chip is mapped out).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(bank: u32, row: u32) -> RowAddr {
        RowAddr { bank, row }
    }

    #[test]
    fn records_and_looks_up() {
        let mut fct = FaultyRowChipTracker::new(4);
        assert_eq!(fct.record(r(0, 1), 3), FctOutcome::Recorded);
        assert_eq!(fct.lookup(r(0, 1)), Some(3));
        assert_eq!(fct.lookup(r(0, 2)), None);
        assert_eq!(fct.len(), 1);
    }

    #[test]
    fn duplicate_row_same_chip_is_known() {
        let mut fct = FaultyRowChipTracker::new(4);
        fct.record(r(0, 1), 3);
        assert_eq!(fct.record(r(0, 1), 3), FctOutcome::AlreadyKnown);
        assert_eq!(fct.len(), 1);
    }

    #[test]
    fn re_diagnosis_updates_chip() {
        let mut fct = FaultyRowChipTracker::new(4);
        fct.record(r(0, 1), 3);
        assert_eq!(fct.record(r(0, 1), 5), FctOutcome::Recorded);
        assert_eq!(fct.lookup(r(0, 1)), Some(5));
    }

    #[test]
    fn same_chip_filling_condemns() {
        // Column/bank failure signature: many rows, one chip.
        let mut fct = FaultyRowChipTracker::new(4);
        fct.record(r(0, 1), 2);
        fct.record(r(0, 2), 2);
        fct.record(r(0, 3), 2);
        assert_eq!(
            fct.record(r(0, 4), 2),
            FctOutcome::ChipCondemned { chip: 2 }
        );
        // Still condemned on further inserts.
        assert_eq!(
            fct.record(r(0, 5), 2),
            FctOutcome::ChipCondemned { chip: 2 }
        );
    }

    #[test]
    fn mixed_chips_evict_oldest() {
        let mut fct = FaultyRowChipTracker::new(2);
        fct.record(r(0, 1), 1);
        fct.record(r(0, 2), 2);
        assert_eq!(fct.record(r(0, 3), 1), FctOutcome::EvictedOldest);
        assert_eq!(fct.lookup(r(0, 1)), None, "oldest entry evicted");
        assert_eq!(fct.lookup(r(0, 3)), Some(1));
    }

    #[test]
    fn clear_empties() {
        let mut fct = FaultyRowChipTracker::new(2);
        fct.record(r(0, 1), 1);
        fct.clear();
        assert!(fct.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        FaultyRowChipTracker::new(0);
    }
}
