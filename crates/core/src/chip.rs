//! A functional DRAM chip with on-die ECC and the XED DC-Mux.
//!
//! The chip really stores (72,64) codewords, really corrupts them when
//! faults are injected, really decodes them with its on-die SECDED engine
//! on every read, and — when XED is enabled — really multiplexes between
//! data and the catch-word exactly as Figure 3 of the paper describes:
//!
//! ```text
//!    if (error detected or corrected by on-die ECC) && XED-Enable
//!        send Catch-Word
//!    else
//!        send data
//! ```

use crate::catch_word::CatchWord;
use crate::fault::{FaultKind, InjectedFault};
use std::collections::HashMap;
use xed_ecc::secded::{DecodeOutcome, SecDed};
use xed_ecc::{CodeWord72, Crc8Atm, Hamming7264};

/// Address of one on-die ECC word (one chip's contribution to one cache
/// line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct WordAddr {
    /// Bank index.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column (cache-line) index within the row.
    pub col: u32,
}

impl WordAddr {
    /// A collision-free 64-bit key for hashing/corruption derivation.
    pub fn key(self) -> u64 {
        ((self.bank as u64) << 52) | ((self.row as u64) << 20) | self.col as u64
    }
}

/// Geometry of the functional chip model.
///
/// Defaults are deliberately small (a full 2Gb array would be wasteful for
/// functional simulation) while keeping the paper's 128-column row buffer,
/// which Inter-Line diagnosis depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipGeometry {
    /// Banks per chip.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row (paper: 128).
    pub cols: u32,
}

impl ChipGeometry {
    /// Small functional-test geometry: 4 banks × 64 rows × 128 columns.
    pub const fn small() -> Self {
        Self {
            banks: 4,
            rows: 64,
            cols: 128,
        }
    }

    /// Linear address for an index in `0..words()`, row-major.
    pub fn addr(&self, index: u64) -> WordAddr {
        let words = self.words();
        assert!(index < words, "index {index} out of {words}");
        let col = (index % self.cols as u64) as u32;
        let row = ((index / self.cols as u64) % self.rows as u64) as u32;
        let bank = (index / (self.cols as u64 * self.rows as u64)) as u32;
        WordAddr { bank, row, col }
    }

    /// Total words in the chip.
    pub fn words(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64
    }

    /// `true` if `a` is within this geometry.
    pub fn contains(&self, a: WordAddr) -> bool {
        a.bank < self.banks && a.row < self.rows && a.col < self.cols
    }
}

impl Default for ChipGeometry {
    fn default() -> Self {
        Self::small()
    }
}

/// Which SECDED code the on-die ECC engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OnDieCode {
    /// Conventional (72,64) Hamming SECDED.
    Hamming,
    /// The paper's recommended (72,64) CRC8-ATM SECDED (stronger burst
    /// detection, Section V-E).
    #[default]
    Crc8Atm,
}

// The codecs differ in table footprint; both are built once per chip and
// boxed storage would only add indirection on the hot read path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Engine {
    Hamming(Hamming7264),
    Crc8(Crc8Atm),
}

impl Engine {
    fn new(code: OnDieCode) -> Self {
        match code {
            OnDieCode::Hamming => Engine::Hamming(Hamming7264::new()),
            OnDieCode::Crc8Atm => Engine::Crc8(Crc8Atm::new()),
        }
    }

    fn encode(&self, data: u64) -> CodeWord72 {
        match self {
            Engine::Hamming(c) => c.encode(data),
            Engine::Crc8(c) => c.encode(data),
        }
    }

    fn decode(&self, w: CodeWord72) -> DecodeOutcome {
        match self {
            Engine::Hamming(c) => c.decode(w),
            Engine::Crc8(c) => c.decode(w),
        }
    }
}

/// What a chip put on the bus for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusWord {
    /// The 64-bit value transmitted.
    pub value: u64,
    /// `true` if the on-die engine saw a non-clean codeword (this is
    /// internal chip state — *not* visible to the controller, which only
    /// sees `value`; exposed for instrumentation and tests).
    pub on_die_event: bool,
}

/// A functional DRAM chip with on-die ECC.
#[derive(Debug, Clone)]
pub struct DramChip {
    geometry: ChipGeometry,
    engine: Engine,
    /// Sparse store of written codewords; unwritten words read as
    /// encode(0).
    store: HashMap<WordAddr, CodeWord72>,
    /// Injected faults; transient corruption is healed per-address on
    /// write.
    faults: Vec<(InjectedFault, HashMap<WordAddr, bool>)>,
    xed_enable: bool,
    catch_word: Option<CatchWord>,
    zero: CodeWord72,
}

impl DramChip {
    /// Builds a chip with the given geometry and on-die code.
    pub fn new(geometry: ChipGeometry, code: OnDieCode) -> Self {
        let engine = Engine::new(code);
        let zero = engine.encode(0);
        Self {
            geometry,
            engine,
            store: HashMap::new(),
            faults: Vec::new(),
            xed_enable: false,
            catch_word: None,
            zero,
        }
    }

    /// The chip's geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// Sets the XED-Enable mode register (paper Section V-A).
    pub fn set_xed_enable(&mut self, enable: bool) {
        self.xed_enable = enable;
    }

    /// Current XED-Enable state.
    pub fn xed_enabled(&self) -> bool {
        self.xed_enable
    }

    /// Programs the Catch-Word Register via the MRS interface.
    pub fn set_catch_word(&mut self, cw: CatchWord) {
        self.catch_word = Some(cw);
    }

    /// Injects a fault into the chip.
    pub fn inject_fault(&mut self, fault: InjectedFault) {
        self.faults.push((fault, HashMap::new()));
    }

    /// Removes all injected faults (test helper; real chips cannot do
    /// this).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Writes a 64-bit data word: the chip encodes it with the on-die code
    /// and stores the codeword. Writing heals transient corruption at the
    /// address (the cells are re-charged) but not permanent faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the chip geometry.
    pub fn write(&mut self, addr: WordAddr, data: u64) {
        assert!(
            self.geometry.contains(addr),
            "address {addr:?} out of geometry"
        );
        self.store.insert(addr, self.engine.encode(data));
        for (fault, healed) in &mut self.faults {
            if fault.kind == FaultKind::Transient && fault.region.covers(addr) {
                healed.insert(addr, true);
            }
        }
    }

    /// The raw (possibly corrupted) codeword currently at `addr`, before
    /// on-die decoding.
    pub fn raw_codeword(&self, addr: WordAddr) -> CodeWord72 {
        assert!(
            self.geometry.contains(addr),
            "address {addr:?} out of geometry"
        );
        let mut w = *self.store.get(&addr).unwrap_or(&self.zero);
        for (fault, healed) in &self.faults {
            let healed_here =
                fault.kind == FaultKind::Transient && healed.get(&addr).copied().unwrap_or(false);
            if healed_here {
                continue;
            }
            let (dx, cx) = fault.corruption(addr);
            w = CodeWord72::new(w.data() ^ dx, w.check() ^ cx);
        }
        w
    }

    /// Reads the word at `addr`: on-die decode, then DC-Mux selection
    /// (paper Figure 3).
    pub fn read(&self, addr: WordAddr) -> BusWord {
        let received = self.raw_codeword(addr);
        let outcome = self.engine.decode(received);
        let event = outcome.is_event();
        let value = if event && self.xed_enable {
            // invariant: the controller programs the Catch-Word Register
            // (set_catch_word) before asserting xed_enable, mirroring the
            // paper's boot-time MRS sequence; enabling XED without a catch
            // word is a programming error worth failing loudly on.
            self.catch_word
                .expect("XED enabled without a catch word")
                .value()
        } else {
            match outcome {
                DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => data,
                // Detected-uncorrectable without XED: raw data reaches the
                // bus.
                DecodeOutcome::Detected => received.data(),
            }
        };
        BusWord {
            value,
            on_die_event: event,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(bank: u32, row: u32, col: u32) -> WordAddr {
        WordAddr { bank, row, col }
    }

    fn chip() -> DramChip {
        DramChip::new(ChipGeometry::small(), OnDieCode::Crc8Atm)
    }

    #[test]
    fn clean_read_returns_written_data() {
        let mut c = chip();
        c.write(addr(0, 0, 0), 0xABCD);
        let b = c.read(addr(0, 0, 0));
        assert_eq!(b.value, 0xABCD);
        assert!(!b.on_die_event);
    }

    #[test]
    fn unwritten_word_reads_zero() {
        let c = chip();
        assert_eq!(c.read(addr(3, 63, 127)).value, 0);
    }

    #[test]
    fn single_bit_fault_corrected_invisibly() {
        let mut c = chip();
        let a = addr(0, 1, 2);
        c.write(a, 0x1234_5678_9ABC_DEF0);
        c.inject_fault(InjectedFault::bit(a, 17, FaultKind::Permanent));
        let b = c.read(a);
        // On-die ECC corrects it; without XED the corrected data flows out.
        assert_eq!(b.value, 0x1234_5678_9ABC_DEF0);
        assert!(b.on_die_event, "correction is an on-die event");
    }

    #[test]
    fn xed_replaces_event_with_catch_word() {
        let mut c = chip();
        let a = addr(0, 1, 2);
        c.write(a, 42);
        c.set_catch_word(CatchWord::from_value(0xCA7C_4012D));
        c.set_xed_enable(true);
        c.inject_fault(InjectedFault::bit(a, 3, FaultKind::Permanent));
        let b = c.read(a);
        assert_eq!(b.value, 0xCA7C_4012D);
        // Clean addresses still return data.
        let clean = addr(0, 1, 3);
        assert_eq!(c.read(clean).value, 0);
    }

    #[test]
    fn word_fault_garbles_data_without_xed() {
        let mut c = chip();
        let a = addr(1, 2, 3);
        c.write(a, 7);
        c.inject_fault(InjectedFault::word(a, FaultKind::Permanent));
        let b = c.read(a);
        assert!(
            b.on_die_event || b.value != 7,
            "multi-bit fault must be visible somehow"
        );
    }

    #[test]
    fn transient_fault_healed_by_write() {
        let mut c = chip();
        let a = addr(0, 5, 6);
        c.write(a, 1);
        c.inject_fault(InjectedFault::word(a, FaultKind::Transient));
        assert!(c.read(a).on_die_event);
        c.write(a, 2);
        let b = c.read(a);
        assert_eq!(b.value, 2);
        assert!(!b.on_die_event, "write heals transient corruption");
    }

    #[test]
    fn permanent_fault_survives_write() {
        let mut c = chip();
        let a = addr(0, 5, 6);
        c.inject_fault(InjectedFault::word(a, FaultKind::Permanent));
        c.write(a, 2);
        assert!(c.read(a).on_die_event, "permanent cells stay broken");
    }

    #[test]
    fn row_fault_covers_whole_row_only() {
        let mut c = chip();
        c.inject_fault(InjectedFault::row(2, 10, FaultKind::Permanent));
        // The on-die SECDED flags the dense corruption on almost every
        // line; a small fraction (≈1/256 per word) aliases onto a valid
        // codeword — the paper's "on-die detection miss".
        let events = (0..128)
            .filter(|&col| c.read(addr(2, 10, col)).on_die_event)
            .count();
        assert!(events >= 120, "only {events}/128 lines flagged");
        // Every line of the row reads corrupted data or flags an event.
        for col in 0..128 {
            let b = c.read(addr(2, 10, col));
            assert!(b.on_die_event || b.value != 0, "col {col} silently clean");
        }
        assert!(!c.read(addr(2, 11, 0)).on_die_event);
        assert!(!c.read(addr(1, 10, 0)).on_die_event);
    }

    #[test]
    fn geometry_addressing_roundtrip() {
        let g = ChipGeometry::small();
        for i in [0u64, 1, 127, 128, 8191, g.words() - 1] {
            let a = g.addr(i);
            assert!(g.contains(a));
            let back =
                (a.bank as u64 * g.rows as u64 + a.row as u64) * g.cols as u64 + a.col as u64;
            assert_eq!(back, i);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_geometry_write_panics() {
        chip().write(addr(99, 0, 0), 1);
    }

    #[test]
    fn hamming_engine_also_works() {
        let mut c = DramChip::new(ChipGeometry::small(), OnDieCode::Hamming);
        let a = addr(0, 0, 1);
        c.write(a, 0xF00D);
        assert_eq!(c.read(a).value, 0xF00D);
        c.inject_fault(InjectedFault::bit(a, 40, FaultKind::Permanent));
        assert_eq!(c.read(a).value, 0xF00D);
    }
}
