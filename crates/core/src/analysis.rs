//! Closed-form analysis of catch-word behavior and XED overheads.
//!
//! Reproduces the arithmetic behind the paper's Figure 6 (probability of a
//! catch-word collision over time), Section IX-A (x4 collision interval),
//! Table III inputs and the serial-mode frequency estimate.

/// Seconds in a (365-day) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// Collision model: how often a written data value matches the catch-word.
///
/// The paper conservatively assumes every memory transaction writes a fresh
/// data value; each write matches a `w`-bit catch-word with probability
/// 2^-w (Section V-D2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionModel {
    /// Catch-word width in bits (64 for x8 devices, 32 for x4).
    pub word_bits: u32,
    /// Interval between writes to the chip, in seconds (paper: 4 ns).
    pub write_interval_secs: f64,
}

impl CollisionModel {
    /// The paper's x8 model: 64-bit catch-word, a write every 4 ns.
    pub fn x8_paper() -> Self {
        Self {
            word_bits: 64,
            write_interval_secs: 4e-9,
        }
    }

    /// The paper's x4 model: 32-bit catch-word, a write every 4 ns
    /// (Section IX-A).
    pub fn x4_paper() -> Self {
        Self {
            word_bits: 32,
            write_interval_secs: 4e-9,
        }
    }

    /// Probability that one write collides with the catch-word.
    pub fn p_per_write(&self) -> f64 {
        0.5f64.powi(self.word_bits as i32)
    }

    /// Writes performed over `years`.
    pub fn writes_over(&self, years: f64) -> f64 {
        years * SECONDS_PER_YEAR / self.write_interval_secs
    }

    /// Probability of at least one collision within `years` (Figure 6's
    /// y-axis): `1 − (1 − 2^−w)^writes`, computed stably via `exp`.
    pub fn p_collision_by(&self, years: f64) -> f64 {
        let lambda = self.writes_over(years) * self.p_per_write();
        1.0 - (-lambda).exp()
    }

    /// Mean time to the first collision, in years.
    pub fn mean_years_to_collision(&self) -> f64 {
        1.0 / (self.p_per_write() / self.write_interval_secs) / SECONDS_PER_YEAR
    }

    /// Mean time to the first collision, in seconds.
    pub fn mean_secs_to_collision(&self) -> f64 {
        self.write_interval_secs / self.p_per_write()
    }
}

/// Expected fraction of accesses that enter XED serial mode (multiple
/// catch-words), given the per-chip probability `p_chip` that an accessed
/// word carries a detectable scaling fault and `chips` data chips.
///
/// The paper quotes "once every 200K accesses" at a 10⁻⁴ scaling rate
/// (Section VII-B); see `xed_faultsim::scaling` for the per-chip
/// probability derivation and Table III.
pub fn serial_mode_fraction(p_chip: f64, chips: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_chip));
    // P(≥2 of `chips` words are catch-words).
    let n = chips as i32;
    let p0 = (1.0 - p_chip).powi(n);
    let p1 = chips as f64 * p_chip * (1.0 - p_chip).powi(n - 1);
    (1.0 - p0 - p1).max(0.0)
}

/// XED's extra-read overhead per serial-mode episode: one re-read of the
/// line with XED disabled plus the re-enabled verify path (paper VII-B
/// describes "multiple read and write operations"; we count the re-read and
/// the scrub write).
pub const SERIAL_MODE_EXTRA_OPS: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_write_probability() {
        assert_eq!(CollisionModel::x8_paper().p_per_write(), 2f64.powi(-64));
        assert_eq!(CollisionModel::x4_paper().p_per_write(), 2f64.powi(-32));
    }

    #[test]
    fn x8_mean_time_is_thousands_of_years() {
        // 2^64 × 4 ns ≈ 2.34 × 10³ years. (The paper's prose quotes 3.2
        // million years; see EXPERIMENTS.md for the discrepancy note —
        // either way, collisions are vanishingly rare and recoverable.)
        let years = CollisionModel::x8_paper().mean_years_to_collision();
        assert!((2.0e3..3.0e3).contains(&years), "{years}");
    }

    #[test]
    fn x4_mean_time_is_seconds_to_hours() {
        // 2^32 × 4 ns ≈ 17 s — why Section IX-A emphasizes that updating
        // the catch-word costs only hundreds of nanoseconds.
        let secs = CollisionModel::x4_paper().mean_secs_to_collision();
        assert!((10.0..30.0).contains(&secs), "{secs}");
    }

    #[test]
    fn collision_cdf_monotone_and_saturating() {
        let m = CollisionModel::x8_paper();
        let p100 = m.p_collision_by(1e2);
        let p_mean = m.p_collision_by(m.mean_years_to_collision());
        let p_huge = m.p_collision_by(1e8);
        assert!(p100 < p_mean && p_mean < p_huge);
        assert!((p_mean - (1.0 - (-1.0f64).exp())).abs() < 1e-3);
        assert!(p_huge > 0.999_999);
    }

    #[test]
    fn serial_mode_fraction_matches_binomial() {
        // p = 6.4e-3 (64-bit word at 1e-4 rate), 8 chips.
        let f = serial_mode_fraction(6.4e-3, 8);
        // ~C(8,2) p² ≈ 1.1e-3.
        assert!((8e-4..1.5e-3).contains(&f), "{f}");
        assert_eq!(serial_mode_fraction(0.0, 8), 0.0);
    }

    #[test]
    fn serial_mode_fraction_monotone_in_p() {
        assert!(serial_mode_fraction(1e-2, 8) > serial_mode_fraction(1e-3, 8));
    }
}
