//! The DDR4 `ALERT_n` alternative (paper Section XI-C).
//!
//! DDR4 provides a single shared `ALERT_n` pin per DIMM. If on-die ECC
//! raised it on detection, the controller would learn *that* some chip
//! errored — but not *which*: the pin is wire-OR'd across all nine chips.
//! The paper observes that XED could be built on `ALERT_n` only if a
//! future standard extended it to convey the faulty chip's identity.
//!
//! This module makes that argument executable. [`AlertDimm`] is the same
//! nine-chip functional DIMM driven through an `ALERT_n`-style controller:
//!
//! * **anonymous alert** (today's pin): the controller sees the alert,
//!   knows the line is suspect, and must fall back to Intra-Line-style
//!   pattern diagnosis to locate the chip — which only works for
//!   *permanent* faults. Transient faults become DUEs that XED would have
//!   corrected.
//! * **identified alert** (the hypothetical extended pin): equivalent in
//!   power to catch-words, without consuming a data-bus value.

use crate::chip::{ChipGeometry, DramChip, OnDieCode, WordAddr};
use crate::error::XedError;
use crate::fault::InjectedFault;
use xed_ecc::parity;
use xed_telemetry::registry::metrics;
use xed_telemetry::{EventKind, Ring, Tallies};

/// How much the alert signal reveals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertMode {
    /// One wire-OR'd pin: "some chip detected an error" (DDR4 today).
    Anonymous,
    /// Extended signal carrying the erring chip's index (future standard —
    /// functionally equivalent to XED's catch-words).
    Identified,
}

/// Tally-slot layout of the controller's accumulator.
const A_READS: usize = 0;
const A_ALERTS: usize = 1;
const A_RECONSTRUCTIONS: usize = 2;
const A_DIAGNOSES: usize = 3;
const A_DUE: usize = 4;
const A_SLOTS: usize = 5;

/// Statistics of the alert-based controller.
///
/// A thin snapshot view over the DIMM's owned [`Tallies`] block (see
/// [`AlertDimm::stats`]); accumulation rides the telemetry primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlertStats {
    /// Reads served.
    pub reads: u64,
    /// Alert assertions observed.
    pub alerts: u64,
    /// Lines corrected via parity reconstruction.
    pub reconstructions: u64,
    /// Pattern-diagnosis procedures run (anonymous mode only).
    pub diagnoses: u64,
    /// Detected uncorrectable errors.
    pub due_events: u64,
}

/// A 9-chip ECC-DIMM driven through an `ALERT_n`-style interface.
#[derive(Debug)]
pub struct AlertDimm {
    chips: Vec<DramChip>,
    mode: AlertMode,
    geometry: ChipGeometry,
    tallies: Tallies<A_SLOTS>,
    ring: Ring,
}

const DATA_CHIPS: usize = 8;
const TOTAL_CHIPS: usize = 9;

impl AlertDimm {
    /// Boots the DIMM. Chips run with XED *disabled*: data always flows on
    /// the bus; detection travels on the (modeled) alert signal instead.
    pub fn new(geometry: ChipGeometry, code: OnDieCode, mode: AlertMode) -> Self {
        let chips = (0..TOTAL_CHIPS)
            .map(|_| DramChip::new(geometry, code))
            .collect();
        Self {
            chips,
            mode,
            geometry,
            tallies: Tallies::new(),
            ring: Ring::new(),
        }
    }

    /// The signaling mode in force.
    pub fn mode(&self) -> AlertMode {
        self.mode
    }

    /// Controller statistics, as a snapshot view of the owned tally block.
    pub fn stats(&self) -> AlertStats {
        AlertStats {
            reads: self.tallies.get(A_READS),
            alerts: self.tallies.get(A_ALERTS),
            reconstructions: self.tallies.get(A_RECONSTRUCTIONS),
            diagnoses: self.tallies.get(A_DIAGNOSES),
            due_events: self.tallies.get(A_DUE),
        }
    }

    /// The most recent controller events (alerts, reconstructions,
    /// diagnoses, DUEs, injected faults), oldest first.
    pub fn events(&self) -> &Ring {
        &self.ring
    }

    /// Injects a fault into a chip.
    pub fn inject_fault(&mut self, chip: usize, fault: InjectedFault) {
        if xed_telemetry::enabled() {
            self.ring.record(EventKind::FaultInjected, chip as u64, 0);
        }
        self.chips[chip].inject_fault(fault);
    }

    /// Writes a cache line (data + parity in the 9th chip).
    pub fn write_line(&mut self, line: u64, data: &[u64; DATA_CHIPS]) {
        let addr = self.geometry.addr(line);
        self.store(addr, data);
    }

    fn store(&mut self, addr: WordAddr, data: &[u64; DATA_CHIPS]) {
        for (i, &w) in data.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        self.chips[DATA_CHIPS].write(addr, parity::compute(data));
    }

    /// Reads a cache line.
    ///
    /// # Errors
    ///
    /// Returns [`XedError`] when the alert cannot be resolved to a single
    /// chip (anonymous mode + transient fault, or multiple faulty chips).
    pub fn read_line(&mut self, line: u64) -> Result<[u64; DATA_CHIPS], XedError> {
        self.tallies.bump(A_READS);
        xed_telemetry::tick(&metrics::CORE_ALERT_READS);
        let addr = self.geometry.addr(line);
        let reads: Vec<_> = self.chips.iter().map(|c| c.read(addr)).collect();
        let mut words = [0u64; TOTAL_CHIPS];
        let mut alerting: Vec<usize> = Vec::new();
        for (i, r) in reads.iter().enumerate() {
            words[i] = r.value;
            if r.on_die_event {
                alerting.push(i);
            }
        }
        let alert = !alerting.is_empty();
        if alert {
            self.tallies.bump(A_ALERTS);
            xed_telemetry::tick(&metrics::CORE_ALERT_ALERTS);
            if xed_telemetry::enabled() {
                // The wire-OR'd pin carries no chip identity; record the
                // suspect count instead.
                self.ring
                    .record(EventKind::CatchWord, alerting.len() as u64, line);
            }
        }
        let parity_ok = parity::holds(&words[..DATA_CHIPS], words[DATA_CHIPS]);

        // On-die ECC corrected whatever it could (single-bit errors); if
        // parity holds, the data on the bus is consistent.
        if parity_ok {
            let mut data = [0u64; DATA_CHIPS];
            data.copy_from_slice(&words[..DATA_CHIPS]);
            return Ok(data);
        }

        // Parity mismatch: a chip emitted garbage. Who?
        let suspect = match self.mode {
            AlertMode::Identified if alerting.len() == 1 => Some(alerting[0]),
            AlertMode::Identified => None,
            AlertMode::Anonymous => {
                // The pin says "somebody"; find out with pattern diagnosis
                // (permanent faults only — the write destroys transient
                // evidence).
                self.tallies.bump(A_DIAGNOSES);
                xed_telemetry::tick(&metrics::CORE_ALERT_DIAGNOSES);
                if xed_telemetry::enabled() {
                    self.ring.record(EventKind::Diagnosis, 1, line);
                }
                let suspects = self.pattern_diagnosis(addr, &words);
                if suspects.len() == 1 {
                    Some(suspects[0])
                } else {
                    None
                }
            }
        };

        match suspect {
            Some(chip) => {
                let mut data = [0u64; DATA_CHIPS];
                data.copy_from_slice(&words[..DATA_CHIPS]);
                if chip < DATA_CHIPS {
                    data[chip] = parity::reconstruct(&data, words[DATA_CHIPS], chip);
                }
                self.tallies.bump(A_RECONSTRUCTIONS);
                xed_telemetry::tick(&metrics::CORE_ALERT_RECONSTRUCTIONS);
                if xed_telemetry::enabled() {
                    self.ring
                        .record(EventKind::ErasureReconstructed, chip as u64, line);
                }
                self.store(addr, &data); // scrub
                Ok(data)
            }
            None => {
                self.tallies.bump(A_DUE);
                xed_telemetry::tick(&metrics::CORE_ALERT_DUE);
                if xed_telemetry::enabled() {
                    self.ring
                        .record(EventKind::Due, alerting.len() as u64, line);
                }
                Err(XedError::DetectedUncorrectable {
                    suspects: alerting.len() as u32,
                })
            }
        }
    }

    /// All-zeros / all-ones pattern test (cf. Intra-Line diagnosis).
    fn pattern_diagnosis(&mut self, addr: WordAddr, original: &[u64; TOTAL_CHIPS]) -> Vec<usize> {
        let mut suspect = [false; TOTAL_CHIPS];
        for pattern in [0u64, u64::MAX] {
            for chip in &mut self.chips {
                chip.write(addr, pattern);
            }
            for (i, flagged) in suspect.iter_mut().enumerate() {
                if self.chips[i].read(addr).value != pattern {
                    *flagged = true;
                }
            }
        }
        for (i, &w) in original.iter().enumerate() {
            self.chips[i].write(addr, w);
        }
        (0..TOTAL_CHIPS).filter(|&i| suspect[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    const LINE: [u64; 8] = [10, 20, 30, 40, 50, 60, 70, 80];

    fn dimm(mode: AlertMode) -> AlertDimm {
        let mut d = AlertDimm::new(ChipGeometry::small(), OnDieCode::Crc8Atm, mode);
        for l in 0..8 {
            d.write_line(l, &LINE);
        }
        d
    }

    #[test]
    fn clean_reads_raise_no_alert() {
        let mut d = dimm(AlertMode::Anonymous);
        assert_eq!(d.read_line(0).unwrap(), LINE);
        assert_eq!(d.stats().alerts, 0);
    }

    #[test]
    fn single_bit_fault_corrected_on_die_alert_but_no_action() {
        let mut d = dimm(AlertMode::Anonymous);
        let addr = d.geometry.addr(1);
        d.inject_fault(2, InjectedFault::bit(addr, 9, FaultKind::Permanent));
        assert_eq!(d.read_line(1).unwrap(), LINE);
        assert_eq!(d.stats().alerts, 1, "the pin fires");
        assert_eq!(d.stats().reconstructions, 0, "but data was already fine");
    }

    #[test]
    fn identified_alert_matches_xed_capability() {
        let mut d = dimm(AlertMode::Identified);
        d.inject_fault(5, InjectedFault::chip(FaultKind::Permanent));
        for l in 0..8 {
            assert_eq!(d.read_line(l).unwrap(), LINE, "line {l}");
        }
        assert_eq!(d.stats().due_events, 0);
        assert!(d.stats().reconstructions >= 8);
    }

    #[test]
    fn anonymous_alert_corrects_permanent_via_diagnosis() {
        let mut d = dimm(AlertMode::Anonymous);
        let addr = d.geometry.addr(3);
        d.inject_fault(4, InjectedFault::word(addr, FaultKind::Permanent));
        assert_eq!(d.read_line(3).unwrap(), LINE);
        assert_eq!(d.stats().diagnoses, 1, "needs the expensive pattern test");
    }

    #[test]
    fn anonymous_alert_loses_transient_faults() {
        // The key gap vs XED: a transient multi-bit fault is detected but
        // cannot be localized, so the anonymous pin ends in a DUE where
        // XED's catch-word would have corrected it.
        let mut d = dimm(AlertMode::Anonymous);
        let addr = d.geometry.addr(2);
        d.inject_fault(6, InjectedFault::word(addr, FaultKind::Transient));
        let err = d.read_line(2).unwrap_err();
        assert!(matches!(err, XedError::DetectedUncorrectable { .. }));
        // And the identified variant handles the same fault fine.
        let mut d = dimm(AlertMode::Identified);
        let addr = d.geometry.addr(2);
        d.inject_fault(6, InjectedFault::word(addr, FaultKind::Transient));
        assert_eq!(d.read_line(2).unwrap(), LINE);
    }

    #[test]
    fn identified_alert_two_chips_due() {
        let mut d = dimm(AlertMode::Identified);
        d.inject_fault(1, InjectedFault::chip(FaultKind::Permanent));
        d.inject_fault(7, InjectedFault::chip(FaultKind::Permanent));
        assert!(d.read_line(0).is_err());
    }
}
