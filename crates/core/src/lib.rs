//! The XED mechanism — the paper's contribution.
//!
//! This crate is a *functional* model of a XED memory system: DRAM chips
//! that really store data and on-die ECC bits, really corrupt them when
//! faults are injected, and really transmit catch-words; and a memory
//! controller that really reconstructs data with RAID-3 parity, detects
//! catch-word collisions, runs Inter-Line and Intra-Line fault diagnosis
//! and tracks faulty rows in an FCT. Every mechanism of paper Sections
//! IV–VII is implemented and observable.
//!
//! * [`catch_word`] — catch-word values, registers and collision math;
//! * [`chip`] — a DRAM chip with on-die ECC and the DC-Mux;
//! * [`fault`] — fault injection (bit/word/column/row/bank/chip);
//! * [`dimm`] — a 9-chip ECC-DIMM in XED mode;
//! * [`controller`] — the XED memory-controller read/write algorithm;
//! * [`diagnosis`] — Inter-Line and Intra-Line fault diagnosis;
//! * [`fct`] — the Faulty-row Chip Tracker;
//! * [`analysis`] — closed-form collision/overhead analysis (Fig. 6,
//!   Tables III & IV inputs);
//! * [`error`] — error types.
//!
//! # Example
//!
//! ```
//! use xed_core::{XedDimm, XedConfig};
//! use xed_core::fault::{InjectedFault, FaultKind};
//!
//! let mut dimm = XedDimm::new(XedConfig::default());
//! let line = [0xDEAD_BEEF_0000_0001u64; 8];
//! dimm.write_line(0, &line);
//! // A whole chip dies at runtime:
//! dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
//! // ... XED reconstructs its data from the catch-word + parity:
//! let out = dimm.read_line(0).unwrap();
//! assert_eq!(out.data, line);
//! assert!(dimm.stats().reconstructions > 0);
//! ```

pub mod alert;
pub mod analysis;
pub mod catch_word;
pub mod chip;
pub mod controller;
pub mod diagnosis;
pub mod dimm;
pub mod error;
pub mod fault;
pub mod fct;
pub mod oracle;
pub mod secded_dimm;
pub mod xed_chipkill;

pub use catch_word::CatchWord;
pub use chip::{ChipGeometry, DramChip, OnDieCode, WordAddr};
pub use controller::{LineReadout, XedController, XedStats};
pub use dimm::{XedConfig, XedDimm};
pub use error::XedError;
pub use xed_chipkill::XedChipkillSystem;
