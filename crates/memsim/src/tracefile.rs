//! Loading externally captured memory traces.
//!
//! The paper drives USIMM with Pinpoints-captured traces. For users who
//! have real traces, this module parses the USIMM trace format — one
//! memory operation per line:
//!
//! ```text
//! <gap> R <hex-address>
//! <gap> W <hex-address>
//! ```
//!
//! where `gap` is the number of non-memory instructions since the previous
//! operation, `R`/`W` the operation type, and the address a byte address
//! (`0x`-prefixed hex or decimal). Blank lines and `#` comments are
//! skipped. A [`FileTrace`] replays the operations, looping when the file
//! is exhausted (USIMM's "rate mode" behavior), and plugs into the same
//! driver as the synthetic generator.

use crate::trace::MemOp;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// Bytes per cache line (fixed at 64 to match the simulator).
pub const LINE_BYTES: u64 = 64;

/// Error from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A parsed trace, replayable as a request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTrace {
    ops: Vec<MemOp>,
    cursor: usize,
}

impl FromStr for FileTrace {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut ops = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |message: &str| ParseTraceError {
                line: i + 1,
                message: message.into(),
            };
            let gap: u64 = parts
                .next()
                .ok_or_else(|| err("missing gap"))?
                .parse()
                .map_err(|_| err("gap is not a number"))?;
            let kind = parts.next().ok_or_else(|| err("missing R/W"))?;
            let is_write = match kind {
                "R" | "r" => false,
                "W" | "w" => true,
                other => return Err(err(&format!("expected R or W, got {other}"))),
            };
            let addr_str = parts.next().ok_or_else(|| err("missing address"))?;
            let byte_addr = parse_addr(addr_str).ok_or_else(|| err("bad address"))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens"));
            }
            ops.push(MemOp {
                gap: gap.max(1),
                line_addr: byte_addr / LINE_BYTES,
                is_write,
            });
        }
        if ops.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "trace has no operations".into(),
            });
        }
        Ok(Self { ops, cursor: 0 })
    }
}

fn parse_addr(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl FileTrace {
    /// Loads a trace from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error (wrapped) or a [`ParseTraceError`] rendered
    /// into `io::Error` for malformed content.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        text.parse().map_err(|e: ParseTraceError| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })
    }

    /// Number of operations in one pass of the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace holds no operations (never true for parsed
    /// traces).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The next operation, looping at the end (rate mode).
    pub fn next_op(&mut self) -> MemOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }

    /// Total read/write counts of one pass.
    pub fn rw_counts(&self) -> (usize, usize) {
        let writes = self.ops.iter().filter(|o| o.is_write).count();
        (self.ops.len() - writes, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo trace
12 R 0x1000
3  W 0x1040
100 R 4096
";

    #[test]
    fn parses_sample() {
        let t: FileTrace = SAMPLE.parse().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rw_counts(), (2, 1));
    }

    #[test]
    fn addresses_become_line_addresses() {
        let mut t: FileTrace = SAMPLE.parse().unwrap();
        let a = t.next_op();
        assert_eq!(a.line_addr, 0x1000 / 64);
        assert!(!a.is_write);
        assert_eq!(a.gap, 12);
        let b = t.next_op();
        assert_eq!(b.line_addr, 0x1040 / 64);
        assert!(b.is_write);
        let c = t.next_op();
        assert_eq!(c.line_addr, 64);
    }

    #[test]
    fn loops_in_rate_mode() {
        let mut t: FileTrace = "1 R 0x0".parse().unwrap();
        let first = t.next_op();
        assert_eq!(t.next_op(), first);
    }

    #[test]
    fn zero_gap_clamped_to_one() {
        let mut t: FileTrace = "0 R 0x0".parse().unwrap();
        assert_eq!(t.next_op().gap, 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!("x R 0x0".parse::<FileTrace>().is_err());
        assert!("1 Q 0x0".parse::<FileTrace>().is_err());
        assert!("1 R".parse::<FileTrace>().is_err());
        assert!("1 R zz".parse::<FileTrace>().is_err());
        assert!("1 R 0x0 extra".parse::<FileTrace>().is_err());
        assert!("# only comments\n".parse::<FileTrace>().is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = "1 R 0x0\nbad line\n".parse::<FileTrace>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn load_from_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join("xed_memsim_trace_test.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        let t = FileTrace::load(&path).unwrap();
        assert_eq!(t.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
