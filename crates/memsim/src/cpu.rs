//! A ROB-limited multi-core front end (USIMM's processor model).
//!
//! Each core retires non-memory instructions at its fetch/retire width and
//! issues memory operations from its trace. A demand read occupies a
//! reorder-buffer slot until its data returns; the core may run ahead of
//! the *oldest* outstanding read by at most the ROB size (Table V: 160
//! entries, 4-wide at 3.2 GHz = up to 16 instructions per 800 MHz memory
//! cycle). Writebacks are fire-and-forget unless the write queue is full.

use crate::trace::{MemOp, Source};
use std::collections::VecDeque;

/// A memory request a core wants to issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Cache-line address.
    pub line_addr: u64,
    /// `true` = writeback.
    pub is_write: bool,
    /// Instruction number of the operation (for completion bookkeeping).
    pub instr_no: u64,
}

/// Why a core could not make progress this cycle (statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallStats {
    /// Cycles fully stalled with the ROB blocked on memory reads.
    pub rob_full_cycles: u64,
    /// Cycles blocked because the memory controller queues were full.
    pub queue_full_cycles: u64,
}

/// One simulated core.
#[derive(Debug)]
pub struct Core {
    trace: Source,
    rob_size: u64,
    instrs_per_mem_cycle: u64,
    /// Instructions retired so far.
    retired: u64,
    /// Target instruction count; the core is finished once reached.
    target: u64,
    /// Instruction number of the next memory op, and the op itself.
    next_op_at: u64,
    next_op: MemOp,
    /// Outstanding demand reads, oldest first (instruction numbers).
    outstanding: VecDeque<u64>,
    /// A request that failed to enqueue last cycle and must retry.
    blocked_request: Option<CoreRequest>,
    /// Finish time, once reached.
    finished_at: Option<u64>,
    /// Stall statistics.
    pub stalls: StallStats,
}

impl Core {
    /// Creates a core that will retire `target` instructions.
    pub fn new(mut trace: Source, rob_size: u64, instrs_per_mem_cycle: u64, target: u64) -> Self {
        let first = trace.next_op();
        Self {
            trace,
            rob_size,
            instrs_per_mem_cycle,
            retired: 0,
            target,
            next_op_at: first.gap,
            next_op: first,
            outstanding: VecDeque::new(),
            blocked_request: None,
            finished_at: None,
            stalls: StallStats::default(),
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The cycle the core finished, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// `true` once the target instruction count is retired.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Notifies the core that the read issued at instruction `instr_no`
    /// completed.
    pub fn complete_read(&mut self, instr_no: u64) {
        if let Some(pos) = self.outstanding.iter().position(|&i| i == instr_no) {
            self.outstanding.remove(pos);
        }
    }

    /// Advances the core by one memory cycle. `try_issue` is called for
    /// each memory operation reached; it returns `false` when the
    /// controller queue is full (the core then stalls and retries).
    pub fn tick<F: FnMut(CoreRequest) -> bool>(&mut self, now: u64, mut try_issue: F) {
        if self.finished() {
            return;
        }
        // Retry a queue-blocked request before anything else.
        if let Some(req) = self.blocked_request.take() {
            if !try_issue(req) {
                self.blocked_request = Some(req);
                self.stalls.queue_full_cycles += 1;
                return;
            }
            if !req.is_write {
                self.outstanding.push_back(req.instr_no);
            }
            self.advance_past_op();
        }

        let mut budget = self.instrs_per_mem_cycle;
        while budget > 0 && !self.finished() {
            // The ROB caps run-ahead past the oldest outstanding read.
            let rob_limit = self
                .outstanding
                .front()
                .map_or(u64::MAX, |&oldest| oldest + self.rob_size);
            if self.retired >= rob_limit {
                self.stalls.rob_full_cycles += 1;
                break;
            }
            let horizon = self.retired + budget;
            let next_stop = self.next_op_at.min(rob_limit).min(horizon).min(self.target);
            let advanced = next_stop - self.retired;
            self.retired = next_stop;
            budget -= advanced.min(budget);

            if self.retired >= self.target {
                self.finished_at = Some(now);
                break;
            }
            if self.retired == self.next_op_at {
                let req = CoreRequest {
                    line_addr: self.next_op.line_addr,
                    is_write: self.next_op.is_write,
                    instr_no: self.next_op_at,
                };
                if !try_issue(req) {
                    self.blocked_request = Some(req);
                    self.stalls.queue_full_cycles += 1;
                    break;
                }
                if !req.is_write {
                    self.outstanding.push_back(req.instr_no);
                }
                self.advance_past_op();
            } else if advanced == 0 {
                // No progress possible this cycle (ROB limit boundary).
                break;
            }
        }
    }

    fn advance_past_op(&mut self) {
        let op = self.trace.next_op();
        self.next_op_at += op.gap;
        self.next_op = op;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::Topology;
    use crate::workloads::Workload;

    fn core_with(target: u64) -> Core {
        let trace = crate::trace::TraceGen::new(
            Workload::by_name("comm1").unwrap(),
            Topology::baseline(),
            0,
            1,
            7,
        );
        Core::new(Source::Synthetic(trace), 160, 16, target)
    }

    #[test]
    fn finishes_without_memory_stalls_if_issue_always_succeeds_and_completes() {
        let mut c = core_with(10_000);
        let mut cycle = 0;
        let mut issued = Vec::new();
        while !c.finished() && cycle < 1_000_000 {
            c.tick(cycle, |req| {
                issued.push(req);
                true
            });
            // Instantly complete all reads.
            for req in issued.drain(..) {
                if !req.is_write {
                    c.complete_read(req.instr_no);
                }
            }
            cycle += 1;
        }
        assert!(c.finished(), "core never finished");
        assert!(c.retired() >= 10_000);
        // 10k instructions at 16/cycle = at least 625 cycles.
        assert!(c.finished_at().unwrap() >= 624);
    }

    #[test]
    fn rob_blocks_runahead() {
        let mut c = core_with(1_000_000);
        // Never complete reads: the core must wedge after ~ROB instructions
        // past the first read.
        let mut first_read_at = None;
        for cycle in 0..10_000 {
            c.tick(cycle, |req| {
                if !req.is_write && first_read_at.is_none() {
                    first_read_at = Some(req.instr_no);
                }
                true
            });
        }
        let first = first_read_at.expect("some read must be issued");
        assert!(!c.finished());
        assert!(
            c.retired() <= first + 160,
            "retired {} past ROB",
            c.retired()
        );
        assert!(c.stalls.rob_full_cycles > 0);
    }

    #[test]
    fn queue_full_blocks_and_retries() {
        let mut c = core_with(100_000);
        let mut reject = true;
        let mut issued = 0u64;
        for cycle in 0..200 {
            c.tick(cycle, |_req| {
                if reject {
                    false
                } else {
                    issued += 1;
                    true
                }
            });
            if cycle == 100 {
                reject = false;
            }
        }
        assert!(c.stalls.queue_full_cycles > 0);
        assert!(issued > 0, "requests flow after unblocking");
    }

    #[test]
    fn writes_do_not_occupy_rob() {
        // One read that never completes, then writes inside the ROB
        // run-ahead window: the writes must still issue because only
        // demand reads hold ROB slots.
        let text = "1 R 0x0\n1 W 0x40\n1 W 0x80\n1 W 0xc0\n1 R 0x100\n";
        let trace: crate::tracefile::FileTrace = text.parse().unwrap();
        let mut c = Core::new(Source::File(trace), 160, 16, 50_000);
        let mut writes = 0;
        for cycle in 0..5_000 {
            c.tick(cycle, |req| {
                if req.is_write {
                    writes += 1;
                }
                true
            });
        }
        // The looping trace keeps supplying writes inside the run-ahead
        // window; they must flow even though no read ever completes.
        assert!(
            writes >= 3,
            "writes issue despite the blocked read ({writes})"
        );
        assert!(
            c.stalls.rob_full_cycles > 0,
            "the pending reads did block the ROB"
        );
    }

    #[test]
    fn completion_unblocks() {
        let mut c = core_with(100_000);
        let mut pending: Vec<u64> = Vec::new();
        for cycle in 0..50_000 {
            c.tick(cycle, |req| {
                if !req.is_write {
                    pending.push(req.instr_no);
                }
                true
            });
            // Complete reads with a 30-cycle delay pattern.
            if cycle % 30 == 0 {
                for i in pending.drain(..) {
                    c.complete_read(i);
                }
            }
            if c.finished() {
                break;
            }
        }
        assert!(c.finished(), "retired {} of 100000", c.retired());
    }
}
