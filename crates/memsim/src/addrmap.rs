//! Physical-address decomposition.
//!
//! Cache-line addresses interleave across channels first (consecutive lines
//! hit different channels), then columns within a row (so streaming
//! accesses enjoy row-buffer hits), then banks, ranks and rows — the
//! baseline USIMM-style mapping.

/// Memory-system topology visible to the address mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Independent channels.
    pub channels: u32,
    /// Independently schedulable ranks per channel (rank-ganged schemes
    /// have fewer).
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row.
    pub cols: u32,
}

impl Topology {
    /// The paper's baseline (Table V): 4 channels × 2 ranks × 8 banks ×
    /// 32K rows × 128 columns.
    pub const fn baseline() -> Self {
        Self {
            channels: 4,
            ranks: 2,
            banks: 8,
            rows: 32 * 1024,
            cols: 128,
        }
    }

    /// Total cache lines addressable.
    pub fn lines(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.banks as u64
            * self.rows as u64
            * self.cols as u64
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::baseline()
    }
}

/// A decoded cache-line location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column index within the row.
    pub col: u32,
}

/// Decodes a cache-line address: channel bits lowest, then column, bank,
/// rank, row.
pub fn decode(topology: &Topology, line_addr: u64) -> Location {
    let mut a = line_addr % topology.lines();
    let channel = (a % topology.channels as u64) as u32;
    a /= topology.channels as u64;
    let col = (a % topology.cols as u64) as u32;
    a /= topology.cols as u64;
    let bank = (a % topology.banks as u64) as u32;
    a /= topology.banks as u64;
    let rank = (a % topology.ranks as u64) as u32;
    a /= topology.ranks as u64;
    let row = (a % topology.rows as u64) as u32;
    Location {
        channel,
        rank,
        bank,
        row,
        col,
    }
}

/// Inverse of [`decode`] (used by the trace generator to build addresses
/// with intended locality).
pub fn encode(topology: &Topology, loc: Location) -> u64 {
    let mut a = loc.row as u64;
    a = a * topology.ranks as u64 + loc.rank as u64;
    a = a * topology.banks as u64 + loc.bank as u64;
    a = a * topology.cols as u64 + loc.col as u64;
    a * topology.channels as u64 + loc.channel as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Topology::baseline();
        for addr in [0u64, 1, 12345, 999_999, t.lines() - 1] {
            let loc = decode(&t, addr);
            assert_eq!(encode(&t, loc), addr, "addr {addr}");
            assert!(loc.channel < t.channels);
            assert!(loc.rank < t.ranks);
            assert!(loc.bank < t.banks);
            assert!(loc.row < t.rows);
            assert!(loc.col < t.cols);
        }
    }

    #[test]
    fn consecutive_lines_rotate_channels() {
        let t = Topology::baseline();
        for i in 0..8u64 {
            assert_eq!(decode(&t, i).channel, (i % 4) as u32);
        }
    }

    #[test]
    fn same_row_streaming_hits_same_bank() {
        let t = Topology::baseline();
        // Lines k*channels for k = 0..cols land in the same row,
        // consecutive columns.
        let base = decode(&t, 0);
        for k in 0..t.cols as u64 {
            let loc = decode(&t, k * t.channels as u64);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row),
                (0, 0, 0, base.row)
            );
            assert_eq!(loc.col, k as u32);
        }
    }

    #[test]
    fn lines_count() {
        let t = Topology {
            channels: 2,
            ranks: 2,
            banks: 4,
            rows: 16,
            cols: 8,
        };
        assert_eq!(t.lines(), 2 * 2 * 4 * 16 * 8);
    }
}
