//! DDR3 timing parameters, in memory-bus cycles.
//!
//! The paper's system (Table V) runs the memory bus at 800 MHz
//! (DDR3-1600, tCK = 1.25 ns) with a 3.2 GHz processor — a 4:1 core-to-bus
//! clock ratio. All simulator state advances in memory-bus cycles.

/// DDR3 timing constraints in memory-bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrTiming {
    /// ACT → internal READ/WRITE delay (tRCD).
    pub t_rcd: u64,
    /// PRE → ACT delay (tRP).
    pub t_rp: u64,
    /// READ → first data (CAS latency, CL).
    pub t_cas: u64,
    /// WRITE → first data (CWL).
    pub t_cwd: u64,
    /// ACT → PRE minimum (tRAS).
    pub t_ras: u64,
    /// ACT → ACT same bank (tRC).
    pub t_rc: u64,
    /// Data burst length on the bus, in cycles (BL8 = 4 cycles at DDR).
    pub t_burst: u64,
    /// CAS → CAS same rank (tCCD).
    pub t_ccd: u64,
    /// ACT → ACT different banks, same rank (tRRD).
    pub t_rrd: u64,
    /// Four-activate window per rank (tFAW).
    pub t_faw: u64,
    /// Write data end → READ same rank (tWTR).
    pub t_wtr: u64,
    /// Write recovery: write data end → PRE (tWR).
    pub t_wr: u64,
    /// READ → PRE (tRTP).
    pub t_rtp: u64,
    /// Rank-to-rank data-bus switch penalty (tRTRS).
    pub t_rtrs: u64,
    /// Refresh interval (tREFI).
    pub t_refi: u64,
    /// Refresh cycle time (tRFC).
    pub t_rfc: u64,
}

impl DdrTiming {
    /// DDR3-1600 (11-11-11) parameters for 2Gb parts.
    pub const fn ddr3_1600() -> Self {
        Self {
            t_rcd: 11,
            t_rp: 11,
            t_cas: 11,
            t_cwd: 8,
            t_ras: 28,
            t_rc: 39,
            t_burst: 4,
            t_ccd: 4,
            t_rrd: 5,
            t_faw: 24,
            t_wtr: 6,
            t_wr: 12,
            t_rtp: 6,
            t_rtrs: 2,
            t_refi: 6240, // 7.8 µs at 800 MHz
            t_rfc: 128,   // 160 ns for 2Gb parts
        }
    }

    /// DDR4-2400 (17-17-17) parameters for 4Gb parts, in 1200 MHz bus
    /// cycles (tCK = 0.833 ns). Provided for what-if studies beyond the
    /// paper's DDR3 baseline — the schemes' *relative* behavior is
    /// unchanged, the absolute latencies shrink.
    pub const fn ddr4_2400() -> Self {
        Self {
            t_rcd: 17,
            t_rp: 17,
            t_cas: 17,
            t_cwd: 12,
            t_ras: 39,
            t_rc: 56,
            t_burst: 4,
            t_ccd: 6,
            t_rrd: 6,
            t_faw: 26,
            t_wtr: 9,
            t_wr: 18,
            t_rtp: 9,
            t_rtrs: 3,
            t_refi: 9360, // 7.8 µs at 1200 MHz
            t_rfc: 312,   // 260 ns for 4Gb parts
        }
    }

    /// Read latency from command issue to last data beat.
    pub fn read_latency(&self) -> u64 {
        self.t_cas + self.t_burst
    }

    /// Returns a copy with the burst lengthened by `extra` cycles (the
    /// Figure 13 "extra burst" alternative: BL10 adds one cycle).
    #[must_use]
    pub fn with_extra_burst(mut self, extra: u64) -> Self {
        self.t_burst += extra;
        // CAS-to-CAS spacing must cover the longer burst.
        self.t_ccd = self.t_ccd.max(self.t_burst);
        self
    }
}

impl Default for DdrTiming {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

/// Core clock cycles per memory-bus cycle (3.2 GHz / 800 MHz).
pub const CORE_CLOCK_RATIO: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanity_relations() {
        let t = DdrTiming::ddr3_1600();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_ras >= t.t_rcd);
        assert!(t.t_faw >= 4 * t.t_rrd);
    }

    #[test]
    fn read_latency() {
        assert_eq!(DdrTiming::ddr3_1600().read_latency(), 15);
    }

    #[test]
    fn ddr4_sanity() {
        let t = DdrTiming::ddr4_2400();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_ras >= t.t_rcd);
        assert!(t.t_faw >= 4 * t.t_rrd);
        // DDR4's absolute read latency (ns) is comparable to DDR3's.
        let ddr3_ns = DdrTiming::ddr3_1600().read_latency() as f64 * 1.25;
        let ddr4_ns = t.read_latency() as f64 * 0.833;
        assert!((ddr4_ns - ddr3_ns).abs() / ddr3_ns < 0.2);
    }

    #[test]
    fn extra_burst_extends_ccd() {
        let t = DdrTiming::ddr3_1600().with_extra_burst(1);
        assert_eq!(t.t_burst, 5);
        assert_eq!(t.t_ccd, 5);
    }
}
