//! The memory controller: per-channel queues, FR-FCFS scheduling, write
//! drain and refresh management (USIMM's baseline scheduler).

use crate::addrmap::{decode, Location, Topology};
use crate::dram::Dram;
use crate::timing::DdrTiming;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xed_telemetry::registry::metrics;

/// A queued memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique request id (completion routing).
    pub id: u64,
    /// Decoded location.
    pub loc: Location,
    /// Writeback?
    pub is_write: bool,
    /// Cycle the request entered the queue.
    pub arrival: u64,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Read-queue capacity per channel.
    pub read_queue_cap: usize,
    /// Write-queue capacity per channel.
    pub write_queue_cap: usize,
    /// Start draining writes above this occupancy.
    pub write_drain_hi: usize,
    /// Stop draining below this occupancy.
    pub write_drain_lo: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            read_queue_cap: 64,
            write_queue_cap: 64,
            write_drain_hi: 40,
            write_drain_lo: 20,
        }
    }
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Reads completed.
    pub reads_done: u64,
    /// Writes issued to DRAM.
    pub writes_done: u64,
    /// Sum of read latencies (enqueue → last data beat), in cycles.
    pub total_read_latency: u64,
}

/// The multi-channel memory controller.
#[derive(Debug)]
pub struct MemController {
    topology: Topology,
    dram: Dram,
    read_q: Vec<Vec<Request>>,
    write_q: Vec<Vec<Request>>,
    /// Writes left in the current drain episode, per channel. A drain
    /// episode is sized when it starts (queue depth minus low watermark),
    /// so continuously arriving writes cannot starve reads.
    drain_remaining: Vec<u32>,
    /// Read-priority cycles guaranteed after each drain episode, per
    /// channel; a new episode cannot start while grace remains (unless the
    /// read queue is empty), so saturated channels alternate fairly.
    read_grace: Vec<u32>,
    config: SchedConfig,
    /// (completion cycle, request id) min-heap.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Statistics.
    pub stats: SchedStats,
}

impl MemController {
    /// Builds the controller and its DRAM state.
    pub fn new(topology: Topology, timing: DdrTiming, config: SchedConfig) -> Self {
        let dram = Dram::new(timing, topology.channels, topology.ranks, topology.banks);
        Self {
            topology,
            dram,
            read_q: (0..topology.channels).map(|_| Vec::new()).collect(),
            write_q: (0..topology.channels).map(|_| Vec::new()).collect(),
            drain_remaining: vec![0; topology.channels as usize],
            read_grace: vec![0; topology.channels as usize],
            config,
            completions: BinaryHeap::new(),
            stats: SchedStats::default(),
        }
    }

    /// The DRAM state (activity counters for the power model).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Attempts to enqueue a demand read. Returns `false` if the channel's
    /// read queue is full.
    pub fn enqueue_read(&mut self, id: u64, line_addr: u64, now: u64) -> bool {
        let loc = decode(&self.topology, line_addr);
        let q = &mut self.read_q[loc.channel as usize];
        if q.len() >= self.config.read_queue_cap {
            return false;
        }
        q.push(Request {
            id,
            loc,
            is_write: false,
            arrival: now,
        });
        // Queue-depth sample per enqueue: the simulator advances one
        // memory cycle per host microsecond-ish, so a live histogram
        // record here is far below measurement noise.
        xed_telemetry::observe(&metrics::MEMSIM_SCHED_QUEUE_DEPTH, q.len() as u64);
        true
    }

    /// Attempts to enqueue a writeback. Returns `false` if the channel's
    /// write queue is full.
    pub fn enqueue_write(&mut self, id: u64, line_addr: u64, now: u64) -> bool {
        let loc = decode(&self.topology, line_addr);
        let q = &mut self.write_q[loc.channel as usize];
        if q.len() >= self.config.write_queue_cap {
            return false;
        }
        q.push(Request {
            id,
            loc,
            is_write: true,
            arrival: now,
        });
        true
    }

    /// Outstanding requests across all channels.
    pub fn pending(&self) -> usize {
        self.read_q.iter().map(Vec::len).sum::<usize>()
            + self.write_q.iter().map(Vec::len).sum::<usize>()
    }

    /// Advances one memory cycle: issues at most one command per channel
    /// and returns the ids of reads whose data completed this cycle.
    pub fn tick(&mut self, now: u64) -> Vec<u64> {
        for ch in 0..self.topology.channels {
            self.tick_channel(ch, now);
        }
        self.dram.tick_stats(now);
        let mut done = Vec::new();
        while let Some(&Reverse((cycle, id))) = self.completions.peek() {
            if cycle > now {
                break;
            }
            self.completions.pop();
            done.push(id);
        }
        done
    }

    fn tick_channel(&mut self, ch: u32, now: u64) {
        // 1. Refresh has absolute priority: when a rank is due, quiesce it.
        for rank in 0..self.topology.ranks {
            if self.dram.refresh_due(ch, rank, now) && !self.dram.refreshing(ch, rank, now) {
                if self.dram.channel(ch).rank(rank).any_bank_open() {
                    // Close one open bank per cycle until quiesced.
                    for bank in 0..self.topology.banks {
                        if self
                            .dram
                            .channel(ch)
                            .rank(rank)
                            .bank(bank)
                            .open_row
                            .is_some()
                            && self.dram.can_precharge(ch, rank, bank, now)
                        {
                            self.dram.issue_precharge(ch, rank, bank, now);
                            return;
                        }
                    }
                    // Banks open but not yet precharge-able: wait.
                    return;
                }
                self.dram.issue_refresh(ch, rank, now);
                return;
            }
        }

        // 2. Choose read service or write drain. Drain episodes have a
        // fixed budget set when they start, and each completed episode
        // grants the read queue a grace window before the next may begin —
        // so a steady write stream can never starve reads.
        let ci = ch as usize;
        let wq_len = self.write_q[ci].len();
        let rq_empty = self.read_q[ci].is_empty();
        if self.drain_remaining[ci] == 0
            && wq_len >= self.config.write_drain_hi
            && (self.read_grace[ci] == 0 || rq_empty)
        {
            self.drain_remaining[ci] = (wq_len - self.config.write_drain_lo) as u32;
        }
        let write_mode = wq_len > 0 && (self.drain_remaining[ci] > 0 || rq_empty);

        if write_mode {
            let issued_column = self.schedule_queue(ch, now, true);
            if issued_column && self.drain_remaining[ci] > 0 {
                self.drain_remaining[ci] -= 1;
                if self.drain_remaining[ci] == 0 {
                    // Episode over: guarantee the reads a matching window.
                    self.read_grace[ci] =
                        (self.config.write_drain_hi - self.config.write_drain_lo) as u32;
                }
            }
        } else if !rq_empty {
            if self.schedule_queue(ch, now, false) {
                self.read_grace[ci] = self.read_grace[ci].saturating_sub(1);
            }
        } else {
            self.read_grace[ci] = 0;
        }
    }

    /// FR-FCFS over one queue: oldest row-hit column access first, then
    /// oldest-first activates, then precharges for row conflicts. Returns
    /// `true` if a column access (read/write burst) was issued.
    fn schedule_queue(&mut self, ch: u32, now: u64, writes: bool) -> bool {
        let queue: &Vec<Request> = if writes {
            &self.write_q[ch as usize]
        } else {
            &self.read_q[ch as usize]
        };

        // Pass 1: column access for an open matching row (row hit).
        let mut hit_idx = None;
        for (i, req) in queue.iter().enumerate() {
            let l = req.loc;
            let ok = if writes {
                self.dram.can_write(ch, l.rank, l.bank, l.row, now)
            } else {
                self.dram.can_read(ch, l.rank, l.bank, l.row, now)
            };
            if ok {
                hit_idx = Some(i);
                break;
            }
        }
        if let Some(i) = hit_idx {
            let req = if writes {
                self.write_q[ch as usize].remove(i)
            } else {
                self.read_q[ch as usize].remove(i)
            };
            let l = req.loc;
            if writes {
                self.dram.issue_write(ch, l.rank, l.bank, l.row, now);
                self.stats.writes_done += 1;
            } else {
                let data_end = self.dram.issue_read(ch, l.rank, l.bank, l.row, now);
                self.stats.reads_done += 1;
                self.stats.total_read_latency += data_end - req.arrival;
                xed_telemetry::observe(&metrics::MEMSIM_SCHED_READ_LATENCY, data_end - req.arrival);
                self.completions.push(Reverse((data_end, req.id)));
            }
            return true;
        }

        // Pass 2: activate for the oldest request whose bank is closed.
        for req in queue {
            let l = req.loc;
            let bank_open = self.dram.channel(ch).rank(l.rank).bank(l.bank).open_row;
            if bank_open.is_none() && self.dram.can_activate(ch, l.rank, l.bank, now) {
                let (rank, bank, row) = (l.rank, l.bank, l.row);
                self.dram.issue_activate(ch, rank, bank, row, now);
                return false;
            }
        }

        // Pass 3: precharge a conflicting row for the oldest request.
        for req in queue {
            let l = req.loc;
            let bank_open = self.dram.channel(ch).rank(l.rank).bank(l.bank).open_row;
            if let Some(open) = bank_open {
                if open != l.row && self.dram.can_precharge(ch, l.rank, l.bank, now) {
                    self.dram.issue_precharge(ch, l.rank, l.bank, now);
                    return false;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MemController {
        MemController::new(
            Topology::baseline(),
            DdrTiming::ddr3_1600(),
            SchedConfig::default(),
        )
    }

    fn run_until_complete(mc: &mut MemController, ids: &[u64], limit: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for now in 0..limit {
            for id in mc.tick(now) {
                done.push((now, id));
            }
            if done.len() == ids.len() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let mut mc = controller();
        assert!(mc.enqueue_read(1, 0, 0));
        let done = run_until_complete(&mut mc, &[1], 1000);
        assert_eq!(done.len(), 1);
        let t = DdrTiming::ddr3_1600();
        // ACT at ~0, READ at tRCD, data at tRCD+CL+BL.
        let expected = t.t_rcd + t.t_cas + t.t_burst;
        assert!(
            (done[0].0 as i64 - expected as i64).abs() <= 2,
            "completed at {} expected ~{expected}",
            done[0].0
        );
        assert_eq!(mc.stats.reads_done, 1);
    }

    #[test]
    fn row_hit_faster_than_row_miss() {
        let mut mc = controller();
        // Two reads to the same row, consecutive columns (addresses 0 and
        // 4: channel-interleaved, so 0 and 4 share row/bank on channel 0).
        assert!(mc.enqueue_read(1, 0, 0));
        assert!(mc.enqueue_read(2, 4, 0));
        let done = run_until_complete(&mut mc, &[1, 2], 1000);
        assert_eq!(done.len(), 2);
        let gap = done[1].0 - done[0].0;
        // Second read is a row hit: only tCCD apart on the data bus.
        assert!(gap <= DdrTiming::ddr3_1600().t_ccd + 1, "gap {gap}");
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut mc = controller();
        assert!(mc.enqueue_read(1, 0, 0)); // channel 0
        assert!(mc.enqueue_read(2, 1, 0)); // channel 1
        let done = run_until_complete(&mut mc, &[1, 2], 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(
            done[0].0, done[1].0,
            "independent channels complete together"
        );
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut mc = MemController::new(
            Topology::baseline(),
            DdrTiming::ddr3_1600(),
            SchedConfig {
                read_queue_cap: 2,
                ..SchedConfig::default()
            },
        );
        assert!(mc.enqueue_read(1, 0, 0));
        assert!(mc.enqueue_read(2, 4, 0));
        assert!(
            !mc.enqueue_read(3, 8, 0),
            "third read to channel 0 must bounce"
        );
        assert!(mc.enqueue_read(4, 1, 0), "other channels unaffected");
    }

    #[test]
    fn writes_drain_when_read_queue_empty() {
        let mut mc = controller();
        assert!(mc.enqueue_write(1, 0, 0));
        for now in 0..500 {
            mc.tick(now);
            if mc.stats.writes_done == 1 {
                return;
            }
        }
        panic!("write never drained");
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let mut mc = controller();
        // A few writes (below hi watermark) plus a read: read goes first.
        for i in 0..5 {
            assert!(mc.enqueue_write(100 + i, (8 * i) * 4, 0));
        }
        assert!(mc.enqueue_read(1, 4, 0));
        let mut read_done_at = None;
        for now in 0..2000 {
            for id in mc.tick(now) {
                if id == 1 {
                    read_done_at = Some(now);
                }
            }
            if read_done_at.is_some() {
                break;
            }
        }
        let read_at = read_done_at.expect("read completes");
        assert!(
            mc.stats.writes_done <= 1,
            "writes mostly waited for the read"
        );
        assert!(read_at < 100);
    }

    #[test]
    fn refresh_eventually_issues() {
        let mut mc = controller();
        let t_refi = DdrTiming::ddr3_1600().t_refi;
        for now in 0..(t_refi * 2) {
            mc.tick(now);
        }
        let mut refreshes = 0;
        for ch in 0..4 {
            for r in 0..2 {
                refreshes += mc.dram().channel(ch).rank(r).stats.refreshes;
            }
        }
        assert!(
            refreshes >= 8,
            "each rank refreshes at least once, got {refreshes}"
        );
    }

    #[test]
    fn saturating_writes_cannot_starve_reads() {
        // Regression: open-loop write pressure must not hold the channel
        // in drain mode forever (bounded drain episodes + read grace).
        let mut mc = controller();
        let mut next_id = 1u64;
        assert!(mc.enqueue_read(0, 0, 0));
        let mut read_done = false;
        for now in 0..50_000 {
            // Keep the write queue topped up on channel 0.
            loop {
                if !mc.enqueue_write(next_id, (next_id % 512) * 4, now) {
                    break;
                }
                next_id += 1;
            }
            if mc.tick(now).contains(&0) {
                read_done = true;
                break;
            }
        }
        assert!(read_done, "read starved behind saturating writes");
    }

    #[test]
    fn read_latency_accumulates() {
        let mut mc = controller();
        assert!(mc.enqueue_read(1, 0, 0));
        run_until_complete(&mut mc, &[1], 1000);
        assert!(mc.stats.total_read_latency >= DdrTiming::ddr3_1600().read_latency());
    }
}
