//! Functional ECC datapath for the cycle-level simulator.
//!
//! The reliability overlays in [`crate::overlay`] model ECC purely through
//! its *timing* footprint (burst extension, extra transactions, rank
//! ganging). This module adds the *functional* half: with
//! [`crate::sim::SimConfig::functional_ecc`] enabled, every completed
//! demand read also pushes a synthesized 64-byte cache line through the
//! batched (72,64) CRC8-ATM [`SecDed::decode_line`] kernel — the same
//! word-parallel decode the memory controller models in `xed-core` use —
//! so the simulated access path exercises the real coding-theory hot path
//! end to end.
//!
//! Everything is deterministic: line contents are synthesized from the
//! line address with a splitmix64-style mixer, and a sparse, hash-selected
//! subset of addresses carries an injected single-bit (correctable) or
//! double-bit (detected-uncorrectable) error. Two runs with the same
//! address stream therefore produce identical [`EccPathStats`].

use xed_ecc::crc8::Crc8Atm;
use xed_ecc::secded::{LineOutcome, SecDed, BEATS_PER_LINE};
use xed_telemetry::{registry::metrics, Tallies};

/// One in `2^SINGLE_FLIP_SHIFT` lines carries a single-bit error.
const SINGLE_FLIP_SHIFT: u32 = 7;
/// One in `2^DOUBLE_FLIP_SHIFT` lines carries a double-bit error instead.
const DOUBLE_FLIP_SHIFT: u32 = 13;

/// Tally-slot layout of the datapath's accumulator.
const T_LINES: usize = 0;
const T_BEATS_CORRECTED: usize = 1;
const T_DUE_LINES: usize = 2;
const T_SLOTS: usize = 3;

/// Decode-path counters accumulated over a run.
///
/// A thin snapshot view over the datapath's owned [`Tallies`] block (see
/// [`EccDatapath::stats`]); the accumulation itself rides the telemetry
/// merge primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EccPathStats {
    /// Cache lines pushed through the batched decoder.
    pub lines_decoded: u64,
    /// Beats whose single-bit error the code corrected.
    pub beats_corrected: u64,
    /// Lines with at least one detected-uncorrectable beat.
    pub due_lines: u64,
}

/// The functional (72,64) CRC8-ATM decode stage of the read path.
#[derive(Debug, Clone)]
pub struct EccDatapath {
    code: Crc8Atm,
    tallies: Tallies<T_SLOTS>,
}

/// splitmix64 finalizer: a cheap, well-mixed hash of a 64-bit value.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EccDatapath {
    /// Builds the datapath.
    pub fn new() -> Self {
        Self {
            code: Crc8Atm::new(),
            tallies: Tallies::new(),
        }
    }

    /// Accumulated counters, as a snapshot view of the owned tally block.
    pub fn stats(&self) -> EccPathStats {
        EccPathStats {
            lines_decoded: self.tallies.get(T_LINES),
            beats_corrected: self.tallies.get(T_BEATS_CORRECTED),
            due_lines: self.tallies.get(T_DUE_LINES),
        }
    }

    /// Publishes this datapath's totals into the global registry
    /// (`memsim.eccpath.*`, plus the consumer-attributed `ecc.*` kernel
    /// counters — the kernels themselves are telemetry-free). Called once
    /// per simulation at its merge point; gated on
    /// [`xed_telemetry::enabled`].
    pub fn publish(&self) {
        if !xed_telemetry::enabled() {
            return;
        }
        let s = self.stats();
        metrics::MEMSIM_ECCPATH_LINES_DECODED.add(s.lines_decoded);
        metrics::MEMSIM_ECCPATH_BEATS_CORRECTED.add(s.beats_corrected);
        metrics::MEMSIM_ECCPATH_DUE_LINES.add(s.due_lines);
        metrics::ECC_LINES_DECODED.add(s.lines_decoded);
        metrics::ECC_WORDS_DECODED.add(s.lines_decoded * BEATS_PER_LINE as u64);
        metrics::ECC_CORRECTIONS.add(s.beats_corrected);
        metrics::ECC_DUE_WORDS.add(s.due_lines);
    }

    /// Decodes the (synthesized) cache line at `line_addr`: encode eight
    /// beats, apply the address's deterministic error pattern, and run the
    /// batched line decode.
    pub fn read_line(&mut self, line_addr: u64) -> LineOutcome {
        let mut data = [0u64; BEATS_PER_LINE];
        for (b, w) in data.iter_mut().enumerate() {
            *w = mix64(line_addr.wrapping_mul(BEATS_PER_LINE as u64) + b as u64);
        }
        let mut beats = self.code.encode_line(&data);

        // Sparse deterministic error injection, keyed off the address.
        let h = mix64(line_addr ^ 0xECC0_DE00_5EED_0001);
        if h & ((1 << DOUBLE_FLIP_SHIFT) - 1) == 1 {
            let beat = ((h >> 24) % BEATS_PER_LINE as u64) as usize;
            let i = ((h >> 32) % 72) as u32;
            let j = ((h >> 40) % 71) as u32;
            let j = if j >= i { j + 1 } else { j };
            beats[beat] = beats[beat].with_bit_flipped(i).with_bit_flipped(j);
        } else if h & ((1 << SINGLE_FLIP_SHIFT) - 1) == 0 {
            let beat = ((h >> 24) % BEATS_PER_LINE as u64) as usize;
            let i = ((h >> 32) % 72) as u32;
            beats[beat] = beats[beat].with_bit_flipped(i);
        }

        let out = self.code.decode_line(&beats);
        self.tallies.bump(T_LINES);
        self.tallies
            .add(T_BEATS_CORRECTED, u64::from(out.corrected_count()));
        if out.is_due() {
            self.tallies.bump(T_DUE_LINES);
        }
        out
    }
}

impl Default for EccDatapath {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_counts_consistent() {
        let mut a = EccDatapath::new();
        let mut b = EccDatapath::new();
        for addr in 0..4096u64 {
            let ra = a.read_line(addr * 64);
            let rb = b.read_line(addr * 64);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().lines_decoded, 4096);
        // The injection rates guarantee both event kinds show up over a
        // 4096-line sweep, and most lines stay clean.
        assert!(a.stats().beats_corrected > 0);
        assert!(a.stats().due_lines > 0);
        assert!(a.stats().beats_corrected + a.stats().due_lines < 1024);
    }

    #[test]
    fn corrected_line_recovers_synthesized_data() {
        let mut path = EccDatapath::new();
        // Find an address whose injected error is a single-bit flip and
        // check the decode returns the original synthesized words.
        let mut seen_correction = false;
        for addr in 0..2048u64 {
            let out = path.read_line(addr);
            if out.corrected_count() > 0 && !out.is_due() {
                seen_correction = true;
                let expect: Vec<u64> = (0..BEATS_PER_LINE as u64)
                    .map(|b| mix64(addr.wrapping_mul(BEATS_PER_LINE as u64) + b))
                    .collect();
                assert_eq!(&out.data[..], &expect[..]);
            }
        }
        assert!(seen_correction);
    }
}
