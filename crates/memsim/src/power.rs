//! A Micron TN-41-01-style DDR3 power model.
//!
//! Memory power is computed from activity counters the way Micron's
//! "Calculating Memory System Power for DDR3" technical note prescribes,
//! with the refinements USIMM applies:
//!
//! * **Background** power per device interpolates between precharge
//!   power-down (CKE low) and active standby according to how busy the
//!   device's rank is — so a scheme that stretches execution time lets
//!   devices idle in power-down longer and its *average* power drops (the
//!   effect behind Chipkill's power reduction in the paper's Figure 12).
//! * **Activate/precharge** energy is paid per ACT by every device in the
//!   (possibly rank-ganged) access group.
//! * **Read/write transfer** energy is per *access*: the same 64 B + ECC
//!   moves over the 72-lane bus no matter how many devices share it, scaled
//!   by the burst factor (overfetch doubles it, BL10 adds 25%).
//! * **Refresh** energy is paid per device.
//! * Devices with on-die ECC pay 12.5% more background, refresh and
//!   activate current for the extra cells (paper Section X).

use crate::dram::RankStats;

/// Energy to move one BL8 cache-line read (64 B + ECC) across a 72-lane
/// channel, in nJ (I/O + DLL across the rank's devices).
pub const LINE_READ_NJ: f64 = 9.9;
/// Energy for one BL8 cache-line write, in nJ.
pub const LINE_WRITE_NJ: f64 = 10.8;

/// Per-device power/energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipPower {
    /// Precharge power-down floor, mW (CKE low).
    pub powerdown_mw: f64,
    /// Precharge standby power, mW (CKE high, bank idle).
    pub standby_mw: f64,
    /// Additional background power while a bank is open, mW.
    pub active_standby_extra_mw: f64,
    /// Energy per ACT+PRE pair, nJ.
    pub act_energy_nj: f64,
    /// Energy per REFRESH command, nJ.
    pub refresh_energy_nj: f64,
}

impl ChipPower {
    /// A 2Gb x8 DDR3-1600 part (derived from Micron IDD data at 1.5 V).
    pub const fn x8_2gb() -> Self {
        Self {
            powerdown_mw: 18.0,
            standby_mw: 60.0,
            active_standby_extra_mw: 9.0,
            act_energy_nj: 3.8,
            refresh_energy_nj: 42.0,
        }
    }

    /// A 2Gb x4 part: narrower I/O and core currents ≈ 55% of the x8 part.
    pub const fn x4_2gb() -> Self {
        Self {
            powerdown_mw: 10.0,
            standby_mw: 33.0,
            active_standby_extra_mw: 5.0,
            act_energy_nj: 2.1,
            refresh_energy_nj: 23.0,
        }
    }

    /// Applies the on-die ECC overhead: 12.5% more cells raise background,
    /// refresh and activate/precharge power (paper Section X).
    #[must_use]
    pub fn with_on_die_ecc(mut self) -> Self {
        const F: f64 = 1.125;
        self.powerdown_mw *= F;
        self.standby_mw *= F;
        self.active_standby_extra_mw *= F;
        self.act_energy_nj *= F;
        self.refresh_energy_nj *= F;
        self
    }
}

/// System-level inputs to the power calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerInputs {
    /// Aggregated activity of all (logical) ranks, with `active_cycles`
    /// normalized to a per-rank average.
    pub totals: RankStats,
    /// Execution time in memory cycles.
    pub cycles: u64,
    /// Memory-bus cycle time in nanoseconds.
    pub cycle_ns: f64,
    /// Devices participating in each access.
    pub chips_per_access: u32,
    /// Devices in the system (background + refresh).
    pub total_chips: u32,
    /// Bus-occupancy multiplier per access (1.0 = BL8; 2.0 = overfetch).
    pub burst_factor: f64,
}

/// Computed power breakdown, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Background (power-down / standby) power.
    pub background_mw: f64,
    /// Activate/precharge power.
    pub activate_mw: f64,
    /// Read/write transfer power.
    pub rw_mw: f64,
    /// Refresh power.
    pub refresh_mw: f64,
}

impl PowerBreakdown {
    /// Total memory power, mW.
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.activate_mw + self.rw_mw + self.refresh_mw
    }
}

/// Computes the memory power for a run.
///
/// # Panics
///
/// Panics if `cycles == 0`.
pub fn memory_power(chip: &ChipPower, inputs: &PowerInputs) -> PowerBreakdown {
    assert!(inputs.cycles > 0, "power over zero cycles");
    let time_ns = inputs.cycles as f64 * inputs.cycle_ns;
    let per_access_chips = inputs.chips_per_access as f64;
    let all_chips = inputs.total_chips as f64;
    let t = &inputs.totals;

    // Fraction of time a device's rank is busy (banks open): drives both
    // the CKE-high fraction and the active-standby increment.
    let busy_frac = (t.active_cycles as f64 / inputs.cycles as f64).min(1.0);
    let per_chip_bg = chip.powerdown_mw
        + (chip.standby_mw - chip.powerdown_mw) * busy_frac
        + chip.active_standby_extra_mw * busy_frac;
    let background_mw = all_chips * per_chip_bg;

    let activate_mw = per_access_chips * t.acts as f64 * chip.act_energy_nj / time_ns * 1000.0;

    // Transfer energy is per access (the line is striped over the group).
    let rw_nj =
        (t.reads as f64 * LINE_READ_NJ + t.writes as f64 * LINE_WRITE_NJ) * inputs.burst_factor;
    let rw_mw = rw_nj / time_ns * 1000.0;

    // `refreshes` counts logical-rank refreshes; each refreshes the whole
    // ganged group, and the groups together cover every device.
    let refresh_mw =
        per_access_chips * t.refreshes as f64 * chip.refresh_energy_nj / time_ns * 1000.0;

    PowerBreakdown {
        background_mw,
        activate_mw,
        rw_mw,
        refresh_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(acts: u64, reads: u64, writes: u64, cycles: u64) -> PowerInputs {
        PowerInputs {
            totals: RankStats {
                acts,
                reads,
                writes,
                refreshes: cycles / 6240 * 8,
                active_cycles: cycles / 2,
            },
            cycles,
            cycle_ns: 1.25,
            chips_per_access: 9,
            total_chips: 72,
            burst_factor: 1.0,
        }
    }

    #[test]
    fn idle_system_sits_near_powerdown_floor() {
        let chip = ChipPower::x8_2gb().with_on_die_ecc();
        let mut i = inputs(0, 0, 0, 1_000_000);
        i.totals.active_cycles = 0;
        let p = memory_power(&chip, &i);
        assert_eq!(p.activate_mw, 0.0);
        assert_eq!(p.rw_mw, 0.0);
        let floor = 72.0 * 18.0 * 1.125;
        assert!((p.background_mw - floor).abs() < 1e-6);
    }

    #[test]
    fn more_activity_more_power() {
        let chip = ChipPower::x8_2gb();
        let idle = memory_power(&chip, &inputs(0, 0, 0, 1_000_000)).total_mw();
        let busy = memory_power(&chip, &inputs(100_000, 400_000, 150_000, 1_000_000)).total_mw();
        assert!(busy > idle);
    }

    #[test]
    fn on_die_ecc_raises_power() {
        let base = ChipPower::x8_2gb();
        let ecc = base.with_on_die_ecc();
        let i = inputs(50_000, 200_000, 80_000, 1_000_000);
        assert!(memory_power(&ecc, &i).total_mw() > memory_power(&base, &i).total_mw());
    }

    #[test]
    fn ganged_access_doubles_activate_power_only() {
        let chip = ChipPower::x8_2gb();
        let mut i = inputs(100_000, 300_000, 100_000, 1_000_000);
        let p9 = memory_power(&chip, &i);
        i.chips_per_access = 18;
        let p18 = memory_power(&chip, &i);
        assert!((p18.activate_mw / p9.activate_mw - 2.0).abs() < 1e-9);
        assert_eq!(p18.rw_mw, p9.rw_mw, "transfer energy is per access");
    }

    #[test]
    fn overfetch_doubles_transfer_power() {
        let chip = ChipPower::x8_2gb();
        let mut i = inputs(100_000, 300_000, 100_000, 1_000_000);
        let p1 = memory_power(&chip, &i);
        i.burst_factor = 2.0;
        let p2 = memory_power(&chip, &i);
        assert!((p2.rw_mw / p1.rw_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn x4_chip_cheaper_than_x8() {
        let i = inputs(100_000, 300_000, 100_000, 1_000_000);
        let x8 = memory_power(&ChipPower::x8_2gb(), &i).total_mw();
        let x4 = memory_power(&ChipPower::x4_2gb(), &i).total_mw();
        assert!(x4 < x8);
    }

    #[test]
    fn stretching_time_reduces_average_power() {
        // Same work over twice the time: activity amortizes *and* the
        // background falls toward the power-down floor.
        let chip = ChipPower::x8_2gb();
        let short = inputs(100_000, 300_000, 100_000, 1_000_000);
        let mut long = inputs(100_000, 300_000, 100_000, 2_000_000);
        long.totals.refreshes = short.totals.refreshes;
        long.totals.active_cycles = short.totals.active_cycles;
        let p_short = memory_power(&chip, &short).total_mw();
        let p_long = memory_power(&chip, &long).total_mw();
        assert!(p_long < p_short);
    }

    #[test]
    #[should_panic]
    fn zero_cycles_panics() {
        memory_power(&ChipPower::x8_2gb(), &inputs(0, 0, 0, 0));
    }
}
