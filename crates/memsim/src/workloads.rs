//! The paper's benchmark set as synthetic memory-behavior profiles.
//!
//! The paper drives USIMM with Pinpoints-sampled traces of SPEC CPU2006,
//! PARSEC, BioBench and five commercial applications (Section X), selecting
//! benchmarks with more than 1 miss per 1000 instructions (MPKI) from the
//! last-level cache. Those traces are proprietary, so this reproduction
//! characterizes each benchmark by the parameters that matter to a memory
//! simulator — LLC read/write MPKI, row-buffer locality and working-set
//! size — with values drawn from the published characterizations of these
//! suites. The *relative* behaviors the paper's Figures 11–14 rely on are
//! preserved: `libquantum` is a streaming bandwidth hog, `mcf` is
//! latency-bound pointer chasing, `dealII` is nearly compute-bound, and so
//! on.

/// Benchmark suite grouping (the figure x-axis sections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// PARSEC.
    Parsec,
    /// BioBench.
    BioBench,
    /// Commercial server applications (USIMM MSC `comm` traces).
    Commercial,
}

impl Suite {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Spec2006 => "SPEC 2006",
            Suite::Parsec => "PARSEC",
            Suite::BioBench => "BIOBENCH",
            Suite::Commercial => "COMMERCIAL",
        }
    }
}

/// A benchmark's memory-behavior profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Benchmark name (paper Figure 11 x-axis).
    pub name: &'static str,
    /// Suite grouping.
    pub suite: Suite,
    /// LLC read misses per 1000 instructions.
    pub read_mpki: f64,
    /// LLC writebacks per 1000 instructions.
    pub write_mpki: f64,
    /// Probability that the next access continues the current row-buffer
    /// stream (spatial locality).
    pub row_hit: f64,
    /// Working-set rows per bank the benchmark cycles through.
    pub footprint_rows: u32,
}

impl Workload {
    /// Looks a workload up by name.
    pub fn by_name(name: &str) -> Option<Workload> {
        ALL.iter().copied().find(|w| w.name == name)
    }

    /// Total memory operations per 1000 instructions.
    pub fn total_mpki(&self) -> f64 {
        self.read_mpki + self.write_mpki
    }

    /// Mean instructions between memory operations.
    pub fn mean_gap(&self) -> f64 {
        1000.0 / self.total_mpki()
    }

    /// Fraction of memory operations that are writes.
    pub fn write_fraction(&self) -> f64 {
        self.write_mpki / self.total_mpki()
    }
}

const fn w(
    name: &'static str,
    suite: Suite,
    read_mpki: f64,
    write_mpki: f64,
    row_hit: f64,
    footprint_rows: u32,
) -> Workload {
    Workload {
        name,
        suite,
        read_mpki,
        write_mpki,
        row_hit,
        footprint_rows,
    }
}

/// Every benchmark of the paper's Figure 11, in its x-axis order.
pub const ALL: &[Workload] = &[
    // SPEC CPU2006 (memory-intensive subset, > 1 MPKI).
    w("bwaves", Suite::Spec2006, 18.0, 5.5, 0.74, 512),
    w("gcc", Suite::Spec2006, 2.5, 1.1, 0.50, 256),
    w("GemsFDTD", Suite::Spec2006, 15.5, 6.5, 0.62, 512),
    w("lbm", Suite::Spec2006, 20.0, 11.0, 0.80, 512),
    w("leslie3d", Suite::Spec2006, 14.0, 5.0, 0.70, 384),
    w("libquantum", Suite::Spec2006, 25.0, 7.5, 0.92, 256),
    w("mcf", Suite::Spec2006, 48.0, 11.0, 0.18, 2048),
    w("milc", Suite::Spec2006, 15.5, 6.0, 0.52, 768),
    w("omnetpp", Suite::Spec2006, 10.0, 4.2, 0.28, 1024),
    w("soplex", Suite::Spec2006, 21.0, 5.5, 0.58, 768),
    w("sphinx", Suite::Spec2006, 10.5, 1.8, 0.56, 384),
    w("wrf", Suite::Spec2006, 7.0, 3.0, 0.65, 384),
    w("cactusADM", Suite::Spec2006, 4.8, 2.0, 0.60, 256),
    w("zeusmp", Suite::Spec2006, 4.9, 2.1, 0.62, 384),
    w("bzip2", Suite::Spec2006, 3.1, 1.4, 0.46, 256),
    w("dealII", Suite::Spec2006, 2.1, 0.8, 0.52, 192),
    w("xalancbmk", Suite::Spec2006, 2.4, 1.0, 0.34, 512),
    // PARSEC.
    w("black", Suite::Parsec, 1.6, 0.5, 0.50, 128),
    w("face", Suite::Parsec, 6.0, 2.4, 0.62, 384),
    w("ferret", Suite::Parsec, 5.0, 1.9, 0.50, 384),
    w("fluid", Suite::Parsec, 4.2, 1.9, 0.60, 384),
    w("freq", Suite::Parsec, 2.9, 1.1, 0.50, 256),
    w("stream", Suite::Parsec, 12.0, 2.2, 0.76, 256),
    w("swapt", Suite::Parsec, 1.5, 0.5, 0.42, 128),
    // BioBench.
    w("mummer", Suite::BioBench, 19.5, 2.8, 0.64, 512),
    w("tigr", Suite::BioBench, 17.5, 2.2, 0.70, 512),
    // Commercial.
    w("comm1", Suite::Commercial, 13.5, 6.8, 0.44, 1024),
    w("comm2", Suite::Commercial, 11.5, 5.8, 0.40, 1024),
    w("comm3", Suite::Commercial, 8.0, 4.0, 0.45, 768),
    w("comm4", Suite::Commercial, 4.1, 2.0, 0.40, 512),
    w("comm5", Suite::Commercial, 3.2, 1.5, 0.40, 512),
];

/// Geometric mean over a sequence of positive values (the figures' final
/// `Gmean` column).
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    assert!(n > 0, "geometric mean of empty sequence");
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_exceed_1_mpki() {
        // The paper's selection criterion (Section X).
        for w in ALL {
            assert!(w.total_mpki() > 1.0, "{}", w.name);
        }
    }

    #[test]
    fn roster_matches_figure_11() {
        assert_eq!(ALL.len(), 31);
        for name in ["libquantum", "mcf", "comm5", "tigr", "stream"] {
            assert!(Workload::by_name(name).is_some(), "{name} missing");
        }
        assert!(Workload::by_name("nonexistent").is_none());
    }

    #[test]
    fn names_unique() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[..i] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn derived_quantities() {
        let lq = Workload::by_name("libquantum").unwrap();
        assert!((lq.mean_gap() - 1000.0 / 32.5).abs() < 1e-9);
        assert!(lq.write_fraction() > 0.0 && lq.write_fraction() < 0.5);
    }

    #[test]
    fn probabilities_valid() {
        for w in ALL {
            assert!((0.0..=1.0).contains(&w.row_hit), "{}", w.name);
            assert!(w.footprint_rows > 0);
        }
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean([1.0, 0.0]);
    }
}
