//! The top-level simulation driver: cores + controller + power accounting.

use crate::addrmap::Topology;
use crate::cpu::Core;
use crate::dram::RankStats;
use crate::eccpath::{EccDatapath, EccPathStats};
use crate::overlay::ReliabilityScheme;
use crate::power::{memory_power, ChipPower, PowerBreakdown, PowerInputs};
use crate::scheduler::{MemController, SchedConfig};
use crate::timing::{DdrTiming, CORE_CLOCK_RATIO};
use crate::trace::{Source, TraceGen};
use crate::tracefile::FileTrace;
use crate::workloads::Workload;
use std::collections::{HashMap, VecDeque};

/// Simulation configuration (defaults follow the paper's Table V).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Benchmark profile (all cores run it in rate mode, Section X).
    pub workload: Workload,
    /// Reliability scheme overlay.
    pub scheme: ReliabilityScheme,
    /// Number of cores (Table V: 8).
    pub cores: u32,
    /// Instructions each core retires before the run ends.
    pub instructions_per_core: u64,
    /// Reorder-buffer entries per core (Table V: 160).
    pub rob_size: u64,
    /// RNG seed for trace generation.
    pub seed: u64,
    /// Scheduler queue configuration.
    pub sched: SchedConfig,
    /// Safety limit on simulated memory cycles.
    pub max_cycles: u64,
    /// Replay this captured trace on every core (rate mode, staggered
    /// start offsets) instead of the synthetic `workload` generator.
    pub file_trace: Option<FileTrace>,
    /// Run every completed demand read through the functional (72,64)
    /// CRC8-ATM line decoder ([`crate::eccpath`]). Off by default: it does
    /// not affect timing, only the `ecc` counters of [`SimResult`].
    pub functional_ecc: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            workload: crate::workloads::ALL[0],
            scheme: ReliabilityScheme::baseline_secded(),
            cores: 8,
            instructions_per_core: 1_000_000,
            rob_size: 160,
            seed: 0xD1_5EED,
            sched: SchedConfig::default(),
            max_cycles: 2_000_000_000,
            file_trace: None,
            functional_ecc: false,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Scheme evaluated.
    pub scheme_name: &'static str,
    /// Benchmark evaluated.
    pub workload_name: &'static str,
    /// Memory cycles until the last core finished (execution time).
    pub cycles: u64,
    /// Mean per-core finish time in memory cycles.
    pub avg_core_cycles: f64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Demand reads completed.
    pub reads: u64,
    /// Writes drained to DRAM.
    pub writes: u64,
    /// ACT commands issued.
    pub acts: u64,
    /// Mean demand-read latency (memory cycles).
    pub avg_read_latency: f64,
    /// Fraction of column accesses served without a new activate.
    pub row_hit_rate: f64,
    /// Data-bus utilization (busy cycles / total cycles / channels).
    pub bus_utilization: f64,
    /// Total core cycles fully stalled with the ROB blocked on memory.
    pub rob_stall_cycles: u64,
    /// Total core cycles blocked on full controller queues.
    pub queue_stall_cycles: u64,
    /// Power breakdown.
    pub power: PowerBreakdown,
    /// Functional ECC decode-path counters (all zero unless
    /// [`SimConfig::functional_ecc`] is set).
    pub ecc: EccPathStats,
}

impl SimResult {
    /// Execution time in nanoseconds (800 MHz bus).
    pub fn exec_time_ns(&self) -> f64 {
        self.cycles as f64 * 1.25
    }

    /// Total memory power in milliwatts.
    pub fn power_mw(&self) -> f64 {
        self.power.total_mw()
    }
}

/// A configured simulation, ready to run.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates the simulation.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.cores > 0 && config.instructions_per_core > 0);
        Self { config }
    }

    /// Runs to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `max_cycles` (a wedged configuration).
    pub fn run(self) -> SimResult {
        let cfg = self.config;
        let scheme = cfg.scheme;
        let timing = DdrTiming::ddr3_1600().with_extra_burst(scheme.total_extra_burst_cycles());
        let topology: Topology = scheme.topology();
        let mut controller = MemController::new(topology, timing, cfg.sched);

        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|id| {
                let source = match &cfg.file_trace {
                    Some(trace) => {
                        // Stagger the replay start so cores don't march in
                        // lockstep over identical addresses.
                        let mut t = trace.clone();
                        let skip = trace.len() as u64 * id as u64 / cfg.cores as u64;
                        for _ in 0..skip {
                            t.next_op();
                        }
                        Source::File(t)
                    }
                    None => Source::Synthetic(TraceGen::new(
                        cfg.workload,
                        topology,
                        id,
                        cfg.cores,
                        cfg.seed,
                    )),
                };
                Core::new(
                    source,
                    cfg.rob_size,
                    4 * CORE_CLOCK_RATIO,
                    cfg.instructions_per_core,
                )
            })
            .collect();

        // Request-id bookkeeping: demand reads map back to
        // (core, instr, line address).
        let mut next_id: u64 = 1;
        let mut read_owner: HashMap<u64, (usize, u64, u64)> = HashMap::new();
        let mut eccpath = cfg.functional_ecc.then(EccDatapath::new);
        // Overlay-injected traffic waiting for queue space.
        let mut extra_reads: VecDeque<u64> = VecDeque::new();
        let mut extra_writes: VecDeque<u64> = VecDeque::new();
        let mut read_accum = 0.0f64;
        let mut write_accum = 0.0f64;
        let mut reads_seen: u64 = 0;

        let mut now: u64 = 0;
        loop {
            // Completions → cores (after the optional functional decode).
            for id in controller.tick(now) {
                if let Some((core, instr, line_addr)) = read_owner.remove(&id) {
                    if let Some(path) = eccpath.as_mut() {
                        let _ = path.read_line(line_addr);
                    }
                    cores[core].complete_read(instr);
                }
            }

            // Retry overlay traffic first (bounded backlog).
            while let Some(&addr) = extra_reads.front() {
                let id = next_id;
                if controller.enqueue_read(id, addr, now) {
                    next_id += 1;
                    extra_reads.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&addr) = extra_writes.front() {
                let id = next_id;
                if controller.enqueue_write(id, addr, now) {
                    next_id += 1;
                    extra_writes.pop_front();
                } else {
                    break;
                }
            }

            // Cores issue demand traffic.
            for (ci, core) in cores.iter_mut().enumerate() {
                core.tick(now, |req| {
                    let id = next_id;
                    let ok = if req.is_write {
                        controller.enqueue_write(id, req.line_addr, now)
                    } else {
                        controller.enqueue_read(id, req.line_addr, now)
                    };
                    if !ok {
                        return false;
                    }
                    next_id += 1;
                    if req.is_write {
                        write_accum += scheme.extra_writes_per_write;
                        while write_accum >= 1.0 {
                            write_accum -= 1.0;
                            extra_writes.push_back(req.line_addr);
                        }
                    } else {
                        read_owner.insert(id, (ci, req.instr_no, req.line_addr));
                        reads_seen += 1;
                        read_accum += scheme.extra_reads_per_read;
                        while read_accum >= 1.0 {
                            read_accum -= 1.0;
                            extra_reads.push_back(req.line_addr);
                        }
                        if let Some(every) = scheme.serial_mode_every {
                            if reads_seen.is_multiple_of(every) {
                                // Serial-mode episode: re-read with XED off
                                // plus a scrub write (paper Section VII-B).
                                extra_reads.push_back(req.line_addr);
                                extra_writes.push_back(req.line_addr);
                            }
                        }
                    }
                    true
                });
            }

            if cores.iter().all(|c| c.finished()) {
                break;
            }
            now += 1;
            assert!(
                now < cfg.max_cycles,
                "simulation exceeded {} cycles",
                cfg.max_cycles
            );
        }

        // invariant: the loop above exits only once every core reports
        // finished(), so finished_at() is Some for each core here.
        let cycles = cores
            .iter()
            .filter_map(|c| c.finished_at())
            .max()
            .unwrap_or(1)
            .max(1);
        let rob_stall_cycles = cores.iter().map(|c| c.stalls.rob_full_cycles).sum();
        let queue_stall_cycles = cores.iter().map(|c| c.stalls.queue_full_cycles).sum();
        let avg_core_cycles =
            cores.iter().filter_map(|c| c.finished_at()).sum::<u64>() as f64 / cores.len() as f64;

        // Aggregate DRAM activity.
        let mut totals = RankStats::default();
        let mut bus_busy = 0u64;
        for ch in 0..topology.channels {
            bus_busy += controller.dram().channel(ch).data_bus_busy_cycles;
            for r in 0..topology.ranks {
                let s = controller.dram().channel(ch).rank(r).stats;
                totals.acts += s.acts;
                totals.reads += s.reads;
                totals.writes += s.writes;
                totals.refreshes += s.refreshes;
                totals.active_cycles += s.active_cycles;
            }
        }
        // Normalize active_cycles to a single-rank-equivalent fraction.
        totals.active_cycles /= (topology.channels * topology.ranks).max(1) as u64;

        let chip = if scheme.x4_devices {
            ChipPower::x4_2gb().with_on_die_ecc()
        } else {
            ChipPower::x8_2gb().with_on_die_ecc()
        };
        let power = memory_power(
            &chip,
            &PowerInputs {
                totals,
                cycles,
                cycle_ns: 1.25,
                chips_per_access: scheme.chips_per_access(),
                total_chips: scheme.total_chips(),
                burst_factor: scheme.burst_factor(),
            },
        );

        // Publish-at-merge (DESIGN.md §11): the run accumulated into the
        // controller's and datapath's owned stats; the global registry is
        // bumped once per simulation, here.
        {
            use xed_telemetry::registry::metrics;
            xed_telemetry::count(
                &metrics::MEMSIM_SCHED_READS_DONE,
                controller.stats.reads_done,
            );
            xed_telemetry::count(
                &metrics::MEMSIM_SCHED_WRITES_DONE,
                controller.stats.writes_done,
            );
        }
        if let Some(path) = eccpath.as_ref() {
            path.publish();
        }

        let col_accesses = totals.reads + totals.writes;
        SimResult {
            scheme_name: scheme.name,
            workload_name: cfg.workload.name,
            cycles,
            avg_core_cycles,
            instructions: cfg.cores as u64 * cfg.instructions_per_core,
            reads: controller.stats.reads_done,
            writes: controller.stats.writes_done,
            acts: totals.acts,
            avg_read_latency: if controller.stats.reads_done > 0 {
                controller.stats.total_read_latency as f64 / controller.stats.reads_done as f64
            } else {
                0.0
            },
            row_hit_rate: if col_accesses > 0 {
                1.0 - (totals.acts.min(col_accesses) as f64 / col_accesses as f64)
            } else {
                0.0
            },
            bus_utilization: bus_busy as f64 / (cycles as f64 * topology.channels as f64),
            rob_stall_cycles,
            queue_stall_cycles,
            power,
            ecc: eccpath.map(|p| p.stats()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(workload: &str, scheme: ReliabilityScheme, instrs: u64) -> SimResult {
        Simulation::new(SimConfig {
            workload: Workload::by_name(workload).unwrap(),
            scheme,
            instructions_per_core: instrs,
            ..SimConfig::default()
        })
        .run()
    }

    #[test]
    fn baseline_run_completes() {
        let r = quick("comm1", ReliabilityScheme::baseline_secded(), 50_000);
        assert!(r.cycles > 0);
        assert!(r.reads > 0);
        assert!(r.writes > 0);
        assert!(r.power_mw() > 0.0);
        assert!(r.avg_read_latency >= DdrTiming::ddr3_1600().read_latency() as f64);
        assert!(r.row_hit_rate > 0.0 && r.row_hit_rate < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick("gcc", ReliabilityScheme::baseline_secded(), 20_000);
        let b = quick("gcc", ReliabilityScheme::baseline_secded(), 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn chipkill_slower_than_baseline_on_bandwidth_bound() {
        let base = quick("libquantum", ReliabilityScheme::baseline_secded(), 60_000);
        let ck = quick("libquantum", ReliabilityScheme::chipkill(), 60_000);
        assert!(
            ck.cycles > base.cycles,
            "chipkill {} vs baseline {}",
            ck.cycles,
            base.cycles
        );
    }

    #[test]
    fn double_chipkill_slowest() {
        let ck = quick("comm1", ReliabilityScheme::chipkill(), 40_000);
        let dck = quick("comm1", ReliabilityScheme::double_chipkill(), 40_000);
        assert!(
            dck.cycles > ck.cycles,
            "dck {} vs ck {}",
            dck.cycles,
            ck.cycles
        );
    }

    #[test]
    fn xed_close_to_baseline() {
        let base = quick("milc", ReliabilityScheme::baseline_secded(), 40_000);
        let xed = quick("milc", ReliabilityScheme::xed(), 40_000);
        let ratio = xed.cycles as f64 / base.cycles as f64;
        assert!(ratio < 1.02, "xed overhead ratio {ratio}");
    }

    #[test]
    fn extra_transaction_increases_traffic() {
        let base = quick("sphinx", ReliabilityScheme::baseline_secded(), 30_000);
        let alt = quick(
            "sphinx",
            ReliabilityScheme::chipkill_extra_transaction(),
            30_000,
        );
        assert!(alt.reads > base.reads, "{} vs {}", alt.reads, base.reads);
        assert!(alt.cycles >= base.cycles);
    }

    #[test]
    fn lot_ecc_adds_writes() {
        let base = quick("comm2", ReliabilityScheme::baseline_secded(), 30_000);
        let lot = quick("comm2", ReliabilityScheme::lot_ecc(), 30_000);
        assert!(lot.writes > base.writes);
        assert!(lot.cycles >= base.cycles);
    }

    #[test]
    fn functional_ecc_decodes_every_demand_read() {
        let run = || {
            Simulation::new(SimConfig {
                workload: Workload::by_name("comm1").unwrap(),
                instructions_per_core: 30_000,
                functional_ecc: true,
                ..SimConfig::default()
            })
            .run()
        };
        let r = run();
        assert!(r.ecc.lines_decoded > 0);
        // Every *processed* demand-read completion is decoded; reads still
        // in flight when the last core retires never reach the datapath.
        assert!(r.ecc.lines_decoded <= r.reads);
        assert!(r.reads - r.ecc.lines_decoded < 16);
        // Deterministic, including the injected-error counters.
        assert_eq!(r, run());
        // Off by default: the counters stay zero.
        let base = quick("comm1", ReliabilityScheme::baseline_secded(), 30_000);
        assert_eq!(base.ecc, crate::eccpath::EccPathStats::default());
    }

    #[test]
    fn file_trace_drives_the_simulation() {
        let trace: crate::tracefile::FileTrace = "\
5 R 0x0000\n5 R 0x0040\n5 W 0x0080\n9 R 0x10000\n3 R 0x10040\n"
            .parse()
            .unwrap();
        let r = Simulation::new(SimConfig {
            scheme: ReliabilityScheme::baseline_secded(),
            instructions_per_core: 5_000,
            file_trace: Some(trace),
            ..SimConfig::default()
        })
        .run();
        assert!(r.reads > 0);
        assert!(r.writes > 0);
        assert!(r.cycles > 0);
    }
}
