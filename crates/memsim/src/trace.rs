//! Per-core synthetic memory-request generation.
//!
//! Each core runs an infinite synthetic instruction stream shaped by its
//! [`Workload`] profile: memory operations are
//! spaced by (approximately geometric) instruction gaps matching the MPKI,
//! and addresses follow a row-streaming model — with probability `row_hit`
//! the next access continues sequentially in the current row, otherwise it
//! jumps to a random row of the core's working set.

use crate::addrmap::{encode, Location, Topology};
use crate::workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Instructions between the previous operation and this one.
    pub gap: u64,
    /// Cache-line address.
    pub line_addr: u64,
    /// `true` for a writeback, `false` for a demand read.
    pub is_write: bool,
}

/// Deterministic per-core request generator.
#[derive(Debug, Clone)]
pub struct TraceGen {
    workload: Workload,
    topology: Topology,
    rng: StdRng,
    core_id: u32,
    cores: u32,
    current: Location,
}

impl TraceGen {
    /// Creates the generator for one core. Cores partition the row space so
    /// their working sets do not alias.
    pub fn new(
        workload: Workload,
        topology: Topology,
        core_id: u32,
        cores: u32,
        seed: u64,
    ) -> Self {
        assert!(core_id < cores);
        let mut rng = StdRng::seed_from_u64(seed ^ ((core_id as u64) << 32));
        let current = Self::random_location(&workload, &topology, &mut rng, core_id, cores);
        Self {
            workload,
            topology,
            rng,
            core_id,
            cores,
            current,
        }
    }

    fn random_location(
        workload: &Workload,
        topology: &Topology,
        rng: &mut StdRng,
        core_id: u32,
        cores: u32,
    ) -> Location {
        // Each core owns a contiguous region of rows in every bank.
        let region_rows = topology.rows / cores;
        let footprint = workload.footprint_rows.min(region_rows.max(1));
        let base_row = core_id * region_rows;
        Location {
            channel: rng.gen_range(0..topology.channels),
            rank: rng.gen_range(0..topology.ranks),
            bank: rng.gen_range(0..topology.banks),
            row: base_row + rng.gen_range(0..footprint),
            col: rng.gen_range(0..topology.cols),
        }
    }

    /// Generates the next memory operation.
    pub fn next_op(&mut self) -> MemOp {
        // Instruction gap: geometric with the profile's mean (min 1).
        let mean = self.workload.mean_gap();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * mean).ceil().max(1.0) as u64;

        // Address: stream within the row or jump.
        if self.rng.gen::<f64>() < self.workload.row_hit {
            let next_col = self.current.col + 1;
            if next_col >= self.topology.cols {
                // Row exhausted: move to the next row of the same bank
                // (still a stream, but a new activate).
                self.current.row = self.bump_row(self.current.row);
                self.current.col = 0;
            } else {
                self.current.col = next_col;
            }
        } else {
            self.current = Self::random_location(
                &self.workload,
                &self.topology,
                &mut self.rng,
                self.core_id,
                self.cores,
            );
        }

        let is_write = self.rng.gen::<f64>() < self.workload.write_fraction();
        MemOp {
            gap,
            line_addr: encode(&self.topology, self.current),
            is_write,
        }
    }

    fn bump_row(&mut self, row: u32) -> u32 {
        let region_rows = self.topology.rows / self.cores;
        let footprint = self.workload.footprint_rows.min(region_rows.max(1));
        let base = self.core_id * region_rows;
        base + (row - base + 1) % footprint
    }
}

/// A per-core request source: either the synthetic generator or a replayed
/// trace file (rate mode).
// A parsed trace is necessarily larger than the generator; sources are
// created once per core, so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Source {
    /// Synthetic workload-profile generator.
    Synthetic(TraceGen),
    /// Captured trace replayed from a file.
    File(crate::tracefile::FileTrace),
}

impl Source {
    /// The next memory operation.
    pub fn next_op(&mut self) -> MemOp {
        match self {
            Source::Synthetic(g) => g.next_op(),
            Source::File(t) => t.next_op(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::decode;

    fn gen_for(name: &str, core: u32) -> TraceGen {
        TraceGen::new(
            Workload::by_name(name).unwrap(),
            Topology::baseline(),
            core,
            8,
            42,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = gen_for("mcf", 0);
        let mut b = gen_for("mcf", 0);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn mean_gap_tracks_mpki() {
        let mut g = gen_for("libquantum", 0);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.next_op().gap).sum();
        let mean = total as f64 / n as f64;
        let expected = Workload::by_name("libquantum").unwrap().mean_gap();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let mut g = gen_for("lbm", 0);
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_op().is_write).count();
        let f = writes as f64 / n as f64;
        let expected = Workload::by_name("lbm").unwrap().write_fraction();
        assert!((f - expected).abs() < 0.02, "{f} vs {expected}");
    }

    #[test]
    fn streaming_workload_mostly_sequential() {
        let t = Topology::baseline();
        let mut g = gen_for("libquantum", 0);
        let mut prev = decode(&t, g.next_op().line_addr);
        let mut sequential = 0;
        let n = 10_000;
        for _ in 0..n {
            let loc = decode(&t, g.next_op().line_addr);
            if loc.row == prev.row && loc.bank == prev.bank && loc.col == prev.col + 1 {
                sequential += 1;
            }
            prev = loc;
        }
        assert!(sequential as f64 / n as f64 > 0.8, "{sequential}/{n}");
    }

    #[test]
    fn random_workload_rarely_sequential() {
        let t = Topology::baseline();
        let mut g = gen_for("mcf", 0);
        let mut prev = decode(&t, g.next_op().line_addr);
        let mut sequential = 0;
        let n = 10_000;
        for _ in 0..n {
            let loc = decode(&t, g.next_op().line_addr);
            if loc.row == prev.row && loc.bank == prev.bank && loc.col == prev.col + 1 {
                sequential += 1;
            }
            prev = loc;
        }
        assert!((sequential as f64 / n as f64) < 0.35, "{sequential}/{n}");
    }

    #[test]
    fn cores_use_disjoint_row_regions() {
        let t = Topology::baseline();
        let region = t.rows / 8;
        for core in 0..8 {
            let mut g = gen_for("comm1", core);
            for _ in 0..500 {
                let loc = decode(&t, g.next_op().line_addr);
                assert!(
                    loc.row >= core * region && loc.row < (core + 1) * region,
                    "core {core} row {}",
                    loc.row
                );
            }
        }
    }

    #[test]
    fn addresses_within_topology() {
        let t = Topology::baseline();
        let mut g = gen_for("bwaves", 3);
        for _ in 0..1000 {
            let op = g.next_op();
            assert!(op.line_addr < t.lines());
        }
    }
}
