//! A USIMM-style cycle-level DDR3 memory-system simulator.
//!
//! The paper's performance and power evaluation (Figures 11–14) uses USIMM,
//! a cycle-accurate memory-system simulator enforcing the JEDEC DDR3 timing
//! protocol, driven by multi-core instruction traces and a Micron-style
//! power model. This crate rebuilds that stack:
//!
//! * [`timing`] — DDR3-1600 timing constraints (Table V system);
//! * [`addrmap`] — physical-address → channel/rank/bank/row/column mapping;
//! * [`dram`] — bank/rank/channel state machines enforcing the constraints;
//! * [`scheduler`] — an FR-FCFS memory controller with write drain and
//!   refresh;
//! * [`workloads`] — the paper's benchmark set as synthetic memory-behavior
//!   profiles (SPEC 2006 / PARSEC / BioBench / commercial);
//! * [`trace`] — the per-core synthetic request generator;
//! * [`cpu`] — a ROB-limited multi-core front end (Table V: 8 cores,
//!   4-wide, 160-entry ROB, 3.2 GHz);
//! * [`power`] — a Micron TN-41-01-style DDR3 power model (+12.5% for
//!   on-die ECC);
//! * [`overlay`] — reliability-scheme overlays: rank ganging (Chipkill,
//!   Double-Chipkill), burst extension and extra transactions (Figure 13),
//!   LOT-ECC write amplification (Figure 14), XED serial-mode reads;
//! * [`eccpath`] — an optional *functional* ECC stage that runs every
//!   completed demand read through the batched (72,64) CRC8-ATM line
//!   decoder;
//! * [`sim`] — the top-level driver and results.
//!
//! # Example
//!
//! ```
//! use xed_memsim::sim::{Simulation, SimConfig};
//! use xed_memsim::overlay::ReliabilityScheme;
//! use xed_memsim::workloads::Workload;
//!
//! let cfg = SimConfig {
//!     workload: Workload::by_name("libquantum").unwrap(),
//!     scheme: ReliabilityScheme::baseline_secded(),
//!     instructions_per_core: 100_000,
//!     ..SimConfig::default()
//! };
//! let result = Simulation::new(cfg).run();
//! assert!(result.cycles > 0);
//! assert!(result.reads > 0);
//! ```

pub mod addrmap;
pub mod cpu;
pub mod dram;
pub mod eccpath;
pub mod overlay;
pub mod power;
pub mod scheduler;
pub mod sim;
pub mod timing;
pub mod trace;
pub mod tracefile;
pub mod workloads;

pub use overlay::ReliabilityScheme;
pub use sim::{SimConfig, SimResult, Simulation};
pub use workloads::Workload;
