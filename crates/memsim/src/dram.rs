//! Bank/rank/channel state machines enforcing DDR3 timing.
//!
//! Each structure tracks "earliest allowed cycle" registers for the
//! commands that touch it; the scheduler may issue a command only when the
//! corresponding `can_*` query passes, and every `issue_*` updates the
//! registers per the JEDEC constraint graph (tRCD, tRP, tRAS, tRC, tCCD,
//! tRRD, tFAW, tWTR, tWR, tRTP, tRTRS, tREFI/tRFC).

use crate::timing::DdrTiming;
use std::collections::VecDeque;

/// One DRAM bank's scheduling state.
#[derive(Debug, Clone)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    next_act: u64,
    next_read: u64,
    next_write: u64,
    next_pre: u64,
}

impl Bank {
    fn new() -> Self {
        Self {
            open_row: None,
            next_act: 0,
            next_read: 0,
            next_write: 0,
            next_pre: 0,
        }
    }
}

/// Per-rank activity counters (drive the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// ACT commands issued.
    pub acts: u64,
    /// READ bursts issued.
    pub reads: u64,
    /// WRITE bursts issued.
    pub writes: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
    /// Cycles with at least one bank open (active-standby).
    pub active_cycles: u64,
}

/// One rank's scheduling state.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Times of the last four ACTs (tFAW window).
    act_window: VecDeque<u64>,
    next_act_rrd: u64,
    next_read_cas: u64,
    next_write_cas: u64,
    refresh_until: u64,
    next_refresh_due: u64,
    /// Activity counters.
    pub stats: RankStats,
}

impl Rank {
    fn new(banks: u32, refresh_offset: u64) -> Self {
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            act_window: VecDeque::with_capacity(4),
            next_act_rrd: 0,
            next_read_cas: 0,
            next_write_cas: 0,
            refresh_until: 0,
            next_refresh_due: refresh_offset,
            stats: RankStats::default(),
        }
    }

    /// The bank states (read-only).
    pub fn bank(&self, b: u32) -> &Bank {
        &self.banks[b as usize]
    }

    /// `true` if any bank holds an open row.
    pub fn any_bank_open(&self) -> bool {
        self.banks.iter().any(|b| b.open_row.is_some())
    }
}

/// One channel: its ranks plus the shared data bus.
#[derive(Debug, Clone)]
pub struct Channel {
    ranks: Vec<Rank>,
    data_bus_free: u64,
    last_data_rank: Option<u32>,
    /// Cycles the data bus carried data (bus-utilization stat).
    pub data_bus_busy_cycles: u64,
}

impl Channel {
    /// Rank accessor.
    pub fn rank(&self, r: u32) -> &Rank {
        &self.ranks[r as usize]
    }
}

/// The full DRAM system state.
#[derive(Debug, Clone)]
pub struct Dram {
    timing: DdrTiming,
    channels: Vec<Channel>,
}

impl Dram {
    /// Builds the state for `channels × ranks × banks`. Refresh timers are
    /// staggered across ranks to avoid synchronized refresh storms.
    pub fn new(timing: DdrTiming, channels: u32, ranks: u32, banks: u32) -> Self {
        let channels = (0..channels)
            .map(|c| Channel {
                ranks: (0..ranks)
                    .map(|r| {
                        let offset = timing.t_refi * (c as u64 * ranks as u64 + r as u64 + 1)
                            / (channels as u64 * ranks as u64);
                        Rank::new(banks, offset.max(1))
                    })
                    .collect(),
                data_bus_free: 0,
                last_data_rank: None,
                data_bus_busy_cycles: 0,
            })
            .collect();
        Self { timing, channels }
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &DdrTiming {
        &self.timing
    }

    /// Channel accessor.
    pub fn channel(&self, c: u32) -> &Channel {
        &self.channels[c as usize]
    }

    fn rank_mut(&mut self, c: u32, r: u32) -> &mut Rank {
        &mut self.channels[c as usize].ranks[r as usize]
    }

    /// Accounts one elapsed cycle of active-standby time (call once per
    /// cycle from the driver).
    pub fn tick_stats(&mut self, _now: u64) {
        for ch in &mut self.channels {
            for rank in &mut ch.ranks {
                if rank.any_bank_open() {
                    rank.stats.active_cycles += 1;
                }
            }
        }
    }

    // ---- refresh ----------------------------------------------------

    /// `true` if the rank is due (or overdue) for a refresh.
    pub fn refresh_due(&self, c: u32, r: u32, now: u64) -> bool {
        let rank = self.channel(c).rank(r);
        now >= rank.next_refresh_due
    }

    /// `true` if the rank is currently executing a refresh.
    pub fn refreshing(&self, c: u32, r: u32, now: u64) -> bool {
        now < self.channel(c).rank(r).refresh_until
    }

    /// Issues a refresh: all banks are closed and the rank blocks for
    /// tRFC. The scheduler calls this only once all banks are precharged
    /// (it stops issuing new activates to a refresh-due rank).
    pub fn issue_refresh(&mut self, c: u32, r: u32, now: u64) {
        let t_rfc = self.timing.t_rfc;
        let t_refi = self.timing.t_refi;
        let t_rc = self.timing.t_rc;
        let rank = self.rank_mut(c, r);
        debug_assert!(!rank.any_bank_open(), "refresh with open banks");
        rank.refresh_until = now + t_rfc;
        rank.next_refresh_due += t_refi;
        for bank in &mut rank.banks {
            bank.next_act = bank.next_act.max(now + t_rfc);
        }
        // tFAW bookkeeping: a refresh internally activates rows, but JEDEC
        // only requires tRFC before the next ACT; clear the window.
        rank.act_window.clear();
        rank.next_act_rrd = rank.next_act_rrd.max(now + t_rfc.min(t_rc));
        rank.stats.refreshes += 1;
    }

    // ---- activate ---------------------------------------------------

    /// `true` if ACT(row) may issue to the bank at `now`.
    pub fn can_activate(&self, c: u32, r: u32, b: u32, now: u64) -> bool {
        let rank = self.channel(c).rank(r);
        if now < rank.refresh_until {
            return false;
        }
        let bank = rank.bank(b);
        if bank.open_row.is_some() || now < bank.next_act || now < rank.next_act_rrd {
            return false;
        }
        if rank.act_window.len() == 4 {
            if let Some(&oldest) = rank.act_window.front() {
                if now < oldest + self.timing.t_faw {
                    return false;
                }
            }
        }
        true
    }

    /// Issues ACT(row).
    pub fn issue_activate(&mut self, c: u32, r: u32, b: u32, row: u32, now: u64) {
        debug_assert!(self.can_activate(c, r, b, now));
        let t = self.timing;
        let rank = self.rank_mut(c, r);
        let bank = &mut rank.banks[b as usize];
        bank.open_row = Some(row);
        bank.next_read = now + t.t_rcd;
        bank.next_write = now + t.t_rcd;
        bank.next_pre = now + t.t_ras;
        bank.next_act = now + t.t_rc;
        rank.next_act_rrd = now + t.t_rrd;
        if rank.act_window.len() == 4 {
            rank.act_window.pop_front();
        }
        rank.act_window.push_back(now);
        rank.stats.acts += 1;
    }

    // ---- precharge --------------------------------------------------

    /// `true` if PRE may issue to the bank at `now`.
    pub fn can_precharge(&self, c: u32, r: u32, b: u32, now: u64) -> bool {
        let rank = self.channel(c).rank(r);
        if now < rank.refresh_until {
            return false;
        }
        let bank = rank.bank(b);
        bank.open_row.is_some() && now >= bank.next_pre
    }

    /// Issues PRE.
    pub fn issue_precharge(&mut self, c: u32, r: u32, b: u32, now: u64) {
        debug_assert!(self.can_precharge(c, r, b, now));
        let t_rp = self.timing.t_rp;
        let bank = &mut self.rank_mut(c, r).banks[b as usize];
        bank.open_row = None;
        bank.next_act = bank.next_act.max(now + t_rp);
    }

    // ---- column access ----------------------------------------------

    fn data_bus_ready(&self, c: u32, r: u32, data_start: u64) -> bool {
        let ch = self.channel(c);
        let mut earliest = ch.data_bus_free;
        if ch.last_data_rank.is_some() && ch.last_data_rank != Some(r) {
            earliest += self.timing.t_rtrs;
        }
        data_start >= earliest
    }

    /// `true` if READ may issue to `(rank, bank)` for `row` at `now`.
    pub fn can_read(&self, c: u32, r: u32, b: u32, row: u32, now: u64) -> bool {
        let rank = self.channel(c).rank(r);
        if now < rank.refresh_until || now < rank.next_read_cas {
            return false;
        }
        let bank = rank.bank(b);
        bank.open_row == Some(row)
            && now >= bank.next_read
            && self.data_bus_ready(c, r, now + self.timing.t_cas)
    }

    /// Issues READ; returns the cycle the last data beat arrives.
    pub fn issue_read(&mut self, c: u32, r: u32, b: u32, row: u32, now: u64) -> u64 {
        debug_assert!(self.can_read(c, r, b, row, now));
        let t = self.timing;
        let data_start = now + t.t_cas;
        let data_end = data_start + t.t_burst;
        {
            let ch = &mut self.channels[c as usize];
            ch.data_bus_free = data_end;
            ch.last_data_rank = Some(r);
            ch.data_bus_busy_cycles += t.t_burst;
        }
        let rank = self.rank_mut(c, r);
        rank.next_read_cas = rank.next_read_cas.max(now + t.t_ccd);
        rank.next_write_cas = rank.next_write_cas.max(data_end + t.t_rtrs);
        let bank = &mut rank.banks[b as usize];
        bank.next_pre = bank.next_pre.max(now + t.t_rtp);
        rank.stats.reads += 1;
        data_end
    }

    /// `true` if WRITE may issue to `(rank, bank)` for `row` at `now`.
    pub fn can_write(&self, c: u32, r: u32, b: u32, row: u32, now: u64) -> bool {
        let rank = self.channel(c).rank(r);
        if now < rank.refresh_until || now < rank.next_write_cas {
            return false;
        }
        let bank = rank.bank(b);
        bank.open_row == Some(row)
            && now >= bank.next_write
            && self.data_bus_ready(c, r, now + self.timing.t_cwd)
    }

    /// Issues WRITE; returns the cycle the last data beat is written.
    pub fn issue_write(&mut self, c: u32, r: u32, b: u32, row: u32, now: u64) -> u64 {
        debug_assert!(self.can_write(c, r, b, row, now));
        let t = self.timing;
        let data_start = now + t.t_cwd;
        let data_end = data_start + t.t_burst;
        {
            let ch = &mut self.channels[c as usize];
            ch.data_bus_free = data_end;
            ch.last_data_rank = Some(r);
            ch.data_bus_busy_cycles += t.t_burst;
        }
        let rank = self.rank_mut(c, r);
        rank.next_write_cas = rank.next_write_cas.max(now + t.t_ccd);
        // Write-to-read turnaround (tWTR) applies from end of write data.
        rank.next_read_cas = rank.next_read_cas.max(data_end + t.t_wtr);
        let bank = &mut rank.banks[b as usize];
        // Write recovery before precharge.
        bank.next_pre = bank.next_pre.max(data_end + t.t_wr);
        rank.stats.writes += 1;
        data_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DdrTiming::ddr3_1600(), 1, 2, 8)
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let mut d = dram();
        assert!(d.can_activate(0, 0, 0, 0));
        d.issue_activate(0, 0, 0, 42, 0);
        let t_rcd = d.timing().t_rcd;
        assert!(!d.can_read(0, 0, 0, 42, t_rcd - 1));
        assert!(d.can_read(0, 0, 0, 42, t_rcd));
        // Wrong row never readable.
        assert!(!d.can_read(0, 0, 0, 43, t_rcd));
    }

    #[test]
    fn cannot_activate_open_bank() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 1, 0);
        assert!(!d.can_activate(0, 0, 0, 100));
    }

    #[test]
    fn precharge_waits_for_tras() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 1, 0);
        let t_ras = d.timing().t_ras;
        assert!(!d.can_precharge(0, 0, 0, t_ras - 1));
        assert!(d.can_precharge(0, 0, 0, t_ras));
        d.issue_precharge(0, 0, 0, t_ras);
        // tRP before next ACT; also tRC from the original ACT.
        let earliest = (t_ras + d.timing().t_rp).max(d.timing().t_rc);
        assert!(!d.can_activate(0, 0, 0, earliest - 1));
        assert!(d.can_activate(0, 0, 0, earliest));
    }

    #[test]
    fn tfaw_limits_bursts_of_activates() {
        let mut d = dram();
        let t_rrd = d.timing().t_rrd;
        let mut now = 0;
        for b in 0..4 {
            assert!(d.can_activate(0, 0, b, now), "bank {b} at {now}");
            d.issue_activate(0, 0, b, 0, now);
            now += t_rrd;
        }
        // Fifth ACT must wait for the tFAW window.
        assert!(!d.can_activate(0, 0, 4, now));
        let window_open = d.timing().t_faw; // first ACT at 0
        assert!(d.can_activate(0, 0, 4, window_open));
    }

    #[test]
    fn reads_share_data_bus_tccd_apart() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 5, 0);
        d.issue_activate(0, 0, 1, 6, d.timing().t_rrd);
        // Wait until both banks have cleared tRCD so only tCCD binds.
        let t0 = d.timing().t_rrd + d.timing().t_rcd;
        d.issue_read(0, 0, 0, 5, t0);
        assert!(!d.can_read(0, 0, 1, 6, t0 + 1), "tCCD spacing");
        assert!(d.can_read(0, 0, 1, 6, t0 + d.timing().t_ccd));
    }

    #[test]
    fn rank_switch_costs_trtrs() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 5, 0);
        d.issue_activate(0, 1, 0, 5, 1);
        let t0 = d.timing().t_rcd + 1;
        d.issue_read(0, 0, 0, 5, t0);
        // Same-cycle-spacing read on the other rank must wait an extra
        // tRTRS for the bus turnaround.
        let t_ccd = d.timing().t_ccd;
        assert!(!d.can_read(0, 1, 0, 5, t0 + t_ccd));
        assert!(d.can_read(0, 1, 0, 5, t0 + t_ccd + d.timing().t_rtrs));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 5, 0);
        let t0 = d.timing().t_rcd;
        let data_end = d.issue_write(0, 0, 0, 5, t0);
        let t_wtr = d.timing().t_wtr;
        assert!(!d.can_read(0, 0, 0, 5, data_end + t_wtr - 1));
        assert!(d.can_read(0, 0, 0, 5, data_end + t_wtr));
    }

    #[test]
    fn write_recovery_before_precharge() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 5, 0);
        let t0 = d.timing().t_rcd;
        let data_end = d.issue_write(0, 0, 0, 5, t0);
        let t_wr = d.timing().t_wr;
        assert!(!d.can_precharge(0, 0, 0, data_end + t_wr - 1));
        assert!(d.can_precharge(0, 0, 0, data_end + t_wr));
    }

    #[test]
    fn refresh_blocks_rank() {
        let mut d = dram();
        let due = d.channel(0).rank(0).next_refresh_due;
        assert!(d.refresh_due(0, 0, due));
        d.issue_refresh(0, 0, due);
        assert!(d.refreshing(0, 0, due + 1));
        assert!(!d.can_activate(0, 0, 0, due + 1));
        let t_rfc = d.timing().t_rfc;
        assert!(!d.refreshing(0, 0, due + t_rfc));
        assert!(d.can_activate(0, 0, 0, due + t_rfc));
        // Next due advanced by tREFI.
        assert!(!d.refresh_due(0, 0, due + t_rfc));
    }

    #[test]
    fn stats_count_operations() {
        let mut d = dram();
        d.issue_activate(0, 0, 0, 5, 0);
        d.issue_read(0, 0, 0, 5, d.timing().t_rcd);
        let s = d.channel(0).rank(0).stats;
        assert_eq!(s.acts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn active_cycles_accumulate() {
        let mut d = dram();
        d.tick_stats(0);
        assert_eq!(d.channel(0).rank(0).stats.active_cycles, 0);
        d.issue_activate(0, 0, 0, 5, 0);
        d.tick_stats(1);
        d.tick_stats(2);
        assert_eq!(d.channel(0).rank(0).stats.active_cycles, 2);
    }
}
