//! Reliability-scheme overlays: how each protection scheme reshapes the
//! memory system's topology, traffic and power accounting.
//!
//! The key performance lever (paper Section XI-A) is **rank ganging**:
//! Chipkill on x8 ECC-DIMMs activates both ranks of a channel per access
//! (18 chips), halving rank-level parallelism; Double-Chipkill activates
//! four ranks (36 x4 chips), quartering it. XED needs only the single
//! 9-chip rank, so it keeps the baseline's parallelism and adds only the
//! rare serial-mode re-read (once per ~200K accesses at a 10⁻⁴ scaling
//! rate). Figure 13's alternatives add bus or transaction overhead instead,
//! and LOT-ECC (Figure 14) adds checksum-update writes.

use crate::addrmap::Topology;

/// A reliability scheme's impact on the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityScheme {
    /// Display name.
    pub name: &'static str,
    /// Physical ranks activated together per access (1, 2 or 4).
    pub ganged_ranks: u32,
    /// DRAM devices per physical rank (9 for x8 ECC-DIMMs, 18 for x4).
    pub chips_per_rank: u32,
    /// `true` for x4 devices (lower per-chip power, 32-bit catch-words).
    pub x4_devices: bool,
    /// 100% overfetch: rank-ganged x8 Chipkill and Double-Chipkill obtain
    /// *two* cache lines per access (paper Section II-D2), doubling bus
    /// occupancy and transfer energy.
    pub overfetch: bool,
    /// Extra data-bus cycles per burst (Figure 13 "extra burst": BL8→BL10
    /// adds one DDR cycle).
    pub extra_burst_cycles: u64,
    /// Additional reads injected per demand read (Figure 13 "extra
    /// transaction" fetches the on-die ECC separately).
    pub extra_reads_per_read: f64,
    /// Additional writes injected per write (LOT-ECC checksum updates,
    /// after write coalescing).
    pub extra_writes_per_write: f64,
    /// XED serial mode: one extra read+write round trip every N reads
    /// (`None` = never).
    pub serial_mode_every: Option<u64>,
}

impl ReliabilityScheme {
    /// Baseline: ECC-DIMM running SECDED, one 9-chip rank per access.
    pub const fn baseline_secded() -> Self {
        Self {
            name: "SECDED (ECC-DIMM, 9 chips)",
            ganged_ranks: 1,
            chips_per_rank: 9,
            x4_devices: false,
            overfetch: false,
            extra_burst_cycles: 0,
            extra_reads_per_read: 0.0,
            extra_writes_per_write: 0.0,
            serial_mode_every: None,
        }
    }

    /// XED on the same ECC-DIMM: baseline traffic plus rare serial-mode
    /// episodes (paper: once every 200K accesses at scaling rate 10⁻⁴).
    pub const fn xed() -> Self {
        Self {
            name: "XED (9 chips)",
            serial_mode_every: Some(200_000),
            ..Self::baseline_secded()
        }
    }

    /// Commercial Chipkill on x8 parts: both ranks ganged (18 chips).
    pub const fn chipkill() -> Self {
        Self {
            name: "Chipkill (18 chips)",
            ganged_ranks: 2,
            overfetch: true,
            ..Self::baseline_secded()
        }
    }

    /// XED on top of Single-Chipkill hardware (x4 parts, two ganged ranks
    /// of 9... physically 18 x4 chips in one DIMM access): Double-Chipkill
    /// reliability at Chipkill cost (paper Section IX).
    pub const fn xed_chipkill() -> Self {
        Self {
            name: "XED + Single Chipkill (18 chips)",
            ganged_ranks: 2,
            chips_per_rank: 9,
            x4_devices: true,
            serial_mode_every: Some(200_000),
            ..Self::baseline_secded()
        }
    }

    /// Traditional Double-Chipkill: four ganged ranks (36 x4 chips).
    pub const fn double_chipkill() -> Self {
        Self {
            name: "Double-Chipkill (36 chips)",
            ganged_ranks: 4,
            overfetch: true,
            chips_per_rank: 9,
            x4_devices: true,
            ..Self::baseline_secded()
        }
    }

    /// Figure 13 alternative: expose on-die ECC with an extra burst
    /// (BL8 → BL10) on the Chipkill-class configuration.
    pub const fn chipkill_extra_burst() -> Self {
        Self {
            name: "Chipkill via extra burst",
            extra_burst_cycles: 1,
            serial_mode_every: None,
            ..Self::xed()
        }
    }

    /// Figure 13 alternative: expose on-die ECC with an additional
    /// transaction per read on the Chipkill-class configuration.
    pub const fn chipkill_extra_transaction() -> Self {
        Self {
            name: "Chipkill via extra transaction",
            extra_reads_per_read: 1.0,
            serial_mode_every: None,
            ..Self::xed()
        }
    }

    /// Figure 13 alternative: extra burst on the Double-Chipkill-class
    /// configuration (18 ganged x4 chips).
    pub const fn double_chipkill_extra_burst() -> Self {
        Self {
            name: "Double-Chipkill via extra burst",
            extra_burst_cycles: 1,
            serial_mode_every: None,
            ..Self::xed_chipkill()
        }
    }

    /// Figure 13 alternative: extra transaction on the
    /// Double-Chipkill-class configuration.
    pub const fn double_chipkill_extra_transaction() -> Self {
        Self {
            name: "Double-Chipkill via extra transaction",
            extra_reads_per_read: 1.0,
            serial_mode_every: None,
            ..Self::xed_chipkill()
        }
    }

    /// LOT-ECC (Figure 14): x8 chipkill-equivalent with localized tiered
    /// checksums, updated with extra (write-coalesced) writes.
    pub const fn lot_ecc() -> Self {
        Self {
            name: "LOT-ECC (write-coalescing)",
            ganged_ranks: 1,
            chips_per_rank: 9,
            x4_devices: false,
            overfetch: false,
            extra_burst_cycles: 0,
            extra_reads_per_read: 0.0,
            extra_writes_per_write: 0.5,
            serial_mode_every: None,
        }
    }

    /// The schemes of Figure 11/12, in plot order.
    pub fn figure11_set() -> [ReliabilityScheme; 5] {
        [
            Self::baseline_secded(),
            Self::xed(),
            Self::chipkill(),
            Self::xed_chipkill(),
            Self::double_chipkill(),
        ]
    }

    /// The scheduling topology after rank ganging: ganged ranks behave as
    /// one logical rank; four ganged ranks additionally gang channel pairs.
    pub fn topology(&self) -> Topology {
        let base = Topology::baseline();
        // invariant: the scheme constructors only produce ganging factors
        // 1, 2 and 4; anything else is a malformed hand-built scheme.
        assert!(
            matches!(self.ganged_ranks, 1 | 2 | 4),
            "unsupported ganging factor {}",
            self.ganged_ranks
        );
        match self.ganged_ranks {
            1 => base,
            2 => Topology { ranks: 1, ..base },
            _ => Topology {
                ranks: 1,
                channels: base.channels / 2,
                ..base
            },
        }
    }

    /// DRAM devices carrying each access (drives activate/read energy).
    pub fn chips_per_access(&self) -> u32 {
        self.chips_per_rank * self.ganged_ranks
    }

    /// Total extra data-bus cycles per burst: explicit burst extension plus
    /// a full second BL8 when the scheme overfetches.
    pub fn total_extra_burst_cycles(&self) -> u64 {
        self.extra_burst_cycles + if self.overfetch { 4 } else { 0 }
    }

    /// Data-bus occupancy (and transfer energy) relative to a BL8 access.
    pub fn burst_factor(&self) -> f64 {
        (4 + self.total_extra_burst_cycles()) as f64 / 4.0
    }

    /// Total devices in the system (drives background power): 4 channels ×
    /// 2 physical ranks of 9 x8 devices (72 chips), or — for the same
    /// capacity from half-width parts — 18 x4 devices per rank (144 chips).
    pub fn total_chips(&self) -> u32 {
        let base = Topology::baseline();
        base.channels * base.ranks * if self.x4_devices { 18 } else { 9 }
    }
}

impl Default for ReliabilityScheme {
    fn default() -> Self {
        Self::baseline_secded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_topology_unchanged() {
        let t = ReliabilityScheme::baseline_secded().topology();
        assert_eq!((t.channels, t.ranks), (4, 2));
    }

    #[test]
    fn chipkill_halves_rank_parallelism() {
        let t = ReliabilityScheme::chipkill().topology();
        assert_eq!((t.channels, t.ranks), (4, 1));
        assert_eq!(ReliabilityScheme::chipkill().chips_per_access(), 18);
    }

    #[test]
    fn double_chipkill_quarters_parallelism() {
        let t = ReliabilityScheme::double_chipkill().topology();
        assert_eq!((t.channels, t.ranks), (2, 1));
        assert_eq!(ReliabilityScheme::double_chipkill().chips_per_access(), 36);
    }

    #[test]
    fn xed_matches_baseline_topology() {
        assert_eq!(
            ReliabilityScheme::xed().topology(),
            ReliabilityScheme::baseline_secded().topology()
        );
        assert_eq!(ReliabilityScheme::xed().chips_per_access(), 9);
    }

    #[test]
    fn xed_chipkill_matches_chipkill_topology() {
        assert_eq!(
            ReliabilityScheme::xed_chipkill().topology(),
            ReliabilityScheme::chipkill().topology()
        );
        assert_eq!(ReliabilityScheme::xed_chipkill().chips_per_access(), 18);
    }

    #[test]
    fn names_unique_across_all_constructors() {
        let all = [
            ReliabilityScheme::baseline_secded(),
            ReliabilityScheme::xed(),
            ReliabilityScheme::chipkill(),
            ReliabilityScheme::xed_chipkill(),
            ReliabilityScheme::double_chipkill(),
            ReliabilityScheme::chipkill_extra_burst(),
            ReliabilityScheme::chipkill_extra_transaction(),
            ReliabilityScheme::double_chipkill_extra_burst(),
            ReliabilityScheme::double_chipkill_extra_transaction(),
            ReliabilityScheme::lot_ecc(),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[..i] {
                assert_ne!(a.name, b.name);
            }
        }
    }
}
