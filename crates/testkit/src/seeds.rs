//! Named seed constants for every seeded sweep in the workspace.
//!
//! The de-flake audit (part of `cargo xtask verify-matrix` and of the
//! tier-1 suite) asserts that `tests/proptests.rs` and
//! `tests/reliability_consistency.rs` draw their seeds from this module
//! instead of scattering magic numbers: a seed that lives here is
//! documented, greppable, and cannot silently drift between two tests
//! that believe they replay the same stream.
//!
//! Changing any constant changes every derived simulation result — treat
//! them as part of the reproducibility contract, like
//! `Scheme::stream_tag`.

/// Base seed of the property-test sweeps in `tests/proptests.rs`; each
/// test XORs a per-test salt into it.
pub const PROPTEST_BASE: u64 = 0x9E37;

/// Seed of the Monte-Carlo runs in `tests/reliability_consistency.rs`.
pub const RELIABILITY_CONSISTENCY: u64 = 99;

/// Seed of the scaling-fault ordering sweep in
/// `tests/reliability_consistency.rs` (kept distinct so the ordering
/// claim is checked on an independent stream).
pub const SCALING_ORDERING: u64 = 5;

/// Default seed of the reporting binaries (`xed_bench::Options`).
pub const BENCH_DEFAULT: u64 = 2016;

/// Seed of the golden conformance traces (`xed-trace-v1`).
pub const GOLDEN_TRACE: u64 = 2016;

/// Seed of the metamorphic suite's Monte-Carlo runs.
pub const METAMORPHIC: u64 = 0xA11CE;

/// Seed of the analytic-vs-MC gate runs (kept distinct from
/// [`METAMORPHIC`] so the two oracles never share a failure mode through
/// a common stream).
pub const ANALYTIC_GATE: u64 = 0x6A7E;

/// Base seed for the deterministic corruption-pattern searches in
/// [`crate::datapath`] (each search derives per-candidate seeds from it).
pub const DATAPATH_SEARCH: u64 = 0x0DDB;

/// Seed of the BEER-style inference round-trips: random SEC-DED matrix
/// generation in [`crate::infer_gate`] and `tests/infer_roundtrip.rs`
/// (kept distinct so code-inference failures never alias a Monte-Carlo
/// stream).
pub const INFER_ROUNDTRIP: u64 = 0xBEE0;

/// Flags seed literals in test source that bypass the named constants.
///
/// Returns one message per offending line. The audit looks for the two
/// ways a seed enters a sweep — `seed_from_u64(<literal>)` and a
/// `seed: <literal>` struct field — and accepts anything that mentions
/// `seeds::` on the same line. Lines may opt out with a
/// `de-flake: allow` comment (none currently do).
pub fn audit_source(file: &str, text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        if line.contains("de-flake: allow") || code.contains("seeds::") {
            continue;
        }
        let offends = ["seed_from_u64(", "seed: "].iter().any(|pat| {
            code.find(pat).is_some_and(|at| {
                code[at + pat.len()..]
                    .trim_start()
                    .starts_with(|c: char| c.is_ascii_digit())
            })
        });
        if offends {
            findings.push(format!(
                "{file}:{}: raw seed literal; use a named constant from xed_testkit::seeds",
                i + 1
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_flags_raw_literals_and_accepts_named_constants() {
        let bad = "let mut rng = StdRng::seed_from_u64(42);\nlet c = Config { seed: 7, x: 1 };\n";
        let f = audit_source("t.rs", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].contains("t.rs:1"));
        assert!(f[1].contains("t.rs:2"));

        let good = "let mut rng = StdRng::seed_from_u64(seeds::PROPTEST_BASE ^ salt);\n\
                    let c = Config { seed: seeds::RELIABILITY_CONSISTENCY, x: 1 };\n\
                    let d = reseed(seed); // derives from a named constant\n";
        assert!(audit_source("t.rs", good).is_empty());
    }

    #[test]
    fn audit_honors_comments_and_waivers() {
        // A literal inside a comment is not a seed.
        assert!(audit_source("t.rs", "// e.g. seed_from_u64(5)\n").is_empty());
        assert!(audit_source("t.rs", "seed_from_u64(5) // de-flake: allow\n").is_empty());
    }

    #[test]
    fn the_workspace_test_sweeps_use_named_seeds() {
        // The de-flake audit itself, run against the repo's integration
        // tests. CARGO_MANIFEST_DIR = crates/testkit.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for file in ["tests/proptests.rs", "tests/reliability_consistency.rs"] {
            let path = format!("{root}/{file}");
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let findings = audit_source(file, &text);
            assert!(findings.is_empty(), "{findings:#?}");
        }
    }

    #[test]
    fn named_seeds_are_distinct_where_independence_matters() {
        // The two reliability streams must differ, or the "independent
        // stream" claim in the docs is false.
        assert_ne!(RELIABILITY_CONSISTENCY, SCALING_ORDERING);
        assert_ne!(METAMORPHIC, GOLDEN_TRACE);
    }
}
