//! The analytic oracle: closed-form failure probabilities vs Monte-Carlo.
//!
//! Each row of the gate compares one Monte-Carlo estimate against the
//! matching first-order closed form from [`xed_faultsim::analytic`]. The
//! tolerance has two documented components:
//!
//! * **statistical noise** — the 99% binomial confidence half-width of
//!   the Monte-Carlo estimate (`z = 2.576`); a sound simulator lands
//!   inside this band 99% of the time *if the model matches exactly*;
//! * **model band** — the analytic forms are first-order in the fault
//!   probabilities (they drop ≥3-fault pile-ups, transient×transient
//!   coexistence, and line-overlap correlations), so each row carries an
//!   explicit relative error budget for the truncation, from sharp
//!   (zero-fault fraction: the closed form is exact) to wide
//!   (triple-fault combinatorics).
//!
//! A row passes iff `|mc − analytic| ≤ noise + band·analytic`. Gating at
//! the *sum* keeps the check honest: a simulator bug that moves an
//! estimate outside both the sampling noise and the documented truncation
//! error fails the gate, while the gate never flakes on seeds that
//! merely land in the far tail of the binomial.

use crate::seeds;
use xed_faultsim::analytic;
use xed_faultsim::fit::{FitRates, HOURS_PER_YEAR};
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed_faultsim::rareevent::{TailConfig, TailMode, TailSimulator};
use xed_faultsim::schemes::Scheme;
use xed_faultsim::system::SystemConfig;

/// How many Monte-Carlo samples back each row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateScope {
    /// 400k samples per scheme — the tier-1 CI setting.
    Quick,
    /// 4M samples per scheme — tighter noise bands for nightly runs.
    Full,
}

impl GateScope {
    fn samples(self) -> u64 {
        match self {
            GateScope::Quick => 400_000,
            GateScope::Full => 4_000_000,
        }
    }
}

/// One analytic-vs-MC comparison.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// What is being compared.
    pub label: &'static str,
    /// The Monte-Carlo estimate.
    pub mc: f64,
    /// The closed-form prediction.
    pub analytic: f64,
    /// 99% binomial confidence half-width of `mc`.
    pub noise: f64,
    /// Relative first-order truncation budget of the closed form.
    pub model_band: f64,
    /// `|mc − analytic| ≤ noise + model_band·analytic`.
    pub pass: bool,
}

/// All rows of one gate invocation.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Samples per Monte-Carlo run backing the rows.
    pub samples: u64,
    /// The comparisons.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// `true` iff every row passed.
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// One line per row for the driver's console output.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<34} mc {:>11.4e}  analytic {:>11.4e}  tol {:>9.2e}  {}\n",
                r.label,
                r.mc,
                r.analytic,
                r.noise + r.model_band * r.analytic,
                if r.pass { "ok" } else { "FAIL" }
            ));
        }
        out
    }
}

fn row(label: &'static str, mc: f64, analytic: f64, noise: f64, model_band: f64) -> GateRow {
    let pass = (mc - analytic).abs() <= noise + model_band * analytic;
    GateRow {
        label,
        mc,
        analytic,
        noise,
        model_band,
        pass,
    }
}

/// Runs every gate row.
pub fn run(scope: GateScope) -> GateReport {
    let samples = scope.samples();
    let mc = MonteCarlo::new(MonteCarloConfig {
        samples,
        seed: seeds::ANALYTIC_GATE,
        ..MonteCarloConfig::default()
    });
    let years = mc.config().years;
    let rates = FitRates::table_i();
    let x8 = SystemConfig::x8_ecc_dimm();
    let x4 = SystemConfig::x4_chipkill();
    let mut rows = Vec::new();

    // ECC-DIMM dies on the first multi-bit chip fault anywhere in the
    // system: a pure Poisson survival term, so the band is narrow (the
    // only truncation is double-counting of multi-fault trials).
    let r = mc.run(Scheme::EccDimm);
    rows.push(row(
        "ecc-dimm vs single-fault Poisson",
        r.lifetime_failure_probability(),
        analytic::p_fail_single_fault(&rates, x8.total_chips(), years),
        r.confidence99(),
        0.05,
    ));

    // XED fails on intersecting cross-chip pairs within a rank, plus the
    // escaped-transient-word DUE budget of Table IV. First-order pair
    // counting over coarse line-overlap probabilities: wide band.
    let r = mc.run(Scheme::Xed);
    let xed_pairs = analytic::p_fail_double_fault(&rates, &x8, 9, 8, years);
    let xed_escape =
        analytic::xed_vulnerability(&rates, &x8, x8.total_chips(), 0.008, years).due_word_fault;
    rows.push(row(
        "xed vs double-fault + word-escape",
        r.lifetime_failure_probability(),
        xed_pairs + xed_escape,
        r.confidence99(),
        0.8,
    ));

    // Chipkill: same pair model over the 18-chip channel domain.
    let r = mc.run(Scheme::Chipkill);
    rows.push(row(
        "chipkill vs double-fault pairs",
        r.lifetime_failure_probability(),
        analytic::p_fail_double_fault(&rates, &x8, 18, x8.total_chips() / 18, years),
        r.confidence99(),
        0.8,
    ));

    // Double-Chipkill: triple-fault combinatorics over the 36-chip x4
    // channel. The first-order triple sum is the coarsest closed form in
    // the crate; the expected count at CI sample sizes is O(1), so the
    // binomial noise term dominates anyway.
    let r = mc.run(Scheme::DoubleChipkill);
    rows.push(row(
        "double-chipkill vs triple-fault",
        r.lifetime_failure_probability(),
        analytic::p_fail_triple_fault(&rates, &x4, 36, x4.total_chips() / 36, years),
        r.confidence99(),
        3.0,
    ));

    // Zero-fault fraction: P(no fault arrives in the whole system over
    // the lifetime) = exp(−λ·chips). This closed form is *exact* for the
    // Poisson sampler — the model band is zero and the gate is the
    // sharpest statistical check in the suite.
    let report = mc.run_timed(Scheme::EccDimm);
    let p0_mc = report.stats.zero_fault_samples as f64 / report.stats.samples as f64;
    let p0_an = (-rates.expected_faults(years * HOURS_PER_YEAR) * x8.total_chips() as f64).exp();
    let noise = 2.576 * (p0_an * (1.0 - p0_an) / report.stats.samples as f64).sqrt();
    rows.push(row(
        "zero-fault fraction vs exp(-λ)",
        p0_mc,
        p0_an,
        noise,
        0.0,
    ));

    GateReport { samples, rows }
}

/// Runs the importance-sampled tail-estimator gate (DESIGN.md §14).
///
/// The plain gate above closes the triangle `plain MC ↔ closed form`;
/// this one closes `importance sampling ↔ closed form` and
/// `clique-forced ↔ count-conditioned` — the reweighting math
/// (conditioning factor, clique likelihood ratios, pilot tilts) is what
/// is on trial, so every row pins a *weighted* estimate against an
/// estimator that shares none of that machinery. Noise terms come from
/// the tail estimates' own propagated variance (`ci99`), and the model
/// bands are the same documented first-order truncation budgets as the
/// plain gate.
pub fn run_tail(scope: GateScope) -> GateReport {
    // Conditioned trials are ~10x the cost of plain ones (no zero-fault
    // fast path), so the tail gate runs at a fraction of the plain
    // gate's trial count; the conditioning factor makes each trial worth
    // hundreds of plain trials in CI width regardless.
    let samples = scope.samples() / 2;
    let tail = |scheme: Scheme, samples: u64, force: Option<TailMode>| {
        TailSimulator::new(TailConfig {
            samples,
            seed: seeds::ANALYTIC_GATE,
            force_mode: force,
            ..TailConfig::default()
        })
        .run(scheme)
    };
    let years = TailConfig::default().years;
    let rates = FitRates::table_i();
    let x8 = SystemConfig::x8_ecc_dimm();
    let x4 = SystemConfig::x4_chipkill();
    let mut rows = Vec::new();

    // k = 1 ⇒ count conditioning only: checks the analytic P(N ≥ k)
    // factor and the truncated-Poisson draw against the sharp
    // single-fault closed form.
    let t = tail(Scheme::EccDimm, samples, None);
    rows.push(row(
        "ecc-dimm tail vs single-fault Poisson",
        t.p_fail,
        analytic::p_fail_single_fault(&rates, x8.total_chips(), years),
        t.ci99(),
        0.05,
    ));

    // k = 2 ⇒ the full clique-forced path (restricted proposal, pilot
    // tilts, witness counting) against the pair closed form.
    let chipkill = tail(Scheme::Chipkill, samples, None);
    rows.push(row(
        "chipkill tail vs double-fault pairs",
        chipkill.p_fail,
        analytic::p_fail_double_fault(&rates, &x8, 18, x8.total_chips() / 18, years),
        chipkill.ci99(),
        0.8,
    ));

    // k = 3 ⇒ triple cliques. Unlike the plain gate's row (where the
    // binomial noise dwarfs the band) the tail CI here is tight, so this
    // genuinely exercises the coarse triple-sum band.
    let t = tail(Scheme::DoubleChipkill, samples, None);
    rows.push(row(
        "double-chipkill tail vs triple-fault",
        t.p_fail,
        analytic::p_fail_triple_fault(&rates, &x4, 36, x4.total_chips() / 36, years),
        t.ci99(),
        3.0,
    ));

    // Cross-mode agreement: the clique-forced estimate above vs a
    // count-conditioned run that shares no clique/tilt machinery. Joint
    // 99 % noise, zero model band — both estimators target the same
    // exact quantity, so any systematic gap is a reweighting bug.
    let cc = tail(
        Scheme::Chipkill,
        samples * 16,
        Some(TailMode::CountConditioned),
    );
    rows.push(row(
        "chipkill forced vs count-conditioned",
        chipkill.p_fail,
        cc.p_fail,
        (chipkill.ci99().powi(2) + cc.ci99().powi(2)).sqrt(),
        0.0,
    ));

    GateReport { samples, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_passes_inside_and_fails_outside_the_band() {
        assert!(row("t", 0.105, 0.10, 0.002, 0.05).pass);
        assert!(!row("t", 0.12, 0.10, 0.002, 0.05).pass);
        // The noise term alone admits a zero analytic prediction.
        assert!(row("t", 0.001, 0.0, 0.002, 0.5).pass);
    }
}
