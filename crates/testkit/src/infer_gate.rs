//! The code-inference differential harness (the `infer gate` of
//! `cargo xtask verify-matrix`).
//!
//! BEER-style inference (`xed_ecc::infer`) claims it can recover an
//! undisclosed on-die SECDED parity-check matrix from black-box
//! retention probes — or certify exactly how much remains ambiguous.
//! This gate holds that claim against ground truth:
//!
//! * **registered matrices** — inference against every registered
//!   `xed_ecc` (72,64) codec (Hamming, CRC8-ATM) must recover the
//!   canonical parity map **bit-exactly**;
//! * **seeded round-trips** — random valid SEC-DED matrices nobody
//!   hand-picked must round-trip through inference the same way;
//! * **small-code oracle** — the exhaustively-checkable (8,4) geometry;
//! * **relabel invariance** — inference must be invariant under check
//!   relabeling of the true code (the unobservable degree of freedom);
//! * **certified ambiguity** — a pattern-starved campaign must report
//!   an [`xed_ecc::infer::AmbiguityClass`], never a guessed matrix;
//! * **miscorrection census** — the fast column-algebra profiler must
//!   match brute-force decoder enumeration count-for-count, on every
//!   data word of the small geometries and on sampled words of the
//!   (72,64) SEC view.
//!
//! Every probe issued is tallied into `ecc.infer.probes`, and each run
//! bumps `ecc.infer.recovered` or `ecc.infer.ambiguous`, so daemon
//! deployments that run inference self-checks expose their campaign
//! volume through the standard registry.

use crate::seeds;
use xed_ecc::infer::{
    infer, profile, profile_brute_force, InferConfig, InferOutcome, RetentionOracle, SecDedOracle,
    SyndromeCode, SyndromeOracle,
};
use xed_ecc::{Crc8Atm, Hamming7264};
use xed_telemetry::registry::metrics;

/// How much work the gate does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferScope {
    /// Registered codecs + 2 random round-trips — the tier-1 CI
    /// setting, ≤ 2 s.
    Quick,
    /// 8 random round-trips and a wider brute-force word sample.
    Full,
}

impl InferScope {
    fn random_roundtrips(self) -> u64 {
        match self {
            InferScope::Quick => 2,
            InferScope::Full => 8,
        }
    }

    fn brute_force_words(self) -> u64 {
        match self {
            InferScope::Quick => 4,
            InferScope::Full => 32,
        }
    }
}

/// One inference-vs-ground-truth comparison.
#[derive(Debug, Clone)]
pub struct InferCheck {
    /// What was checked.
    pub label: String,
    /// The observation backing the verdict.
    pub detail: String,
    /// Whether the check held.
    pub pass: bool,
}

/// All checks of one gate invocation.
#[derive(Debug, Clone)]
pub struct InferReport {
    /// One entry per comparison.
    pub checks: Vec<InferCheck>,
}

impl InferReport {
    /// `true` iff every check passed.
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// One line per check for the driver's console output.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "  {:<44} {}  ({})\n",
                c.label,
                if c.pass { "ok" } else { "FAIL" },
                c.detail
            ));
        }
        out
    }
}

/// Runs inference against `oracle`, compares the outcome with the
/// ground-truth canonical rows, and tallies the registry metrics.
fn certify_recovery(
    label: String,
    oracle: &mut dyn RetentionOracle,
    truth: &SyndromeCode,
) -> InferCheck {
    match infer(oracle, &InferConfig::default()) {
        Ok(InferOutcome::Recovered(code)) => {
            metrics::ECC_INFER_PROBES.add(code.probes_used);
            metrics::ECC_INFER_RECOVERED.incr();
            let exact = code.rows == truth.canonical_rows()
                && code.k == truth.data_bits()
                && code.r == truth.check_bits();
            InferCheck {
                label,
                detail: format!(
                    "{} probes, {} rows {}",
                    code.probes_used,
                    code.rows.len(),
                    if exact { "bit-exact" } else { "MISMATCH" }
                ),
                pass: exact,
            }
        }
        Ok(InferOutcome::Ambiguous(a)) => {
            metrics::ECC_INFER_PROBES.add(a.probes_used);
            metrics::ECC_INFER_AMBIGUOUS.incr();
            InferCheck {
                label,
                detail: format!("unexpectedly ambiguous: {a:?}"),
                pass: false,
            }
        }
        Err(e) => InferCheck {
            label,
            detail: format!("inference error: {e}"),
            pass: false,
        },
    }
}

/// Runs every check of the differential harness.
pub fn run(scope: InferScope) -> InferReport {
    let mut checks = Vec::new();

    // 1. The registered (72,64) codecs, probed strictly as black boxes.
    {
        let truth = SyndromeCode::from_code72(&Hamming7264::new());
        match truth {
            Ok(truth) => {
                let mut oracle = SecDedOracle::new(Hamming7264::new());
                checks.push(certify_recovery(
                    "recover Hamming(72,64)".into(),
                    &mut oracle,
                    &truth,
                ));
            }
            Err(e) => checks.push(InferCheck {
                label: "recover Hamming(72,64)".into(),
                detail: format!("no systematic view: {e}"),
                pass: false,
            }),
        }
        match SyndromeCode::from_code72(&Crc8Atm::new()) {
            Ok(truth) => {
                let mut oracle = SecDedOracle::new(Crc8Atm::new());
                checks.push(certify_recovery(
                    "recover CRC8-ATM(72,64)".into(),
                    &mut oracle,
                    &truth,
                ));
            }
            Err(e) => checks.push(InferCheck {
                label: "recover CRC8-ATM(72,64)".into(),
                detail: format!("no systematic view: {e}"),
                pass: false,
            }),
        }
    }

    // 2. Seeded random SEC-DED round-trips: codes nobody hand-picked.
    for i in 0..scope.random_roundtrips() {
        let code = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP ^ i);
        let mut oracle = SyndromeOracle::new(code);
        checks.push(certify_recovery(
            format!("recover random SEC-DED #{i}"),
            &mut oracle,
            &code,
        ));
    }

    // 3. The exhaustively-checkable small geometry.
    {
        let code = SyndromeCode::secded8_4();
        let mut oracle = SyndromeOracle::new(code);
        checks.push(certify_recovery(
            "recover (8,4) extended Hamming".into(),
            &mut oracle,
            &code,
        ));
    }

    // 4. Relabel invariance: the recovered object must not depend on the
    // (unobservable) physical order of the hidden check cells.
    {
        let code = SyndromeCode::random_secded(seeds::INFER_ROUNDTRIP ^ 0xFF);
        let rot: Vec<u32> = (0..8u32).map(|c| (c + 5) % 8).collect();
        let check = match code.permute_checks(&rot) {
            Ok(relabeled) => {
                let mut a = SyndromeOracle::new(code);
                let mut b = SyndromeOracle::new(relabeled);
                let ra = infer(&mut a, &InferConfig::default());
                let rb = infer(&mut b, &InferConfig::default());
                let pass = matches!(
                    (&ra, &rb),
                    (Ok(InferOutcome::Recovered(x)), Ok(InferOutcome::Recovered(y)))
                        if x.rows == y.rows
                );
                InferCheck {
                    label: "inference invariant under check relabeling".into(),
                    detail: if pass {
                        "identical canonical rows".into()
                    } else {
                        format!("{ra:?} vs {rb:?}")
                    },
                    pass,
                }
            }
            Err(e) => InferCheck {
                label: "inference invariant under check relabeling".into(),
                detail: format!("relabel failed: {e}"),
                pass: false,
            },
        };
        checks.push(check);
    }

    // 5. Certified ambiguity: a pattern-starved campaign must say so.
    {
        let mut oracle = SecDedOracle::new(Hamming7264::new());
        let out = infer(&mut oracle, &InferConfig { max_probes: 100 });
        let check = match out {
            Ok(InferOutcome::Ambiguous(a)) => {
                metrics::ECC_INFER_PROBES.add(a.probes_used);
                metrics::ECC_INFER_AMBIGUOUS.incr();
                let pass = a.resolved_rows < a.r && a.probes_used <= 100;
                InferCheck {
                    label: "starved campaign certifies ambiguity".into(),
                    detail: format!(
                        "{}/{} rows resolved in {} probes ({:?})",
                        a.resolved_rows, a.r, a.probes_used, a.reason
                    ),
                    pass,
                }
            }
            other => InferCheck {
                label: "starved campaign certifies ambiguity".into(),
                detail: format!("expected Ambiguous, got {other:?}"),
                pass: false,
            },
        };
        checks.push(check);
    }

    // 6. Miscorrection census: fast profiler vs brute-force decoding.
    checks.push(census_check(
        "(8,4) SEC-DED census, all 16 words",
        &SyndromeCode::secded8_4(),
        0..16,
    ));
    checks.push(census_check(
        "(8,4) SEC census, all 16 words",
        &SyndromeCode::sec8_4(),
        0..16,
    ));
    {
        let label = "(71,64) Hamming SEC census, sampled words";
        let check = match SyndromeCode::from_code72(&Hamming7264::new())
            .and_then(|full| full.drop_row(7))
        {
            Ok(sec) => {
                // Spread sampled words across the 64-bit space.
                let words =
                    (0..scope.brute_force_words()).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut c = census_check_iter(label, &sec, words);
                // The SEC view must actually exercise the 3-bit path.
                if c.pass {
                    let p = profile(&sec);
                    c.pass = p.miscorrected_data > 0 && !p.at_risk.is_empty();
                    c.detail = format!(
                        "{}; {} of {} doubles mis-correct into data bits",
                        c.detail, p.miscorrected_data, p.doubles
                    );
                }
                c
            }
            Err(e) => InferCheck {
                label: label.into(),
                detail: format!("no SEC view: {e}"),
                pass: false,
            },
        };
        checks.push(check);
    }

    InferReport { checks }
}

/// Asserts the fast profile equals the brute-force profile for every
/// data word in `words` (count-for-count, including the at-risk ranking).
fn census_check(label: &str, code: &SyndromeCode, words: std::ops::Range<u64>) -> InferCheck {
    census_check_iter(label, code, words)
}

fn census_check_iter(
    label: &str,
    code: &SyndromeCode,
    words: impl Iterator<Item = u64>,
) -> InferCheck {
    let fast = profile(code);
    let mut tested = 0u64;
    for data in words {
        tested += 1;
        let brute = profile_brute_force(code, data);
        if fast != brute {
            return InferCheck {
                label: label.into(),
                detail: format!("word {data:#x}: fast {fast:?} != brute {brute:?}"),
                pass: false,
            };
        }
    }
    InferCheck {
        label: label.into(),
        detail: format!(
            "{} words, 0 mismatches over {} doubles",
            tested, fast.doubles
        ),
        pass: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_gate_is_clean_and_bumps_the_metrics() {
        let before = metrics::ECC_INFER_PROBES.value();
        let recovered_before = metrics::ECC_INFER_RECOVERED.value();
        let ambiguous_before = metrics::ECC_INFER_AMBIGUOUS.value();
        let report = run(InferScope::Quick);
        assert!(report.is_clean(), "{}", report.summary());
        // 2 codecs + 2 random + 1 small + relabel + ambiguity + 3 census.
        assert_eq!(report.checks.len(), 10);
        assert!(metrics::ECC_INFER_PROBES.value() > before);
        assert!(metrics::ECC_INFER_RECOVERED.value() >= recovered_before + 5);
        assert!(metrics::ECC_INFER_AMBIGUOUS.value() > ambiguous_before);
    }
}
