//! The metamorphic suite: invariances and dominance laws.
//!
//! Metamorphic testing checks *relations between runs* rather than
//! absolute values: each law states how the simulator's output must
//! transform (or not transform) when its input is perturbed in a way
//! whose effect is known a priori. The laws here come in three flavors:
//!
//! * **exact invariances** — bit-identical results under perturbations
//!   that provably cannot matter (scheme evaluation order, a
//!   scaling-fault model dialed to rate zero);
//! * **deterministic monotonicities** — per-trial coupled comparisons
//!   where raising a failure-mode parameter can only grow the failure
//!   set (the on-die miss rate under shared RNG streams);
//! * **statistical dominance** — paper-level orderings (adding erasure
//!   or on-die exposure never hurts) whose margins are orders of
//!   magnitude at the sample sizes used, so `≤` on raw counts is safe.
//!
//! Plus the executable form of the paper's §XI-C ALERT_n argument: an
//! anonymous alert pin strictly weakens transient-fault handling — and
//! the inference pack's law (DESIGN.md §17): reliability estimates
//! derived from an inferred on-die code are invariant under data-bit
//! column permutation of the true code.

use crate::seeds;
use xed_core::alert::{AlertDimm, AlertMode};
use xed_core::chip::{ChipGeometry, OnDieCode, WordAddr};
use xed_core::fault::{FaultKind, InjectedFault};
use xed_ecc::infer::{profile, SyndromeCode};
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed_faultsim::scaling::ScalingFaults;
use xed_faultsim::schemes::{ModelParams, Scheme};

/// Outcome of one law.
#[derive(Debug, Clone)]
pub struct LawResult {
    /// Short law name.
    pub law: &'static str,
    /// The observed quantities backing the verdict.
    pub detail: String,
    /// Whether the law held.
    pub holds: bool,
}

/// Outcome of the whole suite.
#[derive(Debug, Clone)]
pub struct LawReport {
    /// One entry per law.
    pub laws: Vec<LawResult>,
}

impl LawReport {
    /// `true` iff every law held.
    pub fn is_clean(&self) -> bool {
        self.laws.iter().all(|l| l.holds)
    }

    /// One line per law for the driver's console output.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for l in &self.laws {
            out.push_str(&format!(
                "  {:<38} {}  ({})\n",
                l.law,
                if l.holds { "holds" } else { "VIOLATED" },
                l.detail
            ));
        }
        out
    }
}

fn mc_with(samples: u64, params: ModelParams) -> MonteCarlo {
    MonteCarlo::new(MonteCarloConfig {
        samples,
        seed: seeds::METAMORPHIC,
        params,
        ..MonteCarloConfig::default()
    })
}

/// Runs every law at `samples` Monte-Carlo trials (the exact invariances
/// are sample-count independent; the statistical laws assume ≥100k).
pub fn run(samples: u64) -> LawReport {
    let mut laws = Vec::new();

    // Law 1 — scaling at rate zero is the null perturbation: a scaling
    // model that can never mark a word faulty must be bit-identical to
    // no scaling model at all, not merely statistically close.
    {
        let base = mc_with(samples, ModelParams::default()).run(Scheme::Xed);
        let zeroed = mc_with(
            samples,
            ModelParams {
                scaling: ScalingFaults::with_rate(0.0),
                ..ModelParams::default()
            },
        )
        .run(Scheme::Xed);
        laws.push(LawResult {
            law: "scaling(rate=0) ≡ no scaling",
            detail: format!("failures {} vs {}", base.failures(), zeroed.failures()),
            holds: base == zeroed,
        });
    }

    // Law 2 — scheme-order invariance: per-trial RNG streams are keyed
    // by (seed, scheme), so evaluating schemes in any order, or alone,
    // must reproduce identical per-scheme results.
    {
        let m = mc_with(samples, ModelParams::default());
        let fwd = m.run_all(&[Scheme::EccDimm, Scheme::Xed, Scheme::Chipkill]);
        let rev = m.run_all(&[Scheme::Chipkill, Scheme::Xed, Scheme::EccDimm]);
        let solo = m.run(Scheme::Xed);
        let holds = fwd[0] == rev[2] && fwd[1] == rev[1] && fwd[2] == rev[0] && fwd[1] == solo;
        laws.push(LawResult {
            law: "scheme evaluation order invariance",
            detail: format!(
                "xed failures fwd {} / rev {} / solo {}",
                fwd[1].failures(),
                rev[1].failures(),
                solo.failures()
            ),
            holds,
        });
    }

    // Law 3 — on-die miss monotonicity. The runs share trial streams, so
    // raising the miss threshold can only flip verdicts from Corrected
    // to Due (transient word faults) and never the reverse: the failure
    // count is deterministically non-decreasing, not just in expectation.
    {
        let counts: Vec<u64> = [0.0, 0.008, 0.1, 0.5]
            .into_iter()
            .map(|on_die_miss| {
                mc_with(
                    samples,
                    ModelParams {
                        on_die_miss,
                        ..ModelParams::default()
                    },
                )
                .run(Scheme::Xed)
                .failures()
            })
            .collect();
        laws.push(LawResult {
            law: "on-die miss rate monotone in failures",
            detail: format!("{counts:?} at miss 0 / 0.008 / 0.1 / 0.5"),
            holds: counts.windows(2).all(|w| w[0] <= w[1]),
        });
    }

    // Law 4 — exposure dominance: exposing on-die detection (XED) on the
    // same DIMM never hurts, and never increases SDC in particular
    // (paper Fig. 7); the x4 analogue for XED over Chipkill (Fig. 9).
    // Margins are ~20× at these sample sizes.
    {
        let m = mc_with(samples, ModelParams::default());
        let ecc = m.run(Scheme::EccDimm);
        let xed = m.run(Scheme::Xed);
        let ckx4 = m.run(Scheme::ChipkillX4);
        let xed_ck = m.run(Scheme::XedChipkill);
        let dck = m.run(Scheme::DoubleChipkill);
        let holds = xed.failures() <= ecc.failures()
            && xed.sdc <= ecc.sdc
            && xed_ck.failures() <= ckx4.failures()
            && dck.sdc <= ckx4.sdc;
        laws.push(LawResult {
            law: "exposure/erasure dominance (Fig. 7/9)",
            detail: format!(
                "xed {} ≤ ecc {}; xed+ck {} ≤ ckx4 {}; dck sdc {} ≤ ckx4 sdc {}",
                xed.failures(),
                ecc.failures(),
                xed_ck.failures(),
                ckx4.failures(),
                dck.sdc,
                ckx4.sdc
            ),
            holds,
        });
    }

    // Law 5 — the §XI-C ALERT argument, run on the functional DIMM: an
    // anonymous ALERT_n pin must convert transient faults XED corrects
    // into DUEs (pattern diagnosis only locates *permanent* faults), so
    // its DUE count strictly dominates the identified pin's on a
    // transient-fault workload.
    {
        let (anon, ident) = alert_due_counts();
        laws.push(LawResult {
            law: "anonymous ALERT_n DUEs ≥ identified",
            detail: format!("anonymous {anon} vs identified {ident}"),
            holds: anon >= ident && anon > 0 && ident == 0,
        });
    }

    // Law 6 — inferred-code column-permutation invariance: relabeling
    // the data bits of the true on-die code permutes the recovered
    // matrix's columns but cannot change any reliability estimate
    // derived from it. The miscorrection census is a property of the
    // column *set*, so the derived on-die miss — and therefore the full
    // Monte-Carlo run it parameterizes — must be bit-identical, not
    // statistically close. Run on the HARP-style SEC view (extended
    // Hamming minus its overall-parity row), where the census is
    // nontrivial.
    {
        let sec = SyndromeCode::from_code72(&xed_ecc::Hamming7264::new())
            .expect("systematic view of Hamming7264")
            .drop_row(7)
            .expect("SEC view");
        let perm: Vec<u32> = (0..sec.data_bits()).rev().collect();
        let permuted = sec.permute_data(&perm).expect("reversal is a permutation");
        let p0 = profile(&sec);
        let p1 = profile(&permuted);
        let same_census = p0.doubles == p1.doubles
            && p0.detected == p1.detected
            && p0.miscorrected_data == p1.miscorrected_data
            && p0.miscorrected_check == p1.miscorrected_check
            && p0.silent == p1.silent;
        let run0 = mc_with(
            samples,
            ModelParams {
                on_die_miss: p0.undetected_fraction(),
                ..ModelParams::default()
            },
        )
        .run(Scheme::Xed);
        let run1 = mc_with(
            samples,
            ModelParams {
                on_die_miss: p1.undetected_fraction(),
                ..ModelParams::default()
            },
        )
        .run(Scheme::Xed);
        laws.push(LawResult {
            law: "inferred-code column-perm invariance",
            detail: format!(
                "derived miss {:.6} vs {:.6}; failures {} vs {}",
                p0.undetected_fraction(),
                p1.undetected_fraction(),
                run0.failures(),
                run1.failures()
            ),
            holds: same_census && run0 == run1,
        });
    }

    LawReport { laws }
}

/// Drives both alert modes through the same transient-word-fault
/// workload and returns their DUE counts.
fn alert_due_counts() -> (u64, u64) {
    let mut counts = [0u64; 2];
    for (i, mode) in [AlertMode::Anonymous, AlertMode::Identified]
        .into_iter()
        .enumerate()
    {
        let mut dimm = AlertDimm::new(ChipGeometry::small(), OnDieCode::Crc8Atm, mode);
        let data = [0x0123_4567_89AB_CDEFu64; xed_core::controller::DATA_CHIPS];
        for line in 0..8u64 {
            dimm.write_line(line, &data);
        }
        for line in 0..8u64 {
            let addr = WordAddr {
                bank: 0,
                row: 0,
                col: line as u32,
            };
            // Pin a seed whose corruption the on-die code provably
            // flags: a missed detection would turn the identified-pin
            // read into a DUE too and void the comparison.
            let fault = xed_core::oracle::with_event_at(
                InjectedFault::word(addr, FaultKind::Transient),
                addr,
            );
            dimm.inject_fault(usize::try_from(line).expect("tiny index") % 8, fault);
            let _ = dimm.read_line(line);
        }
        counts[i] = dimm.stats().due_events;
    }
    (counts[0], counts[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_law_holds_at_smoke_scale() {
        let report = run(60_000);
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.laws.len(), 6);
    }

    #[test]
    fn alert_law_is_strict_on_transients() {
        let (anon, ident) = alert_due_counts();
        assert!(anon > 0, "anonymous mode must DUE on transient words");
        assert_eq!(ident, 0, "identified mode must correct them all");
    }
}
