//! Hardware realization of every response-model outcome class.
//!
//! The Monte-Carlo classifier (`SchemeModel::evaluate`) maps a fault
//! arrival to a verdict through a handful of *abstract* branches: "the
//! DIMM SECDED detects the burst", "the on-die code misses the word",
//! "two erasures exceed the parity budget", … [`Realization::build`]
//! certifies each branch **in hardware**: it constructs a concrete
//! corruption realizing the branch's micro-architectural assumption,
//! pushes it through the functional data path (`SecdedDimm`, `XedDimm`,
//! `XedChipkillSystem`, the `xed-ecc` Reed–Solomon codecs) and asserts
//! the read classifies as the model claims. [`Realization::outcome`] then
//! serves the certified outcome for any (scheme, corner, fault-class)
//! tuple, which is what the exhaustive oracle compares the classifier
//! against placement by placement.
//!
//! The factorization is honest because the *model's* verdict provably
//! depends only on the class — `(scheme, corner, extent, persistence,
//! concurrent-chip count)` — never on the concrete bank/row/column; the
//! oracle separately brute-forces the concurrent-chip count on the tiny
//! geometry, so every abstract input of the class is itself checked.
//!
//! Known fidelity caveats, asserted as such here and documented in
//! DESIGN.md §12:
//!
//! * **SECDED burst response is probabilistic.** A multi-bit chip fault
//!   drives one 8-bit burst per 72-bit beat; real Hamming(72,64) decodes
//!   it as a DUE for some corruption patterns and silently mis-corrects
//!   others. The model draws a Bernoulli; the realization pins one
//!   concrete corruption per side ([`Corner::Zero`] → DUE,
//!   [`Corner::One`] → SDC).
//! * **SSC-DSD detection is typical-case.** RS(18,16) (d = 3) *detects*
//!   most double-symbol corruptions, but patterns within distance 1 of
//!   another codeword mis-correct (~6 %). The model's `n = 2 → DUE` arm
//!   is certified with a pinned detected instance; the mis-correcting
//!   minority is the code's documented detection escape, not a simulator
//!   bug.

use crate::forced::Corner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed_core::chip::{ChipGeometry, DramChip, OnDieCode, WordAddr};
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::oracle::{secded_read, xed_chipkill_read, xed_read, PathOutcome};
use xed_ecc::chipkill::{Chipkill, DoubleChipkill, SymbolOutcome};
use xed_ecc::reference::crc8_u32_bitserial;
use xed_faultsim::fault::FaultExtent;
use xed_faultsim::schemes::Scheme;
use xed_faultsim::Persistence;

/// The line every realization read targets, and its per-chip address.
const LINE: u64 = 0;
const ADDR: WordAddr = WordAddr {
    bank: 0,
    row: 0,
    col: 0,
};

/// Cap on the deterministic corruption searches performed at build time.
/// The rarest searched class (all eight SECDED beats escape detection)
/// occurs for ≈0.3 % of corruption seeds, so 2¹⁴ candidates leave a
/// vanishing miss probability.
const SEARCH_CAP: u64 = 1 << 14;

/// The hardware-certified outcome table (see module docs).
#[derive(Debug)]
pub struct Realization {
    /// Single-line word fault whose read the SECDED DIMM flags as a DUE.
    secded_due: InjectedFault,
    /// Single-line word fault every beat of which the SECDED DIMM either
    /// passes or silently mis-corrects — wrong data, no flag.
    secded_sdc: InjectedFault,
    /// Word fault the x8 on-die code *detects* at the read address.
    xed_word_event: InjectedFault,
    /// Word fault the x8 on-die code *misses* at the read address.
    xed_word_miss: InjectedFault,
    /// x4 word fault the 32-bit on-die code misses at the read address,
    /// pinned so the XED+Chipkill erasure decode fails (DUE).
    x4_word_miss: InjectedFault,
}

impl Realization {
    /// Builds and certifies the table. Every assertion here is a
    /// hardware fact the oracle's expected verdicts rest on; a failure
    /// means the functional models and the response model have diverged.
    pub fn build() -> Self {
        let table = Self {
            secded_due: search("secded burst DUE", 0x5EC0_0000, |f| {
                secded_read(&[(0, f)], LINE) == PathOutcome::Due
            }),
            secded_sdc: search("secded burst SDC", 0x5EC1_0000, |f| {
                secded_read(&[(0, f)], LINE) == PathOutcome::Sdc
            }),
            xed_word_event: xed_core::oracle::with_event_at(word_fault(FaultKind::Permanent), ADDR),
            xed_word_miss: xed_core::oracle::with_miss_at(word_fault(FaultKind::Permanent), ADDR),
            // The DUE arm needs the *transient* variant: a permanent miss
            // reproduces under pattern diagnosis and is corrected via the
            // enlarged erasure set, so only a transient (whose evidence
            // the diagnosis write destroys) defeats the decode.
            x4_word_miss: search("x4 on-die miss erasure DUE", 0x0DD4_0000, |f| {
                let (dx, cx) = f.corruption40(ADDR);
                cx == crc8_u32_bitserial(dx)
                    && dx != 0
                    && xed_chipkill_read(
                        &[
                            (0, InjectedFault::chip(FaultKind::Permanent)),
                            (9, f.with_kind_transient()),
                        ],
                        LINE,
                        0xCA7C,
                    ) == PathOutcome::Due
            }),
        };
        table.certify();
        table
    }

    /// Runs every certification read (split out so `build` stays a plain
    /// constructor; called exactly once from it).
    fn certify(&self) {
        let chip = || InjectedFault::chip(FaultKind::Permanent);
        // Bit faults: corrected everywhere on-die/DIMM ECC exists — the
        // hardware face of the model's `Benign` verdict.
        let bit = InjectedFault::bit(ADDR, 17, FaultKind::Permanent);
        assert_eq!(secded_read(&[(0, bit)], LINE), PathOutcome::Corrected);
        assert_eq!(xed_read(&[(0, bit)], LINE), PathOutcome::Corrected);

        // SECDED: the two pinned burst responses (searched above) plus a
        // *line-spanning* fault producing the DUE class at the read line,
        // so the extent-independence of the EccDimm arm is witnessed.
        assert_eq!(secded_read(&[(0, self.secded_due)], LINE), PathOutcome::Due);
        assert_eq!(secded_read(&[(0, self.secded_sdc)], LINE), PathOutcome::Sdc);
        let spanning_due = search("secded spanning DUE", 0x5EC2_0000, |f| {
            secded_read(&[(0, f.with_kind_chip())], LINE) == PathOutcome::Due
        });
        assert_eq!(
            secded_read(&[(0, spanning_due.with_kind_chip())], LINE),
            PathOutcome::Due
        );

        // XED, single faulty chip. Line-spanning extents: Inter-Line
        // diagnosis identifies the chip, parity reconstructs → Corrected
        // for every spanning shape.
        for f in [
            chip(),
            InjectedFault::bank(0, FaultKind::Permanent),
            InjectedFault::row(0, 0, FaultKind::Permanent),
            InjectedFault::column(0, 0, FaultKind::Permanent),
        ] {
            assert_eq!(xed_read(&[(3, f)], LINE), PathOutcome::Corrected);
        }
        // Word fault, on-die detected → catch-word → Corrected.
        assert_eq!(
            xed_read(&[(0, self.xed_word_event)], LINE),
            PathOutcome::Corrected
        );
        // Word fault, on-die miss: permanent reproduces under Intra-Line
        // diagnosis → Corrected; transient does not → DUE.
        assert_eq!(
            xed_read(&[(0, self.xed_word_miss)], LINE),
            PathOutcome::Corrected
        );
        assert_eq!(
            xed_read(&[(0, self.xed_word_miss.with_kind_transient())], LINE),
            PathOutcome::Due
        );
        // Two concurrent faulty chips exceed one parity chip → DUE.
        assert_eq!(
            xed_read(&[(1, chip()), (5, chip())], LINE),
            PathOutcome::Due
        );

        // XED-on-Chipkill: one or two identified erasures are within
        // RS(18,16)'s erasure budget; three are not; a second chip whose
        // word error escapes on-die detection corrupts the erasure set.
        assert_eq!(
            xed_chipkill_read(&[(2, chip())], LINE, 1),
            PathOutcome::Corrected
        );
        assert_eq!(
            xed_chipkill_read(&[(2, chip()), (9, chip())], LINE, 1),
            PathOutcome::Corrected
        );
        assert_eq!(
            xed_chipkill_read(&[(2, chip()), (9, chip()), (14, chip())], LINE, 1),
            PathOutcome::Due
        );
        assert_eq!(
            xed_chipkill_read(
                &[(0, chip()), (9, self.x4_word_miss.with_kind_transient())],
                LINE,
                0xCA7C
            ),
            PathOutcome::Due
        );

        certify_chipkill_codec();
        certify_double_chipkill_codec();
        certify_non_ecc();
    }

    /// The certified data-path outcome for one classifier input class.
    ///
    /// `n` is the concurrent-chip count (1 = isolated), which the oracle
    /// brute-forces independently on the tiny geometry.
    pub fn outcome(
        &self,
        scheme: Scheme,
        corner: Corner,
        extent: FaultExtent,
        persistence: Persistence,
        n: u32,
    ) -> PathOutcome {
        let a = corner.assumption();
        // Certified: bit faults read back corrected through both the
        // SECDED and XED paths (the model's Benign, projected).
        if extent == FaultExtent::Bit {
            return PathOutcome::Corrected;
        }
        match scheme {
            // Certified by certify_non_ecc: corrupted data reaches the bus
            // with nothing DIMM-level to even flag it.
            Scheme::NonEcc => PathOutcome::Sdc,
            // Certified: secded_due / secded_sdc pinned bursts. The DIMM
            // code sees only the accessed line, so the class is
            // extent-independent (witnessed by the spanning-DUE read).
            Scheme::EccDimm => {
                if a.dimm_detects {
                    PathOutcome::Due
                } else {
                    PathOutcome::Sdc
                }
            }
            Scheme::Xed => {
                if n >= 2 {
                    // Certified: two faulty chips defeat single parity.
                    PathOutcome::Due
                } else if extent.spans_lines() {
                    // Certified: Inter-Line diagnosis + parity, all four
                    // spanning shapes.
                    PathOutcome::Corrected
                } else if a.on_die_detects {
                    // Certified: xed_word_event read.
                    PathOutcome::Corrected
                } else if persistence == Persistence::Permanent {
                    // Certified: xed_word_miss (permanent) read.
                    PathOutcome::Corrected
                } else {
                    // Certified: xed_word_miss (transient) read.
                    PathOutcome::Due
                }
            }
            Scheme::XedChipkill => {
                if n > 2 {
                    // Certified: three erasures exceed RS(18,16).
                    PathOutcome::Due
                } else if n == 2 && extent == FaultExtent::Word && !a.on_die_detects {
                    // Certified: x4_word_miss second chip corrupts the
                    // erasure set.
                    PathOutcome::Due
                } else {
                    // Certified: one and two identified erasures decode.
                    PathOutcome::Corrected
                }
            }
            // Certified by certify_chipkill_codec (x8 and x4 share the
            // RS(18,16) symbol organization and budgets).
            Scheme::Chipkill | Scheme::ChipkillX4 => match n {
                0 | 1 => PathOutcome::Corrected,
                2 => PathOutcome::Due,
                _ => PathOutcome::Sdc,
            },
            // Certified by certify_double_chipkill_codec.
            Scheme::DoubleChipkill => match n {
                0..=2 => PathOutcome::Corrected,
                3 => PathOutcome::Due,
                _ => PathOutcome::Sdc,
            },
        }
    }
}

/// Convenience: a permanent/transient word fault at the certified address.
fn word_fault(kind: FaultKind) -> InjectedFault {
    InjectedFault::word(ADDR, kind)
}

/// Deterministic corruption-seed search (bounded; see [`SEARCH_CAP`]).
fn search(what: &str, base: u64, hit: impl Fn(InjectedFault) -> bool) -> InjectedFault {
    for s in 0..SEARCH_CAP {
        let f = word_fault(FaultKind::Permanent).with_seed(base.wrapping_add(s));
        if hit(f) {
            return f;
        }
    }
    panic!("datapath realization: no corruption found for `{what}` in {SEARCH_CAP} candidates");
}

/// Fault-shape rewriting helpers used only by the certification reads.
trait FaultRewrite {
    fn with_kind_transient(self) -> InjectedFault;
    fn with_kind_chip(self) -> InjectedFault;
}

impl FaultRewrite for InjectedFault {
    /// Same corruption stream, transient persistence.
    fn with_kind_transient(self) -> InjectedFault {
        let mut f = self;
        f.kind = FaultKind::Transient;
        f
    }

    /// Same corruption stream, widened to the whole chip.
    fn with_kind_chip(self) -> InjectedFault {
        let mut f = self;
        f.region = xed_core::fault::FaultRegion::Chip;
        f
    }
}

/// RS(18,16), d = 3: one symbol corrected, two detected (typical case),
/// three silently swapped to another codeword.
fn certify_chipkill_codec() {
    let ck = Chipkill::new();
    let data: Vec<u8> = (0..16).map(|i| i * 7 + 3).collect();
    let cw = ck.encode(&data);

    // n = 1 → Corrected, exhaustively: every chip, every nonzero error.
    for chip in 0..Chipkill::TOTAL_CHIPS {
        for e in 1..=255u8 {
            let mut rx = cw.clone();
            rx[chip] ^= e;
            match ck.decode(&rx) {
                SymbolOutcome::Corrected { data: d, .. } => assert_eq!(d, data),
                other => panic!("chipkill single-symbol {chip}/{e:#x}: {other:?}"),
            }
        }
    }

    // n = 2 → DUE: a pinned detected instance (the typical case; the
    // ~6 % mis-correcting minority is the SSC-DSD detection escape).
    let mut rng = StdRng::seed_from_u64(crate::seeds::DATAPATH_SEARCH);
    let found = (0..SEARCH_CAP).any(|_| {
        let mut rx = cw.clone();
        rx[0] ^= rng.gen_range(1..=255u8);
        rx[1] ^= rng.gen_range(1..=255u8);
        ck.decode(&rx) == SymbolOutcome::Due
    });
    assert!(found, "no detected double-symbol corruption");

    // n = 3 → SDC: two codewords at distance exactly 3 (one data symbol
    // plus both check symbols) — the corrupted beat IS another codeword,
    // so the decode is Clean with wrong data.
    let mut data2 = data.clone();
    data2[0] ^= 0x5A;
    let cw2 = ck.encode(&data2);
    let dist = cw.iter().zip(&cw2).filter(|(a, b)| a != b).count();
    assert_eq!(dist, 3, "codeword pair not at minimum distance");
    match ck.decode(&cw2) {
        SymbolOutcome::Clean(d) => assert_ne!(d, data),
        other => panic!("3-symbol codeword swap not silent: {other:?}"),
    }
}

/// RS(36,32), d = 5: two symbols corrected, three detected (pinned),
/// four mis-corrected onto a neighboring codeword.
fn certify_double_chipkill_codec() {
    let dck = DoubleChipkill::new();
    let data: Vec<u8> = (0..32).map(|i| i * 5 + 1).collect();
    let cw = dck.encode(&data);

    // n ∈ {1, 2} → Corrected: every chip pair, one fixed error value.
    for a in 0..DoubleChipkill::TOTAL_CHIPS {
        for b in a..DoubleChipkill::TOTAL_CHIPS {
            let mut rx = cw.clone();
            rx[a] ^= 0x3C;
            if b != a {
                rx[b] ^= 0xA5;
            }
            match dck.decode(&rx) {
                SymbolOutcome::Corrected { data: d, .. } => assert_eq!(d, data, "{a},{b}"),
                other => panic!("double-chipkill {a},{b}: {other:?}"),
            }
        }
    }

    // n = 3 → DUE: pinned detected triple.
    let mut rng = StdRng::seed_from_u64(crate::seeds::DATAPATH_SEARCH ^ 1);
    let found = (0..SEARCH_CAP).any(|_| {
        let mut rx = cw.clone();
        for sym in rx.iter_mut().take(3) {
            *sym ^= rng.gen_range(1..=255u8);
        }
        dck.decode(&rx) == SymbolOutcome::Due
    });
    assert!(found, "no detected triple-symbol corruption");

    // n = 4 → SDC: take a weight-5 codeword difference (one data symbol
    // plus all four checks) and apply all but one of its positions. The
    // received beat is then distance 1 from the *other* codeword and
    // distance 4 from the true one — the decoder "corrects" to wrong data.
    let mut data2 = data.clone();
    data2[0] ^= 0x33;
    let cw2 = dck.encode(&data2);
    let diff: Vec<usize> = (0..cw.len()).filter(|&i| cw[i] != cw2[i]).collect();
    assert_eq!(diff.len(), 5, "codeword pair not at minimum distance");
    let mut rx = cw.clone();
    for &i in &diff[..4] {
        rx[i] = cw2[i];
    }
    match dck.decode(&rx) {
        SymbolOutcome::Corrected { data: d, .. } => assert_ne!(d, data),
        other => panic!("4-symbol near-codeword not mis-corrected: {other:?}"),
    }
}

/// Without DIMM-level ECC, corrupted data reaches the bus unchallenged.
fn certify_non_ecc() {
    let mut chip = DramChip::new(ChipGeometry::small(), OnDieCode::Crc8Atm);
    chip.set_xed_enable(false);
    chip.write(ADDR, 0x1234_5678_9ABC_DEF0);
    let f = search("non-ecc wrong data", 0x40EC_0000, |f| {
        let (dx, _) = f.corruption(ADDR);
        dx != 0
    });
    chip.inject_fault(f);
    assert_ne!(chip.read(ADDR).value, 0x1234_5678_9ABC_DEF0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realization_builds_and_serves_core_classes() {
        let r = Realization::build();
        // Spot-check the class lookup against facts certified above.
        use PathOutcome::*;
        use Persistence::*;
        assert_eq!(
            r.outcome(
                Scheme::EccDimm,
                Corner::Zero,
                FaultExtent::Chip,
                Permanent,
                1
            ),
            Due
        );
        assert_eq!(
            r.outcome(
                Scheme::EccDimm,
                Corner::One,
                FaultExtent::Chip,
                Permanent,
                1
            ),
            Sdc
        );
        assert_eq!(
            r.outcome(Scheme::Xed, Corner::Zero, FaultExtent::Word, Transient, 1),
            Due
        );
        assert_eq!(
            r.outcome(Scheme::Xed, Corner::Zero, FaultExtent::Word, Permanent, 1),
            Corrected
        );
        assert_eq!(
            r.outcome(Scheme::Xed, Corner::One, FaultExtent::Word, Transient, 1),
            Corrected
        );
        assert_eq!(
            r.outcome(
                Scheme::Chipkill,
                Corner::Zero,
                FaultExtent::Chip,
                Permanent,
                3
            ),
            Sdc
        );
        assert_eq!(
            r.outcome(
                Scheme::DoubleChipkill,
                Corner::Zero,
                FaultExtent::Chip,
                Permanent,
                3
            ),
            Due
        );
        assert_eq!(
            r.outcome(
                Scheme::XedChipkill,
                Corner::Zero,
                FaultExtent::Word,
                Transient,
                2
            ),
            Due
        );
        assert_eq!(
            r.outcome(
                Scheme::XedChipkill,
                Corner::One,
                FaultExtent::Word,
                Transient,
                2
            ),
            Corrected
        );
    }
}
