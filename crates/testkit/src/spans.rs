//! Golden conformance check for the `xed-trace-spans-v1` span export.
//!
//! The flight recorder's Chrome-tracing/Perfetto JSON rendering
//! ([`xed_telemetry::export::spans_to_chrome_json`]) is a wire format:
//! `xedd` serves it at `/debug/flight`, dumps it on panic, and external
//! viewers parse it. This module pins the rendering byte-for-byte
//! against a golden file, using a fixed synthetic request trace — one
//! root span with every phase a real coalesced request can record —
//! so any change to field order, number formatting (µs with three
//! decimals), hex width, or the envelope shows up as a reviewable diff
//! rather than a silently broken `/debug/flight` consumer.
//!
//! Same stability contract as [`crate::trace`]: bump
//! [`xed_telemetry::export::SPANS_FORMAT`] on any deliberate rendering
//! change and regenerate via `cargo xtask verify-matrix --regen-golden`.

use xed_telemetry::export::spans_to_chrome_json;
use xed_telemetry::trace::{Phase, SpanEvent};

/// Path of the golden file relative to the testkit crate root.
pub const GOLDEN_PATH: &str = "golden/spans_v1.json";

/// The golden document, baked in at compile time.
pub fn golden() -> &'static str {
    include_str!("../golden/spans_v1.json")
}

/// The synthetic `(slot, event)` fixture: one fully traced request
/// (trace id `0xC0FFEE42`) exercising every [`Phase`] variant, plus a
/// second trace id to pin that the export does not filter or reorder
/// across traces. Timestamps are fixed nanosecond ticks chosen to
/// exercise the µs-with-three-decimals rendering (sub-µs remainders,
/// zero-length spans).
pub fn fixture() -> Vec<(usize, SpanEvent)> {
    let t = 0xC0FF_EE42u64;
    let span = |slot: usize, span_id: u32, parent: u32, phase: Phase, a: u64, s: u64, e: u64| {
        (
            slot,
            SpanEvent {
                trace_id: t,
                span_id,
                parent,
                phase,
                a,
                t_start: s,
                t_end: e,
            },
        )
    };
    vec![
        span(0, 1, 0, Phase::Request, 200, 1_000, 5_000_750),
        span(0, 2, 1, Phase::Admission, 0, 1_000, 2_500),
        span(0, 3, 1, Phase::CacheLookup, 0, 2_600, 3_100),
        span(0, 4, 1, Phase::CoalesceLead, 0, 3_200, 4_900_000),
        span(0, 5, 4, Phase::Evaluate, 0, 3_300, 4_899_000),
        span(2, 6, 5, Phase::SchedulerChunk, 4096, 10_000, 2_000_000),
        span(3, 7, 5, Phase::SchedulerChunk, 4096, 10_000, 10_000),
        // A concurrent follower on another trace, replaying the leader's
        // stream: coalesce_follow carries the leader trace id in `a`.
        (
            1,
            SpanEvent {
                trace_id: 0xF011_0001,
                span_id: 1,
                parent: 0,
                phase: Phase::CoalesceFollow,
                a: t,
                t_start: 3_250,
                t_end: 4_950_125,
            },
        ),
        (
            1,
            SpanEvent {
                trace_id: 0xF011_0001,
                span_id: 2,
                parent: 0,
                phase: Phase::Stream,
                a: 25,
                t_start: 4_950_200,
                t_end: 4_999_999,
            },
        ),
    ]
}

/// Renders the fixture through the real exporter.
pub fn render() -> String {
    let mut doc = spans_to_chrome_json(&fixture());
    doc.push('\n');
    doc
}

/// Result of the golden comparison.
#[derive(Debug, Clone)]
pub struct SpansCheck {
    /// Whether the rendered document equals the golden file.
    pub matches: bool,
    /// First differing line (1-based) when `matches` is false.
    pub first_diff_line: Option<usize>,
}

/// Renders the fixture and compares against the golden file.
pub fn check() -> SpansCheck {
    let rendered = render();
    let gold = golden();
    let matches = rendered == gold;
    let first_diff_line = (!matches).then(|| {
        rendered
            .lines()
            .zip(gold.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || rendered.lines().count().min(gold.lines().count()) + 1,
                |i| i + 1,
            )
    });
    SpansCheck {
        matches,
        first_diff_line,
    }
}

/// Regenerates the golden file in the source tree; returns the path
/// written. Only reachable via `verify-matrix --regen-golden`.
///
/// # Errors
///
/// Propagates filesystem errors from writing the golden file.
pub fn regenerate() -> std::io::Result<String> {
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(), render());
    }

    #[test]
    fn fixture_covers_every_phase() {
        let fixture = fixture();
        for phase in Phase::ALL {
            assert!(
                fixture.iter().any(|(_, e)| e.phase == phase),
                "fixture must exercise phase {:?}",
                phase
            );
        }
    }

    #[test]
    fn golden_spans_match() {
        let check = check();
        assert!(
            check.matches,
            "golden spans_v1.json stale (first diff at line {:?}); \
             regenerate with `cargo xtask verify-matrix --regen-golden` \
             and review the diff",
            check.first_diff_line
        );
    }

    #[test]
    fn document_shape_is_stable() {
        let doc = render();
        assert!(doc.starts_with("{\"schema\":\"xed-trace-spans-v1\""));
        assert!(doc.contains("\"displayTimeUnit\":\"ns\""));
        // Trace ids render as fixed-width hex; µs values carry three
        // decimals (5_000_750 ns → 5000.750 µs span, ts 1.000).
        assert!(doc.contains("\"trace\":\"00000000c0ffee42\""));
        assert!(doc.contains("\"ts\":1.000,\"dur\":4999.750"));
        // The zero-length scheduler chunk renders as dur 0.000.
        assert!(doc.contains("\"dur\":0.000"));
        // The follower's span carries the leader trace id in `a`.
        assert!(doc.contains("\"name\":\"coalesce_follow\""));
        assert!(doc.contains(&format!("\"a\":{}", 0xC0FF_EE42u64)));
    }
}
