//! Differential & metamorphic verification subsystem for the XED stack.
//!
//! The Monte-Carlo engine has been rewritten three times (PRs 2–4) with
//! only spot-check tests guarding its semantics. This crate is the
//! standing verification layer that proves the simulator against
//! *independent* oracles, so future perf PRs can refactor the hot path
//! without fear (see DESIGN.md §12):
//!
//! * [`oracle`] — the **exhaustive small-geometry oracle**: shrink the
//!   DRAM geometry to 2 banks × 3 rows × 4 columns, enumerate *every*
//!   fault placement (and every ordered 2-fault combination), and assert
//!   the Monte-Carlo classifier matches a brute-force line-scan plus a
//!   data-path realization through the real `xed-ecc` decoders and
//!   `xed-core` functional controllers;
//! * [`analytic_gate`] — the **analytic oracle**: closed-form Poisson
//!   single/double/triple-fault probabilities vs Monte-Carlo estimates,
//!   gated at the 99 % binomial confidence bound;
//! * [`infer_gate`] — the **code-inference differential harness**:
//!   BEER-style inference against every registered `xed_ecc` matrix
//!   (bit-exact recovery or certified ambiguity) and the HARP-style
//!   miscorrection profiler against brute-force enumeration;
//! * [`metamorphic`] — the **metamorphic suite**: scheme-ordering
//!   invariances and dominance laws the paper implies, run from seeded
//!   RNG streams;
//! * [`trace`] — golden conformance traces in the stable `xed-trace-v1`
//!   JSON format, with a regeneration path;
//! * [`spans`] — golden conformance for the `xed-trace-spans-v1` span
//!   export (`xedd`'s `/debug/flight` wire format), pinned byte-for-byte
//!   from a synthetic fixture covering every request phase;
//! * [`forced`] — the corner RNG that makes every Monte-Carlo Bernoulli
//!   draw deterministic, turning `SchemeModel::evaluate` into a pure
//!   function the oracle can enumerate;
//! * [`datapath`] — realization of each model outcome class through the
//!   functional hardware models (`SecdedDimm`, `XedController`,
//!   `XedChipkillSystem`, `Chipkill`/`DoubleChipkill` decoders);
//! * [`seeds`] — the workspace's named seed constants (the de-flake
//!   audit asserts every seeded sweep uses them).
//!
//! The `cargo xtask verify-matrix` driver runs all of the above; its
//! `--quick` form is a tier-1 CI gate.

pub mod analytic_gate;
pub mod datapath;
pub mod forced;
pub mod infer_gate;
pub mod metamorphic;
pub mod oracle;
pub mod seeds;
pub mod spans;
pub mod trace;

pub use forced::{Assumption, Corner, ForcedRng};
pub use oracle::{OracleReport, OracleScope};
