//! A corner RNG that makes every Monte-Carlo Bernoulli draw
//! deterministic.
//!
//! Every stochastic decision in `SchemeModel::evaluate` is a Bernoulli
//! trial of the form `rng.gen::<f64>() < p` (or `>= p`) with
//! `0 < p < 1`. The rand shim maps a raw draw `u` to the unit interval as
//! `(u >> 11) · 2⁻⁵³`, so a generator that always returns `0` forces
//! every uniform to `0.0` (every `< p` comparison *fires*), and one that
//! always returns `u64::MAX` forces every uniform to `1 − 2⁻⁵³` (every
//! `< p` comparison *fails*). Driving `evaluate` once per corner
//! therefore enumerates *all* of its reachable verdicts — this is what
//! lets the exhaustive oracle compare the classifier against a
//! brute-force data-path realization without sampling.
//!
//! Each corner corresponds to a concrete micro-architectural assumption
//! ([`Corner::assumption`]): whether the on-die SECDED detected the
//! multi-bit corruption, and whether the DIMM-level SECDED detected the
//! burst (the two draws the model makes). The data-path realization in
//! [`crate::datapath`] constructs a real corruption pattern satisfying
//! that assumption and replays it through the functional hardware.
//!
//! **Caution:** `ForcedRng` must never reach an *integer* `gen_range`
//! (its Lemire rejection loop never terminates on a constant generator).
//! The `evaluate`/`evaluate_isolated` paths draw only `gen::<f64>()`, so
//! the oracle is safe; the debug assertion in [`ForcedRng::next_u64`]
//! counts draws as a tripwire against pathological looping.

use rand::RngCore;

/// Which extreme every uniform draw is forced to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Every `gen::<f64>()` yields `0.0`: every `u < p` Bernoulli fires.
    Zero,
    /// Every `gen::<f64>()` yields `1 − 2⁻⁵³`: every `u < p` Bernoulli
    /// fails (for `p < 1`).
    One,
}

impl Corner {
    /// Both corners.
    pub const ALL: [Corner; 2] = [Corner::Zero, Corner::One];

    /// The micro-architectural assumption this corner realizes in the
    /// response model's draw structure.
    pub fn assumption(self) -> Assumption {
        match self {
            // `u < on_die_miss` fires → the on-die code missed;
            // `u < dimm_secded_burst_detect` fires → DIMM SECDED detected.
            Corner::Zero => Assumption {
                on_die_detects: false,
                dimm_detects: true,
            },
            Corner::One => Assumption {
                on_die_detects: true,
                dimm_detects: false,
            },
        }
    }
}

/// The detection outcomes a corner pins for one fault arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assumption {
    /// The chip's on-die SECDED flagged the multi-bit corruption (no
    /// "on-die miss").
    pub on_die_detects: bool,
    /// The DIMM-level SECDED detected (rather than silently
    /// mis-corrected) the burst a faulty chip injected.
    pub dimm_detects: bool,
}

/// The constant generator realizing a [`Corner`].
#[derive(Debug, Clone)]
pub struct ForcedRng {
    value: u64,
    draws: u64,
}

impl ForcedRng {
    /// A generator pinned to `corner`.
    pub fn new(corner: Corner) -> Self {
        Self {
            value: match corner {
                Corner::Zero => 0,
                Corner::One => u64::MAX,
            },
            draws: 0,
        }
    }

    /// Draws consumed so far (an `evaluate` call makes at most one).
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl RngCore for ForcedRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        debug_assert!(
            self.draws < 1 << 20,
            "ForcedRng consumed {} draws — a rejection sampler is looping on the constant stream",
            self.draws
        );
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn corners_pin_the_unit_interval_extremes() {
        let mut zero = ForcedRng::new(Corner::Zero);
        let mut one = ForcedRng::new(Corner::One);
        for _ in 0..4 {
            assert_eq!(zero.gen::<f64>(), 0.0);
            let u: f64 = one.gen();
            assert!(u < 1.0 && u > 0.999_999, "u = {u}");
        }
        assert_eq!(zero.draws(), 4);
    }

    #[test]
    fn corner_decides_every_bernoulli() {
        // Any threshold strictly inside (0, 1) — the model uses 0.008,
        // 0.51 and 7/63 — resolves the same way under a given corner.
        for p in [0.008, 7.0 / 63.0, 0.51, 0.992] {
            assert!(ForcedRng::new(Corner::Zero).gen::<f64>() < p);
            assert!(ForcedRng::new(Corner::One).gen::<f64>() >= p);
        }
    }

    #[test]
    fn assumption_mapping_matches_draw_structure() {
        // Corner::Zero fires `u < on_die_miss` (a miss) and
        // `u < burst_detect` (a DIMM detection); Corner::One the reverse.
        let z = Corner::Zero.assumption();
        assert!(!z.on_die_detects && z.dimm_detects);
        let o = Corner::One.assumption();
        assert!(o.on_die_detects && !o.dimm_detects);
    }
}
