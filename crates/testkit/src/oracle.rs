//! The exhaustive small-geometry oracle.
//!
//! Strategy (DESIGN.md §12): shrink the enumerated DRAM coordinate space
//! to 2 banks × 3 rows × 4 columns — 24 cache lines, small enough that
//! *every* fault placement, and every ordered 2-fault combination, can be
//! checked rather than sampled. For each placement the classifier
//! (`SchemeModel::evaluate`) is driven once per [`Corner`], which pins
//! its single Bernoulli draw and makes the verdict a pure function of
//! the placement; the verdict (with `Benign` folded into `Corrected`)
//! must equal the hardware-certified outcome from
//! [`crate::datapath::Realization`]. For 2-fault combinations the
//! concurrent-chip count is additionally brute-forced with explicit
//! 24-bit line-cover masks and compared against
//! `SchemeModel::concurrent_chips` — a differential test of the
//! range-intersection engine against a bitmap it cannot share code with.
//!
//! The classifier never bounds-checks coordinates against a geometry, so
//! enumerating the tiny grid exercises the *identical* code path the
//! production Monte-Carlo runs on full-size geometry: what shrinks is
//! the enumeration space, not the system under test.

use crate::datapath::Realization;
use crate::forced::{Corner, ForcedRng};
use xed_core::oracle::PathOutcome;
use xed_faultsim::event::FaultEvent;
use xed_faultsim::fault::{Fault, FaultExtent, FaultRange};
use xed_faultsim::schemes::{ModelParams, Scheme, SchemeModel, Verdict};
use xed_faultsim::Persistence;

/// Enumerated coordinate space: 2 banks × 3 rows × 4 columns = 24 lines.
const BANKS: u32 = 2;
const ROWS: u32 = 3;
const COLS: u32 = 4;
#[cfg(test)]
const LINES: u32 = BANKS * ROWS * COLS;

/// How much of the combination space to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleScope {
    /// Representative chip pairs (same-domain near/far + cross-domain):
    /// every placement pair, a subset of chip pairs. The tier-1 CI gate.
    Quick,
    /// Every same-domain partner chip plus a cross-domain control.
    Full,
}

/// Outcome of the sweep for one scheme.
#[derive(Debug, Clone)]
pub struct SchemeOracle {
    /// The swept scheme.
    pub scheme: Scheme,
    /// Single-fault cases checked (placements × chips × modes × corners).
    pub singles: u64,
    /// Two-fault cases checked.
    pub pairs: u64,
    /// Brute-force vs engine concurrent-chip comparisons made.
    pub intersection_checks: u64,
    /// Human-readable mismatch descriptions (capped at
    /// [`MISMATCH_CAP`] per scheme; the counts above keep the totals).
    pub mismatches: Vec<String>,
}

/// Per-scheme cap on *stored* mismatch descriptions.
pub const MISMATCH_CAP: usize = 20;

/// Aggregate result of [`run`].
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// One entry per swept scheme.
    pub schemes: Vec<SchemeOracle>,
}

impl OracleReport {
    /// Total cases checked across all schemes.
    pub fn total_checks(&self) -> u64 {
        self.schemes
            .iter()
            .map(|s| s.singles + s.pairs + s.intersection_checks)
            .sum()
    }

    /// `true` if no scheme recorded any mismatch.
    pub fn is_clean(&self) -> bool {
        self.schemes.iter().all(|s| s.mismatches.is_empty())
    }

    /// One line per scheme, suitable for the driver's console output.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.schemes {
            out.push_str(&format!(
                "  {:<32} singles {:>6}  pairs {:>8}  intersections {:>8}  mismatches {}\n",
                s.scheme.label(),
                s.singles,
                s.pairs,
                s.intersection_checks,
                s.mismatches.len()
            ));
        }
        out
    }
}

/// Every fault placement on the tiny grid: 1 chip + 2 banks + 6 rows +
/// 8 columns + 24 words + 24 bits = 65 shapes.
fn placements() -> Vec<(FaultExtent, FaultRange)> {
    let mut out = Vec::with_capacity(65);
    out.push((FaultExtent::Chip, FaultRange::default()));
    for b in 0..BANKS {
        out.push((
            FaultExtent::Bank,
            FaultRange {
                bank: Some(b),
                ..FaultRange::default()
            },
        ));
        for r in 0..ROWS {
            out.push((
                FaultExtent::Row,
                FaultRange {
                    bank: Some(b),
                    row: Some(r),
                    ..FaultRange::default()
                },
            ));
        }
        for c in 0..COLS {
            out.push((
                FaultExtent::Column,
                FaultRange {
                    bank: Some(b),
                    col: Some(c),
                    ..FaultRange::default()
                },
            ));
        }
        for r in 0..ROWS {
            for c in 0..COLS {
                out.push((
                    FaultExtent::Word,
                    FaultRange {
                        bank: Some(b),
                        row: Some(r),
                        col: Some(c),
                        bit: None,
                    },
                ));
                out.push((
                    FaultExtent::Bit,
                    FaultRange {
                        bank: Some(b),
                        row: Some(r),
                        col: Some(c),
                        bit: Some(0),
                    },
                ));
            }
        }
    }
    out
}

/// The set of tiny-grid lines a range corrupts, as a 24-bit mask — the
/// brute-force side of the intersection differential (bit faults cover
/// their line; the bit coordinate is irrelevant at line granularity).
fn line_mask(r: &FaultRange) -> u32 {
    let mut mask = 0u32;
    for b in 0..BANKS {
        for row in 0..ROWS {
            for c in 0..COLS {
                let covered = r.bank.is_none_or(|x| x == b)
                    && r.row.is_none_or(|x| x == row)
                    && r.col.is_none_or(|x| x == c);
                if covered {
                    mask |= 1 << (b * ROWS * COLS + row * COLS + c);
                }
            }
        }
    }
    mask
}

/// Verdict → data-path outcome projection. `Benign` (absorbed on die)
/// and `Corrected` both mean "the access returned the right data"; a
/// functional read cannot distinguish them, so the oracle compares at
/// three-way granularity.
fn project(v: Verdict) -> PathOutcome {
    match v {
        Verdict::Benign | Verdict::Corrected => PathOutcome::Corrected,
        Verdict::Due => PathOutcome::Due,
        Verdict::Sdc => PathOutcome::Sdc,
    }
}

fn event(
    chip: u32,
    extent: FaultExtent,
    persistence: Persistence,
    range: FaultRange,
) -> FaultEvent {
    FaultEvent {
        time_hours: 0.0,
        chip,
        fault: Fault {
            extent,
            persistence,
            range,
        },
    }
}

/// Runs the exhaustive sweep over every scheme.
pub fn run(scope: OracleScope) -> OracleReport {
    let realization = Realization::build();
    let shapes = placements();
    let schemes = Scheme::ALL
        .iter()
        .map(|&scheme| sweep_scheme(scheme, scope, &realization, &shapes))
        .collect();
    OracleReport { schemes }
}

fn sweep_scheme(
    scheme: Scheme,
    scope: OracleScope,
    realization: &Realization,
    shapes: &[(FaultExtent, FaultRange)],
) -> SchemeOracle {
    let model = SchemeModel::new(scheme, ModelParams::default());
    let total = model.config().total_chips();
    let domain = scheme.domain_chips();
    let mut report = SchemeOracle {
        scheme,
        singles: 0,
        pairs: 0,
        intersection_checks: 0,
        mismatches: Vec::new(),
    };
    let mismatch = |report: &mut SchemeOracle, msg: String| {
        if report.mismatches.len() < MISMATCH_CAP {
            report.mismatches.push(msg);
        }
    };

    // --- Singles: every placement on representative chips. The chip
    // index provably cannot matter with an empty active set; sweeping
    // near/far chips checks exactly that.
    let single_chips: Vec<u32> = match scope {
        OracleScope::Quick => vec![0, domain - 1],
        OracleScope::Full => vec![0, 1, domain - 1, total - 1],
    };
    for &chip in &single_chips {
        for &(extent, range) in shapes {
            for persistence in [Persistence::Transient, Persistence::Permanent] {
                for corner in Corner::ALL {
                    let e = event(chip, extent, persistence, range);
                    let got = project(model.evaluate(&mut ForcedRng::new(corner), &e, &[]));
                    let want = realization.outcome(scheme, corner, extent, persistence, 1);
                    report.singles += 1;
                    if got != want {
                        mismatch(&mut report, format!(
                            "{scheme}: single chip={chip} {extent}/{persistence:?} {corner:?}: model {got:?} != datapath {want:?}"
                        ));
                    }
                    // The fast path must be indistinguishable from the
                    // general path at every corner.
                    let iso = project(model.evaluate_isolated(
                        &mut ForcedRng::new(corner),
                        extent,
                        persistence,
                    ));
                    if iso != got {
                        mismatch(&mut report, format!(
                            "{scheme}: isolated fast path {extent}/{persistence:?} {corner:?}: {iso:?} != evaluate {got:?}"
                        ));
                    }
                }
            }
        }
    }

    // --- Ordered pairs: active fault on chip c1=0, incoming on c2.
    let partner_chips: Vec<u32> = match scope {
        OracleScope::Quick => vec![1, domain / 2, domain - 1, domain],
        OracleScope::Full => (1..=domain).collect(),
    };
    for &c2 in &partner_chips {
        let same_domain = model.same_domain(0, c2);
        for &(e1_extent, e1_range) in shapes {
            let active = [event(0, e1_extent, Persistence::Permanent, e1_range)];
            let mask1 = line_mask(&e1_range);
            for &(e2_extent, e2_range) in shapes {
                let mask2 = line_mask(&e2_range);
                // Brute-force concurrent count: the active fault joins
                // the incoming one iff it sits on a distinct chip of the
                // same domain, is multi-bit (visible off-die), and the
                // two line-cover masks share a line.
                let joins =
                    c2 != 0 && same_domain && e1_extent.is_multi_bit() && (mask1 & mask2) != 0;
                let n_brute = 1 + u32::from(joins);
                for persistence in [Persistence::Transient, Persistence::Permanent] {
                    let e2 = event(c2, e2_extent, persistence, e2_range);
                    let n_engine = model.concurrent_chips(&e2, &active);
                    report.intersection_checks += 1;
                    if n_engine != n_brute {
                        mismatch(&mut report, format!(
                            "{scheme}: concurrent_chips c2={c2} {e1_extent}@{e1_range:?} + {e2_extent}@{e2_range:?}: engine {n_engine} != brute {n_brute}"
                        ));
                    }
                    for corner in Corner::ALL {
                        let got =
                            project(model.evaluate(&mut ForcedRng::new(corner), &e2, &active));
                        let want =
                            realization.outcome(scheme, corner, e2_extent, persistence, n_brute);
                        report.pairs += 1;
                        if got != want {
                            mismatch(&mut report, format!(
                                "{scheme}: pair c2={c2} n={n_brute} {e2_extent}/{persistence:?} {corner:?}: model {got:?} != datapath {want:?}"
                            ));
                        }
                    }
                }
            }
        }
    }

    // --- Beyond pairs: the symbol-budget arms only reachable with ≥2
    // active faults (Chipkill SDC at n=3, Double-Chipkill DUE/SDC at
    // n=3/4), spot-checked with whole-chip faults.
    let stack_counts: &[u32] = match scheme {
        Scheme::Chipkill | Scheme::ChipkillX4 => &[3],
        Scheme::DoubleChipkill | Scheme::XedChipkill => &[3, 4],
        _ => &[],
    };
    for &n in stack_counts {
        let active: Vec<FaultEvent> = (1..n)
            .map(|c| {
                event(
                    c,
                    FaultExtent::Chip,
                    Persistence::Permanent,
                    FaultRange::default(),
                )
            })
            .collect();
        let e = event(
            0,
            FaultExtent::Chip,
            Persistence::Permanent,
            FaultRange::default(),
        );
        let n_engine = model.concurrent_chips(&e, &active);
        report.intersection_checks += 1;
        if n_engine != n {
            mismatch(
                &mut report,
                format!("{scheme}: {n} stacked chip faults: engine {n_engine} != {n}"),
            );
        }
        for corner in Corner::ALL {
            let got = project(model.evaluate(&mut ForcedRng::new(corner), &e, &active));
            let want =
                realization.outcome(scheme, corner, FaultExtent::Chip, Persistence::Permanent, n);
            report.pairs += 1;
            if got != want {
                mismatch(
                    &mut report,
                    format!("{scheme}: n={n} {corner:?}: model {got:?} != datapath {want:?}"),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_census_is_complete() {
        let shapes = placements();
        assert_eq!(shapes.len(), 65);
        let count = |e: FaultExtent| shapes.iter().filter(|(x, _)| *x == e).count() as u32;
        assert_eq!(count(FaultExtent::Chip), 1);
        assert_eq!(count(FaultExtent::Bank), BANKS);
        assert_eq!(count(FaultExtent::Row), BANKS * ROWS);
        assert_eq!(count(FaultExtent::Column), BANKS * COLS);
        assert_eq!(count(FaultExtent::Word), LINES);
        assert_eq!(count(FaultExtent::Bit), LINES);
    }

    #[test]
    fn line_masks_match_extent_cardinality() {
        for (extent, range) in placements() {
            let lines = line_mask(&range).count_ones();
            let expect = match extent {
                FaultExtent::Chip => LINES,
                FaultExtent::Bank => ROWS * COLS,
                FaultExtent::Row => COLS,
                FaultExtent::Column => ROWS,
                FaultExtent::Word | FaultExtent::Bit => 1,
            };
            assert_eq!(lines, expect, "{extent} {range:?}");
        }
    }

    #[test]
    fn quick_sweep_is_clean_for_every_scheme() {
        let report = run(OracleScope::Quick);
        assert_eq!(report.schemes.len(), Scheme::ALL.len());
        for s in &report.schemes {
            assert!(s.mismatches.is_empty(), "{}: {:#?}", s.scheme, s.mismatches);
            assert!(s.singles > 0 && s.pairs > 0);
        }
        // 65 placements × ≥2 chips × 2 persistences × 2 corners.
        assert!(report.schemes[0].singles >= 65 * 2 * 2 * 2);
    }
}
