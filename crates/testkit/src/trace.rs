//! Golden conformance traces (`xed-trace-v1`).
//!
//! A trace is a stable JSON rendering of everything a small, seeded
//! Monte-Carlo run did: every non-trivial trial replayed step by step
//! ([`MonteCarlo::replay_trial`]), the aggregate result, and the
//! telemetry the run is expected to publish. The rendered document is
//! compared byte-for-byte against a golden file checked into
//! `crates/testkit/golden/` — any change to the RNG streams, the fault
//! sampler, the response models, or the replay path shows up as a
//! human-readable JSON diff instead of a silent drift in simulated
//! reliability numbers.
//!
//! Format stability contract: the `format` field is bumped whenever the
//! rendering changes shape; regenerating the files
//! (`cargo xtask verify-matrix --regen-golden`) is a reviewed act, and a
//! regeneration that changes trial contents without a deliberate
//! simulator change is a red flag. Numbers are rendered with Rust's
//! shortest-roundtrip `f64` formatting, which is stable across
//! platforms.

use crate::seeds;
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig, TrialReplay};
use xed_faultsim::schemes::Scheme;

/// Trace format identifier; bump on any rendering change.
pub const FORMAT: &str = "xed-trace-v1";

/// Trials per traced scheme — small enough to diff by eye, large enough
/// that each trace exercises multi-fault trials and failures.
pub const SAMPLES: u64 = 512;

/// The schemes with golden traces (the paper's four headline configs).
pub const SCHEMES: [Scheme; 4] = [
    Scheme::EccDimm,
    Scheme::Xed,
    Scheme::XedChipkill,
    Scheme::Chipkill,
];

/// Stable file-name slug for a traced scheme.
pub fn slug(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::NonEcc => "non_ecc",
        Scheme::EccDimm => "ecc_dimm",
        Scheme::Xed => "xed",
        Scheme::Chipkill => "chipkill",
        Scheme::ChipkillX4 => "chipkill_x4",
        Scheme::XedChipkill => "xed_chipkill",
        Scheme::DoubleChipkill => "double_chipkill",
    }
}

/// The golden file contents, baked in at compile time.
pub fn golden(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::EccDimm => include_str!("../golden/trace_ecc_dimm.json"),
        Scheme::Xed => include_str!("../golden/trace_xed.json"),
        Scheme::XedChipkill => include_str!("../golden/trace_xed_chipkill.json"),
        Scheme::Chipkill => include_str!("../golden/trace_chipkill.json"),
        // invariant: SCHEMES lists exactly the schemes with golden files.
        _ => "",
    }
}

/// The telemetry counters a trace's run must publish, derived from the
/// replayed trials themselves (`(metric id, expected delta)` pairs).
pub fn expected_telemetry(replays: &[TrialReplay], due: u64, sdc: u64) -> [(&'static str, u64); 4] {
    let zero = replays.iter().filter(|r| r.zero_fault).count() as u64;
    [
        ("faultsim.trials", replays.len() as u64),
        ("faultsim.zero_fault_trials", zero),
        ("faultsim.due", due),
        ("faultsim.sdc", sdc),
    ]
}

fn mc(scheme_samples: u64) -> MonteCarlo {
    MonteCarlo::new(MonteCarloConfig {
        samples: scheme_samples,
        seed: seeds::GOLDEN_TRACE,
        threads: 1,
        ..MonteCarloConfig::default()
    })
}

/// Renders the `xed-trace-v1` document for one scheme.
pub fn render(scheme: Scheme) -> String {
    let m = mc(SAMPLES);
    let result = m.run(scheme);
    let replays: Vec<TrialReplay> = (0..SAMPLES).map(|t| m.replay_trial(scheme, t)).collect();
    let telemetry = expected_telemetry(&replays, result.due, result.sdc);

    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
    out.push_str(&format!("  \"scheme\": \"{}\",\n", slug(scheme)));
    out.push_str(&format!("  \"seed\": {},\n", seeds::GOLDEN_TRACE));
    out.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    out.push_str("  \"trials\": [\n");
    let mut first = true;
    for r in replays.iter().filter(|r| !r.zero_fault) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        render_trial(&mut out, r);
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"result\": {\n");
    out.push_str(&format!("    \"due\": {},\n", result.due));
    out.push_str(&format!("    \"sdc\": {},\n", result.sdc));
    let years: Vec<String> = result
        .failures_by_year
        .iter()
        .map(|f| f.to_string())
        .collect();
    out.push_str(&format!(
        "    \"failures_by_year\": [{}]\n  }},\n",
        years.join(", ")
    ));
    out.push_str("  \"telemetry\": {\n");
    let tele: Vec<String> = telemetry
        .iter()
        .map(|(id, v)| format!("    \"{id}\": {v}"))
        .collect();
    out.push_str(&tele.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

/// One replayed trial on a single line (diff-friendly).
fn render_trial(out: &mut String, r: &TrialReplay) {
    out.push_str(&format!("{{\"trial\": {}, \"steps\": [", r.trial));
    for (i, s) in r.steps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let chip = s.chip.map_or_else(|| "null".to_string(), |c| c.to_string());
        out.push_str(&format!(
            "{{\"t\": {:?}, \"chip\": {chip}, \"extent\": \"{}\", \"persistence\": \"{:?}\", \"active\": {}, \"verdict\": \"{:?}\"}}",
            s.time_hours, s.extent, s.persistence, s.active, s.verdict
        ));
    }
    out.push_str("], \"failure\": ");
    match &r.failure {
        None => out.push_str("null"),
        Some(f) => out.push_str(&format!(
            "{{\"due\": {}, \"year\": {}, \"extent_index\": {}}}",
            f.due, f.year, f.extent_index
        )),
    }
    out.push('}');
}

/// One golden-trace comparison.
#[derive(Debug, Clone)]
pub struct TraceCheck {
    /// The traced scheme.
    pub scheme: Scheme,
    /// Whether the rendered document equals the golden file.
    pub matches: bool,
    /// First differing line (1-based) when `matches` is false.
    pub first_diff_line: Option<usize>,
}

/// Renders every traced scheme and compares against the golden files.
pub fn check_all() -> Vec<TraceCheck> {
    SCHEMES
        .iter()
        .map(|&scheme| {
            let rendered = render(scheme);
            let gold = golden(scheme);
            let matches = rendered == gold;
            let first_diff_line = (!matches).then(|| {
                rendered
                    .lines()
                    .zip(gold.lines())
                    .position(|(a, b)| a != b)
                    .map_or_else(
                        || rendered.lines().count().min(gold.lines().count()) + 1,
                        |i| i + 1,
                    )
            });
            TraceCheck {
                scheme,
                matches,
                first_diff_line,
            }
        })
        .collect()
}

/// Regenerates every golden file in the source tree; returns the paths
/// written. Only reachable via `verify-matrix --regen-golden`.
///
/// # Errors
///
/// Propagates filesystem errors from writing the golden files.
pub fn regenerate() -> std::io::Result<Vec<String>> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
    let mut written = Vec::new();
    for scheme in SCHEMES {
        let path = format!("{dir}/trace_{}.json", slug(scheme));
        std::fs::write(&path, render(scheme))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(Scheme::Xed), render(Scheme::Xed));
    }

    #[test]
    fn trace_shape_is_stable() {
        let doc = render(Scheme::EccDimm);
        assert!(doc.starts_with("{\n  \"format\": \"xed-trace-v1\",\n"));
        assert!(doc.contains("\"scheme\": \"ecc_dimm\""));
        assert!(doc.contains("\"faultsim.trials\": 512"));
        assert!(doc.ends_with("}\n"));
        // λ ≈ 0.29 faults/system-lifetime: a 512-trial trace must contain
        // a healthy band of non-trivial trials.
        let trials = doc.matches("\"trial\": ").count();
        assert!((60..300).contains(&trials), "{trials} replayed trials");
    }

    #[test]
    fn golden_traces_match() {
        for check in check_all() {
            assert!(
                check.matches,
                "{}: golden trace stale (first diff at line {:?}); \
                 regenerate with `cargo xtask verify-matrix --regen-golden` \
                 and review the diff",
                check.scheme, check.first_diff_line
            );
        }
    }
}
