//! Criterion micro-benchmarks for the XED controller's read paths: the
//! clean fast path (no catch-word), the reconstruction path (one faulty
//! chip), and the serial-mode path (multiple catch-words). The clean path
//! must dominate — XED's performance claim rests on correction work being
//! off the common case.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::{XedConfig, XedDimm};

const LINE: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn controller_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("xed_controller");

    g.bench_function("write_line", |b| {
        let mut dimm = XedDimm::new(XedConfig::default());
        b.iter(|| dimm.write_line(black_box(3), &LINE));
    });

    g.bench_function("read_clean", |b| {
        let mut dimm = XedDimm::new(XedConfig::default());
        dimm.write_line(3, &LINE);
        b.iter(|| dimm.read_line(black_box(3)).unwrap());
    });

    g.bench_function("read_reconstruct_chip_failure", |b| {
        let mut dimm = XedDimm::new(XedConfig::default());
        dimm.write_line(3, &LINE);
        dimm.inject_fault(4, InjectedFault::chip(FaultKind::Permanent));
        b.iter(|| dimm.read_line(black_box(3)).unwrap());
    });

    g.bench_function("read_serial_mode_two_scaling_faults", |b| {
        let mut dimm = XedDimm::new(XedConfig::default());
        dimm.write_line(3, &LINE);
        let addr = dimm.line_addr(3);
        dimm.inject_fault(0, InjectedFault::bit(addr, 5, FaultKind::Permanent));
        dimm.inject_fault(6, InjectedFault::bit(addr, 40, FaultKind::Permanent));
        b.iter(|| dimm.read_line(black_box(3)).unwrap());
    });

    g.finish();
}

fn xed_chipkill_benches(c: &mut Criterion) {
    use xed_core::xed_chipkill::XedChipkillSystem;
    let mut g = c.benchmark_group("xed_chipkill_x4");
    const LINE32: [u32; 16] = [0xC0DE; 16];

    g.bench_function("read_clean", |b| {
        let mut sys = XedChipkillSystem::new(1);
        sys.write_line(0, &LINE32);
        b.iter(|| sys.read_line(black_box(0)).unwrap());
    });

    g.bench_function("read_two_dead_chips", |b| {
        let mut sys = XedChipkillSystem::new(1);
        sys.write_line(0, &LINE32);
        sys.inject_fault(2, InjectedFault::chip(FaultKind::Permanent));
        sys.inject_fault(9, InjectedFault::chip(FaultKind::Permanent));
        b.iter(|| sys.read_line(black_box(0)).unwrap());
    });

    g.finish();
}

fn secded32_benches(c: &mut Criterion) {
    use xed_ecc::secded32::Crc8Atm32;
    let code = Crc8Atm32::new();
    let w = code.encode(0xDEAD_BEEF);
    let bad = w.with_bit_flipped(11);
    let mut g = c.benchmark_group("secded32");
    g.bench_function("encode", |b| b.iter(|| code.encode(black_box(0xDEAD_BEEF))));
    g.bench_function("decode_correct", |b| b.iter(|| code.decode(black_box(bad))));
    g.finish();
}

criterion_group!(benches, controller_benches, xed_chipkill_benches, secded32_benches);
criterion_main!(benches);
