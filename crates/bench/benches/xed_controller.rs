//! Micro-benchmarks for the XED controller's read paths: the clean fast
//! path (no catch-word), the reconstruction path (one faulty chip), and
//! the serial-mode path (multiple catch-words). The clean path must
//! dominate — XED's performance claim rests on correction work being off
//! the common case.
//!
//! Runs on the std-only harness in `xed_bench::timing` (no Criterion; the
//! workspace builds offline).

use std::hint::black_box;
use xed_bench::timing::Group;
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::{XedConfig, XedDimm};

const LINE: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn controller_benches() {
    let g = Group::new("xed_controller");

    let mut dimm = XedDimm::new(XedConfig::default());
    g.bench("write_line", || dimm.write_line(black_box(3), &LINE));

    let mut dimm = XedDimm::new(XedConfig::default());
    dimm.write_line(3, &LINE);
    g.bench("read_clean", || dimm.read_line(black_box(3)).unwrap());

    let mut dimm = XedDimm::new(XedConfig::default());
    dimm.write_line(3, &LINE);
    dimm.inject_fault(4, InjectedFault::chip(FaultKind::Permanent));
    g.bench("read_reconstruct_chip_failure", || {
        dimm.read_line(black_box(3)).unwrap()
    });

    let mut dimm = XedDimm::new(XedConfig::default());
    dimm.write_line(3, &LINE);
    let addr = dimm.line_addr(3);
    dimm.inject_fault(0, InjectedFault::bit(addr, 5, FaultKind::Permanent));
    dimm.inject_fault(6, InjectedFault::bit(addr, 40, FaultKind::Permanent));
    g.bench("read_serial_mode_two_scaling_faults", || {
        dimm.read_line(black_box(3)).unwrap()
    });
}

fn xed_chipkill_benches() {
    use xed_core::xed_chipkill::XedChipkillSystem;
    let g = Group::new("xed_chipkill_x4");
    const LINE32: [u32; 16] = [0xC0DE; 16];

    let mut sys = XedChipkillSystem::new(1);
    sys.write_line(0, &LINE32);
    g.bench("read_clean", || sys.read_line(black_box(0)).unwrap());

    let mut sys = XedChipkillSystem::new(1);
    sys.write_line(0, &LINE32);
    sys.inject_fault(2, InjectedFault::chip(FaultKind::Permanent));
    sys.inject_fault(9, InjectedFault::chip(FaultKind::Permanent));
    g.bench("read_two_dead_chips", || {
        sys.read_line(black_box(0)).unwrap()
    });
}

fn secded32_benches() {
    use xed_ecc::secded32::Crc8Atm32;
    let code = Crc8Atm32::new();
    let w = code.encode(0xDEAD_BEEF);
    let bad = w.with_bit_flipped(11);
    let g = Group::new("secded32");
    g.bench("encode", || code.encode(black_box(0xDEAD_BEEF)));
    g.bench("decode_correct", || code.decode(black_box(bad)));
}

fn main() {
    controller_benches();
    xed_chipkill_benches();
    secded32_benches();
}
