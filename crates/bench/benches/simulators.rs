//! Criterion throughput benchmarks for the two simulators: systems/second
//! for the FaultSim-style Monte-Carlo (the paper runs 10⁹ systems) and
//! cycles/second for the USIMM-style memory simulator.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use xed_faultsim::event::sample_lifetime;
use xed_faultsim::fit::{FitRates, LIFETIME_YEARS};
use xed_faultsim::geometry::DramGeometry;
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed_faultsim::schemes::Scheme;
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, Simulation};
use xed_memsim::workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn faultsim_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("faultsim");
    g.bench_function("sample_lifetime_72chips", |b| {
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_lifetime(&mut rng, &rates, &geom, black_box(72), LIFETIME_YEARS));
    });
    g.bench_function("mc_10k_systems_xed", |b| {
        b.iter_batched(
            || {
                MonteCarlo::new(MonteCarloConfig {
                    samples: 10_000,
                    seed: 9,
                    threads: 1,
                    ..Default::default()
                })
            },
            |mc| mc.run(black_box(Scheme::Xed)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn memsim_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim");
    g.sample_size(10);
    g.bench_function("sim_8cores_20k_instr", |b| {
        b.iter(|| {
            Simulation::new(SimConfig {
                workload: Workload::by_name("comm1").unwrap(),
                scheme: ReliabilityScheme::baseline_secded(),
                instructions_per_core: black_box(20_000),
                ..Default::default()
            })
            .run()
        });
    });
    g.finish();
}

criterion_group!(benches, faultsim_benches, memsim_benches);
criterion_main!(benches);
