//! Throughput benchmarks for the two simulators: systems/second for the
//! FaultSim-style Monte-Carlo (the paper runs 10⁹ systems) and
//! cycles/second for the USIMM-style memory simulator.
//!
//! Runs on the std-only harness in `xed_bench::timing` (no Criterion; the
//! workspace builds offline).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use xed_bench::timing::Group;
use xed_faultsim::engine::Sweep;
use xed_faultsim::event::sample_lifetime;
use xed_faultsim::fit::{FitRates, LIFETIME_YEARS};
use xed_faultsim::geometry::DramGeometry;
use xed_faultsim::schemes::Scheme;
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, Simulation};
use xed_memsim::workloads::Workload;

fn faultsim_benches() {
    let g = Group::new("faultsim");
    let rates = FitRates::table_i();
    let geom = DramGeometry::x8_2gb();
    let mut rng = StdRng::seed_from_u64(1);
    g.bench("sample_lifetime_72chips", || {
        sample_lifetime(&mut rng, &rates, &geom, black_box(72), LIFETIME_YEARS)
    });

    g.bench("mc_10k_systems_xed", || {
        let sweep = Sweep::new(10_000, 9).with_threads(1);
        sweep.monte_carlo().run(black_box(Scheme::Xed))
    });
}

fn memsim_benches() {
    let g = Group::new("memsim").slow();
    g.bench("sim_8cores_20k_instr", || {
        Simulation::new(SimConfig {
            workload: Workload::by_name("comm1").unwrap(),
            scheme: ReliabilityScheme::baseline_secded(),
            instructions_per_core: black_box(20_000),
            ..Default::default()
        })
        .run()
    });
}

fn main() {
    faultsim_benches();
    memsim_benches();
}
