//! Criterion micro-benchmarks for the coding substrate: the SECDED codecs
//! that model on-die ECC (the paper argues CRC8-ATM fits in a single cycle
//! via a 256-entry table — its software encode should be branch-free and
//! fast) and the Reed–Solomon chipkill codecs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xed_ecc::chipkill::{Chipkill, DoubleChipkill};
use xed_ecc::secded::SecDed;
use xed_ecc::{Crc8Atm, Hamming7264};

fn secded_benches(c: &mut Criterion) {
    let hamming = Hamming7264::new();
    let crc = Crc8Atm::new();
    let data = 0xDEAD_BEEF_0BAD_F00Du64;
    let clean_h = hamming.encode(data);
    let clean_c = crc.encode(data);
    let corrupt_h = clean_h.with_bit_flipped(17);
    let corrupt_c = clean_c.with_bit_flipped(17);

    let mut g = c.benchmark_group("secded");
    g.bench_function("hamming_encode", |b| b.iter(|| hamming.encode(black_box(data))));
    g.bench_function("crc8_encode", |b| b.iter(|| crc.encode(black_box(data))));
    g.bench_function("hamming_decode_clean", |b| b.iter(|| hamming.decode(black_box(clean_h))));
    g.bench_function("crc8_decode_clean", |b| b.iter(|| crc.decode(black_box(clean_c))));
    g.bench_function("hamming_decode_correct", |b| {
        b.iter(|| hamming.decode(black_box(corrupt_h)))
    });
    g.bench_function("crc8_decode_correct", |b| b.iter(|| crc.decode(black_box(corrupt_c))));
    g.finish();
}

fn rs_benches(c: &mut Criterion) {
    let ck = Chipkill::new();
    let dck = DoubleChipkill::new();
    let data16: Vec<u8> = (0..16).collect();
    let data32: Vec<u8> = (0..32).collect();
    let beat = ck.encode(&data16);
    let mut bad = beat.clone();
    bad[5] ^= 0x5A;
    let dbeat = dck.encode(&data32);
    let mut dbad = dbeat.clone();
    dbad[7] ^= 0xFF;
    dbad[29] ^= 0x0F;

    let mut g = c.benchmark_group("reed_solomon");
    g.bench_function("chipkill_encode", |b| b.iter(|| ck.encode(black_box(&data16))));
    g.bench_function("chipkill_decode_clean", |b| b.iter(|| ck.decode(black_box(&beat))));
    g.bench_function("chipkill_decode_1err", |b| b.iter(|| ck.decode(black_box(&bad))));
    g.bench_function("chipkill_decode_2erasures", |b| {
        b.iter(|| ck.decode_with_erasures(black_box(&bad), black_box(&[5, 9])))
    });
    g.bench_function("double_chipkill_decode_2err", |b| b.iter(|| dck.decode(black_box(&dbad))));
    g.finish();
}

criterion_group!(benches, secded_benches, rs_benches);
criterion_main!(benches);
