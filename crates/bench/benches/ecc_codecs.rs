//! Micro-benchmarks for the coding substrate: the SECDED codecs that model
//! on-die ECC (the paper argues CRC8-ATM fits in a single cycle via a
//! 256-entry table — its software encode should be branch-free and fast)
//! and the Reed–Solomon chipkill codecs.
//!
//! Runs on the std-only harness in `xed_bench::timing` (no Criterion; the
//! workspace builds offline).

use std::hint::black_box;
use xed_bench::timing::Group;
use xed_ecc::chipkill::{Chipkill, DoubleChipkill};
use xed_ecc::secded::SecDed;
use xed_ecc::{Crc8Atm, Hamming7264};

fn secded_benches() {
    let hamming = Hamming7264::new();
    let crc = Crc8Atm::new();
    let data = 0xDEAD_BEEF_0BAD_F00Du64;
    let clean_h = hamming.encode(data);
    let clean_c = crc.encode(data);
    let corrupt_h = clean_h.with_bit_flipped(17);
    let corrupt_c = clean_c.with_bit_flipped(17);

    let g = Group::new("secded");
    g.bench("hamming_encode", || hamming.encode(black_box(data)));
    g.bench("crc8_encode", || crc.encode(black_box(data)));
    g.bench("hamming_decode_clean", || {
        hamming.decode(black_box(clean_h))
    });
    g.bench("crc8_decode_clean", || crc.decode(black_box(clean_c)));
    g.bench("hamming_decode_correct", || {
        hamming.decode(black_box(corrupt_h))
    });
    g.bench("crc8_decode_correct", || crc.decode(black_box(corrupt_c)));
}

fn rs_benches() {
    let ck = Chipkill::new();
    let dck = DoubleChipkill::new();
    let data16: Vec<u8> = (0..16).collect();
    let data32: Vec<u8> = (0..32).collect();
    let beat = ck.encode(&data16);
    let mut bad = beat.clone();
    bad[5] ^= 0x5A;
    let dbeat = dck.encode(&data32);
    let mut dbad = dbeat.clone();
    dbad[7] ^= 0xFF;
    dbad[29] ^= 0x0F;

    let g = Group::new("reed_solomon");
    g.bench("chipkill_encode", || ck.encode(black_box(&data16)));
    g.bench("chipkill_decode_clean", || ck.decode(black_box(&beat)));
    g.bench("chipkill_decode_1err", || ck.decode(black_box(&bad)));
    g.bench("chipkill_decode_2erasures", || {
        ck.decode_with_erasures(black_box(&bad), black_box(&[5, 9]))
    });
    g.bench("double_chipkill_decode_2err", || {
        dck.decode(black_box(&dbad))
    });
}

fn main() {
    secded_benches();
    rs_benches();
}
